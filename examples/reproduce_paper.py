#!/usr/bin/env python3
"""Regenerate every table and figure in the paper's evaluation.

Runs each experiment in repro.experiments with its default (reduced but
representative) parameters and prints the reproduced rows/series in the
paper's units.  Takes several minutes.

Run:  python examples/reproduce_paper.py [--quick]
"""

import argparse
import sys
import time

from repro import experiments as ex
from repro.sim import ms


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="coarser sweeps (N=1,4,7) and shorter runs")
    args = parser.parse_args()
    ns = (1, 4, 7) if args.quick else tuple(range(1, 8))
    run_ns = ms(20) if args.quick else ms(30)

    steps = [
        ("Figure 1", lambda: ex.format_fig01(ex.run_fig01())),
        ("Table 1", lambda: ex.format_tab01(ex.run_tab01())),
        ("Table 2", lambda: ex.format_tab02(ex.run_tab02())),
        ("Figure 3", lambda: ex.format_fig03(ex.run_fig03())),
        ("Table 3", lambda: ex.format_tab03(ex.run_tab03())),
        ("Figure 5", lambda: ex.format_fig05(
            ex.run_fig05(vm_counts=ns, run_ns=run_ns))),
        ("Figure 7", lambda: ex.format_fig07(
            ex.run_fig07(vm_counts=ns, run_ns=run_ns))),
        ("Figure 8", lambda: ex.format_fig08(
            ex.run_fig08(vm_counts=ns, run_ns=run_ns))),
        ("Table 4", lambda: ex.format_tab04(
            ex.run_tab04(run_ns=ms(150) if args.quick else ms(400)))),
        ("Figure 9", lambda: ex.format_fig09(
            ex.run_fig09(vm_counts=ns, run_ns=run_ns))),
        ("Figure 10", lambda: ex.format_fig10(ex.run_fig10(run_ns=run_ns))),
        ("Figure 11", lambda: ex.format_fig11(ex.run_fig11(run_ns=run_ns))),
        ("Figure 12", lambda: ex.format_fig12(
            ex.run_fig12(vm_counts=ns, run_ns=run_ns))),
        ("Figure 13", lambda: ex.format_fig13(
            ex.run_fig13a(total_vms=(4, 12, 20, 28), run_ns=run_ns),
            ex.run_fig13b(total_vms=(4, 12, 20, 28), run_ns=run_ns))),
        ("Figure 14", lambda: ex.format_fig14(
            ex.run_fig14(vm_counts=ns, run_ns=run_ns))),
        ("Figure 15", lambda: ex.format_fig15(ex.run_fig15(run_ns=ms(50)))),
        ("Figure 16a", lambda: ex.format_fig16a(
            ex.run_fig16a(run_ns=ms(40)))),
        ("Figure 16b", lambda: ex.format_fig16b(
            ex.run_fig16b(run_ns=ms(40)))),
    ]

    total_start = time.time()
    for name, step in steps:
        start = time.time()
        output = step()
        elapsed = time.time() - start
        print(f"\n{'=' * 72}\n{name}  (regenerated in {elapsed:.1f}s)\n{'=' * 72}")
        print(output)
        sys.stdout.flush()
    print(f"\nAll artifacts regenerated in {time.time() - total_start:.0f}s.")


if __name__ == "__main__":
    main()
