#!/usr/bin/env python3
"""Quickstart: compare the four virtual I/O models on netperf RR.

Builds the paper's Figure 6 testbed for each model — one VMhost, one load
generator, and (for vRIO) an IOhost in between — runs a closed-loop
request-response workload, and prints mean latency next to the Table 3
virtualization-event counts that explain it.

Run:  python examples/quickstart.py
"""

from repro.cluster import build_simple_setup
from repro.sim import ms
from repro.workloads import NetperfRR


def measure(model_name: str, n_vms: int = 1) -> dict:
    testbed = build_simple_setup(model_name, n_vms=n_vms)
    workloads = [
        NetperfRR(testbed.env, testbed.clients[i], testbed.ports[i],
                  testbed.costs, warmup_ns=ms(2))
        for i in range(n_vms)
    ]
    testbed.env.run(until=ms(30))
    transactions = sum(w.transactions for w in workloads)
    return {
        "latency_us": sum(w.mean_latency_us() for w in workloads) / n_vms,
        "events_per_rr": testbed.stats.total() / max(1, transactions),
        "transactions": transactions,
    }


def main() -> None:
    print("netperf UDP_RR, one VM, one (side)core "
          "(events = exits + interrupts + injections per transaction)\n")
    print(f"{'model':13s} {'latency':>10s} {'events/rr':>10s} {'txns':>7s}")
    for model_name in ("optimum", "vrio", "elvis", "vrio_nopoll",
                       "baseline"):
        r = measure(model_name)
        print(f"{model_name:13s} {r['latency_us']:8.1f}us "
              f"{r['events_per_rr']:10.1f} {r['transactions']:7d}")

    print("\nThe ordering mirrors the paper's Table 3: vRIO matches the")
    print("non-interposable optimum's event count (2) while remaining fully")
    print("interposable; its extra ~12us is the price of the remote hop.")


if __name__ == "__main__":
    main()
