#!/usr/bin/env python3
"""Remote block devices over an unreliable channel (§4.5, Fig. 14).

Gives a VM a ramdisk that lives at the IOhost, runs 4 KB O_DIRECT random
I/O against it through the guest disk scheduler, and demonstrates:

1. the latency cost of making a local device remote (vs Elvis's local
   sidecore) — the paper's "up to 2.2x";
2. that with enough thread concurrency the remote device catches up and
   overtakes (involuntary-context-switch effect, Fig. 14);
3. exactly-once completion over a 15%-lossy Ethernet channel via the
   retransmission protocol (unique ids, 10 ms doubling timeouts, stale
   response filtering).

Run:  python examples/remote_block_device.py
"""

from repro.cluster import build_simple_setup
from repro.sim import ms, seconds
from repro.workloads import FilebenchRandomIO


def filebench(model_name: str, readers: int, writers: int,
              channel_loss: float = 0.0):
    testbed = build_simple_setup(model_name, n_vms=1, with_clients=False,
                                 channel_loss=channel_loss, seed=42)
    vm = testbed.vms[0]
    handle = testbed.attach_ramdisk(vm)
    workload = FilebenchRandomIO(
        testbed.env, vm, handle, testbed.rng.stream("fb"), testbed.costs,
        readers=readers, writers=writers, warmup_ns=ms(2))
    testbed.env.run(until=ms(40) if channel_loss == 0 else seconds(1.0))
    return testbed, workload


def main() -> None:
    print("1) Latency cost of the remote device (single reader):")
    _, elvis = filebench("elvis", readers=1, writers=0)
    _, vrio = filebench("vrio", readers=1, writers=0)
    ratio = elvis.ops_per_sec() / vrio.ops_per_sec()
    print(f"   elvis local ramdisk : {elvis.ops_per_sec():9.0f} ops/s")
    print(f"   vrio remote ramdisk : {vrio.ops_per_sec():9.0f} ops/s")
    print(f"   -> remote latency is ~{ratio:.1f}x the local one "
          f"(paper: up to 2.2x)\n")

    print("2) Concurrency hides the remote latency (2 readers + 2 writers):")
    _, elvis4 = filebench("elvis", readers=2, writers=2)
    _, vrio4 = filebench("vrio", readers=2, writers=2)
    print(f"   elvis: {elvis4.ops_per_sec():9.0f} ops/s "
          f"({elvis4.scheduler.involuntary_switches.value} involuntary "
          f"context switches)")
    print(f"   vrio : {vrio4.ops_per_sec():9.0f} ops/s "
          f"({vrio4.scheduler.involuntary_switches.value} involuntary "
          f"context switches)\n")

    print("3) Recovery over a 15%-lossy channel:")
    testbed, lossy = filebench("vrio", readers=2, writers=2,
                               channel_loss=0.15)
    reliable = testbed.model.client_of(testbed.vms[0]).reliable
    print(f"   completed ops      : {reliable.completions.value}")
    print(f"   retransmissions    : {reliable.retransmissions.value}")
    print(f"   stale responses    : {reliable.stale_responses.value} "
          f"(ignored, exactly-once preserved)")
    print(f"   device errors      : {reliable.failures.value}")


if __name__ == "__main__":
    main()
