#!/usr/bin/env python3
"""Hypervisor independence, bare-metal clients, and live migration (§4.6).

One I/O hypervisor serves three very different IOclients at once:

* a KVM-style guest VM,
* a second VM that undergoes live migration to another VMhost mid-run
  (Tsriov -> Tvirtio -> stop-and-copy -> Tsriov),
* a bare-metal POWER machine that simply installed the vRIO driver.

A metering interposer at the IOhost accounts traffic for all three —
services that none of the clients (or their absent hypervisors) can
disable.

Run:  python examples/heterogeneous_clients.py
"""

from repro.cluster import build_scalability_setup
from repro.hw import Core
from repro.interpose import Meter
from repro.iomodels.vrio import live_migrate
from repro.sim import ms


def main() -> None:
    # Two VMhosts behind one IOhost, one VM each; each VMhost paired with
    # its own load generator.
    testbed = build_scalability_setup(n_vmhosts=2, vms_per_host=1, workers=2)
    model = testbed.model
    meter = Meter()
    model.add_interposer(meter)

    # Add a bare-metal client (a POWER 710 in the paper's demo) on
    # VMhost 0's channel.
    channel = model.client_of(testbed.vms[0]).channel
    power_core = Core(testbed.env, "power710/core0", ghz=3.0)
    bare_port = model.attach_bare_metal("power710", power_core, channel,
                                        testbed.iohost.nics[1])

    ports = list(testbed.ports) + [bare_port]
    names = [vm.name for vm in testbed.vms] + ["power710 (bare metal)"]
    clients = [testbed.clients[0], testbed.clients[1], testbed.clients[0]]
    echoes = {id(p): 0 for p in ports}
    for port in ports:
        def serve(message, port=port):
            echoes[id(port)] += 1
            port.send(message.src, 256)
        port.receive_handler = serve
    for client in set(clients):
        client.receive_handler = lambda m: None

    def traffic(env):
        migrating = model.client_of(testbed.vms[1])
        target = model.client_of(testbed.vms[0]).channel
        for round_nr in range(60):
            for port, client in zip(ports, clients):
                client.send(port.mac, 512)
            if round_nr == 20:
                print("  [t=%.1f ms] live-migrating %s to %s ..."
                      % (env.now / 1e6, testbed.vms[1].name, target.name))
                live_migrate(model, migrating, target, downtime_ns=ms(3))
            yield env.timeout(ms(0.5))

    testbed.env.process(traffic(testbed.env))
    testbed.env.run(until=ms(50))

    print("\nPer-client transactions served through ONE I/O hypervisor:")
    for port, name in zip(ports, names):
        print(f"  {name:28s} {echoes[id(port)]:4d} request-responses")

    print("\nMetering interposer accounting (cannot be disabled by any "
          "client):")
    total = sum(meter.bytes_by_src.values())
    print(f"  {len(meter.bytes_by_src)} traffic sources, "
          f"{total / 1024:.0f} KiB metered")

    migrated = model.client_of(testbed.vms[1])
    print(f"\nAfter migration: {testbed.vms[1].name} runs on channel "
          f"{migrated.channel.name!r} with transport mode "
          f"{migrated.transport_mode!r} — its externally visible F address "
          "never changed.")


if __name__ == "__main__":
    main()
