#!/usr/bin/env python3
"""Rack-scale sidecore consolidation: performance AND price (§3, Fig. 16).

Part 1 replays the consolidation performance story: two VMhosts running
filebench's Webserver personality, comparing Elvis (one sidecore per host)
against vRIO (the two sidecores consolidated at an IOhost), with and
without load imbalance + AES-256 interposition.

Part 2 prices the same idea with the paper's Dell R930 configurator data:
the Table 2 rack transforms and the Figure 3 SSD-consolidation sweep.

Run:  python examples/rack_consolidation.py
"""

from repro.cluster import build_consolidation_setup
from repro.costmodel import rack_price_comparison, ssd_consolidation_ratio
from repro.interpose import AesEncryption
from repro.sim import ms
from repro.workloads import WebserverPersonality


def webserver_run(model_name, active_vms, aes=False, **setup_kwargs):
    testbed = build_consolidation_setup(model_name, n_vmhosts=2,
                                        vms_per_host=5, **setup_kwargs)
    if aes:
        for model in testbed.models:
            model.add_interposer(AesEncryption())
    workloads = []
    for i in active_vms:
        vm = testbed.vms[i]
        handle = testbed.attach_ramdisk(vm)
        workloads.append(WebserverPersonality(
            testbed.env, vm, handle, testbed.rng.stream(f"ws{i}"),
            testbed.costs, warmup_ns=ms(2),
            app_dilation=testbed.ports[i].app_dilation))
    testbed.env.run(until=ms(50))
    mbps = sum(w.throughput_mbps() for w in workloads)
    useful = [core.util.useful_fraction() * 100
              for core in testbed.service_cores]
    return mbps, useful


def main() -> None:
    print("=== Consolidation tradeoff: 2 local sidecores => 1 remote ===")
    all_vms = range(10)
    elvis_mbps, elvis_util = webserver_run("elvis", all_vms,
                                           sidecores_per_host=1)
    vrio_mbps, vrio_util = webserver_run("vrio", all_vms, vrio_workers=1)
    base_mbps, _ = webserver_run("baseline", all_vms)
    print(f"  elvis (2 sidecores): {elvis_mbps:8.0f} Mbps, useful "
          f"utilization {elvis_util[0]:.0f}% + {elvis_util[1]:.0f}%")
    print(f"  vrio  (1 sidecore) : {vrio_mbps:8.0f} Mbps "
          f"({vrio_mbps / elvis_mbps - 1:+.1%}), useful utilization "
          f"{vrio_util[0]:.0f}%")
    print(f"  baseline           : {base_mbps:8.0f} Mbps "
          f"({base_mbps / elvis_mbps - 1:+.1%})")
    print("  -> vRIO trades a few percent of throughput for HALF the "
          "sidecores.\n")

    print("=== Load imbalance: same 2-sidecore budget, one hot VMhost, "
          "AES-256 interposition ===")
    hot_vms = range(5)  # only VMhost 0 is active
    elvis_hot, _ = webserver_run("elvis", hot_vms, sidecores_per_host=1,
                                 aes=True)
    vrio_hot, _ = webserver_run("vrio", hot_vms, vrio_workers=2, aes=True)
    print(f"  elvis (1 usable local sidecore) : {elvis_hot:7.0f} Mbps")
    print(f"  vrio  (2 consolidated sidecores): {vrio_hot:7.0f} Mbps "
          f"({vrio_hot / elvis_hot - 1:+.1%})")
    print("  -> consolidated sidecores follow the load; local ones "
          "strand.\n")

    print("=== The price of the same transform (Dell R930 list prices) ===")
    for row in rack_price_comparison():
        print(f"  {row['setup']}: elvis ${row['elvis_price_usd']:,.0f} vs "
              f"vrio ${row['vrio_price_usd']:,.0f} "
              f"({row['diff_percent']:+.1f}%), VMcores "
              f"{row['elvis_vm_cores']} = {row['vrio_vm_cores']}")
    print("\n  SSD consolidation (6-server rack, 6.4TB FusionIO):")
    for v in (6, 3, 1):
        ratio = ssd_consolidation_ratio(6, 6, v, ssd="6.4TB")
        print(f"    6 => {v} drives: vRIO at {ratio:.0%} of the Elvis price")


if __name__ == "__main__":
    main()
