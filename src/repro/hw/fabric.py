"""Composable leaf/spine fabrics for multi-rack topologies.

A :class:`LeafSpineFabric` grows the single rack :class:`Switch` into a
two-tier Clos: one leaf (top-of-rack) switch per rack, ``n_spines``
spine switches, and one trunk link per (leaf, spine) pair.  Each stage
has its own forwarding latency, and all switches learn MACs dynamically
from frame source addresses — the first frame toward a remote rack
floods up through the designated spine, and the response teaches every
switch on the path, after which traffic is unicast.

Oversubscription maps directly to link provisioning: a leaf with ``d``
host-facing downlinks of ``g`` Gbps carries ``d*g`` Gbps of edge
bandwidth, and an oversubscription ratio ``o`` provisions ``d*g / o``
Gbps of aggregate uplink, split evenly across the spines — so each
trunk serializes at ``d*g / (o * n_spines)`` Gbps.  ``o=1`` is a
non-blocking fabric; ``o=4`` is the classic 4:1 edge oversubscription.

Loop freedom without spanning tree: each leaf designates its spine-0
uplink for floods (uplinks to higher spines are ``no_flood`` — blocked
like STP alternate paths, though static entries may still steer unicast
over them); the spine relays a flood to every other leaf; and leaf
split horizon (a flood that arrived on a trunk never leaves on another
trunk) stops the copy from climbing back up.  Every host sees exactly
one copy of a flood, and nothing cycles.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..sim import Environment
from .link import Link, LinkEndpoint
from .switch_fabric import Switch

__all__ = ["LeafSpineFabric", "DEFAULT_TRUNK_PROPAGATION_NS"]

# Inter-rack cable runs are an order of magnitude longer than intra-rack
# patch cables; 2 us is a few hundred meters of fiber plus patch panels.
DEFAULT_TRUNK_PROPAGATION_NS = 2_000


class LeafSpineFabric:
    """A two-tier leaf/spine fabric: ``n_leaves`` racks, ``n_spines``
    spines, one trunk per (leaf, spine) pair.

    Parameters
    ----------
    downlinks_per_leaf / downlink_gbps:
        The edge provisioning each leaf is sized for; with
        ``oversubscription`` they determine the trunk serialization rate
        (see the module docstring for the arithmetic).
    leaf_latency_ns / spine_latency_ns:
        Per-stage store-and-forward latency.
    """

    def __init__(self, env: Environment, n_leaves: int, n_spines: int = 1, *,
                 downlinks_per_leaf: int = 2, downlink_gbps: float = 10.0,
                 oversubscription: float = 1.0,
                 leaf_latency_ns: int = 800, spine_latency_ns: int = 800,
                 trunk_propagation_ns: int = DEFAULT_TRUNK_PROPAGATION_NS,
                 name: str = "fabric") -> None:
        if n_leaves < 1:
            raise ValueError(f"need at least one leaf, got {n_leaves}")
        if n_spines < 1:
            raise ValueError(f"need at least one spine, got {n_spines}")
        if downlinks_per_leaf < 1:
            raise ValueError(
                f"need at least one downlink per leaf, got {downlinks_per_leaf}")
        if oversubscription <= 0:
            raise ValueError(
                f"oversubscription ratio must be positive: {oversubscription}")
        self.env = env
        self.name = name
        self.oversubscription = oversubscription
        self.trunk_gbps = (downlinks_per_leaf * downlink_gbps
                           / (oversubscription * n_spines))
        self.leaves: List[Switch] = [
            Switch(env, f"{name}.leaf{r}", leaf_latency_ns, learning=True)
            for r in range(n_leaves)]
        self.spines: List[Switch] = [
            # All spine ports are trunks; split horizon there would
            # blackhole every flood the spine exists to relay.
            Switch(env, f"{name}.spine{s}", spine_latency_ns, learning=True,
                   split_horizon=False)
            for s in range(n_spines)]
        self.trunk_links: Dict[str, Link] = {}
        self._trunk_ports: Dict[Tuple[int, int], LinkEndpoint] = {}
        # Single-leaf fabrics are a plain ToR switch: no trunks needed,
        # and a spine with one port would blackhole split-horizon floods.
        if n_leaves > 1:
            for r, leaf in enumerate(self.leaves):
                for s, spine in enumerate(self.spines):
                    trunk = Link(env, gbps=self.trunk_gbps,
                                 propagation_ns=trunk_propagation_ns,
                                 name=f"{name}.trunk-r{r}s{s}")
                    self.trunk_links[trunk.name] = trunk
                    # Floods climb only the designated spine-0 uplink.
                    leaf.add_port(trunk, "a", trunk=True, no_flood=(s > 0))
                    spine.add_port(trunk, "b", trunk=True)
                    self._trunk_ports[(r, s)] = trunk.side_a

    # -- wiring ------------------------------------------------------------

    def host_port(self, rack: int, link: Link) -> LinkEndpoint:
        """Attach a host link to rack ``rack``'s leaf; returns the
        host-facing endpoint (the leaf takes ``link.side_a``)."""
        return self.leaves[rack].add_port(link)

    def learn_host(self, rack: int, mac, link: Link) -> None:
        """Statically provision ``mac`` behind a host link on ``rack``'s
        leaf (the builder knows placement; saves the first-frame flood)."""
        self.leaves[rack].learn(mac, link.side_a)

    def trunk_port(self, rack: int, spine: int) -> LinkEndpoint:
        """The leaf-side endpoint of one trunk (for static uplink routes)."""
        return self._trunk_ports[(rack, spine)]

    # -- observation -------------------------------------------------------

    @property
    def switches(self) -> List[Switch]:
        return self.leaves + self.spines

    def counters(self) -> Dict[str, int]:
        """Fabric-wide totals of every per-switch datapath counter."""
        totals = {"ingress": 0, "forwarded": 0, "flooded": 0,
                  "unknown_dst": 0, "filtered": 0}
        for switch in self.switches:
            for key in sorted(totals):
                totals[key] += getattr(switch, key).value
        return totals

    def trunk_tx_bytes(self) -> int:
        """Bytes serialized onto trunks, both directions, all pairs."""
        total = 0
        for trunk_name in sorted(self.trunk_links):
            trunk = self.trunk_links[trunk_name]
            total += trunk.side_a.tx_bytes + trunk.side_b.tx_bytes
        return total

    def check_conservation(self) -> List[str]:
        """Per-switch frame conservation: every ingressed frame must be
        accounted for as a unicast forward, a flood (>=1 copies), or an
        explicitly filtered drop.  Returns violation strings (empty = ok).
        """
        problems: List[str] = []
        for switch in self.switches:
            accounted = (switch.forwarded.value + switch.flood_frames
                         + switch.filtered.value)
            if switch.frames_in != accounted:
                problems.append(
                    f"{switch.name}: {switch.frames_in} frames in but "
                    f"{accounted} accounted "
                    f"(forwarded={switch.forwarded.value} "
                    f"flood_frames={switch.flood_frames} "
                    f"filtered={switch.filtered.value})")
        return problems
