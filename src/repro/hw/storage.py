"""Storage device models: ramdisk, SATA SSD, PCIe SSD.

Every block request has two cost components:

* **CPU cycles** executed on whichever core services the request (the block
  layer software path, plus per-byte copy cost where the datapath copies);
* **device time** spent inside the medium, overlapped across the device's
  queue depth.

A ramdisk has no device time worth modeling — its cost is entirely the CPU
memcpy plus block-layer software, which is exactly why the paper uses it to
"approximate the overhead incurred by vRIO on future, faster I/O devices"
(§5, *Making a Local Device Remote*).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..sim import Counter, Environment, Event, Resource, wire_time_ns

__all__ = [
    "BlockRequest",
    "StorageDevice",
    "make_ramdisk",
    "make_sata_ssd",
    "make_pcie_ssd",
    "SECTOR_BYTES",
]

SECTOR_BYTES = 512

_request_ids = itertools.count(1)


@dataclass
class BlockRequest:
    """One block-layer I/O request."""

    op: str                     # "read" or "write"
    sector: int
    size_bytes: int
    request_id: int = field(default_factory=lambda: next(_request_ids))
    issued_ns: int = 0
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.op not in ("read", "write"):
            raise ValueError(f"unknown block op {self.op!r}")
        if self.size_bytes <= 0:
            raise ValueError(f"request size must be positive: {self.size_bytes}")
        if self.sector < 0:
            raise ValueError(f"negative sector: {self.sector}")

    @property
    def sectors(self) -> int:
        return -(-self.size_bytes // SECTOR_BYTES)

    def is_sector_aligned(self) -> bool:
        return self.size_bytes % SECTOR_BYTES == 0


class StorageDevice:
    """A block device with a bounded hardware queue.

    Parameters
    ----------
    latency_ns:
        Fixed per-request device latency (seek/flash access).
    bandwidth_gbps:
        Media transfer rate; transfer time is size-proportional.
    queue_depth:
        Number of requests the device services concurrently.
    cpu_cycles_per_request / cpu_cycles_per_byte:
        Software cost the *servicing core* must execute per request (block
        layer, and memcpy where the path copies).
    """

    def __init__(self, env: Environment, name: str, latency_ns: int,
                 bandwidth_gbps: float, queue_depth: int,
                 cpu_cycles_per_request: int, cpu_cycles_per_byte: float,
                 capacity_bytes: int = 1 << 30) -> None:
        if queue_depth <= 0:
            raise ValueError(f"queue depth must be positive: {queue_depth}")
        if latency_ns < 0:
            raise ValueError(f"negative latency: {latency_ns}")
        self.env = env
        self.name = name
        self.latency_ns = latency_ns
        self.bandwidth_gbps = bandwidth_gbps
        self.cpu_cycles_per_request = cpu_cycles_per_request
        self.cpu_cycles_per_byte = cpu_cycles_per_byte
        self.capacity_bytes = capacity_bytes
        self._queue = Resource(env, capacity=queue_depth)
        # Access latencies overlap across the queue, but the media streams
        # bytes serially: aggregate throughput is capped at the bandwidth.
        self._media = Resource(env, capacity=1)
        self.reads = Counter(f"{name}.reads")
        self.writes = Counter(f"{name}.writes")
        self.bytes_read = Counter(f"{name}.bytes_read")
        self.bytes_written = Counter(f"{name}.bytes_written")
        self.errors = Counter(f"{name}.errors")
        self._error_until_ns = -1

    # -- fault injection: media error bursts --------------------------------

    def set_error_window(self, until_ns: int) -> None:
        """Until ``until_ns``, requests complete with a media error.

        Erroring requests still pass through the queue and media (so the
        servicing back-end never wedges waiting on them); they are tagged
        ``meta["device_error"]`` on completion instead of carrying data.
        """
        self._error_until_ns = until_ns

    @property
    def error_active(self) -> bool:
        return self.env.now < self._error_until_ns

    def cpu_cycles(self, request: BlockRequest) -> int:
        """Software cycles the servicing core pays for this request."""
        return int(self.cpu_cycles_per_request
                   + self.cpu_cycles_per_byte * request.size_bytes)

    def device_time_ns(self, request: BlockRequest) -> int:
        transfer = 0
        if self.bandwidth_gbps > 0:
            transfer = wire_time_ns(request.size_bytes, self.bandwidth_gbps)
        return self.latency_ns + transfer

    def submit(self, request: BlockRequest) -> Event:
        """Start the device-side portion; event triggers at media completion.

        The caller is responsible for separately executing
        :meth:`cpu_cycles` on its core (the split lets back-ends charge the
        software cost to the right sidecore/vhost core).
        """
        if request.sector * SECTOR_BYTES + request.size_bytes > self.capacity_bytes:
            raise ValueError(
                f"request beyond device capacity: sector {request.sector} "
                f"size {request.size_bytes} on {self.name}")
        done = self.env.event()
        self.env.process(self._service(request, done),
                         name=f"storage:{self.name}")
        return done

    def _service(self, request: BlockRequest,
                 done: Event) -> Generator[Event, Any, None]:
        grant = self._queue.request()
        yield grant
        if self.latency_ns:
            yield self.env.timeout(self.latency_ns)
        if self.bandwidth_gbps > 0:
            yield self._media.request()
            yield self.env.timeout(wire_time_ns(request.size_bytes,
                                                self.bandwidth_gbps))
            self._media.release()
        self._queue.release()
        if self.error_active:
            request.meta["device_error"] = True
            self.errors.add()
        if request.op == "read":
            self.reads.add()
            self.bytes_read.add(request.size_bytes)
        else:
            self.writes.add()
            self.bytes_written.add(request.size_bytes)
        done.succeed(request)


def make_ramdisk(env: Environment, name: str = "ramdisk",
                 capacity_bytes: int = 1 << 30) -> StorageDevice:
    """A DRAM-backed block device: no media latency, CPU memcpy dominates.

    ~0.45 cycles/byte models a cached memcpy; the 5.6 K-cycle request cost
    is the host-side block service path.
    """
    return StorageDevice(env, name, latency_ns=4_000, bandwidth_gbps=100.0,
                         queue_depth=64, cpu_cycles_per_request=5_600,
                         cpu_cycles_per_byte=0.45,
                         capacity_bytes=capacity_bytes)


def make_sata_ssd(env: Environment, name: str = "sata-ssd",
                  capacity_bytes: int = 256 << 30) -> StorageDevice:
    """A 2013-era SATA SSD: ~80 us access, ~4 Gbps media."""
    return StorageDevice(env, name, latency_ns=80_000, bandwidth_gbps=4.0,
                         queue_depth=32, cpu_cycles_per_request=11_000,
                         cpu_cycles_per_byte=0.1,
                         capacity_bytes=capacity_bytes)


def make_pcie_ssd(env: Environment, name: str = "pcie-ssd",
                  capacity_bytes: int = 3200 * 10 ** 9) -> StorageDevice:
    """A FusionIO SX300-class PCIe SSD: ~20 us access, 21.6 Gbps media."""
    return StorageDevice(env, name, latency_ns=20_000, bandwidth_gbps=21.6,
                         queue_depth=128, cpu_cycles_per_request=10_000,
                         cpu_cycles_per_byte=0.1,
                         capacity_bytes=capacity_bytes)
