"""Hardware models: cores, links, NICs, switches, storage devices."""

from .cpu import Core, CpuSocket
from .link import Link, LinkEndpoint
from .nic import DEFAULT_RX_RING, VRIO_TUNED_RX_RING, Nic, NicFunction
from .storage import (
    SECTOR_BYTES,
    BlockRequest,
    StorageDevice,
    make_pcie_ssd,
    make_ramdisk,
    make_sata_ssd,
)
from .fabric import DEFAULT_TRUNK_PROPAGATION_NS, LeafSpineFabric
from .switch_fabric import Switch, UnknownDestinationError

__all__ = [
    "Core", "CpuSocket",
    "Link", "LinkEndpoint",
    "Nic", "NicFunction", "DEFAULT_RX_RING", "VRIO_TUNED_RX_RING",
    "Switch", "UnknownDestinationError",
    "LeafSpineFabric", "DEFAULT_TRUNK_PROPAGATION_NS",
    "BlockRequest", "StorageDevice", "SECTOR_BYTES",
    "make_ramdisk", "make_sata_ssd", "make_pcie_ssd",
]
