"""Point-to-point Ethernet links.

A :class:`Link` is full-duplex: each direction is an independent
:class:`_Channel` with FIFO serialization at the link rate plus a fixed
propagation delay.  Optional random loss models an unreliable fabric for the
§4.5 retransmission experiments.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Generator, Optional, Tuple

from ..sim import Environment, Event, Store, wire_time_ns
from ..net.frame import EthernetFrame

__all__ = ["Link", "LinkEndpoint"]


class _Channel:
    """One direction of a link: serialize, propagate, deliver."""

    def __init__(self, env: Environment, gbps: float, propagation_ns: int,
                 loss_probability: float, rng: Optional[random.Random]) -> None:
        self.env = env
        self.gbps = gbps
        self.propagation_ns = propagation_ns
        self.loss_probability = loss_probability
        self.rng = rng
        self.down = False
        self.deliver: Optional[Callable[[EthernetFrame], None]] = None
        self.frames_sent = 0
        self.frames_dropped = 0
        self.bytes_sent = 0
        self._queue: Store = Store(env)
        env.process(self._pump(), name="link-channel")

    def send(self, frame: EthernetFrame) -> None:
        self._queue.try_put(frame)

    def _pump(self) -> Generator[Event, Any, None]:
        env = self.env
        while True:
            frame = yield self._queue.get()
            yield env.timeout(wire_time_ns(frame.wire_bytes, self.gbps))
            self.frames_sent += 1
            self.bytes_sent += frame.wire_bytes
            if self.down:
                self.frames_dropped += 1
                continue
            if (self.loss_probability > 0.0 and self.rng is not None
                    and self.rng.random() < self.loss_probability):
                self.frames_dropped += 1
                continue
            env.call_soon(self._arrive(frame), delay=self.propagation_ns)

    def _arrive(self, frame: EthernetFrame) -> Callable[[], None]:
        def deliver() -> None:
            if self.deliver is None:
                raise RuntimeError("link channel has no receiver attached")
            self.deliver(frame)
        return deliver


class LinkEndpoint:
    """One end of a link: transmit here, receive via an attached callback."""

    def __init__(self, tx_channel: _Channel, rx_channel: _Channel,
                 name: str = "") -> None:
        self._tx = tx_channel
        self._rx = rx_channel
        self.name = name

    @property
    def gbps(self) -> float:
        return self._tx.gbps

    def transmit(self, frame: EthernetFrame) -> None:
        """Queue a frame for serialization onto the wire."""
        self._tx.send(frame)

    def attach_receiver(self, deliver: Callable[[EthernetFrame], None]) -> None:
        """Set the callback invoked for every frame arriving at this end."""
        self._rx.deliver = deliver

    @property
    def tx_frames(self) -> int:
        return self._tx.frames_sent

    @property
    def tx_bytes(self) -> int:
        return self._tx.bytes_sent

    @property
    def tx_dropped(self) -> int:
        return self._tx.frames_dropped


class Link:
    """A full-duplex point-to-point Ethernet cable.

    Parameters
    ----------
    gbps:
        Line rate of each direction.
    propagation_ns:
        One-way propagation plus PHY latency.
    loss_probability:
        Independent per-frame drop probability (0 = reliable).
    """

    def __init__(self, env: Environment, gbps: float = 10.0,
                 propagation_ns: int = 500, loss_probability: float = 0.0,
                 rng: Optional[random.Random] = None, name: str = "") -> None:
        if gbps <= 0:
            raise ValueError(f"link rate must be positive, got {gbps}")
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError(f"loss probability out of range: {loss_probability}")
        if loss_probability > 0.0 and rng is None:
            raise ValueError("lossy link requires an RNG stream")
        self.name = name
        forward = _Channel(env, gbps, propagation_ns, loss_probability, rng)
        backward = _Channel(env, gbps, propagation_ns, loss_probability, rng)
        self._forward = forward
        self._backward = backward
        self._initial = (loss_probability, rng)
        self.side_a = LinkEndpoint(forward, backward, name=f"{name}/a")
        self.side_b = LinkEndpoint(backward, forward, name=f"{name}/b")

    @property
    def endpoints(self) -> Tuple[LinkEndpoint, LinkEndpoint]:
        return self.side_a, self.side_b

    @property
    def down(self) -> bool:
        return self._forward.down

    @property
    def frames_dropped(self) -> int:
        return self._forward.frames_dropped + self._backward.frames_dropped

    # -- runtime fault state (degradation windows, blackouts) ---------------

    def set_loss(self, probability: float,
                 rng: Optional[random.Random] = None) -> None:
        """Degrade both directions to the given per-frame drop probability.

        The construction-time invariants hold here too: probabilities live
        in [0, 1) and a nonzero probability needs an RNG (pass one, or rely
        on the RNG the link was built with).
        """
        if not 0.0 <= probability < 1.0:
            raise ValueError(f"loss probability out of range: {probability}")
        for channel in (self._forward, self._backward):
            if rng is not None:
                channel.rng = rng
            if probability > 0.0 and channel.rng is None:
                raise ValueError("lossy link requires an RNG stream")
            channel.loss_probability = probability

    def set_down(self, down: bool = True) -> None:
        """Blackout: drop every frame in both directions until restored."""
        self._forward.down = down
        self._backward.down = down

    def restore(self) -> None:
        """Clear any fault state back to the construction-time behaviour."""
        loss, rng = self._initial
        for channel in (self._forward, self._backward):
            channel.down = False
            channel.loss_probability = loss
            channel.rng = rng
