"""A rack top-of-rack Ethernet switch.

Store-and-forward with a fixed forwarding latency and a MAC table that is
either static (hosts register the MACs reachable behind each port) or
dynamically learned from frame source addresses (``learning=True``, the
multi-rack fabric configuration).  Egress contention is emergent:
forwarded frames queue on the egress link's serializer.

Frames whose destination MAC has no table entry are *flooded* to every
eligible port except the ingress — real L2 behaviour, and the failure
signal a mis-wired fabric needs (a silent drop blackholes traffic with
nothing but a counter).  ``strict=True`` turns an unlearned destination
into an immediate :class:`UnknownDestinationError` instead, for
topologies whose MAC tables are fully provisioned up front.

Two fabric-specific port attributes keep a two-tier leaf/spine fabric
loop-free without modelling spanning tree:

* ``trunk`` ports connect switches; on a split-horizon switch (the
  default — the leaf role) a frame that ingressed on a trunk is never
  flooded back out another trunk, so floods fan out down the tree but
  never cycle back up.  Spines are built with ``split_horizon=False``:
  every spine port is a trunk, and a spine's whole job is to relay a
  leaf's flood to the other leaves, whose own split horizon then stops
  the loop;
* ``no_flood`` marks redundant trunks (a leaf's uplinks to spines past
  the designated one) as blocked for flooding, the way spanning tree
  blocks redundant paths, while learned/static entries may still steer
  unicast traffic over them.

The egress path batches same-timestamp forwards to one port into a
single scheduled callback (one :class:`_EgressFlush` per ``(port, due)``
pair, recycled through a small freelist) instead of one ``call_soon``
closure per frame — fabric stages sit on the engine hot path, and the
per-frame lambda allocation dominated it.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Set, Tuple

from ..sim import Counter, Environment
from ..net.frame import EthernetFrame, MacAddress
from .link import Link, LinkEndpoint

__all__ = ["Switch", "UnknownDestinationError"]

# Recycled egress-flush callables per switch; deeper pools just hold
# garbage alive (a flush frees at its due time, so the live population is
# bounded by distinct (port, due) pairs in one forwarding window).
_FLUSH_POOL_LIMIT = 64


class UnknownDestinationError(RuntimeError):
    """A strict-mode switch saw a frame for an unlearned MAC."""


class _EgressFlush:
    """One scheduled egress batch: every frame forwarded to one port at
    one due time, transmitted by a single engine callback."""

    __slots__ = ("switch", "port", "due", "frames")

    def __init__(self, switch: "Switch") -> None:
        self.switch = switch
        self.port: LinkEndpoint = None  # type: ignore[assignment]
        self.due = 0
        self.frames: List[EthernetFrame] = []

    def __call__(self) -> None:
        switch = self.switch
        del switch._pending[(self.port, self.due)]
        transmit = self.port.transmit
        for frame in self.frames:
            transmit(frame)
        self.frames.clear()
        self.port = None  # type: ignore[assignment]
        pool = switch._flush_pool
        if len(pool) < _FLUSH_POOL_LIMIT:
            pool.append(self)


class Switch:
    """An N-port switch; create ports with :meth:`add_port`."""

    def __init__(self, env: Environment, name: str = "switch",
                 forwarding_latency_ns: int = 800, *,
                 learning: bool = False, strict: bool = False,
                 split_horizon: bool = True) -> None:
        if learning and strict:
            raise ValueError(
                f"{name}: strict mode presumes a fully provisioned MAC "
                "table; it cannot be combined with dynamic learning")
        self.env = env
        self.name = name
        self.forwarding_latency_ns = forwarding_latency_ns
        self.learning = learning
        self.strict = strict
        self.split_horizon = split_horizon
        self._ports: List[LinkEndpoint] = []
        self._trunks: Set[LinkEndpoint] = set()
        self._no_flood: Set[LinkEndpoint] = set()
        self._mac_table: Dict[MacAddress, LinkEndpoint] = {}
        self._pending: Dict[Tuple[LinkEndpoint, int], _EgressFlush] = {}
        self._flush_pool: List[_EgressFlush] = []
        self.ingress = Counter(f"{name}.ingress")
        self.forwarded = Counter(f"{name}.forwarded")
        self.unknown_dst = Counter(f"{name}.unknown_dst")
        self.flooded = Counter(f"{name}.flooded")
        self.filtered = Counter(f"{name}.filtered")
        # Frames (not copies) that flooded to >= 1 port; closes the
        # conservation identity frames_in == forwarded + flood_frames
        # + filtered, which `flooded` (a copy count) cannot.
        self._flood_frames = 0

    def add_port(self, link: Link, side: str = "a", *,
                 trunk: bool = False, no_flood: bool = False) -> LinkEndpoint:
        """Attach the switch to one side of ``link`` (default ``side_a``);
        returns the far endpoint for the device on the other end.

        ``trunk`` marks a switch-to-switch port (split-horizon flooding);
        ``no_flood`` blocks the port for floods (redundant uplinks).
        """
        if side == "a":
            port, far = link.side_a, link.side_b
        elif side == "b":
            port, far = link.side_b, link.side_a
        else:
            raise ValueError(f"side must be 'a' or 'b', got {side!r}")
        port.attach_receiver(partial(self._ingress_frame, port))
        self._ports.append(port)
        if trunk:
            self._trunks.add(port)
        if no_flood:
            self._no_flood.add(port)
        return far

    def learn(self, mac: MacAddress, port: LinkEndpoint) -> None:
        """Statically map ``mac`` to a switch port."""
        if port not in self._ports:
            raise ValueError(f"{port.name} is not a port of {self.name}")
        self._mac_table[mac] = port

    @property
    def ports(self) -> List[LinkEndpoint]:
        return list(self._ports)

    def is_trunk(self, port: LinkEndpoint) -> bool:
        return port in self._trunks

    @property
    def frames_in(self) -> int:
        """Frames this switch ingressed (conservation bookkeeping)."""
        return self.ingress.value

    @property
    def frames_out(self) -> int:
        """Egress copies emitted: unicast forwards plus flood copies."""
        return self.forwarded.value + self.flooded.value

    @property
    def frames_dropped(self) -> int:
        """Frames that produced no egress copy: hairpin-filtered frames
        plus unknown-destination frames with no eligible flood port."""
        return self.filtered.value

    @property
    def flood_frames(self) -> int:
        """Ingress frames that were flooded to at least one port."""
        return self._flood_frames

    def _ingress_frame(self, in_port: LinkEndpoint,
                       frame: EthernetFrame) -> None:
        self.ingress.add()
        if self.learning:
            self._mac_table[frame.src] = in_port
        out_port = self._mac_table.get(frame.dst)
        if out_port is None:
            self.unknown_dst.add()
            if self.strict:
                raise UnknownDestinationError(
                    f"{self.name}: no MAC table entry for {frame.dst!r} "
                    f"(frame from {frame.src!r} on {in_port.name})")
            self._flood(in_port, frame)
            return
        if out_port is in_port:
            # Destination is behind the ingress port: filter, no hairpin.
            self.filtered.add()
            return
        self.forwarded.add()
        self._forward(out_port, frame)

    def _flood(self, in_port: LinkEndpoint, frame: EthernetFrame) -> None:
        """Real L2: copy the frame to every eligible port except ingress.

        Split horizon for the two-tier fabric (leaf role only): a frame
        that arrived on a trunk never goes back out another trunk, and
        ``no_flood`` ports (blocked redundant uplinks) never carry
        floods at all.
        """
        from_trunk = self.split_horizon and in_port in self._trunks
        copies = 0
        for port in self._ports:
            if port is in_port or port in self._no_flood:
                continue
            if from_trunk and port in self._trunks:
                continue
            self._forward(port, frame)
            copies += 1
        if copies:
            self.flooded.add(copies)
            self._flood_frames += 1
        else:
            self.filtered.add()

    def _forward(self, out_port: LinkEndpoint, frame: EthernetFrame) -> None:
        due = self.env.now + self.forwarding_latency_ns
        key = (out_port, due)
        flush = self._pending.get(key)
        if flush is None:
            pool = self._flush_pool
            flush = pool.pop() if pool else _EgressFlush(self)
            flush.port = out_port
            flush.due = due
            self._pending[key] = flush
            self.env.call_soon(flush, delay=self.forwarding_latency_ns)
        flush.frames.append(frame)
