"""A rack top-of-rack Ethernet switch.

Store-and-forward with a fixed forwarding latency and a static MAC table
(hosts register the MACs reachable behind each port).  Egress contention is
emergent: forwarded frames queue on the egress link's serializer.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim import Counter, Environment
from ..net.frame import EthernetFrame, MacAddress
from .link import Link, LinkEndpoint

__all__ = ["Switch"]


class Switch:
    """An N-port switch; create ports with :meth:`add_port`."""

    def __init__(self, env: Environment, name: str = "switch",
                 forwarding_latency_ns: int = 800) -> None:
        self.env = env
        self.name = name
        self.forwarding_latency_ns = forwarding_latency_ns
        self._ports: List[LinkEndpoint] = []
        self._mac_table: Dict[MacAddress, LinkEndpoint] = {}
        self.forwarded = Counter(f"{name}.forwarded")
        self.unknown_dst = Counter(f"{name}.unknown_dst")

    def add_port(self, link: Link) -> LinkEndpoint:
        """Attach the switch to ``link.side_a``; returns the host-facing
        ``side_b`` endpoint for the device on the other end."""
        port = link.side_a
        port.attach_receiver(lambda frame, p=port: self._ingress(p, frame))
        self._ports.append(port)
        return link.side_b

    def learn(self, mac: MacAddress, port: LinkEndpoint) -> None:
        """Statically map ``mac`` to a switch port."""
        if port not in self._ports:
            raise ValueError(f"{port.name} is not a port of {self.name}")
        self._mac_table[mac] = port

    def _ingress(self, in_port: LinkEndpoint, frame: EthernetFrame) -> None:
        out_port = self._mac_table.get(frame.dst)
        if out_port is None:
            self.unknown_dst.add()
            return
        self.forwarded.add()
        self.env.call_soon(lambda: out_port.transmit(frame),
                           delay=self.forwarding_latency_ns)
