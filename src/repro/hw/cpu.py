"""CPU core models.

A :class:`Core` is a serving resource that executes *work items* measured in
cycles.  All latency/throughput contention on the compute side of the
reproduction is emergent from cores serving their FIFO run queues.

Two details matter for the paper:

* **Cycle accounting by tag** — Figure 10 reports cycles-per-packet broken
  down by I/O model; every ``execute()`` call carries a tag and the core
  accumulates cycles per tag, so experiments can divide by packet counts.
* **Polling semantics** — a sidecore in poll mode is 100% *busy* even when
  it has nothing to do (Figure 15).  A poll-mode core accounts idle spans as
  busy-but-useless time, and charges a small dispatch latency when work
  arrives while it was spinning (the poll loop notices new work only at its
  next iteration).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Generator, Optional, Tuple

from ..sim import Environment, Event, UtilizationTracker

__all__ = ["Core", "CpuSocket"]


class Core:
    """A single CPU core serving cycle-denominated work items in FIFO order.

    Parameters
    ----------
    env:
        Simulation environment.
    name:
        Diagnostic name, e.g. ``"vmhost0/core3"``.
    ghz:
        Clock frequency; ``cycles / ghz`` nanoseconds per work item.
    poll_mode:
        If True the core spins when idle (sidecore semantics): idle time is
        accounted as busy-but-useless, and newly arriving work pays
        ``poll_dispatch_ns`` before service begins.
    poll_dispatch_ns:
        Mean delay for the poll loop to notice new work on an idle core.
    """

    IDLE_POLICIES = ("halt", "poll", "mwait")

    # Per-core power draw (W).  A spinning poll loop burns nearly as much
    # as real work; monitor/mwait parks the core cheaply (§4.6 Energy).
    BUSY_WATTS = 18.0
    POLL_IDLE_WATTS = 16.5
    MWAIT_IDLE_WATTS = 3.5
    HALT_IDLE_WATTS = 5.0

    # How long an idle core takes to notice new work, per policy.  Halted
    # cores wake via interrupts, whose latency the IRQ cost paths already
    # model, so "halt" adds nothing here.
    _WAKEUP_NS = {"halt": 0, "poll": 150, "mwait": 1_500}

    def __init__(self, env: Environment, name: str, ghz: float,
                 poll_mode: bool = False, poll_dispatch_ns: int = 150,
                 idle_policy: Optional[str] = None) -> None:
        if ghz <= 0:
            raise ValueError(f"core frequency must be positive, got {ghz}")
        if idle_policy is None:
            idle_policy = "poll" if poll_mode else "halt"
        if idle_policy not in self.IDLE_POLICIES:
            raise ValueError(f"idle policy must be one of "
                             f"{self.IDLE_POLICIES}, got {idle_policy!r}")
        self.env = env
        self.name = name
        self.ghz = ghz
        self.idle_policy = idle_policy
        self.poll_mode = idle_policy == "poll"
        self.poll_dispatch_ns = (poll_dispatch_ns if self.poll_mode
                                 else self._WAKEUP_NS[idle_policy])
        self.util = UtilizationTracker(env)
        self.cycles_by_tag: Dict[str, int] = {}
        self.total_cycles = 0
        self.busy = False
        self._high: Deque[Tuple[int, bool, str, Event]] = deque()
        self._normal: Deque[Tuple[int, bool, str, Event]] = deque()
        self._idle_wakeup: Optional[Event] = None
        env.process(self._serve(), name=f"core:{name}")

    # -- public API ---------------------------------------------------------

    def ns_for(self, cycles: int) -> int:
        """Wall time in ns to execute ``cycles`` on this core."""
        return max(0, int(round(cycles / self.ghz)))

    def execute(self, cycles: int, useful: bool = True, tag: str = "work",
                high_priority: bool = False) -> Event:
        """Enqueue ``cycles`` of work; returns an event for its completion."""
        if cycles < 0:
            raise ValueError(f"negative cycle count: {cycles}")
        done = self.env.event()
        item = (cycles, useful, tag, done)
        if high_priority:
            self._high.append(item)
        else:
            self._normal.append(item)
        if self._idle_wakeup is not None and not self._idle_wakeup.triggered:
            self._idle_wakeup.succeed()
        return done

    def stall(self, duration_ns: int) -> Event:
        """Occupy the core with non-useful work for ~``duration_ns``.

        Fault-injection hook: models a hypervisor-level hiccup (SMI, host
        scheduler preemption) pinning the core.  Queued at high priority so
        the stall starts as soon as the in-flight work item finishes;
        pending useful work waits behind it.
        """
        if duration_ns < 0:
            raise ValueError(f"negative stall duration: {duration_ns}")
        cycles = int(round(duration_ns * self.ghz))
        return self.execute(cycles, useful=False, tag="stall",
                            high_priority=True)

    @property
    def queue_length(self) -> int:
        return len(self._high) + len(self._normal)

    def energy_joules(self) -> float:
        """Energy consumed so far under this core's idle policy.

        Useful work always burns ``BUSY_WATTS``; what idle costs depends
        on the policy — a polling sidecore's idle is indistinguishable
        from work to the power supply, an mwait'ed core naps cheaply.
        """
        total_ns = self.env.now - 0
        busy_ns = self.util.busy_ns
        useful_ns = self.util.useful_ns
        idle_ns = total_ns - busy_ns
        spin_ns = busy_ns - useful_ns  # poll-mode idle accounted as busy
        idle_watts = {"halt": self.HALT_IDLE_WATTS,
                      "poll": self.POLL_IDLE_WATTS,
                      "mwait": self.MWAIT_IDLE_WATTS}[self.idle_policy]
        joules_ns = (useful_ns * self.BUSY_WATTS
                     + spin_ns * self.POLL_IDLE_WATTS
                     + idle_ns * idle_watts)
        return joules_ns * 1e-9

    # -- server loop ---------------------------------------------------------

    def _serve(self) -> Generator[Event, Any, None]:
        env = self.env
        while True:
            if not self._high and not self._normal:
                idle_start = env.now
                self._idle_wakeup = env.event()
                yield self._idle_wakeup
                self._idle_wakeup = None
                if self.poll_mode:
                    # The spinning poll loop burned the whole idle span.
                    self.util.account(env.now - idle_start, useful=False)
                if self.poll_dispatch_ns:
                    # Poll-loop notice latency, or mwait wakeup latency.
                    yield env.timeout(self.poll_dispatch_ns)
                    if self.poll_mode:
                        self.util.account(self.poll_dispatch_ns,
                                          useful=False)
            queue = self._high if self._high else self._normal
            cycles, useful, tag, done = queue.popleft()
            self.busy = True
            duration = self.ns_for(cycles)
            if duration:
                yield env.timeout(duration)
            self.util.account(duration, useful=useful)
            self.total_cycles += cycles
            self.cycles_by_tag[tag] = self.cycles_by_tag.get(tag, 0) + cycles
            self.busy = self.queue_length > 0
            done.succeed()


class CpuSocket:
    """A group of same-frequency cores (one physical CPU package)."""

    def __init__(self, env: Environment, name: str, core_count: int,
                 ghz: float) -> None:
        if core_count <= 0:
            raise ValueError(f"core count must be positive, got {core_count}")
        self.name = name
        self.ghz = ghz
        self.cores = [Core(env, f"{name}/core{i}", ghz)
                      for i in range(core_count)]

    def __len__(self) -> int:
        return len(self.cores)

    def __getitem__(self, index: int) -> Core:
        return self.cores[index]
