"""NIC models with SRIOV virtual functions, rings, and notification modes.

A physical :class:`Nic` attaches to one link endpoint and demultiplexes
arriving frames by destination MAC onto its *functions* — the physical
function (PF) or SRIOV virtual functions (VFs).  Each function owns an Rx
ring and a notification mode:

* ``poll``    — no notifications; a consumer (sidecore worker) pulls frames
  from the ring.  This is how the vRIO I/O hypervisor drives its NICs.
* ``interrupt`` — arrival fires ``on_notify`` (host interrupt); coalesced
  while unserviced.  This is how Elvis and the baseline drive the physical
  device.
* ``eli``     — arrival fires ``on_notify`` standing in for an exitless
  interrupt delivered straight to the guest (SRIOV+ELI, and the vRIO
  channel at the VMhost).

Ring overflow drops frames and counts them — the §4.5 "loss in the wild"
that vRIO's block retransmission layer must recover from (the paper's fix
was growing the channel Rx ring from 512 to 4096 descriptors).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..sim import Counter, Environment, Store, wire_time_ns
from ..net.frame import EthernetFrame, MacAddress
from .link import LinkEndpoint

__all__ = ["Nic", "NicFunction", "DEFAULT_RX_RING", "VRIO_TUNED_RX_RING"]

DEFAULT_RX_RING = 512
VRIO_TUNED_RX_RING = 4096

_NOTIFY_MODES = ("poll", "interrupt", "eli")

# Fixed DMA/PCIe latency for a frame to land in host memory and become
# visible, and for a transmit doorbell to reach the wire.
_DMA_LATENCY_NS = 300


class NicFunction:
    """A PF or SRIOV VF: MAC identity, Rx ring, notification policy."""

    def __init__(self, env: Environment, nic: "Nic", name: str,
                 mac: Optional[MacAddress] = None,
                 rx_ring_size: int = DEFAULT_RX_RING,
                 notify_mode: str = "poll") -> None:
        if notify_mode not in _NOTIFY_MODES:
            raise ValueError(
                f"notify mode must be one of {_NOTIFY_MODES}, got {notify_mode!r}")
        if rx_ring_size <= 0:
            raise ValueError(f"rx ring size must be positive: {rx_ring_size}")
        self.env = env
        self.nic = nic
        self.name = name
        self.mac = mac if mac is not None else MacAddress(name)
        self.rx_ring: Store = Store(env, capacity=rx_ring_size)
        self.notify_mode = notify_mode
        self.on_notify: Optional[Callable[[], None]] = None
        self.on_tx_complete: Optional[Callable[[], None]] = None
        self.rx_frames = Counter(f"{name}.rx_frames")
        self.rx_dropped = Counter(f"{name}.rx_dropped")
        self.tx_frames = Counter(f"{name}.tx_frames")
        self.tx_dropped = Counter(f"{name}.tx_dropped")
        self.notifications = Counter(f"{name}.notifications")
        self.coalesced = Counter(f"{name}.coalesced")
        self._armed = True
        self.failed = False

    # -- fault injection -----------------------------------------------------

    def fail(self) -> None:
        """Take the function out of service: drop all rx and tx traffic."""
        self.failed = True

    def restore(self) -> None:
        """Return the function to service (ring contents survive)."""
        self.failed = False

    # -- receive path -------------------------------------------------------

    def deliver(self, frame: EthernetFrame) -> None:
        """Called by the owning NIC when a frame for this MAC arrives."""
        if self.failed:
            self.rx_dropped.add()
            return
        if not self.rx_ring.try_put(frame):
            self.rx_dropped.add()
            return
        self.rx_frames.add()
        if self.notify_mode != "poll":
            self._maybe_notify()

    def _maybe_notify(self) -> None:
        if self.on_notify is None:
            return
        if not self._armed:
            self.coalesced.add()
            return
        self._armed = False
        self.notifications.add()
        # Interrupt delivery is not instantaneous: model DMA + IRQ latency.
        self.env.call_soon(self.on_notify, delay=_DMA_LATENCY_NS)

    def rearm(self) -> None:
        """Re-enable notifications after servicing (EOI semantics).

        If frames arrived while masked, fire again immediately so none are
        stranded in the ring.
        """
        self._armed = True
        if self.notify_mode != "poll" and len(self.rx_ring):
            self._maybe_notify()

    # -- transmit path ------------------------------------------------------

    def transmit(self, frame: EthernetFrame,
                 completion_interrupt: bool = False) -> None:
        """Hand a frame to the NIC for transmission.

        With ``completion_interrupt`` the function fires ``on_tx_complete``
        once the frame has left the wire — the physical-device interrupt
        that Elvis and the baseline pay on every send (Table 3).
        """
        if self.failed:
            self.tx_dropped.add()
            return
        frame.src = self.mac
        self.tx_frames.add()
        self.nic.send(frame)
        if completion_interrupt and self.on_tx_complete is not None:
            delay = (_DMA_LATENCY_NS
                     + wire_time_ns(frame.wire_bytes, self.nic.gbps))
            self.env.call_soon(self.on_tx_complete, delay=delay)


class Nic:
    """A physical NIC port: link attachment plus MAC demux to functions."""

    def __init__(self, env: Environment, name: str,
                 endpoint: Optional[LinkEndpoint] = None) -> None:
        self.env = env
        self.name = name
        self._endpoint: Optional[LinkEndpoint] = None
        self._functions: Dict[MacAddress, NicFunction] = {}
        self.unknown_dst = Counter(f"{name}.unknown_dst")
        if endpoint is not None:
            self.attach(endpoint)

    def attach(self, endpoint: LinkEndpoint) -> None:
        if self._endpoint is not None:
            raise RuntimeError(f"NIC {self.name} already attached to a link")
        self._endpoint = endpoint
        endpoint.attach_receiver(self._demux)

    @property
    def endpoint(self) -> Optional[LinkEndpoint]:
        """The attached link endpoint, or None while unwired."""
        return self._endpoint

    @property
    def gbps(self) -> float:
        if self._endpoint is None:
            raise RuntimeError(f"NIC {self.name} is not attached to a link")
        return self._endpoint.gbps

    @property
    def functions(self) -> List[NicFunction]:
        return [self._functions[mac]
                for mac in sorted(self._functions, key=lambda m: m.value)]

    def create_function(self, name: str, mac: Optional[MacAddress] = None,
                        rx_ring_size: int = DEFAULT_RX_RING,
                        notify_mode: str = "poll") -> NicFunction:
        """Create a PF/VF on this port (SRIOV self-virtualization)."""
        fn = NicFunction(self.env, self, f"{self.name}/{name}", mac,
                         rx_ring_size, notify_mode)
        self._functions[fn.mac] = fn
        return fn

    def send(self, frame: EthernetFrame) -> None:
        if self._endpoint is None:
            raise RuntimeError(f"NIC {self.name} is not attached to a link")
        self._endpoint.transmit(frame)

    def _demux(self, frame: EthernetFrame) -> None:
        fn = self._functions.get(frame.dst)
        if fn is None:
            self.unknown_dst.add()
            return
        fn.deliver(frame)
