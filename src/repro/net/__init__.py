"""Ethernet substrate: frames, MACs, segmentation/TSO/reassembly."""

from .frame import (
    ETHERNET_HEADER_BYTES,
    FAKE_TCPIP_HEADER_BYTES,
    JUMBO_MTU_MAX,
    JUMBO_MTU_VRIO,
    STANDARD_MTU,
    VRIO_HEADER_BYTES,
    EthernetFrame,
    MacAddress,
)
from .segmentation import (
    PAGE_BYTES,
    SKB_MAX_FRAGMENTS,
    TSO_MAX_BYTES,
    ReassemblyBuffer,
    ReassemblyError,
    Segment,
    pages_for_fragment,
    reassembly_is_zero_copy,
    segment_sizes,
)

__all__ = [
    "EthernetFrame", "MacAddress",
    "ETHERNET_HEADER_BYTES", "VRIO_HEADER_BYTES", "FAKE_TCPIP_HEADER_BYTES",
    "STANDARD_MTU", "JUMBO_MTU_VRIO", "JUMBO_MTU_MAX",
    "Segment", "ReassemblyBuffer", "ReassemblyError",
    "segment_sizes", "pages_for_fragment", "reassembly_is_zero_copy",
    "TSO_MAX_BYTES", "SKB_MAX_FRAGMENTS", "PAGE_BYTES",
]
