"""Ethernet frames and MAC addressing for the simulated fabric.

A frame carries an opaque ``payload`` object plus explicit on-wire byte
counts.  Serialization delays are always computed from ``wire_bytes`` so
that header overheads (Ethernet, the vRIO encapsulation, the fake TCP/IP
header used for TSO) show up in link utilization exactly as they would on
real hardware.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = [
    "MacAddress",
    "EthernetFrame",
    "ETHERNET_HEADER_BYTES",
    "VRIO_HEADER_BYTES",
    "FAKE_TCPIP_HEADER_BYTES",
    "STANDARD_MTU",
    "JUMBO_MTU_VRIO",
    "JUMBO_MTU_MAX",
]

# On-wire constants (bytes).
ETHERNET_HEADER_BYTES = 18          # header + FCS
VRIO_HEADER_BYTES = 16              # vRIO encapsulation metadata (§4.1)
FAKE_TCPIP_HEADER_BYTES = 40        # fake TCP/IP header enabling TSO (§4.3)

STANDARD_MTU = 1500
JUMBO_MTU_VRIO = 8100               # chosen so TSO fragments fit 2x4KB pages
JUMBO_MTU_MAX = 9000


_mac_counter = itertools.count(1)


class MacAddress:
    """A unique layer-2 address.  Identity-comparable and hashable."""

    __slots__ = ("value", "label")

    def __init__(self, label: str = ""):
        self.value = next(_mac_counter)
        self.label = label

    def __hash__(self) -> int:
        return self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MacAddress) and other.value == self.value

    def __repr__(self) -> str:
        octets = [(self.value >> shift) & 0xFF for shift in (40, 32, 24, 16, 8, 0)]
        text = ":".join(f"{o:02x}" for o in octets)
        return f"<MAC {text} {self.label}>" if self.label else f"<MAC {text}>"


@dataclass
class EthernetFrame:
    """One frame on the wire.

    ``payload_bytes`` is the L2 payload size; ``wire_bytes`` adds the
    Ethernet header and FCS and is what links serialize.
    """

    src: MacAddress
    dst: MacAddress
    payload: Any
    payload_bytes: int
    kind: str = "data"
    trace_id: Optional[int] = None
    created_ns: int = 0
    meta: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.payload_bytes < 0:
            raise ValueError(f"negative payload size: {self.payload_bytes}")

    @property
    def wire_bytes(self) -> int:
        return self.payload_bytes + ETHERNET_HEADER_BYTES
