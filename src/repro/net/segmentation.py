"""Segmentation, TSO, and zero-copy reassembly (paper §4.3–§4.4).

vRIO runs over raw Ethernet, so messages larger than the MTU must be
segmented by the transport driver and reassembled at the far side.  The
paper's optimizations are reproduced exactly:

* **Jumbo frames** — the channel uses MTU 8100 rather than the 9000-byte
  maximum, so that every TSO fragment (plus headers) fits in two 4 KB pages.
* **TSO via a fake TCP/IP header** — chunks up to 64 KB are handed to the
  NIC whole and segmented in hardware, so the CPU pays per-chunk rather than
  per-fragment cost.
* **Zero-copy reassembly** — a Linux SKB can map at most 17 fragments, each
  within one 4 KB page.  With MTU 8100 a 64 KB message produces at most 9
  TSO fragments, 8 of which span two pages and one under a page:
  8×2 + 1 = 17 pages, exactly the limit.  With MTU 9000 the constraint is
  violated and the receiver must copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .frame import JUMBO_MTU_VRIO

__all__ = [
    "TSO_MAX_BYTES",
    "SKB_MAX_FRAGMENTS",
    "PAGE_BYTES",
    "segment_sizes",
    "pages_for_fragment",
    "reassembly_is_zero_copy",
    "Segment",
    "ReassemblyBuffer",
    "ReassemblyError",
]

TSO_MAX_BYTES = 64 * 1024      # maximal TCP/IP message, and thus TSO chunk
SKB_MAX_FRAGMENTS = 17         # Linux SKB page-fragment limit
PAGE_BYTES = 4096


def segment_sizes(message_bytes: int, mtu: int) -> List[int]:
    """Split a message into MTU-sized wire fragments.

    Returns the payload size of each fragment, largest-first; the final
    fragment carries the remainder.
    """
    if message_bytes <= 0:
        raise ValueError(f"message size must be positive, got {message_bytes}")
    if mtu <= 0:
        raise ValueError(f"MTU must be positive, got {mtu}")
    full, rest = divmod(message_bytes, mtu)
    sizes = [mtu] * full
    if rest:
        sizes.append(rest)
    return sizes


def pages_for_fragment(fragment_bytes: int, header_bytes: int = 0) -> int:
    """Number of 4 KB pages needed to hold a fragment plus its headers."""
    total = fragment_bytes + header_bytes
    return -(-total // PAGE_BYTES)  # ceil division


def reassembly_is_zero_copy(message_bytes: int, mtu: int,
                            header_bytes: int = 0) -> bool:
    """Whether a message reassembles into one SKB without copying.

    True iff the total page count of all fragments is within the 17-fragment
    SKB limit.  With the paper's MTU of 8100 this holds for every message up
    to 64 KB; with MTU 9000 it does not.
    """
    if message_bytes > TSO_MAX_BYTES:
        return False
    pages = sum(pages_for_fragment(size, header_bytes)
                for size in segment_sizes(message_bytes, mtu))
    return pages <= SKB_MAX_FRAGMENTS


@dataclass
class Segment:
    """One fragment of a segmented message."""

    message_id: int
    index: int
    count: int
    payload_bytes: int
    message_bytes: int
    meta: dict = field(default_factory=dict)


class ReassemblyError(Exception):
    """Raised on malformed or inconsistent fragment streams."""


class ReassemblyBuffer:
    """Reassembles segmented messages, tracking zero-copy eligibility.

    Fragments may arrive for several messages concurrently (one reassembly
    context per ``message_id``).  ``add()`` returns the completed message
    descriptor once all fragments are present, else ``None``.
    """

    def __init__(self, mtu: int = JUMBO_MTU_VRIO, header_bytes: int = 0):
        self.mtu = mtu
        self.header_bytes = header_bytes
        self._partial: Dict[int, List[Optional[Segment]]] = {}
        self.completed_messages = 0
        self.copied_messages = 0       # fell off the zero-copy path
        self.zero_copy_messages = 0

    @property
    def pending(self) -> int:
        return len(self._partial)

    def add(self, segment: Segment) -> Optional[dict]:
        """Insert a fragment; return the message descriptor if complete."""
        if segment.count <= 0:
            raise ReassemblyError(f"bad fragment count {segment.count}")
        if not 0 <= segment.index < segment.count:
            raise ReassemblyError(
                f"fragment index {segment.index} out of range 0..{segment.count - 1}")
        slots = self._partial.get(segment.message_id)
        if slots is None:
            slots = [None] * segment.count
            self._partial[segment.message_id] = slots
        if len(slots) != segment.count:
            raise ReassemblyError(
                f"message {segment.message_id}: fragment count changed "
                f"{len(slots)} -> {segment.count}")
        if slots[segment.index] is not None:
            # Duplicate (e.g. retransmission overlap): idempotent.
            return None
        slots[segment.index] = segment
        if any(s is None for s in slots):
            return None
        del self._partial[segment.message_id]
        message_bytes = sum(s.payload_bytes for s in slots)
        if message_bytes != segment.message_bytes:
            raise ReassemblyError(
                f"message {segment.message_id}: reassembled {message_bytes}B, "
                f"expected {segment.message_bytes}B")
        zero_copy = reassembly_is_zero_copy(
            message_bytes, self.mtu, self.header_bytes)
        self.completed_messages += 1
        if zero_copy:
            self.zero_copy_messages += 1
        else:
            self.copied_messages += 1
        return {
            "message_id": segment.message_id,
            "message_bytes": message_bytes,
            "zero_copy": zero_copy,
            "fragments": len(slots),
            "meta": slots[0].meta,
        }

    def drop_message(self, message_id: int) -> None:
        """Discard a partially reassembled message (e.g. after timeout)."""
        self._partial.pop(message_id, None)
