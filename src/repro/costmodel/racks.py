"""Rack-level pricing: Table 1 server configurations, Table 2 rack totals,
and Figure 3's SSD-consolidation price ratios.

All component prices are the ones the paper prints (Dell PowerEdge R930
configurator, July 2015).  Server totals are recomputed from components;
the paper's printed totals agree within ~1% (its DRAM line items are
slightly underdetermined), which EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = [
    "COMPONENT_PRICES",
    "ServerConfig",
    "ELVIS_SERVER",
    "VRIO_VMHOST",
    "VRIO_LIGHT_IOHOST",
    "VRIO_HEAVY_IOHOST",
    "server_table",
    "RackSetup",
    "rack_price_comparison",
    "fleet_consolidation_row",
    "SSD_PRICES",
    "ssd_consolidation_ratio",
    "ssd_consolidation_sweep",
]

# Dell R930 component prices (Table 1), USD.
COMPONENT_PRICES: Dict[str, float] = {
    "base": 6_407,            # chassis etc.
    "cpu_18core": 8_006,      # 18-core 2.5 GHz Xeon E7-8890 v3
    "dram_8gb": 172,
    "dram_16gb": 273,
    "nic_10g_dp": 560,        # Mellanox dual-port 10 Gbps, incl. cable
    "nic_40g_dp": 1_121,      # Mellanox dual-port 40 Gbps, incl. cable
}

# FusionIO SX300 PCIe SSDs (§3).
SSD_PRICES: Dict[str, float] = {
    "3.2TB": 12_706,
    "6.4TB": 24_063,
}


@dataclass(frozen=True)
class ServerConfig:
    """One R930 build: component counts plus its throughput budget."""

    name: str
    components: Dict[str, int]
    total_gbps: float
    required_gbps: float

    @property
    def price(self) -> float:
        unknown = set(self.components) - set(COMPONENT_PRICES)
        if unknown:
            raise KeyError(f"unknown components: {sorted(unknown)}")
        return sum(COMPONENT_PRICES[part] * self.components[part]
                   for part in sorted(self.components))

    @property
    def cores(self) -> int:
        return 18 * self.components.get("cpu_18core", 0)

    @property
    def dram_gb(self) -> int:
        return (8 * self.components.get("dram_8gb", 0)
                + 16 * self.components.get("dram_16gb", 0))


# The four server types of Table 1.
ELVIS_SERVER = ServerConfig(
    "elvis", {"base": 1, "cpu_18core": 4, "dram_8gb": 2, "dram_16gb": 18,
              "nic_10g_dp": 2},
    total_gbps=40.00, required_gbps=26.72)

VRIO_VMHOST = ServerConfig(
    "vmhost", {"base": 1, "cpu_18core": 4, "dram_8gb": 8, "dram_16gb": 26,
               "nic_40g_dp": 1},
    total_gbps=80.00, required_gbps=40.08)

VRIO_LIGHT_IOHOST = ServerConfig(
    "light iohost", {"base": 1, "cpu_18core": 2, "dram_8gb": 8,
                     "nic_40g_dp": 2},
    total_gbps=160.00, required_gbps=160.31)

VRIO_HEAVY_IOHOST = ServerConfig(
    "heavy iohost", {"base": 1, "cpu_18core": 4, "dram_8gb": 8,
                     "nic_40g_dp": 4},
    total_gbps=320.00, required_gbps=320.63)

_ALL_SERVERS = (ELVIS_SERVER, VRIO_VMHOST, VRIO_LIGHT_IOHOST,
                VRIO_HEAVY_IOHOST)


def server_table() -> List[dict]:
    """Table 1 rows: per-server price, components, and throughput."""
    return [{
        "server": cfg.name,
        "price_usd": cfg.price,
        "cores": cfg.cores,
        "dram_gb": cfg.dram_gb,
        "total_gbps": cfg.total_gbps,
        "required_gbps": cfg.required_gbps,
    } for cfg in _ALL_SERVERS]


@dataclass
class RackSetup:
    """A rack of servers: k VMhosts (or Elvis hosts) + j IOhosts."""

    name: str
    servers: List[ServerConfig] = field(default_factory=list)

    @property
    def price(self) -> float:
        return sum(s.price for s in self.servers)

    @property
    def vm_cores(self) -> int:
        """VMcores across the rack: Elvis servers run 1/3 of their cores as
        sidecores; vRIO VMhosts dedicate everything to VMs."""
        total = 0
        for s in self.servers:
            if s.name == "elvis":
                total += s.cores * 2 // 3
            elif s.name == "vmhost":
                total += s.cores
        return total


def _elvis_rack(n_servers: int) -> RackSetup:
    return RackSetup(f"elvis x{n_servers}", [ELVIS_SERVER] * n_servers)


def _vrio_rack(n_servers: int) -> RackSetup:
    """The vRIO transform of an n-server Elvis rack (§3).

    3 Elvis servers -> 2 VMhosts + 1 light IOhost; merging two such racks
    yields 4 VMhosts + 1 heavy IOhost out of 6 Elvis servers.
    """
    if n_servers == 3:
        return RackSetup("vrio 2+1", [VRIO_VMHOST] * 2 + [VRIO_LIGHT_IOHOST])
    if n_servers == 6:
        return RackSetup("vrio 4+1", [VRIO_VMHOST] * 4 + [VRIO_HEAVY_IOHOST])
    raise ValueError(f"the paper's transform is defined for 3 or 6 servers, "
                     f"got {n_servers}")


def rack_price_comparison() -> List[dict]:
    """Table 2 rows: overall Elvis vs vRIO setup prices."""
    rows = []
    for n in (3, 6):
        elvis = _elvis_rack(n)
        vrio = _vrio_rack(n)
        rows.append({
            "setup": f"R930 x {n}",
            "elvis_servers": n,
            "vrio_servers": vrio.name.split()[1],
            "elvis_price_usd": elvis.price,
            "vrio_price_usd": vrio.price,
            "diff_percent": (vrio.price / elvis.price - 1.0) * 100.0,
            "elvis_vm_cores": elvis.vm_cores,
            "vrio_vm_cores": vrio.vm_cores,
        })
    return rows


def fleet_consolidation_row(n_racks: int) -> dict:
    """§3 scaled to a fleet: ``n_racks`` racks of the 6-server transform.

    A 6-server Elvis rack and its vRIO transform (4 VMhosts + 1 heavy
    IOhost) deliver the same 288 VMcores, so per-rack savings multiply
    straight through the fleet — the consolidation argument *is* a
    fleet-scale argument, which is why ``dc_scale`` plots this next to
    the simulated latency curves.
    """
    if n_racks <= 0:
        raise ValueError(f"need at least one rack, got {n_racks}")
    elvis = _elvis_rack(6)
    vrio = _vrio_rack(6)
    return {
        "racks": n_racks,
        "vm_cores": vrio.vm_cores * n_racks,
        "elvis_price_usd": elvis.price * n_racks,
        "vrio_price_usd": vrio.price * n_racks,
        "savings_usd": (elvis.price - vrio.price) * n_racks,
        "savings_percent": (1.0 - vrio.price / elvis.price) * 100.0,
    }


def _extra_nics_for_drives(v_drives: int) -> int:
    """§3: consolidating up to three SX300s (21.6 Gbps each) needs one extra
    2x40 Gbps NIC at the IOhost; up to six needs two."""
    if v_drives <= 0:
        return 0
    return -(-v_drives // 3)


def ssd_consolidation_ratio(n_servers: int, e_drives: int, v_drives: int,
                            ssd: str = "3.2TB") -> float:
    """Fig. 3: price of the vRIO setup relative to Elvis for an e=>v
    drive-consolidation ratio."""
    if ssd not in SSD_PRICES:
        raise ValueError(f"unknown SSD model {ssd!r}")
    if e_drives < n_servers:
        raise ValueError(
            "an Elvis setup needs at least one drive per server "
            f"({e_drives} < {n_servers})")
    if not 1 <= v_drives <= e_drives:
        raise ValueError(f"bad consolidation ratio {e_drives}=>{v_drives}")
    drive = SSD_PRICES[ssd]
    elvis_price = _elvis_rack(n_servers).price + e_drives * drive
    vrio_price = (_vrio_rack(n_servers).price + v_drives * drive
                  + _extra_nics_for_drives(v_drives)
                  * COMPONENT_PRICES["nic_40g_dp"])
    return vrio_price / elvis_price


def ssd_consolidation_sweep() -> List[dict]:
    """All Figure 3 data points: both rack sizes, both drive models."""
    rows = []
    for n in (3, 6):
        for v in range(n, 0, -1):
            for ssd in ("3.2TB", "6.4TB"):
                rows.append({
                    "rack": f"R930 x {n}",
                    "ratio": f"{n}=>{v}",
                    "ssd": ssd,
                    "vrio_over_elvis": ssd_consolidation_ratio(n, n, v, ssd),
                })
    return rows
