"""Hardware price catalogs and the "adjacent pair" methodology (§3, Fig. 1).

The paper derives its price-trend argument from Intel's June-2015 CPU
pricing list and a multi-vendor NIC survey.  Neither source is reachable
offline, so the catalogs below embed:

* the two worked examples the paper prints verbatim (E7-8850 v2 ->
  E7-8870 v2, and Mellanox MCX312B -> MCX314A), and
* representative additional entries reconstructed from public 2015 list
  prices (marked ``representative=True``), enough to reproduce the figure's
  separation: every CPU upgrade point falls *below* the cost diagonal,
  every NIC upgrade point *above* it.

Adjacency rules are implemented exactly as defined in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = [
    "CpuSku",
    "NicSku",
    "CPU_CATALOG",
    "NIC_CATALOG",
    "cpu_adjacent_pairs",
    "nic_adjacent_pairs",
    "upgrade_points",
]


@dataclass(frozen=True)
class CpuSku:
    """One server CPU list entry."""

    model: str
    price_usd: float
    cores: int
    ghz: float
    series: str          # e.g. "E7-8800"
    version: str         # e.g. "v2"
    cache_mb: float
    power_w: float
    qpi_gts: float
    feature_nm: int
    representative: bool = False


@dataclass(frozen=True)
class NicSku:
    """One NIC list entry (price includes cable, as in Table 1)."""

    model: str
    vendor: str
    price_usd: float
    gbps_per_port: float
    ports: int
    series: str
    form_factor: str
    connector: str
    offloads: str
    power_w: float
    pcie_gen: int
    pcie_lanes: int
    representative: bool = False

    @property
    def total_gbps(self) -> float:
        return self.gbps_per_port * self.ports


# -- CPU catalog -------------------------------------------------------------
# The first two entries are the paper's printed example.  The rest are
# representative 2015-era Xeon list entries forming further adjacent pairs.

CPU_CATALOG: List[CpuSku] = [
    CpuSku("E7-8850 v2", 3_059, 12, 2.3, "E7-8800", "v2", 24, 105, 7.2, 22),
    CpuSku("E7-8870 v2", 4_616, 15, 2.3, "E7-8800", "v2", 30, 130, 8.0, 22),

    CpuSku("E7-4850 v2", 2_837, 12, 2.3, "E7-4800", "v2", 24, 105, 7.2, 22,
           representative=True),
    CpuSku("E7-4870 v2", 4_227, 15, 2.3, "E7-4800", "v2", 30, 130, 8.0, 22,
           representative=True),

    CpuSku("E5-2648L v3", 1_544, 12, 1.8, "E5-2600L", "v3", 30, 75, 9.6, 22,
           representative=True),
    CpuSku("E5-2658 v3", 2_093, 14, 1.8, "E5-2600L", "v3", 35, 85, 9.6, 22,
           representative=True),

    CpuSku("E7-8860 v3", 4_061, 16, 2.2, "E7-8800", "v3", 40, 140, 9.6, 22,
           representative=True),
    CpuSku("E7-8880 v3", 5_896, 18, 2.2, "E7-8800", "v3", 45, 150, 9.6, 22,
           representative=True),

    CpuSku("E5-4640 v2", 2_725, 10, 2.2, "E5-4600", "v2", 20, 95, 8.0, 22,
           representative=True),
    CpuSku("E5-4657L v2", 4_509, 12, 2.2, "E5-4600", "v2", 24, 110, 8.0, 22,
           representative=True),
]


# -- NIC catalog -------------------------------------------------------------
# The first two entries are the paper's printed Mellanox example.

NIC_CATALOG: List[NicSku] = [
    NicSku("MCX312B-XCCT", "Mellanox", 560, 10, 2, "ConnectX-3", "PCIe-HHHL",
           "SFP+", "full", 6.2, 3, 8),
    NicSku("MCX314A-BCCT", "Mellanox", 1_121, 40, 2, "ConnectX-3", "PCIe-HHHL",
           "QSFP", "full", 8.0, 3, 8),

    NicSku("T520-CR", "Chelsio", 570, 10, 2, "T5", "PCIe-HHHL", "SFP+",
           "full", 13, 3, 8, representative=True),
    NicSku("T580-CR", "Chelsio", 985, 40, 2, "T5", "PCIe-HHHL", "QSFP",
           "full", 20, 3, 8, representative=True),

    NicSku("SFN7122F", "SolarFlare", 795, 10, 2, "Flareon", "PCIe-HHHL",
           "SFP+", "full", 10, 3, 8, representative=True),
    NicSku("SFN7142Q", "SolarFlare", 1_315, 40, 2, "Flareon", "PCIe-HHHL",
           "QSFP", "full", 14, 3, 8, representative=True),

    NicSku("HL-10G-2P", "HotLava", 475, 10, 2, "Tambora", "PCIe-HHHL",
           "SFP+", "basic", 9, 3, 8, representative=True),
    NicSku("HL-40G-2P", "HotLava", 1_030, 40, 2, "Tambora", "PCIe-HHHL",
           "QSFP", "basic", 13, 3, 8, representative=True),
]


def _cpu_adjacent(c1: CpuSku, c2: CpuSku) -> bool:
    """Paper's CPU adjacency: same series/version/speed/feature size;
    strictly fewer cores; cache, power, QPI proportionally <=."""
    if (c1.series, c1.version, c1.ghz, c1.feature_nm) != \
            (c2.series, c2.version, c2.ghz, c2.feature_nm):
        return False
    if not c1.cores < c2.cores:
        return False
    ratio = c2.cores / c1.cores
    return (c2.cache_mb / c1.cache_mb <= ratio + 1e-9
            and c2.power_w / c1.power_w <= ratio + 1e-9
            and c2.qpi_gts / c1.qpi_gts <= ratio + 1e-9)


def _nic_adjacent(n1: NicSku, n2: NicSku) -> bool:
    """Paper's NIC adjacency: same vendor/series/ports/form factor/offloads;
    strictly lower throughput; power and PCIe proportionally <=."""
    if (n1.vendor, n1.series, n1.ports, n1.form_factor, n1.offloads) != \
            (n2.vendor, n2.series, n2.ports, n2.form_factor, n2.offloads):
        return False
    if not n1.total_gbps < n2.total_gbps:
        return False
    ratio = n2.total_gbps / n1.total_gbps
    return (n2.power_w / n1.power_w <= ratio + 1e-9
            and n2.pcie_gen / n1.pcie_gen <= ratio + 1e-9
            and n2.pcie_lanes / n1.pcie_lanes <= ratio + 1e-9)


def cpu_adjacent_pairs(catalog: List[CpuSku] = CPU_CATALOG
                       ) -> List[Tuple[CpuSku, CpuSku]]:
    return [(a, b) for a in catalog for b in catalog if _cpu_adjacent(a, b)]


def nic_adjacent_pairs(catalog: List[NicSku] = NIC_CATALOG
                       ) -> List[Tuple[NicSku, NicSku]]:
    return [(a, b) for a in catalog for b in catalog if _nic_adjacent(a, b)]


def upgrade_points(kind: str = "cpu") -> List[Tuple[float, float]]:
    """Figure 1's (x, y) points: relative upgrade cost vs relative added
    hardware (cores for CPUs, bandwidth for NICs)."""
    if kind == "cpu":
        return [(b.price_usd / a.price_usd, b.cores / a.cores)
                for a, b in cpu_adjacent_pairs()]
    if kind == "nic":
        return [(b.price_usd / a.price_usd, b.total_gbps / a.total_gbps)
                for a, b in nic_adjacent_pairs()]
    raise ValueError(f"kind must be 'cpu' or 'nic', got {kind!r}")
