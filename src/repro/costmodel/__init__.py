"""The §3 cost-effectiveness model: catalogs, adjacency, rack pricing."""

from .catalog import (
    CPU_CATALOG,
    NIC_CATALOG,
    CpuSku,
    NicSku,
    cpu_adjacent_pairs,
    nic_adjacent_pairs,
    upgrade_points,
)
from .topology import (
    PER_CORE_GBPS,
    Cable,
    WiringPlan,
    elvis_rack_plan,
    vrio_rack_plan,
)
from .racks import (
    COMPONENT_PRICES,
    ELVIS_SERVER,
    SSD_PRICES,
    VRIO_HEAVY_IOHOST,
    VRIO_LIGHT_IOHOST,
    VRIO_VMHOST,
    RackSetup,
    ServerConfig,
    rack_price_comparison,
    server_table,
    ssd_consolidation_ratio,
    ssd_consolidation_sweep,
)

__all__ = [
    "CpuSku", "NicSku", "CPU_CATALOG", "NIC_CATALOG",
    "cpu_adjacent_pairs", "nic_adjacent_pairs", "upgrade_points",
    "COMPONENT_PRICES", "SSD_PRICES", "ServerConfig", "RackSetup",
    "ELVIS_SERVER", "VRIO_VMHOST", "VRIO_LIGHT_IOHOST", "VRIO_HEAVY_IOHOST",
    "server_table", "rack_price_comparison",
    "ssd_consolidation_ratio", "ssd_consolidation_sweep",
    "Cable", "WiringPlan", "elvis_rack_plan", "vrio_rack_plan",
    "PER_CORE_GBPS",
]
