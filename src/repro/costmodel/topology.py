"""Figure 2 rack wiring plans: Elvis, light-IOhost vRIO, heavy-IOhost vRIO.

§3 argues the vRIO transform keeps the *switch-facing* cabling no larger
while adding direct VMhost<->IOhost cables; and that IOhost ports reach a
10 GbE switch via 40GbE-to-4x10GbE breakout cables.  This module builds
the wiring plan for each setup and validates the bandwidth accounting that
Table 1 prints (required vs provisioned Gbps per server).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .racks import (
    ELVIS_SERVER,
    VRIO_HEAVY_IOHOST,
    VRIO_LIGHT_IOHOST,
    VRIO_VMHOST,
    ServerConfig,
)

__all__ = ["Cable", "WiringPlan", "elvis_rack_plan", "vrio_rack_plan",
           "PER_CORE_GBPS"]

# §3's compute-to-network rate: 380 Mbps per core concurrently engaged in
# networking (the top of the 113-380 Mbps cloud-provider measurement).
PER_CORE_GBPS = 0.380


@dataclass(frozen=True)
class Cable:
    """One physical cable in the rack."""

    src: str
    dst: str
    gbps: float
    kind: str            # "10GbE", "40GbE", "40GbE-4x10GbE-breakout"


@dataclass
class WiringPlan:
    """A rack's servers plus every cable connecting them."""

    name: str
    servers: List[ServerConfig]
    cables: List[Cable] = field(default_factory=list)

    @property
    def switch_cables(self) -> List[Cable]:
        return [c for c in self.cables if "switch" in (c.src, c.dst)]

    @property
    def direct_cables(self) -> List[Cable]:
        return [c for c in self.cables if "switch" not in (c.src, c.dst)]

    def bandwidth_into(self, node: str) -> float:
        return sum(c.gbps for c in self.cables if node in (c.src, c.dst))

    def validate(self, tolerance_gbps: float = 0.5) -> None:
        """Every server's cabling must cover its required bandwidth (to
        within the paper's own rounding: the IOhosts run ~0.3 Gbps over
        their port budget in Table 1 too), and never exceed its NIC
        provisioning."""
        for index, server in enumerate(self.servers):
            node = f"{server.name}{index}"
            wired = self.bandwidth_into(node)
            needed = min(server.required_gbps, server.total_gbps)
            if wired + tolerance_gbps < needed:
                raise ValueError(
                    f"{self.name}: {node} wired for {wired} Gbps, needs "
                    f"{server.required_gbps}")
            if wired > server.total_gbps + 1e-9:
                raise ValueError(
                    f"{self.name}: {node} wired for {wired} Gbps but only "
                    f"provisions {server.total_gbps}")


def vm_cores_required_gbps(vm_cores: int) -> float:
    """Bandwidth a server's VMcores can consume, per the §3 rate."""
    return vm_cores * PER_CORE_GBPS


def elvis_rack_plan(n_servers: int = 3,
                    switch_is_10gbe: bool = True) -> WiringPlan:
    """Figure 2a: each Elvis server connects 3 of its 4 10GbE ports to the
    switch (26.72 Gbps of demand against 30 Gbps of uplink)."""
    plan = WiringPlan(f"elvis x{n_servers}", [ELVIS_SERVER] * n_servers)
    for i in range(n_servers):
        node = f"elvis{i}"
        for port in range(3):
            plan.cables.append(Cable(node, "switch", 10.0, "10GbE"))
    plan.validate()
    return plan


def vrio_rack_plan(n_servers: int = 3,
                   switch_is_10gbe: bool = True) -> WiringPlan:
    """Figures 2b/2c: VMhosts wire 40GbE directly to the IOhost; the
    IOhost reaches the switch with (breakout) cables — fewer switch ports
    than the Elvis setup used."""
    if n_servers == 3:
        vmhosts, iohost = 2, VRIO_LIGHT_IOHOST
    elif n_servers == 6:
        vmhosts, iohost = 4, VRIO_HEAVY_IOHOST
    else:
        raise ValueError("the paper's transform covers 3 or 6 servers")
    servers = [VRIO_VMHOST] * vmhosts + [iohost]
    plan = WiringPlan(f"vrio {vmhosts}+1", servers)
    iohost_node = f"{iohost.name}{vmhosts}"
    # Each VMhost: one 40GbE port to the IOhost (its dual-port NIC keeps a
    # spare; the IOhost's port budget allots one per VMhost).
    for i in range(vmhosts):
        plan.cables.append(Cable(f"vmhost{i}", iohost_node, 40.0, "40GbE"))
    # IOhost to switch: one uplink per VMhost carries its external share
    # (40.08 Gbps); breakout cables when the switch is 10GbE-only.
    kind = "40GbE-4x10GbE-breakout" if switch_is_10gbe else "40GbE"
    for _ in range(vmhosts):
        plan.cables.append(Cable(iohost_node, "switch", 40.0, kind))
    plan.validate()
    return plan
