"""The I/O-model registry: one authoritative catalog of contenders.

Every model module registers a :class:`ModelInfo` at import time —
name, one-line description, capability flags, topology builders, and the
figure/table ordering ranks.  Everything downstream *derives* from this
catalog instead of re-listing model names:

* ``cluster.testbed`` validates specs and dispatches construction through
  the registered builders (``MODEL_NAMES`` is :func:`model_names`);
* the experiment modules' historical tuples (``FIG9_MODELS``,
  ``MODEL_ORDER``, …) are :func:`filter_models` calls — restricting any of
  them to the pre-registry five reproduces the old hand-written tuples
  byte-for-byte;
* the CLI's ``models`` listing and unknown-model errors render from
  :func:`model_names` / :func:`get_model`;
* the simlint rule SIM501 flags hand-written model-name tuples anywhere
  outside ``repro/iomodels/`` so the catalog cannot silently fork.

Builders receive a context object (constructed by
:mod:`repro.cluster.testbed`) exposing the environment, spec, cost model,
shared stats, machines, and wiring factories — model modules never import
the cluster layer, so registration stays cycle-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "Capabilities",
    "ModelInfo",
    "SimpleWiring",
    "ConsolidationWiring",
    "register_model",
    "get_model",
    "model_names",
    "filter_models",
    "all_models",
    "consolidated_per_host",
]


@dataclass(frozen=True)
class Capabilities:
    """What one I/O model can do; the basis of every derived model list.

    ``topologies`` names the :mod:`repro.cluster.testbed` topologies the
    model can be built into.  ``ablation`` marks variants that exist only
    to isolate one mechanism (vrio_nopoll) and are excluded from the
    headline figures.  ``exitless`` means the steady-state datapath
    completes I/O without exits or injections (Table 3's zero-exit rows)
    — the tail-latency table only compares exitless designs.
    """

    net: bool = True
    block: bool = True
    polling: bool = False
    topologies: Tuple[str, ...] = ("simple",)
    ablation: bool = False
    exitless: bool = True

    @property
    def consolidation(self) -> bool:
        return "consolidation" in self.topologies


@dataclass(frozen=True)
class ModelInfo:
    """One registered I/O model.

    ``build_simple`` wires the model into the single-VMhost (Figure 6)
    topology; ``build_consolidation`` into the multi-VMhost block topology
    (required iff the capabilities claim consolidation support).  The
    three ranks place the model in the historical orderings: ``tab_rank``
    (Table 3 / Figure 5 rows), ``throughput_rank`` (Figure 9 / Table 4
    series), ``block_rank`` (Figure 14 series).  New models append after
    the paper's five in every ordering.
    """

    name: str
    description: str
    capabilities: Capabilities
    build_simple: Callable[..., Any] = field(repr=False)
    build_consolidation: Optional[Callable[..., Any]] = field(
        default=None, repr=False)
    tab_rank: int = 100
    throughput_rank: int = 100
    block_rank: int = 100


@dataclass
class SimpleWiring:
    """What a simple-topology builder hands back to the testbed."""

    model: Any
    ports: List[Any]
    service_cores: List[Any] = field(default_factory=list)


@dataclass
class ConsolidationWiring:
    """What a consolidation builder hands back to the testbed."""

    models: List[Any] = field(default_factory=list)
    vms: List[Any] = field(default_factory=list)
    ports: List[Any] = field(default_factory=list)
    service_cores: List[Any] = field(default_factory=list)
    model_by_vm: Dict[str, Any] = field(default_factory=dict)


_REGISTRY: Dict[str, ModelInfo] = {}

_ORDER_KEYS: Dict[str, Callable[[ModelInfo], Any]] = {
    "name": lambda info: info.name,
    "tab": lambda info: (info.tab_rank, info.name),
    "throughput": lambda info: (info.throughput_rank, info.name),
    "block": lambda info: (info.block_rank, info.name),
}


def register_model(info: ModelInfo) -> ModelInfo:
    """Add one model to the catalog; duplicate names are a hard error."""
    if info.name in _REGISTRY:
        raise ValueError(f"duplicate I/O model name {info.name!r}")
    if info.capabilities.consolidation and info.build_consolidation is None:
        raise ValueError(
            f"model {info.name!r} claims consolidation support but has "
            "no consolidation builder")
    _REGISTRY[info.name] = info
    return info


def model_names() -> Tuple[str, ...]:
    """All registered model names, alphabetical (the old MODEL_NAMES)."""
    return tuple(sorted(_REGISTRY))


def get_model(name: str) -> ModelInfo:
    """Look up one model; unknown names list the valid ids."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown model {name!r}; expected one of {model_names()}")


def all_models() -> List[ModelInfo]:
    """Every registered :class:`ModelInfo`, alphabetical by name."""
    return [_REGISTRY[name] for name in model_names()]


def filter_models(net: Optional[bool] = None,
                  block: Optional[bool] = None,
                  polling: Optional[bool] = None,
                  topology: Optional[str] = None,
                  ablation: Optional[bool] = None,
                  exitless: Optional[bool] = None,
                  order: str = "name") -> Tuple[str, ...]:
    """Model names matching the given capability constraints.

    ``None`` means "don't care".  ``order`` selects the rank used to sort
    the result: ``"tab"``, ``"throughput"``, ``"block"``, or ``"name"``.
    """
    try:
        key = _ORDER_KEYS[order]
    except KeyError:
        raise ValueError(
            f"unknown order {order!r}; expected one of "
            f"{tuple(sorted(_ORDER_KEYS))}")
    selected: List[ModelInfo] = []
    for info in _REGISTRY.values():
        caps = info.capabilities
        if net is not None and caps.net != net:
            continue
        if block is not None and caps.block != block:
            continue
        if polling is not None and caps.polling != polling:
            continue
        if topology is not None and topology not in caps.topologies:
            continue
        if ablation is not None and caps.ablation != ablation:
            continue
        if exitless is not None and caps.exitless != exitless:
            continue
        selected.append(info)
    return tuple(info.name for info in sorted(selected, key=key))


def consolidated_per_host(
        ctx: Any,
        make_host_instance: Callable[[Any, Any], Tuple[Any, List[Any],
                                                       Callable[[Any], Any]]],
) -> ConsolidationWiring:
    """The shared consolidation shape for host-local models.

    Elvis, the baseline, and the locally serviced new models all
    consolidate the same way: one model instance (and its service cores)
    per VMhost.  ``make_host_instance(ctx, vmhost)`` returns
    ``(model, service_cores, attach)`` where ``attach(vm)`` yields the
    VM's net port.
    """
    wiring = ConsolidationWiring()
    for h in range(ctx.spec.n_vmhosts):
        vmhost = ctx.new_vmhost(h)
        model, cores, attach = make_host_instance(ctx, vmhost)
        wiring.models.append(model)
        wiring.service_cores.extend(cores)
        for _ in range(ctx.spec.vms_per_host):
            vm = vmhost.new_vm()
            wiring.vms.append(vm)
            wiring.ports.append(attach(vm))
            wiring.model_by_vm[vm.name] = model
    return wiring
