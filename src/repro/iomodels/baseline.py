"""The *baseline* I/O model: KVM/virtio trap-and-emulate paravirtualization.

The state of practice.  Guests kick the host after posting to the ring — a
synchronous exit — and the host's vhost thread, woken by the scheduler,
emulates the device and *injects* completion interrupts, whose EOI writes
trap again.  Per request-response: 3 exits, 2 guest interrupts, 2
injections, 2 host interrupts (Table 3's "sum" of 9).

vhost threads run on the spare core (paper: "Linux uses the core to run
I/O threads and VCPUs as it pleases"); their interrupt-driven wakeups add
scheduling latency, and the exits' cache/TLB pollution dilates guest
application work (``costs.baseline_app_dilation``, see costs.py).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..guest.vm import Vm
from ..hw.cpu import Core
from ..hw.nic import Nic, NicFunction
from ..hw.storage import BlockRequest, StorageDevice
from ..net.frame import EthernetFrame, STANDARD_MTU
from ..interpose import InterposerChain
from ..sim import Environment, Event
from ..virtio import VirtioRequest, Virtqueue
from .base import IoEventStats, NetMessage, NetPort, message_wire_bytes
from .costs import CostModel, DEFAULT_COSTS
from .registry import (
    Capabilities,
    ModelInfo,
    SimpleWiring,
    consolidated_per_host,
    register_model,
)

__all__ = ["BaselineModel", "BaselineBlockHandle"]


class BaselineBlockHandle:
    """Paravirtual block device emulated by a vhost thread."""

    def __init__(self, model: "BaselineModel", vm: Vm,
                 device: StorageDevice) -> None:
        self.model = model
        self.vm = vm
        self.device = device

    def submit(self, request: BlockRequest) -> Event:
        done = self.model.env.event()
        self.model.env.process(
            self.model._blk_path(self.vm, self.device, request, done),
            name=f"base-blk:{self.vm.name}")
        return done


class BaselineModel:
    """KVM/virtio with vhost threads on a shared I/O core."""

    name = "baseline"
    interposable = True

    def __init__(self, env: Environment, nic: Nic, io_core: Core,
                 costs: CostModel = DEFAULT_COSTS,
                 stats: Optional[IoEventStats] = None,
                 interposers: Optional[InterposerChain] = None,
                 mtu: int = STANDARD_MTU,
                 tracer: Optional[Any] = None) -> None:
        self.env = env
        self.nic = nic
        self.io_core = io_core
        self.costs = costs
        self.stats = stats if stats is not None else IoEventStats("baseline")
        self.interposers = interposers if interposers is not None else InterposerChain()
        self.mtu = mtu
        self.tracer = tracer  # optional repro.sim.trace.Tracer
        self._fn_of: Dict[Vm, NicFunction] = {}
        self._port_of: Dict[Vm, NetPort] = {}
        self._tx_vq_of: Dict[Vm, Virtqueue] = {}

    def register_telemetry(self, namespace: Any) -> None:
        """Register this model's instruments into a metrics namespace."""
        namespace.register_gauge("attached_vms",
                                 lambda m=self: len(m._port_of))
        for vm, vq in self._tx_vq_of.items():
            ns = namespace.namespace(f"txq.{vm.name}")
            for counter in ("kicks", "kicks_suppressed", "posted",
                            "completed", "full_rejections"):
                ns.register_counter(counter, getattr(vq, counter))

    def add_interposer(self, interposer: Any) -> None:
        self.interposers.add(interposer)

    def attach_vm(self, vm: Vm, mac: Optional[Any] = None) -> NetPort:
        """Create the VM's virtio net device.

        ``mac`` pins the device's address — used when a vRIO client falls
        back to local virtio after an IOhost failure and must keep its
        externally visible F address (§4.6).
        """
        if vm in self._port_of:
            raise ValueError(f"{vm.name} already attached")
        vm.stats = self.stats
        fn = self.nic.create_function(f"virtio-{vm.name}", mac=mac,
                                      notify_mode="interrupt")
        fn.on_notify = lambda v=vm: self._on_nic_rx(v)
        fn.on_tx_complete = lambda v=vm: self._on_tx_complete(v)
        self._fn_of[vm] = fn
        self._tx_vq_of[vm] = Virtqueue(self.env, name=f"{vm.name}.txq")
        port = NetPort(self.env, vm, fn.mac,
                       transmit=lambda msg, v=vm: self._start_tx(v, msg),
                       app_dilation=self.costs.baseline_app_dilation)
        self._port_of[vm] = port
        return port

    def attach_block_device(self, vm: Vm,
                            device: StorageDevice) -> BaselineBlockHandle:
        if vm not in self._port_of:
            raise ValueError(f"attach_vm({vm.name}) first")
        return BaselineBlockHandle(self, vm, device)

    # -- guest transmit ---------------------------------------------------------

    def _start_tx(self, vm: Vm, message: NetMessage) -> None:
        self.env.process(self._guest_tx(vm, message),
                         name=f"base-tx:{vm.name}")

    def _guest_tx(self, vm: Vm, message: NetMessage) -> Iterator[Event]:
        c = self.costs
        if self.tracer:
            self.tracer.point(message.message_id, "guest_tx",
                              vm=vm.name, bytes=message.size_bytes)
        cycles = int(c.guest_net_per_msg_cycles
                     + c.guest_net_per_byte_cycles * message.size_bytes
                     + c.ring_op_cycles)
        yield vm.vcpu.execute(cycles, tag="net_tx")
        request = VirtioRequest(kind="net_tx", size_bytes=message.size_bytes,
                                payload=message)
        need_kick = self._tx_vq_of[vm].add_avail(request)
        if need_kick:
            # The kick hypercall traps: Table 3's synchronous exit.
            yield vm.sync_exit()
        self.env.process(self._vhost_tx(vm, message),
                         name=f"base-vhost-tx:{vm.name}")

    def _vhost_tx(self, vm: Vm, message: NetMessage) -> Iterator[Event]:
        c = self.costs
        # The vhost thread must be scheduled in before it can serve.
        yield self.env.timeout(c.vhost_sched_delay_ns)
        ok, _request = self._tx_vq_of[vm].try_get_avail()
        if not ok:
            return
        self._tx_vq_of[vm].kick_serviced()
        if not self.interposers.admit(message):
            return
        span = None
        if self.tracer:
            span = self.tracer.begin(message.message_id, "vhost_service",
                                     core=self.io_core.name, direction="tx")
        cycles = int(c.vhost_wakeup_cycles + c.backend_per_msg_cycles
                     + c.sidecore_per_byte_cycles * message.size_bytes
                     + self.interposers.cycles(message.size_bytes, message.kind))
        yield self.io_core.execute(cycles, tag="vhost")
        frame = EthernetFrame(
            src=self._fn_of[vm].mac, dst=message.dst, payload=message,
            payload_bytes=message_wire_bytes(message.size_bytes, self.mtu),
            kind=message.kind, created_ns=self.env.now)
        self._fn_of[vm].transmit(frame, completion_interrupt=True)
        if span is not None:
            self.tracer.end(span)

    def _on_tx_complete(self, vm: Vm) -> None:
        self.stats.host_interrupts.add()
        self.env.process(self._tx_complete_path(vm),
                         name=f"base-txc:{vm.name}")

    def _tx_complete_path(self, vm: Vm) -> Iterator[Event]:
        c = self.costs
        yield self.io_core.execute(c.host_irq_cycles, tag="host_irq",
                                   high_priority=True)
        # Inject the guest's "sent" interrupt: host-side injection cost,
        # then the guest handler whose EOI write traps.
        yield self.io_core.execute(c.injection_cycles, tag="injection")
        vm.deliver_interrupt_injected()

    # -- receive -------------------------------------------------------------------

    def _on_nic_rx(self, vm: Vm) -> None:
        self.stats.host_interrupts.add()
        self.env.process(self._rx_path(vm), name=f"base-rx:{vm.name}")

    def _rx_path(self, vm: Vm) -> Iterator[Event]:
        c = self.costs
        fn = self._fn_of[vm]
        port = self._port_of[vm]
        yield self.io_core.execute(c.host_irq_cycles, tag="host_irq",
                                   high_priority=True)
        yield self.env.timeout(c.vhost_sched_delay_ns)
        while True:
            ok, frame = fn.rx_ring.try_get()
            if not ok:
                break
            message: NetMessage = frame.payload
            if not self.interposers.admit(message):
                continue
            span = None
            if self.tracer:
                span = self.tracer.begin(message.message_id, "vhost_service",
                                         core=self.io_core.name,
                                         direction="rx")
            cycles = int(c.vhost_wakeup_cycles + c.backend_per_msg_cycles
                         + c.sidecore_per_byte_cycles * message.size_bytes
                         + self.interposers.cycles(message.size_bytes,
                                                   message.kind))
            yield self.io_core.execute(cycles, tag="vhost")
            yield self.io_core.execute(c.injection_cycles, tag="injection")
            if span is not None:
                self.tracer.end(span)
            extra = int(c.guest_net_per_msg_cycles
                        + c.guest_net_per_byte_cycles * message.size_bytes)
            yield vm.deliver_interrupt_injected(extra_cycles=extra)
            if self.tracer:
                self.tracer.point(message.message_id, "guest_deliver",
                                  vm=vm.name)
            port.deliver(message)
        fn.rearm()

    # -- block ---------------------------------------------------------------------

    def _blk_path(self, vm: Vm, device: StorageDevice, request: BlockRequest,
                  done: Event) -> Iterator[Event]:
        c = self.costs
        request.issued_ns = self.env.now
        yield vm.vcpu.execute(c.guest_blk_per_req_cycles + c.ring_op_cycles,
                              tag="blk_submit")
        yield vm.sync_exit()  # the block kick traps
        yield self.env.timeout(c.vhost_sched_delay_ns)
        kind = "blk_read" if request.op == "read" else "blk_write"
        cycles = int(c.vhost_wakeup_cycles + device.cpu_cycles(request)
                     + self.interposers.cycles(request.size_bytes, kind))
        yield self.io_core.execute(cycles, tag="vhost_blk")
        yield device.submit(request)
        yield self.io_core.execute(c.injection_cycles, tag="injection")
        yield vm.deliver_interrupt_injected(extra_cycles=c.ring_op_cycles)
        done.succeed(request)


# -- registry wiring ----------------------------------------------------------

def _build_simple(ctx: Any) -> SimpleWiring:
    host_nic = ctx.vmhost.new_nic("external")
    ctx.wire_loadgen(host_nic)
    io_core = ctx.vmhost.new_io_core()
    model = BaselineModel(ctx.env, host_nic, io_core, costs=ctx.costs,
                          stats=ctx.stats)
    ports = [model.attach_vm(vm) for vm in ctx.vms]
    return SimpleWiring(model=model, ports=ports, service_cores=[io_core])


def _consolidation_host(
        ctx: Any, vmhost: Any,
) -> Tuple["BaselineModel", List[Core], Callable[[Vm], NetPort]]:
    nic = vmhost.new_nic("external")  # unused by block workloads
    io_core = vmhost.new_io_core()
    model = BaselineModel(ctx.env, nic, io_core, costs=ctx.costs,
                          stats=ctx.stats)
    return model, [io_core], model.attach_vm


register_model(ModelInfo(
    name="baseline",
    description=("KVM/virtio trap-and-emulate with vhost threads "
                 "(state of practice)"),
    capabilities=Capabilities(net=True, block=True, polling=False,
                              topologies=("simple", "consolidation"),
                              ablation=False, exitless=False),
    build_simple=_build_simple,
    build_consolidation=lambda ctx: consolidated_per_host(
        ctx, _consolidation_host),
    tab_rank=50, throughput_rank=50, block_rank=30,
))
