"""The four virtual I/O models compared in the paper (§2, Figure 4).

* :class:`BaselineModel` — KVM/virtio trap-and-emulate (state of practice)
* :class:`ElvisModel` — local sidecores polling virtio rings (state of the art)
* :class:`OptimumModel` — SRIOV+ELI, non-interposable bare-metal performance
* :class:`VrioModel` — paravirtual remote I/O (this paper); ``poll=False``
  gives the "vrio w/o poll" variant of Table 3/Figure 5
"""

from .base import (
    ExternalEndpoint,
    IoEventStats,
    NetMessage,
    NetPort,
    message_wire_bytes,
)
from .baseline import BaselineBlockHandle, BaselineModel
from .costs import DEFAULT_COSTS, CostModel
from .dynamic import DynamicSidecoreAllocator
from .elvis import ElvisBlockHandle, ElvisModel
from .sriov import OptimumModel
from .vrio import (
    BlockDeviceError,
    VmhostChannel,
    VrioBlockHandle,
    VrioClient,
    VrioModel,
)

__all__ = [
    "IoEventStats", "NetMessage", "NetPort", "ExternalEndpoint",
    "message_wire_bytes",
    "CostModel", "DEFAULT_COSTS",
    "BaselineModel", "BaselineBlockHandle",
    "ElvisModel", "ElvisBlockHandle",
    "DynamicSidecoreAllocator",
    "OptimumModel",
    "VrioModel", "VmhostChannel", "VrioClient", "VrioBlockHandle",
    "BlockDeviceError",
]
