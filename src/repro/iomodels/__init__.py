"""The virtual I/O models compared in the paper (§2, Figure 4) and the
registry that catalogs them.

The paper's contenders:

* :class:`BaselineModel` — KVM/virtio trap-and-emulate (state of practice)
* :class:`ElvisModel` — local sidecores polling virtio rings (state of the art)
* :class:`OptimumModel` — SRIOV+ELI, non-interposable bare-metal performance
* :class:`VrioModel` — paravirtual remote I/O (this paper); ``poll=False``
  gives the "vrio w/o poll" variant of Table 3/Figure 5

Post-paper contenders (ROADMAP item 3):

* :class:`NvmePtModel` — NVMe I/O-queue passthrough (arXiv 2304.05148)
* :class:`FlexbsoModel` — block offload to a per-host engine (arXiv 2409.02381)
* :class:`SwptModel` — software-only passthrough (arXiv 1508.06367)

Each model module registers itself with :mod:`repro.iomodels.registry` at
import time; everything downstream (testbed builders, experiment model
lists, CLI listings) derives from that catalog.
"""

from .base import (
    ExternalEndpoint,
    IoEventStats,
    NetMessage,
    NetPort,
    message_wire_bytes,
)
from .baseline import BaselineBlockHandle, BaselineModel
from .costs import DEFAULT_COSTS, CostModel
from .dynamic import DynamicSidecoreAllocator
from .elvis import ElvisBlockHandle, ElvisModel
from .flexbso import FlexbsoBlockHandle, FlexbsoModel
from .nvme_pt import NvmePtBlockHandle, NvmePtModel
from .registry import (
    Capabilities,
    ModelInfo,
    all_models,
    filter_models,
    get_model,
    model_names,
    register_model,
)
from .sriov import OptimumModel
from .swpt import SwptBlockHandle, SwptModel
from .vrio import (
    BlockDeviceError,
    VmhostChannel,
    VrioBlockHandle,
    VrioClient,
    VrioModel,
)

__all__ = [
    "IoEventStats", "NetMessage", "NetPort", "ExternalEndpoint",
    "message_wire_bytes",
    "CostModel", "DEFAULT_COSTS",
    "Capabilities", "ModelInfo", "register_model", "get_model",
    "model_names", "filter_models", "all_models",
    "BaselineModel", "BaselineBlockHandle",
    "ElvisModel", "ElvisBlockHandle",
    "DynamicSidecoreAllocator",
    "OptimumModel",
    "NvmePtModel", "NvmePtBlockHandle",
    "FlexbsoModel", "FlexbsoBlockHandle",
    "SwptModel", "SwptBlockHandle",
    "VrioModel", "VmhostChannel", "VrioClient", "VrioBlockHandle",
    "BlockDeviceError",
]
