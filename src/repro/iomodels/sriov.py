"""The *optimum* I/O model: SRIOV with exitless interrupts (ELI).

Each VM is assigned its own NIC virtual function; the guest talks to the
device directly and receives its interrupts without host involvement
(ELI), so a request-response costs exactly two guest interrupts and
nothing else (Table 3).  The price: **no interposition is possible** —
attaching an interposer chain or a host-managed block device raises,
because that is precisely what the paper says SRIOV cannot do.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

from ..guest.vm import Vm
from ..hw.nic import Nic, NicFunction
from ..net.frame import EthernetFrame, STANDARD_MTU
from ..sim import Environment, Event
from .base import IoEventStats, NetMessage, NetPort, message_wire_bytes
from .costs import CostModel, DEFAULT_COSTS
from .registry import Capabilities, ModelInfo, SimpleWiring, register_model

__all__ = ["OptimumModel"]


class OptimumModel:
    """SRIOV+ELI: direct device assignment, bare-metal-like performance."""

    name = "optimum"
    interposable = False

    def __init__(self, env: Environment, costs: CostModel = DEFAULT_COSTS,
                 stats: Optional[IoEventStats] = None,
                 mtu: int = STANDARD_MTU,
                 tracer: Optional[Any] = None) -> None:
        self.env = env
        self.costs = costs
        self.stats = stats if stats is not None else IoEventStats("optimum")
        self.mtu = mtu
        self.tracer = tracer  # optional repro.sim.trace.Tracer
        self._vf_of: Dict[Vm, NicFunction] = {}
        self._port_of: Dict[Vm, NetPort] = {}

    def register_telemetry(self, namespace: Any) -> None:
        """Register this model's instruments into a metrics namespace.

        SRIOV has no host datapath, so there is nothing beyond the VF
        counters (registered with their NICs) and the VM population.
        """
        namespace.register_gauge("attached_vms",
                                 lambda m=self: len(m._port_of))

    def attach_vm(self, vm: Vm, nic: Nic) -> NetPort:
        """Assign a fresh VF on ``nic`` to ``vm``; returns its net port."""
        if vm in self._port_of:
            raise ValueError(f"{vm.name} already attached")
        vm.stats = self.stats
        vf = nic.create_function(f"vf-{vm.name}", notify_mode="eli")
        port = NetPort(self.env, vm, vf.mac,
                       transmit=lambda msg, v=vm: self._start_tx(v, msg))
        vf.on_notify = lambda v=vm: self._on_rx(v)
        vf.on_tx_complete = lambda v=vm: self._on_tx_complete(v)
        self._vf_of[vm] = vf
        self._port_of[vm] = port
        return port

    def attach_block_device(self, vm: Vm, device: Any) -> None:
        raise NotImplementedError(
            "SRIOV cannot expose a host-managed block device "
            "(\"there is no such thing as an SRIOV ramdisk\", paper §5)")

    def add_interposer(self, interposer: Any) -> None:
        raise NotImplementedError(
            "SRIOV bypasses the host: interposition is impossible (§2)")

    # -- transmit -------------------------------------------------------------

    def _start_tx(self, vm: Vm, message: NetMessage) -> None:
        self.env.process(self._tx_path(vm, message), name=f"opt-tx:{vm.name}")

    def _tx_path(self, vm: Vm, message: NetMessage) -> Iterator[Event]:
        c = self.costs
        if self.tracer:
            self.tracer.point(message.message_id, "guest_tx",
                              vm=vm.name, bytes=message.size_bytes)
        cycles = int(c.guest_net_per_msg_cycles
                     + c.guest_net_per_byte_cycles * message.size_bytes
                     + c.ring_op_cycles)
        yield vm.vcpu.execute(cycles, tag="net_tx")
        frame = EthernetFrame(
            src=self._vf_of[vm].mac, dst=message.dst, payload=message,
            payload_bytes=message_wire_bytes(message.size_bytes, self.mtu),
            kind=message.kind, created_ns=self.env.now)
        # completion_interrupt: the VF raises its send-complete interrupt,
        # which ELI routes straight into the guest.
        self._vf_of[vm].transmit(frame, completion_interrupt=True)

    def _on_tx_complete(self, vm: Vm) -> None:
        vm.deliver_interrupt_exitless()

    # -- receive ----------------------------------------------------------------

    def _on_rx(self, vm: Vm) -> None:
        self.env.process(self._rx_path(vm), name=f"opt-rx:{vm.name}")

    def _rx_path(self, vm: Vm) -> Iterator[Event]:
        c = self.costs
        vf = self._vf_of[vm]
        port = self._port_of[vm]
        while True:
            ok, frame = vf.rx_ring.try_get()
            if not ok:
                break
            message: NetMessage = frame.payload
            extra = int(c.guest_net_per_msg_cycles
                        + c.guest_net_per_byte_cycles * message.size_bytes)
            yield vm.deliver_interrupt_exitless(extra_cycles=extra)
            if self.tracer:
                self.tracer.point(message.message_id, "guest_deliver",
                                  vm=vm.name)
            port.deliver(message)
        vf.rearm()


# -- registry wiring ----------------------------------------------------------

def _build_simple(ctx: Any) -> SimpleWiring:
    host_nic = ctx.vmhost.new_nic("external")
    ctx.wire_loadgen(host_nic)
    model = OptimumModel(ctx.env, costs=ctx.costs, stats=ctx.stats)
    ports = [model.attach_vm(vm, host_nic) for vm in ctx.vms]
    return SimpleWiring(model=model, ports=ports, service_cores=[])


register_model(ModelInfo(
    name="optimum",
    description=("SRIOV+ELI direct assignment: bare-metal performance, "
                 "no interposition, no host-managed block devices"),
    capabilities=Capabilities(net=True, block=False, polling=False,
                              topologies=("simple",),
                              ablation=False, exitless=True),
    build_simple=_build_simple,
    tab_rank=10, throughput_rank=10, block_rank=100,
))
