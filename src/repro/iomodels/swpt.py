"""The *swpt* I/O model: software-only passthrough (Kedia/Bansal).

Modeled after software techniques for direct device assignment without
hardware support (arXiv 1508.06367): the device is mapped straight into
the guest, but the platform lacks interrupt-remapping/posted-interrupt
hardware, so a dedicated *host polling thread* per VM watches the
device's completion state and injects interrupts into the guest through
the classic VMM path.  The data path itself (submissions, doorbells) is
direct and exitless — what costs is every completion: polling-core
cycles to notice and classify it, then a full injection, which the guest
acknowledges with a trapped EOI.

Unlike Elvis there is no sidecore *sharing*: each VM gets its own
polling core, so the design burns host cores linearly with VM count but
never queues one VM's completions behind another's.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..guest.vm import Vm
from ..hw.cpu import Core
from ..hw.nic import Nic, NicFunction
from ..hw.storage import BlockRequest, StorageDevice
from ..net.frame import EthernetFrame, STANDARD_MTU
from ..sim import Counter, Environment, Event
from .base import IoEventStats, NetMessage, NetPort, message_wire_bytes
from .costs import CostModel, DEFAULT_COSTS
from .registry import (
    Capabilities,
    ModelInfo,
    SimpleWiring,
    consolidated_per_host,
    register_model,
)

__all__ = ["SwptModel", "SwptBlockHandle"]


class SwptBlockHandle:
    """Workload-facing block device on a directly mapped queue."""

    def __init__(self, model: "SwptModel", vm: Vm,
                 device: StorageDevice) -> None:
        self.model = model
        self.vm = vm
        self.device = device

    def submit(self, request: BlockRequest) -> Event:
        """Issue a block request on the VM's direct queue; completion is
        noticed by the VM's polling thread and injected."""
        done = self.model.env.event()
        self.model.env.process(
            self.model._blk_path(self.vm, self.device, request, done),
            name=f"swpt-blk:{self.vm.name}")
        return done


class SwptModel:
    """Software-only passthrough: direct mapping, per-VM polling thread."""

    name = "swpt"
    interposable = False

    def __init__(self, env: Environment, nic: Nic, poll_cores: List[Core],
                 costs: CostModel = DEFAULT_COSTS,
                 stats: Optional[IoEventStats] = None,
                 mtu: int = STANDARD_MTU,
                 tracer: Optional[Any] = None) -> None:
        self.env = env
        self.nic = nic
        self.costs = costs
        self.stats = stats if stats is not None else IoEventStats("swpt")
        self.mtu = mtu
        self.tracer = tracer  # optional repro.sim.trace.Tracer
        self._free_cores = list(poll_cores)
        self._core_of: Dict[Vm, Core] = {}
        self._fn_of: Dict[Vm, NicFunction] = {}
        self._port_of: Dict[Vm, NetPort] = {}
        self.polled_events = Counter("polled_events")

    def register_telemetry(self, namespace: Any) -> None:
        """Register this model's instruments into a metrics namespace."""
        namespace.register_gauge("attached_vms",
                                 lambda m=self: len(m._port_of))
        namespace.register_gauge("polling_cores",
                                 lambda m=self: len(m._core_of))
        namespace.register_counter("polled_events", self.polled_events)

    def attach_vm(self, vm: Vm) -> NetPort:
        """Map the device into ``vm`` and pin it a polling core."""
        if vm in self._port_of:
            raise ValueError(f"{vm.name} already attached")
        if not self._free_cores:
            raise ValueError(
                f"no polling core left for {vm.name}: swpt needs one "
                "dedicated host core per VM")
        vm.stats = self.stats
        self._core_of[vm] = self._free_cores.pop(0)
        fn = self.nic.create_function(f"swpt-{vm.name}", notify_mode="eli")
        fn.on_notify = lambda v=vm: self._on_rx(v)
        fn.on_tx_complete = lambda v=vm: self._on_tx_complete(v)
        self._fn_of[vm] = fn
        port = NetPort(self.env, vm, fn.mac,
                       transmit=lambda msg, v=vm: self._start_tx(v, msg))
        self._port_of[vm] = port
        return port

    def attach_block_device(self, vm: Vm,
                            device: StorageDevice) -> SwptBlockHandle:
        if vm not in self._port_of:
            raise ValueError(f"attach_vm({vm.name}) first")
        return SwptBlockHandle(self, vm, device)

    def add_interposer(self, interposer: Any) -> None:
        raise NotImplementedError(
            "direct device mapping bypasses the host on the data path: "
            "interposition is impossible, as with SRIOV (§2)")

    # -- transmit (direct, exitless) -------------------------------------------

    def _start_tx(self, vm: Vm, message: NetMessage) -> None:
        self.env.process(self._tx_path(vm, message),
                         name=f"swpt-tx:{vm.name}")

    def _tx_path(self, vm: Vm, message: NetMessage) -> Iterator[Event]:
        c = self.costs
        if self.tracer:
            self.tracer.point(message.message_id, "guest_tx",
                              vm=vm.name, bytes=message.size_bytes)
        cycles = int(c.guest_net_per_msg_cycles
                     + c.guest_net_per_byte_cycles * message.size_bytes
                     + c.ring_op_cycles)
        yield vm.vcpu.execute(cycles, tag="net_tx")
        frame = EthernetFrame(
            src=self._fn_of[vm].mac, dst=message.dst, payload=message,
            payload_bytes=message_wire_bytes(message.size_bytes, self.mtu),
            kind=message.kind, created_ns=self.env.now)
        self._fn_of[vm].transmit(frame, completion_interrupt=True)

    def _on_tx_complete(self, vm: Vm) -> None:
        self.env.process(self._poll_inject(vm), name=f"swpt-txc:{vm.name}")

    def _poll_inject(self, vm: Vm) -> Iterator[Event]:
        """The polling thread notices a completion and injects it."""
        c = self.costs
        self.polled_events.add()
        yield self._core_of[vm].execute(
            c.swpt_poll_per_event_cycles + c.injection_cycles, tag="poll")
        vm.deliver_interrupt_injected()

    # -- receive ---------------------------------------------------------------

    def _on_rx(self, vm: Vm) -> None:
        self.env.process(self._rx_path(vm), name=f"swpt-rx:{vm.name}")

    def _rx_path(self, vm: Vm) -> Iterator[Event]:
        c = self.costs
        fn = self._fn_of[vm]
        port = self._port_of[vm]
        while True:
            ok, frame = fn.rx_ring.try_get()
            if not ok:
                break
            message: NetMessage = frame.payload
            self.polled_events.add()
            span = None
            if self.tracer:
                span = self.tracer.begin(message.message_id, "poll_service",
                                         core=self._core_of[vm].name,
                                         direction="rx")
            yield self._core_of[vm].execute(
                c.swpt_poll_per_event_cycles + c.injection_cycles,
                tag="poll")
            if span is not None:
                self.tracer.end(span)
            extra = int(c.guest_net_per_msg_cycles
                        + c.guest_net_per_byte_cycles * message.size_bytes)
            yield vm.deliver_interrupt_injected(extra_cycles=extra)
            if self.tracer:
                self.tracer.point(message.message_id, "guest_deliver",
                                  vm=vm.name)
            port.deliver(message)
        fn.rearm()

    # -- block -----------------------------------------------------------------

    def _blk_path(self, vm: Vm, device: StorageDevice, request: BlockRequest,
                  done: Event) -> Iterator[Event]:
        c = self.costs
        request.issued_ns = self.env.now
        # Direct submission: the guest drives the whole device stack
        # itself (no host software between it and the queue).
        yield vm.vcpu.execute(int(c.guest_blk_per_req_cycles
                                  + c.ring_op_cycles
                                  + device.cpu_cycles(request)),
                              tag="blk_submit")
        yield device.submit(request)
        # Completion: no remapping hardware, so the polling thread reads
        # the completion status and injects.
        self.polled_events.add()
        yield self._core_of[vm].execute(
            c.swpt_poll_per_event_cycles + c.injection_cycles, tag="poll")
        yield vm.deliver_interrupt_injected(extra_cycles=c.ring_op_cycles)
        done.succeed(request)


# -- registry wiring ----------------------------------------------------------

def _build_simple(ctx: Any) -> SimpleWiring:
    host_nic = ctx.vmhost.new_nic("external")
    ctx.wire_loadgen(host_nic)
    # One dedicated polling core per VM — the spec's sidecore count is
    # ignored by design (no sidecore sharing in swpt).
    cores = [ctx.vmhost.new_sidecore() for _ in ctx.vms]
    model = SwptModel(ctx.env, host_nic, cores, costs=ctx.costs,
                      stats=ctx.stats)
    ports = [model.attach_vm(vm) for vm in ctx.vms]
    return SimpleWiring(model=model, ports=ports, service_cores=cores)


def _consolidation_host(
        ctx: Any, vmhost: Any,
) -> Tuple["SwptModel", List[Core], Callable[[Vm], NetPort]]:
    nic = vmhost.new_nic("external")
    cores = [vmhost.new_sidecore() for _ in range(ctx.spec.vms_per_host)]
    model = SwptModel(ctx.env, nic, cores, costs=ctx.costs, stats=ctx.stats)
    return model, cores, model.attach_vm


register_model(ModelInfo(
    name="swpt",
    description=("software-only passthrough: direct mapping, per-VM host "
                 "polling thread injects completions (arXiv 1508.06367)"),
    capabilities=Capabilities(net=True, block=True, polling=True,
                              topologies=("simple", "consolidation"),
                              ablation=False, exitless=False),
    build_simple=_build_simple,
    build_consolidation=lambda ctx: consolidated_per_host(
        ctx, _consolidation_host),
    tab_rank=80, throughput_rank=80, block_rank=60,
))
