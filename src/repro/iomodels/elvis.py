"""The *Elvis* I/O model: local sidecores polling virtio rings + ELI.

State of the art for interposable virtual I/O (Har'El et al., ATC'13).
Guests post virtio requests to shared-memory rings *without kicking* — a
dedicated host sidecore polls the rings and services requests, delivering
completions by exitless IPI.  The physical NIC, however, is still driven in
the standard interrupt fashion, so each request-response costs 2 host
interrupts on top of the 2 guest interrupts (Table 3) — the overhead vRIO
removes by polling the NICs at the IOhost.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..guest.vm import Vm
from ..hw.cpu import Core
from ..hw.nic import Nic, NicFunction
from ..hw.storage import BlockRequest, StorageDevice
from ..net.frame import EthernetFrame, STANDARD_MTU
from ..interpose import InterposerChain
from ..sim import Environment, Event
from ..virtio import VirtioRequest, Virtqueue
from .base import IoEventStats, NetMessage, NetPort, message_wire_bytes
from .costs import CostModel, DEFAULT_COSTS
from .registry import (
    Capabilities,
    ModelInfo,
    SimpleWiring,
    consolidated_per_host,
    register_model,
)

__all__ = ["ElvisModel", "ElvisBlockHandle"]


class ElvisBlockHandle:
    """Workload-facing paravirtual block device backed by a local sidecore."""

    def __init__(self, model: "ElvisModel", vm: Vm,
                 device: StorageDevice) -> None:
        self.model = model
        self.vm = vm
        self.device = device

    def submit(self, request: BlockRequest) -> Event:
        """Issue a block request; the event triggers after guest completion
        handling (interrupt + block-layer reap) has run."""
        done = self.model.env.event()
        self.model.env.process(
            self.model._blk_path(self.vm, self.device, request, done),
            name=f"elvis-blk:{self.vm.name}")
        return done


class ElvisModel:
    """Elvis: per-VMhost sidecores, polled rings, interrupt-driven NIC."""

    name = "elvis"
    interposable = True

    def __init__(self, env: Environment, nic: Nic, sidecores: List[Core],
                 costs: CostModel = DEFAULT_COSTS,
                 stats: Optional[IoEventStats] = None,
                 interposers: Optional[InterposerChain] = None,
                 mtu: int = STANDARD_MTU,
                 tracer: Optional[Any] = None) -> None:
        if not sidecores:
            raise ValueError("Elvis requires at least one sidecore")
        self.env = env
        self.nic = nic
        self.sidecores = sidecores
        self.costs = costs
        self.stats = stats if stats is not None else IoEventStats("elvis")
        self.interposers = interposers if interposers is not None else InterposerChain()
        self.mtu = mtu
        self.tracer = tracer  # optional repro.sim.trace.Tracer
        self._fn_of: Dict[Vm, NicFunction] = {}
        self._port_of: Dict[Vm, NetPort] = {}
        self._sidecore_of: Dict[Vm, Core] = {}
        self._tx_vq_of: Dict[Vm, Virtqueue] = {}
        self._attach_count = 0

    def register_telemetry(self, namespace: Any) -> None:
        """Register this model's instruments into a metrics namespace."""
        namespace.register_gauge("attached_vms",
                                 lambda m=self: len(m._port_of))
        for vm, vq in self._tx_vq_of.items():
            ns = namespace.namespace(f"txq.{vm.name}")
            for counter in ("kicks", "kicks_suppressed", "posted",
                            "completed", "full_rejections"):
                ns.register_counter(counter, getattr(vq, counter))

    def add_interposer(self, interposer: Any) -> None:
        self.interposers.add(interposer)

    def sidecore_for(self, vm: Vm) -> Core:
        return self._sidecore_of[vm]

    def attach_vm(self, vm: Vm, sidecore: Optional[Core] = None) -> NetPort:
        """Create the VM's paravirtual net device; returns its port.

        VMs are spread round-robin across sidecores unless one is given.
        """
        if vm in self._port_of:
            raise ValueError(f"{vm.name} already attached")
        vm.stats = self.stats
        if sidecore is None:
            sidecore = self.sidecores[self._attach_count % len(self.sidecores)]
        self._attach_count += 1
        self._sidecore_of[vm] = sidecore
        fn = self.nic.create_function(f"elvis-{vm.name}",
                                      notify_mode="interrupt")
        fn.on_notify = lambda v=vm: self._on_nic_rx(v)
        fn.on_tx_complete = lambda v=vm: self._on_tx_complete(v)
        self._fn_of[vm] = fn
        tx_vq = Virtqueue(self.env, name=f"{vm.name}.txq")
        tx_vq.disable_kicks()  # the sidecore polls
        self._tx_vq_of[vm] = tx_vq
        port = NetPort(self.env, vm, fn.mac,
                       transmit=lambda msg, v=vm: self._start_tx(v, msg))
        self._port_of[vm] = port
        return port

    def attach_block_device(self, vm: Vm,
                            device: StorageDevice) -> ElvisBlockHandle:
        if vm not in self._port_of:
            raise ValueError(f"attach_vm({vm.name}) first")
        return ElvisBlockHandle(self, vm, device)

    # -- guest transmit --------------------------------------------------------

    def _start_tx(self, vm: Vm, message: NetMessage) -> None:
        self.env.process(self._guest_tx(vm, message),
                         name=f"elvis-tx:{vm.name}")

    def _guest_tx(self, vm: Vm, message: NetMessage) -> Iterator[Event]:
        c = self.costs
        if self.tracer:
            self.tracer.point(message.message_id, "guest_tx",
                              vm=vm.name, bytes=message.size_bytes)
        cycles = int(c.guest_net_per_msg_cycles
                     + c.guest_net_per_byte_cycles * message.size_bytes
                     + c.ring_op_cycles)
        yield vm.vcpu.execute(cycles, tag="net_tx")
        request = VirtioRequest(kind="net_tx", size_bytes=message.size_bytes,
                                payload=message)
        kick = self._tx_vq_of[vm].add_avail(request)
        assert not kick, "Elvis rings must have kicks suppressed"
        # The sidecore's poll loop picks the request up.
        self.env.process(self._sidecore_tx(vm, message),
                         name=f"elvis-sc-tx:{vm.name}")

    def _sidecore_tx(self, vm: Vm, message: NetMessage) -> Iterator[Event]:
        c = self.costs
        sidecore = self._sidecore_of[vm]
        ok, request = self._tx_vq_of[vm].try_get_avail()
        if not ok:
            return
        if not self.interposers.admit(message):
            return
        span = None
        if self.tracer:
            span = self.tracer.begin(message.message_id, "sidecore_service",
                                     core=sidecore.name, direction="tx")
        cycles = int(c.backend_per_msg_cycles
                     + c.sidecore_per_byte_cycles * message.size_bytes
                     + self.interposers.cycles(message.size_bytes, message.kind))
        yield sidecore.execute(cycles, tag="backend")
        frame = EthernetFrame(
            src=self._fn_of[vm].mac, dst=message.dst, payload=message,
            payload_bytes=message_wire_bytes(message.size_bytes, self.mtu),
            kind=message.kind, created_ns=self.env.now)
        # Physical NIC tx raises a host interrupt on completion.
        self._fn_of[vm].transmit(frame, completion_interrupt=True)
        if span is not None:
            self.tracer.end(span)

    def _on_tx_complete(self, vm: Vm) -> None:
        self.stats.host_interrupts.add()
        self.env.process(self._tx_complete_path(vm),
                         name=f"elvis-txc:{vm.name}")

    def _tx_complete_path(self, vm: Vm) -> Iterator[Event]:
        sidecore = self._sidecore_of[vm]
        yield sidecore.execute(self.costs.host_irq_cycles, tag="host_irq",
                               high_priority=True)
        # Sidecore marks the descriptor used and IPIs the guest (exitless):
        # the guest's "response sent" interrupt, 2nd of Table 3's pair.
        vm.deliver_interrupt_exitless()

    # -- receive -----------------------------------------------------------------

    def _on_nic_rx(self, vm: Vm) -> None:
        self.stats.host_interrupts.add()
        self.env.process(self._rx_path(vm), name=f"elvis-rx:{vm.name}")

    def _rx_path(self, vm: Vm) -> Iterator[Event]:
        c = self.costs
        sidecore = self._sidecore_of[vm]
        fn = self._fn_of[vm]
        port = self._port_of[vm]
        yield sidecore.execute(c.host_irq_cycles, tag="host_irq",
                               high_priority=True)
        while True:
            ok, frame = fn.rx_ring.try_get()
            if not ok:
                break
            message: NetMessage = frame.payload
            if not self.interposers.admit(message):
                continue
            span = None
            if self.tracer:
                span = self.tracer.begin(message.message_id,
                                         "sidecore_service",
                                         core=sidecore.name, direction="rx")
            cycles = int(c.backend_per_msg_cycles
                         + c.sidecore_per_byte_cycles * message.size_bytes
                         + self.interposers.cycles(message.size_bytes,
                                                   message.kind))
            yield sidecore.execute(cycles, tag="backend")
            if span is not None:
                self.tracer.end(span)
            extra = int(c.guest_net_per_msg_cycles
                        + c.guest_net_per_byte_cycles * message.size_bytes)
            yield vm.deliver_interrupt_exitless(extra_cycles=extra)
            if self.tracer:
                self.tracer.point(message.message_id, "guest_deliver",
                                  vm=vm.name)
            port.deliver(message)
        fn.rearm()

    # -- block -----------------------------------------------------------------

    def _blk_path(self, vm: Vm, device: StorageDevice, request: BlockRequest,
                  done: Event) -> Iterator[Event]:
        c = self.costs
        sidecore = self._sidecore_of[vm]
        request.issued_ns = self.env.now
        # Guest: block layer + ring post (no kick: the sidecore polls).
        yield vm.vcpu.execute(c.guest_blk_per_req_cycles + c.ring_op_cycles,
                              tag="blk_submit")
        # Sidecore back-end: software path + data touch, then the medium.
        kind = "blk_read" if request.op == "read" else "blk_write"
        cycles = int(device.cpu_cycles(request)
                     + self.interposers.cycles(request.size_bytes, kind))
        yield sidecore.execute(cycles, tag="blk_backend")
        yield device.submit(request)
        yield sidecore.execute(c.ring_op_cycles, tag="blk_complete")
        # Completion IPI into the guest, then the guest block layer reaps.
        yield vm.deliver_interrupt_exitless(extra_cycles=c.ring_op_cycles)
        done.succeed(request)


# -- registry wiring ----------------------------------------------------------

def _build_simple(ctx: Any) -> SimpleWiring:
    host_nic = ctx.vmhost.new_nic("external")
    ctx.wire_loadgen(host_nic)
    cores = [ctx.vmhost.new_sidecore() for _ in range(ctx.spec.sidecores)]
    model = ElvisModel(ctx.env, host_nic, cores, costs=ctx.costs,
                       stats=ctx.stats)
    ports = [model.attach_vm(vm) for vm in ctx.vms]
    return SimpleWiring(model=model, ports=ports, service_cores=cores)


def _consolidation_host(
        ctx: Any, vmhost: Any,
) -> Tuple["ElvisModel", List[Core], Callable[[Vm], NetPort]]:
    nic = vmhost.new_nic("external")  # unused by block workloads
    cores = [vmhost.new_sidecore() for _ in range(ctx.spec.sidecores)]
    model = ElvisModel(ctx.env, nic, cores, costs=ctx.costs, stats=ctx.stats)
    return model, cores, model.attach_vm


register_model(ModelInfo(
    name="elvis",
    description=("local sidecores polling virtio rings + ELI exitless "
                 "completions (state of the art, Har'El et al. ATC'13)"),
    capabilities=Capabilities(net=True, block=True, polling=True,
                              topologies=("simple", "consolidation"),
                              ablation=False, exitless=True),
    build_simple=_build_simple,
    build_consolidation=lambda ctx: consolidated_per_host(
        ctx, _consolidation_host),
    tab_rank=30, throughput_rank=20, block_rank=10,
))
