"""The calibrated cost model — single source of truth for cycle/latency
constants across all I/O models.

Calibration anchors (paper §5, see DESIGN.md):

* optimum netperf RR ≈ 30–32 µs round trip;
* vRIO adds ≈ 12–13 µs (one extra hop through the IOhost);
* Elvis sits ≈ 8 µs below vRIO at N=1 and crosses over near N=6 as its
  physical-interrupt load grows;
* Figure 10 cycles/packet: Elvis ≈ +1 %, vRIO ≈ +9 %, baseline ≈ +40 %
  over the optimum;
* one vRIO sidecore saturates near 13 Gbps of stream traffic (Fig. 13b).

Every constant here is an *input* to the event simulation; latencies and
throughputs are emergent outputs.  The ``baseline_app_dilation`` factor is
the one deliberately coarse knob: it stands in for the cache/TLB pollution
and scheduler noise that exits inflict on co-located guest work, which a
cycle-count model cannot produce from first principles (the paper measures
the baseline 2x below the optimum under load and notes its 5% run-to-run
instability).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["CostModel", "DEFAULT_COSTS"]


@dataclass
class CostModel:
    """Cycle and latency constants for the simulated testbed."""

    # -- clock frequencies of the paper's machines (GHz) ---------------------
    vmhost_ghz: float = 2.2        # IBM x3550 M4, Xeon E5-2660
    iohost_ghz: float = 2.7        # IBM x3650 M4, Xeon E5-2680
    loadgen_ghz: float = 2.93      # IBM x3550 M2, Xeon 5500

    # -- guest-visible virtualization events (cycles) ------------------------
    guest_irq_handler_cycles: int = 2_600
    eoi_exit_cycles: int = 3_500
    sync_exit_cycles: int = 3_500

    # -- host-side virtualization events (cycles) -----------------------------
    injection_cycles: int = 2_800      # interrupt injection (baseline)
    # Physical NIC interrupt handling, including its indirect (cache/TLB)
    # damage.  Deliberately heavy: this is the overhead the sidecore/polling
    # design exists to amortize, and what vRIO's IOhost polling eliminates
    # outright ("the cost of interrupts is substantial despite coalescing",
    # §5).  Under load, coalescing spreads it over many frames.
    host_irq_cycles: int = 5_000
    vhost_wakeup_cycles: int = 2_500   # baseline vhost thread wakeup work
    vhost_sched_delay_ns: int = 2_500  # baseline scheduler wakeup latency

    # -- virtio protocol (cycles) ---------------------------------------------
    ring_op_cycles: int = 500          # add/reap one descriptor chain
    backend_per_msg_cycles: int = 2_700

    # -- guest network stack (cycles) -----------------------------------------
    guest_net_per_msg_cycles: int = 7_000
    guest_net_per_byte_cycles: float = 0.05
    guest_blk_per_req_cycles: int = 7_000

    # -- vRIO transport driver, guest side (cycles) ---------------------------
    vrio_transport_per_msg_cycles: int = 2_200
    vrio_transport_per_frag_cycles: int = 250
    # Extra per-send() cost of the vRIO front-end + transport versus a plain
    # virtio/SRIOV xmit path; at 64 B message sizes this is what makes vRIO
    # spend ~9% more cycles per packet (Fig. 10) and lose 5-8% of stream
    # throughput (Fig. 9).
    vrio_transport_per_send_cycles: int = 100

    # -- vRIO I/O hypervisor worker (cycles) ----------------------------------
    worker_rx_per_msg_cycles: int = 1_300      # poll/classify/steer + decap
    worker_tx_per_msg_cycles: int = 1_300      # encap + transmit
    worker_per_frag_cycles: int = 220          # zero-copy reassembly, per frag
    worker_per_byte_cycles: float = 1.60       # interpose/forward touch cost
    worker_copy_per_byte_cycles: float = 0.45  # extra when zero-copy fails
    # The extra hop's fixed pipeline latency per IOhost pass: NIC
    # store-and-forward of jumbo frames, DMA rings, PCIe doorbells.  Pure
    # latency — the DMA engines work while the worker core serves others.
    iohost_forward_latency_ns: int = 3_300
    # Remote block requests additionally pay the IOhost block pipeline
    # (reliability-layer bookkeeping at both ends, data DMA in/out of
    # worker buffers, device queue turnaround) — pure latency, calibrated
    # to the paper's "up to 2.2x" remote-ramdisk figure (§1, §5).
    vrio_block_service_latency_ns: int = 40_000
    # §4.4: when the IOhost *reads*, data must be copied into the block
    # system's buffers (writes reuse aligned interiors zero-copy).
    worker_block_copy_per_byte_cycles: float = 0.05
    # Block ops ride a pre-parsed fast path at the worker keyed by device
    # id (one cost covers rx classification + response transmit); the data
    # bytes themselves move zero-copy (§4.4), unlike net forwarding.
    worker_blk_per_op_cycles: int = 800

    # -- sidecore (Elvis) / vhost (baseline) data touch -----------------------
    sidecore_per_byte_cycles: float = 0.25

    # -- NVMe I/O-queue passthrough (nvme_pt, arXiv 2304.05148) ---------------
    # Data-path submissions ring a *shadow* doorbell: a guest store to a
    # shared page the device polls, so no exit — just the store plus the
    # device-side pickup the guest waits out.
    nvme_shadow_doorbell_cycles: int = 400
    # Admin commands (queue create/delete, abort) stay trapped: emulation
    # work in the host on top of the sync-exit cost itself.
    nvme_admin_cmd_cycles: int = 9_000

    # -- FlexBSO block-storage offload (flexbso, arXiv 2409.02381) ------------
    # Per-request processing on the offload engine (SmartNIC service core):
    # virtio descriptor parse, request translation, completion write-back.
    flexbso_engine_per_req_cycles: int = 3_200
    # DMA staging of request data through the engine's memory.
    flexbso_dma_per_byte_cycles: float = 0.12
    # Doorbell MMIO to the engine: pure PCIe posting latency, no exit.
    flexbso_doorbell_latency_ns: int = 400

    # -- software-only passthrough (swpt, arXiv 1508.06367) -------------------
    # Per delivered event on the dedicated host polling core: completion
    # status read, interrupt classification, queue bookkeeping — the
    # software stand-in for interrupt-remapping hardware.
    swpt_poll_per_event_cycles: int = 1_800

    # -- application dilation (dimensionless) ---------------------------------
    # Models cache pollution + scheduler noise that exits inflict on guest
    # application work in the trap-and-emulate baseline.
    baseline_app_dilation: float = 1.45

    # -- workload anchors (guest application cycles per operation) ------------
    netperf_rr_server_cycles: int = 3_000       # netserver echo work
    netperf_stream_send_cycles: int = 1_200     # per 64 B send syscall
    netperf_stream_msgs_per_chunk: int = 1_024  # TSO-coalesced into 64 KB
    apache_request_cycles: int = 370_000        # full HTTP request service
    apache_round_trips: int = 4                 # TCP setup + req/resp + FIN
    memcached_request_cycles: int = 14_000      # one key-value op
    # Filebench per-op guest cost: the O_DIRECT submit/complete path is
    # expensive relative to a ramdisk access ("the relatively high number
    # of CPU cycles required to process each request", §5) — this ratio is
    # what makes guest VCPUs the contended resource in Fig. 14.
    filebench_op_cycles: int = 25_000
    webserver_op_cycles: int = 200_000          # open/read/close + app logic

    # -- load generator (bare-metal netperf/memslap/ab client) ----------------
    loadgen_rr_cycles: int = 43_000    # full client transaction incl. syscalls
    loadgen_per_msg_cycles: int = 4_500
    loadgen_numa_remote_dilation: float = 1.35  # Fig. 13a NUMA artifact

    # -- fabric ----------------------------------------------------------------
    link_gbps: float = 10.0
    channel_gbps: float = 10.0         # VMhost<->IOhost SRIOV channel
    propagation_ns: int = 500
    poll_dispatch_ns: int = 150        # sidecore poll loop notice latency

    # -- block reliability (§4.5) ----------------------------------------------
    blk_initial_timeout_ns: int = 10_000_000   # 10 ms
    blk_max_retransmissions: int = 8
    # Backoff cap: doubling stops here, so a persistently lossy link hits
    # the retransmission limit in hundreds of ms instead of several
    # simulated seconds of unbounded exponential waits.
    blk_max_timeout_ns: int = 80_000_000       # 80 ms

    def copy(self, **overrides: Any) -> "CostModel":
        """A copy of this cost model with selected fields replaced."""
        from dataclasses import replace
        return replace(self, **overrides)


DEFAULT_COSTS = CostModel()
