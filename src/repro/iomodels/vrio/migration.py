"""Live migration support (§4.6).

A VM's front-end (F) and transport (T) interfaces have distinct MAC
addresses; only F is externally visible.  That split is what makes
migration possible:

1. F switches its channel from the SRIOV VF (``Tsriov``) to a traditional
   virtio NIC (``Tvirtio``), which the local hypervisor can migrate —
   modeled here by ``transport_mode = "virtio"``, whose datapath pays the
   trap-and-emulate costs (kick exits, injected completions).
2. The VM migrates between VMhosts sharing the IOhost: the model moves the
   T address onto the target VMhost's channel NIC and rebinds the VCPU.
3. F switches back to ``Tsriov`` on the target.

The paper implemented the three transports but not the dynamic switch; we
implement the switch too, with a configurable blackout window standing in
for the stop-and-copy downtime.
"""

from __future__ import annotations

from typing import Iterator

from ...sim import Event
from .frontend import VmhostChannel, VrioClient, VrioModel

__all__ = ["switch_transport", "live_migrate"]


def switch_transport(client: VrioClient, mode: str) -> None:
    """Flip a client's channel between Tsriov and Tvirtio."""
    if mode not in ("sriov", "virtio"):
        raise ValueError(f"unknown transport mode {mode!r}")
    client.transport_mode = mode


def live_migrate(model: VrioModel, client: VrioClient,
                 target_channel: VmhostChannel,
                 downtime_ns: int = 30_000_000) -> Event:
    """Migrate ``client`` to the VMhost behind ``target_channel``.

    Returns an event that triggers when the VM runs on the target with
    Tsriov restored.  Traffic in flight during the blackout is simply
    delayed/dropped like on a real stop-and-copy; the block reliability
    layer recovers its own losses.
    """
    env = model.env

    def migration() -> Iterator[Event]:
        # Phase 1: fall back to the migratable virtio transport.
        switch_transport(client, "virtio")
        # Phase 2: stop-and-copy blackout.
        yield env.timeout(downtime_ns)
        # Phase 3: re-create the T VF on the target VMhost's channel NIC.
        old_vf = client.t_vf
        new_vf = target_channel.vmhost_nic.create_function(
            f"T-{client.client_id}-migrated", notify_mode="eli")
        new_vf.on_notify = old_vf.on_notify
        new_vf.on_tx_complete = old_vf.on_tx_complete
        old_vf.on_notify = None
        old_vf.on_tx_complete = None
        client.t_vf = new_vf
        client.channel = target_channel
        # Phase 4: resume the fast path.
        switch_transport(client, "sriov")
        return client

    return env.process(migration(), name=f"migrate:{client.client_id}")
