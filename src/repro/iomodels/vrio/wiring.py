"""Registry entries for vRIO and its no-poll ablation.

The builders here reproduce the historical ``cluster.testbed`` wiring
order exactly (machine, worker, link, NIC, and VM creation sequence), so
pre-registry goldens stay byte-identical: the simulator's tie-breaking
depends on process creation order, which is part of the reproducible
surface.

vRIO is the only model whose simple-topology wiring inserts a second
machine: the IOhost, connected to the VMhost by the SRIOV channel link,
with the load generator hanging off the IOhost's external NIC instead of
the VMhost's.  The scalability/switched/racks topologies remain
hard-wired in :mod:`repro.cluster.testbed` — they are vRIO-only studies
of the IOhost itself, not model comparisons, which is exactly what the
``topologies`` capability records.
"""

from __future__ import annotations

from typing import Any, List

from ..registry import (
    Capabilities,
    ConsolidationWiring,
    ModelInfo,
    SimpleWiring,
    register_model,
)
from .frontend import VrioModel

__all__: List[str] = []


def _build_simple(ctx: Any, poll: bool) -> SimpleWiring:
    spec = ctx.spec
    costs = ctx.costs
    iohost = ctx.new_iohost()
    workers = [iohost.new_worker(poll_mode=poll,
                                 idle_policy=spec.worker_idle_policy)
               for _ in range(spec.sidecores)]
    model = VrioModel(ctx.env, workers, costs=costs, stats=ctx.stats,
                      poll=poll,
                      channel_mtu=spec.channel_mtu,
                      channel_rx_ring=spec.channel_rx_ring,
                      pump_window=spec.pump_window,
                      steering_policy=spec.steering_policy,
                      steering_rng=(ctx.rng.stream("steering")
                                    if spec.steering_policy == "random"
                                    else None))
    # Channel link: VMhost <-> IOhost.
    channel_link = ctx.new_link("channel", gbps=costs.channel_gbps,
                                loss=spec.channel_loss)
    vmhost_nic = ctx.vmhost.new_nic("channel")
    vmhost_nic.attach(channel_link.side_a)
    iohost_channel_nic = iohost.new_nic("channel")
    iohost_channel_nic.attach(channel_link.side_b)
    channel = model.connect_vmhost("vmhost0", vmhost_nic,
                                   iohost_channel_nic)
    ctx.channels.append(channel)
    # External link: load generator <-> IOhost.
    external_nic = iohost.new_nic("external")
    ctx.wire_loadgen(external_nic)
    ports = [model.attach_vm(vm, channel, external_nic) for vm in ctx.vms]
    return SimpleWiring(model=model, ports=ports, service_cores=workers)


def _build_consolidation(ctx: Any) -> ConsolidationWiring:
    spec = ctx.spec
    costs = ctx.costs
    iohost = ctx.new_iohost()
    workers = [iohost.new_worker() for _ in range(spec.sidecores)]
    model = VrioModel(ctx.env, workers, costs=costs, stats=ctx.stats)
    wiring = ConsolidationWiring(models=[model], service_cores=workers)
    for h in range(spec.n_vmhosts):
        vmhost = ctx.new_vmhost(h)
        channel_link = ctx.new_link(f"channel{h}", gbps=costs.channel_gbps)
        vmhost_nic = vmhost.new_nic("channel")
        vmhost_nic.attach(channel_link.side_a)
        iohost_channel_nic = iohost.new_nic(f"channel{h}")
        iohost_channel_nic.attach(channel_link.side_b)
        channel = model.connect_vmhost(f"vmhost{h}", vmhost_nic,
                                       iohost_channel_nic)
        ctx.channels.append(channel)
        external_nic = iohost.new_nic(f"external{h}")
        for _ in range(spec.vms_per_host):
            vm = vmhost.new_vm()
            wiring.vms.append(vm)
            wiring.ports.append(model.attach_vm(vm, channel, external_nic))
            wiring.model_by_vm[vm.name] = model
    return wiring


register_model(ModelInfo(
    name="vrio",
    description=("paravirtual remote I/O: consolidated sidecores at a "
                 "polling IOhost across an SRIOV channel (this paper)"),
    capabilities=Capabilities(net=True, block=True, polling=True,
                              topologies=("simple", "scalability",
                                          "switched", "consolidation",
                                          "racks"),
                              ablation=False, exitless=True),
    build_simple=lambda ctx: _build_simple(ctx, poll=True),
    build_consolidation=_build_consolidation,
    tab_rank=20, throughput_rank=30, block_rank=20,
))

register_model(ModelInfo(
    name="vrio_nopoll",
    description=("vRIO ablation: interrupt-driven IOhost workers instead "
                 "of polling (Table 3's 'vRIO w/o poll' row)"),
    capabilities=Capabilities(net=True, block=True, polling=False,
                              topologies=("simple",),
                              ablation=True, exitless=True),
    build_simple=lambda ctx: _build_simple(ctx, poll=False),
    tab_rank=40, throughput_rank=40, block_rank=100,
))
