"""Block-request reliability over the unreliable Ethernet channel (§4.5).

Network I/O needs no help — TCP retransmits and UDP tolerates loss — but a
virtual *block* device must be reliable.  The mechanism, exactly as in the
paper:

* every transmission (or retransmission) carries a fresh unique identifier;
* the initial timeout is 10 ms, doubling on each expiry up to
  ``max_timeout_ns`` — unbounded doubling would push the later attempts of
  a persistently lossy link seconds apart, postponing the §4.5 device
  error far beyond any reasonable detection latency;
* on expiry the request is presumed lost and retransmitted;
* responses whose identifier differs from the current one are *stale* and
  ignored;
* after ``max_retransmissions`` unsuccessful tries, a device error is
  raised.

Retransmission is safe only because the guest disk scheduler guarantees a
single outstanding request per block
(:class:`repro.guest.blkqueue.GuestBlockScheduler`), so a retransmitted
write can never race a newer write to the same block.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterator, List, Optional

from ...hw.storage import BlockRequest
from ...sim import Counter, Environment, Event

__all__ = ["ReliableBlockChannel", "BlockDeviceError"]

_xmit_ids = itertools.count(1)


class BlockDeviceError(Exception):
    """Raised to the guest when a block request exhausts retransmissions."""

    def __init__(self, request: BlockRequest, attempts: int) -> None:
        super().__init__(
            f"block request {request.request_id} ({request.op} "
            f"sector={request.sector}) failed after {attempts} attempts")
        self.request = request
        self.attempts = attempts


class _Outstanding:
    __slots__ = ("request", "xmit_id", "timeout_ns", "attempts", "done")

    def __init__(self, request: BlockRequest, xmit_id: int,
                 timeout_ns: int, done: Event) -> None:
        self.request = request
        self.xmit_id = xmit_id
        self.timeout_ns = timeout_ns
        self.attempts = 1
        self.done = done


class ReliableBlockChannel:
    """Retransmitting request tracker for one IOclient's block traffic.

    ``send`` is the underlying transmit function taking
    ``(request, xmit_id)``; it is called for the original transmission and
    every retransmission.
    """

    def __init__(self, env: Environment,
                 send: Callable[[BlockRequest, int], None],
                 initial_timeout_ns: int = 10_000_000,
                 max_retransmissions: int = 8,
                 max_timeout_ns: Optional[int] = None) -> None:
        if initial_timeout_ns <= 0:
            raise ValueError(f"timeout must be positive: {initial_timeout_ns}")
        if max_retransmissions < 0:
            raise ValueError("max_retransmissions must be >= 0")
        if max_timeout_ns is None:
            max_timeout_ns = 8 * initial_timeout_ns
        if max_timeout_ns < initial_timeout_ns:
            raise ValueError(
                f"max_timeout_ns ({max_timeout_ns}) must be >= "
                f"initial_timeout_ns ({initial_timeout_ns})")
        self.env = env
        self._send = send
        self.initial_timeout_ns = initial_timeout_ns
        self.max_timeout_ns = max_timeout_ns
        self.max_retransmissions = max_retransmissions
        self._outstanding: Dict[int, _Outstanding] = {}  # by request_id
        self.retransmissions = Counter("retransmissions")
        self.stale_responses = Counter("stale_responses")
        self.failures = Counter("failures")
        self.completions = Counter("completions")
        # Requests that completed only after at least one retransmission —
        # the §4.5 losses the reliability layer actually papered over.
        self.recovered = Counter("recovered")
        # Responses carrying a device error (media fault at the IOhost);
        # the request stays outstanding and the timer drives the retry.
        self.device_errors = Counter("device_errors")
        self._observers: List[
            Callable[[str, Optional[BlockRequest], int], None]] = []

    @property
    def outstanding_count(self) -> int:
        return len(self._outstanding)

    def add_observer(
            self,
            fn: Callable[[str, Optional[BlockRequest], int], None]) -> None:
        """Subscribe to reliability events.

        ``fn(event, request, attempts)`` fires for ``"retransmit"``,
        ``"recovered"``, ``"failure"``, ``"stale"``, and
        ``"device_error"``.  Fault campaigns use the first retransmit or
        device error after an injection as the *detection* signal.
        """
        self._observers.append(fn)

    def _notify(self, event: str, request: Optional[BlockRequest],
                attempts: int) -> None:
        for fn in self._observers:
            fn(event, request, attempts)

    def submit(self, request: BlockRequest) -> Event:
        """Send a request reliably; the event carries the request on
        success and fails with :class:`BlockDeviceError` on exhaustion."""
        if request.request_id in self._outstanding:
            raise ValueError(
                f"request {request.request_id} already outstanding")
        done = self.env.event()
        entry = _Outstanding(request, next(_xmit_ids),
                             self.initial_timeout_ns, done)
        self._outstanding[request.request_id] = entry
        self._send(request, entry.xmit_id)
        self.env.process(self._timer(entry), name="blk-retrans-timer")
        return done

    def on_response(self, request_id: int, xmit_id: int,
                    payload: Optional[object] = None) -> bool:
        """Handle a response from the IOhost.

        Returns True if it completed a live request; False if it was stale
        or unknown (late duplicate after completion).
        """
        entry = self._outstanding.get(request_id)
        if entry is None:
            self.stale_responses.add()
            self._notify("stale", None, 0)
            return False
        if entry.xmit_id != xmit_id:
            # A response to a transmission we already gave up on.
            self.stale_responses.add()
            self._notify("stale", entry.request, entry.attempts)
            return False
        del self._outstanding[request_id]
        self.completions.add()
        if entry.attempts > 1:
            self.recovered.add()
            self._notify("recovered", entry.request, entry.attempts)
        entry.done.succeed(payload if payload is not None else entry.request)
        return True

    def on_error_response(self, request_id: int, xmit_id: int) -> bool:
        """Handle a response flagging a device error at the IOhost.

        The §4.5 layer treats a media error like a loss: the request stays
        outstanding and the running timer retransmits it — transient error
        bursts (controller resets, path flaps) heal without guest-visible
        failures, while a persistent fault still exhausts
        ``max_retransmissions`` and surfaces a :class:`BlockDeviceError`.
        """
        entry = self._outstanding.get(request_id)
        if entry is None or entry.xmit_id != xmit_id:
            self.stale_responses.add()
            return False
        self.device_errors.add()
        self._notify("device_error", entry.request, entry.attempts)
        return True

    def _timer(self, entry: _Outstanding) -> Iterator[Event]:
        env = self.env
        while True:
            timeout_ns = entry.timeout_ns
            xmit_at_sleep = entry.xmit_id
            yield env.timeout(timeout_ns)
            live = self._outstanding.get(entry.request.request_id)
            if live is not entry or entry.xmit_id != xmit_at_sleep:
                return  # completed (or superseded) while we slept
            if entry.attempts > self.max_retransmissions:
                del self._outstanding[entry.request.request_id]
                self.failures.add()
                self._notify("failure", entry.request, entry.attempts)
                entry.done.fail(BlockDeviceError(entry.request,
                                                 entry.attempts))
                return
            # Presumed lost: retransmit under a fresh identifier, double
            # the timeout (§4.5) up to the backoff cap.
            entry.xmit_id = next(_xmit_ids)
            entry.attempts += 1
            entry.timeout_ns = min(entry.timeout_ns * 2, self.max_timeout_ns)
            self.retransmissions.add()
            self._notify("retransmit", entry.request, entry.attempts)
            self._send(entry.request, entry.xmit_id)
