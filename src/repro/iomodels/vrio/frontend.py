"""vRIO: the paravirtual remote I/O model (the paper's contribution).

Wiring (Figure 4c):

* Each **VMhost** connects to the IOhost over a dedicated Ethernet channel
  (one Link).  The VMhost side of the channel is an SRIOV NIC on which each
  VM gets a VF — its *T* (transport) address, used only for talking to the
  IOhost and coupled with ELI so channel arrivals interrupt the guest
  without host involvement.  The local hypervisor's sole job is assigning
  these VFs; it never sees the I/O.
* On the **IOhost**, the channel NIC terminates at the I/O hypervisor,
  whose workers poll it (or take interrupts, in the "w/o poll" variant).
  Each VM's externally-visible *F* (front-end) MAC lives on the IOhost's
  external NIC, where all client traffic arrives and where interposition
  runs.

The same channel carries net traffic, block ops under the §4.5
retransmission protocol, and device-management control commands.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from ...guest.vm import Vm
from ...hw.cpu import Core
from ...hw.nic import Nic, NicFunction, VRIO_TUNED_RX_RING
from ...hw.storage import BlockRequest, StorageDevice
from ...interpose import InterposerChain
from ...net.frame import (
    EthernetFrame,
    FAKE_TCPIP_HEADER_BYTES,
    JUMBO_MTU_VRIO,
    STANDARD_MTU,
    VRIO_HEADER_BYTES,
)
from ...net.segmentation import reassembly_is_zero_copy
from ...sim import Counter, Environment, Event
from ..base import IoEventStats, NetMessage, NetPort, message_wire_bytes
from ..costs import CostModel, DEFAULT_COSTS
from .iohypervisor import NicPump, WorkerPool
from .protocol import BlockChannelOp, BlockChannelResp, ControlCommand
from .reliability import BlockDeviceError, ReliableBlockChannel
from .transport import (
    ChannelPacket,
    TransportStats,
    chunk_fragments,
    chunk_sizes,
    chunk_wire_payload_bytes,
    transport_rx_cycles,
    transport_tx_cycles,
)

__all__ = ["VrioModel", "VmhostChannel", "VrioBlockHandle", "VrioClient"]

_device_ids = itertools.count(1)


@dataclass
class VmhostChannel:
    """One VMhost's dedicated channel to the IOhost."""

    name: str
    vmhost_nic: Nic             # SRIOV NIC at the VMhost (T-side VFs)
    iohost_fn: NicFunction      # channel endpoint at the IOhost


@dataclass
class VrioClient:
    """Per-IOclient state held by the model."""

    client_id: str
    vm: Vm
    channel: VmhostChannel
    t_vf: NicFunction           # transport VF at the VMhost (T address)
    f_fn: NicFunction           # front-end MAC at the IOhost (F address)
    port: NetPort
    transport_stats: TransportStats
    devices: Dict[int, StorageDevice] = field(default_factory=dict)
    reliable: Optional[ReliableBlockChannel] = None
    rx_chunks: Dict[int, int] = field(default_factory=dict)
    transport_mode: str = "sriov"   # "virtio" (migration), "virtio-local"
    local_block_handle: Optional[Any] = None  # set by §4.6 failover recovery


class VrioBlockHandle:
    """Workload-facing remote paravirtual block device."""

    def __init__(self, model: "VrioModel", client: VrioClient,
                 device_id: int) -> None:
        self.model = model
        self.client = client
        self.device_id = device_id

    def submit(self, request: BlockRequest) -> Event:
        """Issue a block request to the remote device, reliably."""
        # §4.6 failover transparency: once recovery splices in a local
        # virtio replica, new requests flow to it under the same handle —
        # the workload never learns the IOhost died.
        local = self.client.local_block_handle
        if local is not None:
            return local.submit(request)
        done = self.model.env.event()
        self.model.env.process(
            self.model._guest_blk_submit(self.client, self.device_id,
                                         request, done),
            name=f"vrio-blk:{self.client.client_id}")
        return done


class VrioModel:
    """The vRIO model: remote sidecores at a consolidated IOhost."""

    interposable = True

    def __init__(self, env: Environment, workers: List[Core],
                 costs: CostModel = DEFAULT_COSTS,
                 stats: Optional[IoEventStats] = None,
                 poll: bool = True,
                 interposers: Optional[InterposerChain] = None,
                 channel_mtu: int = JUMBO_MTU_VRIO,
                 channel_rx_ring: int = VRIO_TUNED_RX_RING,
                 external_mtu: int = STANDARD_MTU,
                 pump_window: int = 32,
                 steering_policy: str = "affinity",
                 steering_rng: Optional[Any] = None,
                 tracer: Optional[Any] = None) -> None:
        self.env = env
        self.costs = costs
        self.poll = poll
        self.name = "vrio" if poll else "vrio_nopoll"
        self.stats = stats if stats is not None else IoEventStats(self.name)
        self.pool = WorkerPool(env, workers, policy=steering_policy,
                               rng=steering_rng)
        self.interposers = interposers if interposers is not None else InterposerChain()
        self.channel_mtu = channel_mtu
        self.channel_rx_ring = channel_rx_ring
        self.external_mtu = external_mtu
        self.pump_window = pump_window
        self.failed = False  # set by §4.6 failover (see vrio.failover)
        self.tracer = tracer  # optional repro.sim.trace.Tracer
        self._clients: Dict[str, VrioClient] = {}
        self._irq_rr = 0
        self.forwarded_to_guest = Counter("forwarded_to_guest")
        self.forwarded_to_external = Counter("forwarded_to_external")
        self.copied_chunks = Counter("copied_chunks")          # zero-copy misses
        self.zero_copy_chunks = Counter("zero_copy_chunks")

    def register_telemetry(self, namespace: Any) -> None:
        """Register this model's instruments into a metrics namespace."""
        namespace.register_gauge("attached_vms",
                                 lambda m=self: len(m._clients))
        namespace.register_counter("forwarded_to_guest",
                                   self.forwarded_to_guest)
        namespace.register_counter("forwarded_to_external",
                                   self.forwarded_to_external)
        namespace.register_counter("copied_chunks", self.copied_chunks)
        namespace.register_counter("zero_copy_chunks", self.zero_copy_chunks)
        pool_ns = namespace.namespace("pool")
        pool_ns.register_counter("steered", self.pool.steered)
        pool_ns.register_counter("contended", self.pool.contended)
        pool_ns.register_counter("affinity_hits", self.pool.affinity_hits)
        pool_ns.register_gauge("contention_fraction",
                               self.pool.contention_fraction)
        for client_id, client in self._clients.items():
            ts = client.transport_stats
            ns = namespace.namespace(f"transport.{client_id}")
            for counter in ("chunks_sent", "chunks_received",
                            "messages_sent", "messages_received",
                            "bytes_sent", "bytes_received"):
                ns.register_counter(counter, getattr(ts, counter))
        # Reliability counters aggregate over clients via gauges because
        # ReliableBlockChannel instances appear lazily on block attach —
        # usually after telemetry binds the testbed.
        rel_ns = namespace.namespace("reliability")
        for attr in ("retransmissions", "stale_responses", "failures",
                     "completions", "recovered", "device_errors"):
            rel_ns.register_gauge(
                attr,
                lambda m=self, a=attr: sum(
                    getattr(m._clients[key].reliable, a).value
                    for key in sorted(m._clients)
                    if m._clients[key].reliable is not None))

    # -- wiring -----------------------------------------------------------------

    def add_interposer(self, interposer: Any) -> None:
        self.interposers.add(interposer)

    @property
    def workers(self) -> List[Core]:
        return self.pool.workers

    def _next_irq_core(self) -> Core:
        core = self.pool.workers[self._irq_rr % len(self.pool.workers)]
        self._irq_rr += 1
        return core

    def connect_vmhost(self, name: str, vmhost_nic: Nic,
                       iohost_channel_nic: Nic) -> VmhostChannel:
        """Terminate a VMhost's channel link at the I/O hypervisor.

        The two NICs must already be attached to opposite ends of a link.
        """
        iohost_fn = iohost_channel_nic.create_function(
            f"ch-{name}", rx_ring_size=self.channel_rx_ring)
        channel = VmhostChannel(name=name, vmhost_nic=vmhost_nic,
                                iohost_fn=iohost_fn)
        NicPump(self.env, iohost_fn, self._channel_ingress, poll=self.poll,
                costs=self.costs, irq_core=self._next_irq_core(),
                irq_counter=self.stats.iohost_interrupts,
                window=self.pump_window)
        if not self.poll:
            iohost_fn.on_tx_complete = self._iohost_tx_irq(self._next_irq_core())
        return channel

    def attach_vm(self, vm: Vm, channel: VmhostChannel,
                  external_nic: Nic) -> NetPort:
        """Create the VM's paravirtual net device over the channel."""
        if vm.name in self._clients:
            raise ValueError(f"{vm.name} already attached")
        vm.stats = self.stats
        t_vf = channel.vmhost_nic.create_function(f"T-{vm.name}",
                                                  notify_mode="eli")
        f_fn = external_nic.create_function(f"F-{vm.name}")
        port = NetPort(self.env, vm, f_fn.mac,
                       transmit=lambda msg, v=vm.name: self._guest_net_tx(v, msg),
                       per_send_extra_cycles=self.costs.vrio_transport_per_send_cycles)
        client = VrioClient(client_id=vm.name, vm=vm, channel=channel,
                            t_vf=t_vf, f_fn=f_fn, port=port,
                            transport_stats=TransportStats(vm.name))
        self._clients[vm.name] = client
        t_vf.on_notify = lambda cid=vm.name: self._on_guest_channel_rx(cid)
        t_vf.on_tx_complete = lambda v=vm: v.deliver_interrupt_exitless()
        NicPump(self.env, f_fn,
                lambda msg, done, cid=vm.name: self._external_ingress(
                    cid, msg, done),
                poll=self.poll, costs=self.costs,
                irq_core=self._next_irq_core(),
                irq_counter=self.stats.iohost_interrupts,
                window=self.pump_window)
        if not self.poll:
            f_fn.on_tx_complete = self._iohost_tx_irq(self._next_irq_core())
        return port

    def attach_bare_metal(self, name: str, core: Core,
                          channel: VmhostChannel,
                          external_nic: Nic) -> NetPort:
        """Attach a non-virtualized OS as an IOclient (§4.6).

        vRIO needs no local hypervisor: a bare-metal machine that installs
        the transport driver gets the same interposable services.  Works
        across processor architectures — the client is characterized only
        by its core's clock.  Modeled as a degenerate "VM" whose
        virtualization events are free (native interrupts, no exits).
        """
        from ...guest.vm import GuestCosts
        machine = Vm(self.env, name, core,
                     costs=GuestCosts(irq_handler_cycles=1_500,
                                      eoi_exit_cycles=0,
                                      sync_exit_cycles=0))
        return self.attach_vm(machine, channel, external_nic)

    def port_of(self, vm: Vm) -> NetPort:
        return self._clients[vm.name].port

    def client_of(self, vm: Vm) -> VrioClient:
        return self._clients[vm.name]

    def attach_block_device(self, vm: Vm,
                            device: StorageDevice) -> VrioBlockHandle:
        """Register an IOhost-resident device as the VM's remote disk."""
        client = self._clients[vm.name]
        device_id = next(_device_ids)
        client.devices[device_id] = device
        if client.reliable is None:
            client.reliable = ReliableBlockChannel(
                self.env,
                send=lambda req, xid, cid=vm.name: self._start_blk_tx(cid, req, xid),
                initial_timeout_ns=self.costs.blk_initial_timeout_ns,
                max_retransmissions=self.costs.blk_max_retransmissions,
                max_timeout_ns=self.costs.blk_max_timeout_ns)
        handle = VrioBlockHandle(self, client, device_id)
        return handle

    def _iohost_tx_irq(self, core: Core) -> Callable[[], None]:
        def fire() -> None:
            self.stats.iohost_interrupts.add()
            core.execute(self.costs.host_irq_cycles, tag="iohost_irq",
                         high_priority=True)
        return fire

    # -- channel frame helpers -----------------------------------------------------

    def _channel_frame_to_iohost(self, client: VrioClient,
                                 packet: ChannelPacket) -> EthernetFrame:
        return EthernetFrame(
            src=client.t_vf.mac, dst=client.channel.iohost_fn.mac,
            payload=packet,
            payload_bytes=chunk_wire_payload_bytes(packet.chunk_bytes,
                                                   self.channel_mtu),
            kind="vrio", created_ns=self.env.now)

    def _channel_frame_to_guest(self, client: VrioClient,
                                packet: ChannelPacket) -> EthernetFrame:
        return EthernetFrame(
            src=client.channel.iohost_fn.mac, dst=client.t_vf.mac,
            payload=packet,
            payload_bytes=chunk_wire_payload_bytes(packet.chunk_bytes,
                                                   self.channel_mtu),
            kind="vrio", created_ns=self.env.now)

    def _chunk_packets(self, client_id: str, direction: str, inner: Any,
                       size_bytes: int,
                       message_id: int) -> List[ChannelPacket]:
        sizes = chunk_sizes(size_bytes)
        return [ChannelPacket(client_id=client_id, direction=direction,
                              inner=inner, message_id=message_id,
                              chunk_index=i, chunk_count=len(sizes),
                              chunk_bytes=size,
                              fragments=chunk_fragments(size, self.channel_mtu))
                for i, size in enumerate(sizes)]

    def _worker_rx_cycles(self, packet: ChannelPacket) -> int:
        """IOhost cycles to receive one channel chunk (reassembly is
        software; zero-copy unless the MTU breaks the 17-fragment bound).

        Block chunks skip the per-byte net-forwarding touch cost: their
        payload moves zero-copy into the block layer (§4.4), and the fixed
        fast-path cost is charged by the block service instead.
        """
        c = self.costs
        # Each TSO fragment carries the vRIO + fake TCP/IP headers inside
        # the MTU, so the per-fragment payload budget shrinks accordingly.
        header_bytes = VRIO_HEADER_BYTES + FAKE_TCPIP_HEADER_BYTES
        zero_copy = reassembly_is_zero_copy(
            packet.chunk_bytes, self.channel_mtu - header_bytes,
            header_bytes=header_bytes)
        is_block = isinstance(packet.inner, BlockChannelOp)
        if is_block:
            cycles = c.worker_per_frag_cycles * packet.fragments
        else:
            cycles = (c.worker_rx_per_msg_cycles
                      + c.worker_per_frag_cycles * packet.fragments
                      + c.worker_per_byte_cycles * packet.chunk_bytes)
        if zero_copy:
            self.zero_copy_chunks.add()
        else:
            self.copied_chunks.add()
            cycles += c.worker_copy_per_byte_cycles * packet.chunk_bytes
        return int(cycles)

    # -- guest -> external (net transmit) ---------------------------------------------

    def _guest_net_tx(self, client_id: str, message: NetMessage) -> None:
        self.env.process(self._guest_net_tx_path(client_id, message),
                         name=f"vrio-tx:{client_id}")

    def _guest_net_tx_path(self, client_id: str,
                           message: NetMessage) -> Iterator[Event]:
        c = self.costs
        client = self._clients[client_id]
        if self.tracer:
            self.tracer.point(message.message_id, "guest_tx",
                              client=client_id, bytes=message.size_bytes)
        packets = self._chunk_packets(client_id, "to_iohost", message,
                                      message.size_bytes, message.message_id)
        for i, packet in enumerate(packets):
            cycles = transport_tx_cycles(c, packet.chunk_bytes,
                                         self.channel_mtu)
            if i == 0:
                cycles += int(c.guest_net_per_msg_cycles
                              + c.guest_net_per_byte_cycles * message.size_bytes)
            if client.transport_mode == "virtio":
                # Migration fallback Tvirtio: the kick traps and the local
                # hypervisor relays the frame (traditional paravirtual).
                yield client.vm.sync_exit()
            yield client.vm.vcpu.execute(cycles, tag="net_tx")
            frame = self._channel_frame_to_iohost(client, packet)
            last = i == len(packets) - 1
            client.t_vf.transmit(frame, completion_interrupt=last)
            client.transport_stats.chunks_sent.add()
        client.transport_stats.messages_sent.add()
        client.transport_stats.bytes_sent.add(message.size_bytes)

    # -- IOhost ingress from the channel ------------------------------------------------

    def _channel_ingress(self, packet: ChannelPacket,
                         done: Optional[Callable[[], None]] = None) -> None:
        self.env.process(self._channel_ingress_path(packet, done),
                         name=f"vrio-ioh-ch:{packet.client_id}")

    def _steer_key(self, packet: ChannelPacket) -> Any:
        inner = packet.inner
        if isinstance(inner, BlockChannelOp):
            return ("blk", packet.client_id, inner.device_id)
        if isinstance(inner, ControlCommand):
            return ("ctl", packet.client_id)
        return ("net", packet.client_id)

    def _note_chunk(self, client: VrioClient, packet: ChannelPacket) -> bool:
        """Track multi-chunk messages; True when the last chunk landed."""
        if packet.chunk_count == 1:
            return True
        seen = client.rx_chunks.get(packet.message_id, 0) + 1
        if seen >= packet.chunk_count:
            client.rx_chunks.pop(packet.message_id, None)
            return True
        client.rx_chunks[packet.message_id] = seen
        return False

    def _channel_ingress_path(
            self, packet: ChannelPacket,
            done: Optional[Callable[[], None]] = None) -> Iterator[Event]:
        client = self._clients.get(packet.client_id)
        if client is None or self.failed:
            if done is not None:
                done()
            return
        key = self._steer_key(packet)
        worker = self.pool.acquire(key)
        span = None
        if self.tracer:
            span = self.tracer.begin(packet.message_id, "iohost_service",
                                     worker=worker.name,
                                     chunk=packet.chunk_index)
        try:
            yield worker.execute(self._worker_rx_cycles(packet), tag="worker_rx")
            if not self._note_chunk(client, packet):
                return
            inner = packet.inner
            if isinstance(inner, NetMessage):
                yield from self._egress_external(worker, client, inner)
            elif isinstance(inner, BlockChannelOp):
                yield from self._serve_block_op(worker, client, inner)
            elif isinstance(inner, ControlCommand):
                yield from self._serve_control(worker, client, inner)
        finally:
            self.pool.release(key)
            if span is not None:
                self.tracer.end(span)
            if done is not None:
                done()

    def _egress_external(self, worker: Core, client: VrioClient,
                         message: NetMessage) -> Iterator[Event]:
        c = self.costs
        if not self.interposers.admit(message):
            return
        cycles = int(c.worker_tx_per_msg_cycles
                     + self.interposers.cycles(message.size_bytes,
                                               message.kind))
        yield worker.execute(cycles, tag="worker_tx")
        # NIC store-and-forward / DMA pipeline latency of this pass.
        yield self.env.timeout(c.iohost_forward_latency_ns)
        frame = EthernetFrame(
            src=client.f_fn.mac, dst=message.dst, payload=message,
            payload_bytes=message_wire_bytes(message.size_bytes,
                                             self.external_mtu),
            kind=message.kind, created_ns=self.env.now)
        client.f_fn.transmit(frame, completion_interrupt=not self.poll)
        self.forwarded_to_external.add()

    # -- external -> guest (net receive) --------------------------------------------------

    def _external_ingress(
            self, client_id: str, message: NetMessage,
            done: Optional[Callable[[], None]] = None) -> None:
        self.env.process(self._external_ingress_path(client_id, message, done),
                         name=f"vrio-ioh-ext:{client_id}")

    def _external_ingress_path(
            self, client_id: str, message: NetMessage,
            done: Optional[Callable[[], None]] = None) -> Iterator[Event]:
        if self.failed:
            if done is not None:
                done()
            return
        c = self.costs
        client = self._clients[client_id]
        key = ("net", client_id)
        worker = self.pool.acquire(key)
        span = None
        if self.tracer:
            span = self.tracer.begin(message.message_id, "iohost_service",
                                     worker=worker.name, direction="ingress")
        try:
            if not self.interposers.admit(message):
                return
            rx_cycles = int(c.worker_rx_per_msg_cycles
                            + c.worker_per_byte_cycles * message.size_bytes
                            + self.interposers.cycles(message.size_bytes,
                                                      message.kind))
            yield worker.execute(rx_cycles, tag="worker_rx")
            packets = self._chunk_packets(client_id, "to_guest", message,
                                          message.size_bytes,
                                          message.message_id)
            yield worker.execute(
                c.worker_tx_per_msg_cycles * len(packets), tag="worker_tx")
            # NIC store-and-forward / DMA pipeline latency of this pass.
            yield self.env.timeout(c.iohost_forward_latency_ns)
            for packet in packets:
                frame = self._channel_frame_to_guest(client, packet)
                client.channel.iohost_fn.transmit(
                    frame, completion_interrupt=not self.poll)
            self.forwarded_to_guest.add()
        finally:
            self.pool.release(key)
            if span is not None:
                self.tracer.end(span)
            if done is not None:
                done()

    # -- guest channel receive (T VF, ELI) ---------------------------------------------------

    def _on_guest_channel_rx(self, client_id: str) -> None:
        self.env.process(self._guest_channel_rx_path(client_id),
                         name=f"vrio-grx:{client_id}")

    def _guest_channel_rx_path(self, client_id: str) -> Iterator[Event]:
        c = self.costs
        client = self._clients[client_id]
        vm = client.vm
        first = True
        while True:
            ok, frame = client.t_vf.rx_ring.try_get()
            if not ok:
                break
            packet: ChannelPacket = frame.payload
            extra = transport_rx_cycles(c, packet.chunk_bytes,
                                        self.channel_mtu)
            client.transport_stats.chunks_received.add()
            inner = packet.inner
            is_net = isinstance(inner, NetMessage)
            if is_net and self._note_chunk(client, packet):
                extra += int(c.guest_net_per_msg_cycles
                             + c.guest_net_per_byte_cycles * inner.size_bytes)
            elif (isinstance(inner, BlockChannelResp)
                  and packet.chunk_index == packet.chunk_count - 1):
                extra += 2 * c.ring_op_cycles  # guest block-layer reap
            if client.transport_mode == "virtio":
                # Tvirtio fallback: completions arrive injected, not ELI.
                done = vm.deliver_interrupt_injected(extra_cycles=extra)
            elif first:
                done = vm.deliver_interrupt_exitless(extra_cycles=extra)
            else:
                # Coalesced with the interrupt already being handled.
                done = vm.vcpu.execute(extra, tag="guest_irq",
                                       high_priority=True)
            first = False
            yield done
            if is_net:
                if packet.chunk_index == packet.chunk_count - 1:
                    client.transport_stats.messages_received.add()
                    client.transport_stats.bytes_received.add(inner.size_bytes)
                    if self.tracer:
                        self.tracer.point(inner.message_id, "guest_deliver",
                                          client=client_id)
                    client.port.deliver(inner)
            elif isinstance(inner, BlockChannelResp):
                self._guest_blk_response(client, inner, packet)
            elif isinstance(inner, ControlCommand):
                self._apply_control(client, inner)
        client.t_vf.rearm()

    # -- block datapath ------------------------------------------------------------------------

    def _guest_blk_submit(self, client: VrioClient, device_id: int,
                          request: BlockRequest,
                          done: Event) -> Iterator[Event]:
        c = self.costs
        request.issued_ns = self.env.now
        request.meta["device_id"] = device_id
        yield client.vm.vcpu.execute(
            c.guest_blk_per_req_cycles + c.ring_op_cycles, tag="blk_submit")
        assert client.reliable is not None  # created on block attach
        reliable_done = client.reliable.submit(request)

        def finish(_event: Event) -> None:
            if reliable_done.ok:
                done.succeed(request)
            else:
                done.fail(reliable_done.value)

        reliable_done.add_callback(finish)

    def _start_blk_tx(self, client_id: str, request: BlockRequest,
                      xmit_id: int) -> None:
        self.env.process(self._blk_tx_path(client_id, request, xmit_id),
                         name=f"vrio-blk-tx:{client_id}")

    def _blk_tx_path(self, client_id: str, request: BlockRequest,
                     xmit_id: int) -> Iterator[Event]:
        c = self.costs
        client = self._clients[client_id]
        if self.tracer:
            # Same trace id as the op's channel packets and device_io
            # span, so one block request reads as one trace: guest ring
            # -> IOhost sidecore -> device -> completion.
            self.tracer.point(xmit_id << 20, "guest_tx",
                              client=client_id, op=request.op,
                              bytes=request.size_bytes)
        op = BlockChannelOp(request=request, xmit_id=xmit_id,
                            device_id=request.meta["device_id"])
        packets = self._chunk_packets(client_id, "to_iohost", op,
                                      op.size_bytes,
                                      message_id=xmit_id << 20)
        for i, packet in enumerate(packets):
            cycles = transport_tx_cycles(c, packet.chunk_bytes,
                                         self.channel_mtu)
            yield client.vm.vcpu.execute(cycles, tag="blk_tx")
            frame = self._channel_frame_to_iohost(client, packet)
            client.t_vf.transmit(frame, completion_interrupt=False)
            client.transport_stats.chunks_sent.add()

    def _serve_block_op(self, worker: Core, client: VrioClient,
                        op: BlockChannelOp) -> Iterator[Event]:
        c = self.costs
        device = client.devices.get(op.device_id)
        if device is None:
            return
        request = op.request
        kind = "blk_read" if request.op == "read" else "blk_write"
        if not self.interposers.admit(op):
            return
        # Zero copy (§4.4): write interiors are reused in place (only
        # unaligned edges copy); reads must copy into the block system's
        # buffers.
        if request.op == "read":
            copy = int(c.worker_block_copy_per_byte_cycles
                       * request.size_bytes)
        elif not request.is_sector_aligned():
            copy = int(c.worker_copy_per_byte_cycles * 512)
        else:
            copy = 0
        cycles = int(c.worker_blk_per_op_cycles + device.cpu_cycles(request)
                     + copy
                     + self.interposers.cycles(request.size_bytes, kind))
        yield worker.execute(cycles, tag="worker_blk")
        # The IOhost block pipeline latency (data DMA, buffer turnaround)
        # overlaps the media access — the DMA engines and the device work
        # in parallel, so a slow medium hides the pipeline (§5's SATA-SSD
        # observation).
        span = None
        if self.tracer:
            span = self.tracer.begin(op.xmit_id << 20, "device_io",
                                     device=device.name, op=request.op)
        pipeline = self.env.timeout(c.vrio_block_service_latency_ns)
        media_request = BlockRequest(op=request.op, sector=request.sector,
                                     size_bytes=request.size_bytes)
        media = device.submit(media_request)
        yield self.env.all_of([pipeline, media])
        if span is not None:
            self.tracer.end(span)
        # A media error burst surfaces as a not-ok response; the guest's
        # reliability layer retries it like a loss (§4.5).
        ok = not media_request.meta.get("device_error", False)
        resp_size = request.size_bytes if request.op == "read" else 64
        if not ok:
            resp_size = 64  # error responses carry status, not data
        resp = BlockChannelResp(request_id=request.request_id,
                                xmit_id=op.xmit_id,
                                device_id=op.device_id, ok=ok,
                                size_bytes=resp_size)
        packets = self._chunk_packets(client.client_id, "to_guest", resp,
                                      resp_size,
                                      message_id=(op.xmit_id << 20) | 1)
        yield self.env.timeout(c.iohost_forward_latency_ns)
        for packet in packets:
            frame = self._channel_frame_to_guest(client, packet)
            client.channel.iohost_fn.transmit(frame,
                                              completion_interrupt=not self.poll)

    def _guest_blk_response(self, client: VrioClient, resp: BlockChannelResp,
                            packet: ChannelPacket) -> None:
        if packet.chunk_index != packet.chunk_count - 1:
            return
        if self.tracer:
            self.tracer.point(resp.xmit_id << 20, "guest_deliver",
                              client=client.client_id, ok=resp.ok)
        assert client.reliable is not None  # responses imply a block attach
        if resp.ok:
            client.reliable.on_response(resp.request_id, resp.xmit_id, resp)
        else:
            client.reliable.on_error_response(resp.request_id, resp.xmit_id)

    # -- control plane ------------------------------------------------------------------------------

    def _serve_control(self, worker: Core, client: VrioClient,
                       command: ControlCommand) -> Iterator[Event]:
        yield worker.execute(self.costs.worker_rx_per_msg_cycles, tag="control")
        self._apply_control(client, command)

    def send_control(self, client_id: str, command: ControlCommand) -> None:
        """I/O-hypervisor-initiated device management toward a client."""
        client = self._clients[client_id]
        packets = self._chunk_packets(client_id, "to_guest", command,
                                      command.size_bytes,
                                      message_id=next(_device_ids) << 24)
        for packet in packets:
            frame = self._channel_frame_to_guest(client, packet)
            client.channel.iohost_fn.transmit(frame,
                                              completion_interrupt=not self.poll)

    def _apply_control(self, client: VrioClient, command: ControlCommand) -> None:
        if command.action == "create" and command.device_type == "blk":
            # Device object arrives out-of-band via params (simulation).
            device = (command.params or {}).get("device")
            if device is not None:
                client.devices[command.device_id] = device
        elif command.action == "destroy":
            client.devices.pop(command.device_id, None)
