"""vRIO — paraVirtual Remote I/O (the paper's contribution)."""

from .failover import fail_iohost, fall_back_to_local_virtio
from .frontend import VmhostChannel, VrioBlockHandle, VrioClient, VrioModel
from .iohypervisor import NicPump, WorkerPool
from .migration import live_migrate, switch_transport
from .protocol import BlockChannelOp, BlockChannelResp, ControlCommand
from .reliability import BlockDeviceError, ReliableBlockChannel
from .transport import (
    ChannelPacket,
    TransportStats,
    chunk_fragments,
    chunk_sizes,
    chunk_wire_payload_bytes,
    transport_rx_cycles,
    transport_tx_cycles,
)
from . import wiring  # registers vrio/vrio_nopoll with the model registry

__all__ = [
    "VrioModel", "VmhostChannel", "VrioClient", "VrioBlockHandle",
    "WorkerPool", "NicPump",
    "ReliableBlockChannel", "BlockDeviceError",
    "BlockChannelOp", "BlockChannelResp", "ControlCommand",
    "ChannelPacket", "TransportStats",
    "chunk_sizes", "chunk_fragments", "chunk_wire_payload_bytes",
    "transport_tx_cycles", "transport_rx_cycles",
    "live_migrate", "switch_transport",
    "fail_iohost", "fall_back_to_local_virtio",
]
