"""The vRIO I/O hypervisor: the software controlling the IOhost (§4.1).

A set of *workers*, each on its own sidecore, service encoded I/O arriving
on the IOhost's NICs — directly off the rings, never through a TCP/IP
stack.  Two properties from the paper are load-bearing:

* **Polling** — in the default configuration workers poll the NICs, so the
  IOhost incurs zero interrupts (Table 3 row "vrio").  The ``poll=False``
  variant ("vrio w/o poll") drives the same NICs with interrupts and pays
  4 IOhost interrupts per request-response.
* **Order-preserving steering** — for each virtual device D, while an
  unprocessed packet of D is assigned to worker W, subsequent packets of D
  steer to W too, preserving request order without out-of-order handling
  downstream.  Otherwise an idle/least-loaded worker is picked.

The pool also measures *contention* — the fraction of packets that found
their steered worker busy (Figure 8's right axis).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ...hw.cpu import Core
from ...hw.nic import NicFunction
from ...interpose import InterposerChain
from ...sim import Counter, Environment, Event
from ..costs import CostModel
from .transport import ChannelPacket

__all__ = ["WorkerPool", "NicPump"]


class WorkerPool:
    """Steers per-device work onto worker sidecores, preserving order.

    ``policy`` selects the steering discipline:

    * ``"affinity"`` (the paper's §4.1 policy) — work for a device with
      in-flight packets follows them to the same worker; otherwise the
      least-loaded worker is picked.  Per-device order is preserved.
    * ``"random"`` (ablation) — every packet is sprayed to a random
      worker; per-device order can be violated downstream.
    """

    def __init__(self, env: Environment, workers: List[Core],
                 policy: str = "affinity", rng: Optional[Any] = None) -> None:
        if not workers:
            raise ValueError("worker pool needs at least one core")
        if policy not in ("affinity", "random"):
            raise ValueError(f"unknown steering policy {policy!r}")
        if policy == "random" and rng is None:
            raise ValueError(
                "policy='random' needs an rng threaded from the testbed's "
                "RngRegistry (a fixed ad-hoc seed would decouple steering "
                "from the master seed)")
        self.env = env
        self.workers = workers
        self.policy = policy
        self.rng = rng
        self._inflight: Dict[Any, Tuple[Core, int]] = {}
        self.steered = Counter("steered")
        self.contended = Counter("contended")
        self.affinity_hits = Counter("affinity_hits")

    def acquire(self, device_key: Any) -> Core:
        """Pick the worker for one unit of ``device_key`` work."""
        self.steered.add()
        entry = self._inflight.get(device_key)
        if self.policy == "random":
            worker = self.rng.choice(self.workers)
            count = entry[1] if entry is not None else 0
            self._inflight[device_key] = (worker, count + 1)
        elif entry is not None:
            worker, count = entry
            self.affinity_hits.add()
            self._inflight[device_key] = (worker, count + 1)
        else:
            worker = min(self.workers, key=lambda w: (w.queue_length, w.busy))
            self._inflight[device_key] = (worker, 1)
        if worker.busy or worker.queue_length > 0:
            self.contended.add()
        return worker

    def release(self, device_key: Any) -> None:
        worker, count = self._inflight[device_key]
        if count <= 1:
            del self._inflight[device_key]
        else:
            self._inflight[device_key] = (worker, count - 1)

    def contention_fraction(self) -> float:
        if self.steered.value == 0:
            return 0.0
        return self.contended.value / self.steered.value


class NicPump:
    """Connects one NIC function's Rx ring to a handler, in poll or
    interrupt mode.

    * Poll mode: a pump process blocks on the ring; the consuming worker
      core's poll-mode accounting models the spin.  No interrupts anywhere.
    * Interrupt mode: each NIC notification costs a (counted) IOhost
      interrupt plus handler cycles on ``irq_core`` before frames drain.

    The pump admits at most ``window`` frames into processing at once —
    the descriptor/buffer budget of the I/O hypervisor.  When processing
    backs up, frames stay in the Rx ring, and once *that* fills the NIC
    drops — which is exactly how the paper hit loss "in the wild" with a
    512-descriptor ring (§4.5).

    Handlers receive ``(payload, done)`` and must call ``done()`` when the
    frame's processing completes, releasing its window slot.
    """

    def __init__(self, env: Environment, fn: NicFunction,
                 handler: Callable[[Any, Callable[[], None]], None],
                 poll: bool, costs: CostModel,
                 irq_core: Optional[Core] = None,
                 irq_counter: Optional[Counter] = None,
                 window: int = 32) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive: {window}")
        self.env = env
        self.fn = fn
        self.handler = handler
        self.poll = poll
        self.costs = costs
        self.irq_core = irq_core
        self.irq_counter = irq_counter
        self.window = window
        self._in_flight = 0
        self._window_free: Optional[Event] = None
        if poll:
            fn.notify_mode = "poll"
            env.process(self._poll_pump(), name=f"pump:{fn.name}")
        else:
            if irq_core is None:
                raise ValueError("interrupt-mode pump needs an irq core")
            fn.notify_mode = "interrupt"
            fn.on_notify = self._on_interrupt

    def _admit(self, frame: Any) -> None:
        self._in_flight += 1
        self.handler(frame.payload, self._release)

    def _release(self) -> None:
        self._in_flight -= 1
        if self._window_free is not None and not self._window_free.triggered:
            self._window_free.succeed()

    def _wait_for_slot(self) -> Iterator[Event]:
        while self._in_flight >= self.window:
            self._window_free = self.env.event()
            yield self._window_free
            self._window_free: Optional[Event] = None

    def _poll_pump(self) -> Iterator[Event]:
        while True:
            if self._in_flight >= self.window:
                yield from self._wait_for_slot()
            frame = yield self.fn.rx_ring.get()
            self._admit(frame)

    def _on_interrupt(self) -> None:
        if self.irq_counter is not None:
            self.irq_counter.add()
        self.env.process(self._irq_drain(), name=f"irq:{self.fn.name}")

    def _irq_drain(self) -> Iterator[Event]:
        assert self.irq_core is not None  # enforced in __init__
        yield self.irq_core.execute(self.costs.host_irq_cycles,
                                    tag="iohost_irq", high_priority=True)
        while True:
            if self._in_flight >= self.window:
                yield from self._wait_for_slot()
            ok, frame = self.fn.rx_ring.try_get()
            if not ok:
                break
            self._admit(frame)
        self.fn.rearm()
