"""IOhost failure and recovery (§4.6 *Fault Tolerance*).

A vRIO rack wired as in Figure 2 loses reachability when its IOhost dies.
The paper's remedy: connect VMhosts to the IOhost *through the rack
switch*, so that on failure the switch can re-steer each IOclient's
F-address traffic — and the client falls back on regular (local) virtio,
served by its own VMhost.  Block devices recover only if backed by
distributed storage; a device that lived exclusively on the dead IOhost is
lost "akin to losing a local drive".

This module implements both halves:

* :func:`fail_iohost` — kills the I/O hypervisor: workers stop serving,
  in-flight and future frames are dropped, and block requests start
  failing through the §4.5 retransmission machinery.
* :func:`fall_back_to_local_virtio` — re-homes a client's F address onto
  its VMhost's switch-facing NIC (with the switch re-learning the port)
  and splices a local trap-and-emulate virtio service underneath the
  client's existing :class:`~repro.iomodels.base.NetPort`, so workloads
  keep running unmodified.  Optionally re-attaches the block device to a
  local replica (the distributed-storage case).
"""

from __future__ import annotations

from typing import Optional

from ...hw.cpu import Core
from ...hw.nic import Nic
from ...hw.storage import StorageDevice
from ...hw.link import LinkEndpoint
from ...hw.switch_fabric import Switch
from ...iomodels.baseline import BaselineModel
from .frontend import VrioClient, VrioModel

__all__ = ["fail_iohost", "fall_back_to_local_virtio"]


def fail_iohost(model: VrioModel) -> None:
    """Kill the I/O hypervisor.

    All NIC pumps and worker paths stop producing output; anything in
    flight is lost.  Clients' block reliability layers will detect the
    silence via timeouts.
    """
    model.failed = True


def fall_back_to_local_virtio(model: VrioModel, client: VrioClient,
                              vmhost_nic: Nic, io_core: Core,
                              switch: Optional[Switch] = None,
                              switch_port: Optional["LinkEndpoint"] = None,
                              replica_device: Optional[StorageDevice] = None,
                              ) -> BaselineModel:
    """Recover one IOclient after its IOhost died.

    Parameters
    ----------
    vmhost_nic:
        The VMhost NIC reachable from the fabric (switch-facing).
    io_core:
        A VMhost core for the local vhost service (the fallback gives up
        the consolidation benefit, exactly as the paper says).
    switch, switch_port:
        If given, the switch re-learns the client's F MAC onto the
        VMhost's port (the §4.6 "configuring the switch to channel
        IOclient traffic to the appropriate" place).
    replica_device:
        A local replica of the remote block device (distributed-storage
        case).  Without it, the client's remote disks stay dead.

    Returns the local :class:`BaselineModel` serving the client (exposed
    for inspection; the client's original port keeps working).
    """
    port = client.port
    local = BaselineModel(model.env, vmhost_nic, io_core, costs=model.costs,
                          stats=model.stats)
    # Keep the externally visible F address: the local virtio device is
    # created with the same MAC, and the fabric re-learns its location.
    local_port = local.attach_vm(client.vm, mac=port.mac)
    if switch is not None:
        if switch_port is None:
            raise ValueError("switch re-learning needs the VMhost's port")
        switch.learn(port.mac, switch_port)
    # Splice the local datapath under the client's existing port so the
    # workload's handlers keep working unmodified.
    port._transmit = local_port._transmit
    port.app_dilation = local_port.app_dilation
    local_port.receive_handler = port.deliver
    client.transport_mode = "virtio-local"
    if replica_device is not None:
        handle = local.attach_block_device(client.vm, replica_device)
        client.local_block_handle = handle
    return local
