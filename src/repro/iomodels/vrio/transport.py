"""The vRIO transport driver — the IOclient side of the channel (§4.1).

The transport driver sits below the paravirtual front-ends and above the
SRIOV channel VF.  On transmit it encapsulates virtio requests with vRIO
metadata, prepends the fake TCP/IP header that lets the NIC's TSO engine
segment chunks up to 64 KB in hardware, and splits anything larger (block
I/O) into multiple TSO chunks.  On receive it reassembles and decapsulates,
then upcalls the front-end.

Byte-exact wire accounting: every chunk frame's payload counts the vRIO
header once, a fake TCP/IP header per TSO fragment, and an extra Ethernet
header per fragment beyond the first (the frame object itself carries one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List

if TYPE_CHECKING:
    from ..costs import CostModel

from ...net.frame import (
    ETHERNET_HEADER_BYTES,
    FAKE_TCPIP_HEADER_BYTES,
    JUMBO_MTU_VRIO,
    VRIO_HEADER_BYTES,
)
from ...net.segmentation import TSO_MAX_BYTES, segment_sizes
from ...sim import Counter

__all__ = [
    "ChannelPacket",
    "chunk_sizes",
    "chunk_fragments",
    "chunk_wire_payload_bytes",
    "transport_tx_cycles",
    "transport_rx_cycles",
    "TransportStats",
]


@dataclass
class ChannelPacket:
    """One chunk frame on the VMhost<->IOhost channel."""

    client_id: str              # which IOclient (VM or bare-metal OS)
    direction: str              # "to_iohost" or "to_guest"
    inner: Any                  # NetMessage, BlockChannelOp/Resp, ControlCommand
    message_id: int
    chunk_index: int
    chunk_count: int
    chunk_bytes: int
    fragments: int
    meta: Dict[str, Any] = field(default_factory=dict)


def chunk_sizes(message_bytes: int) -> List[int]:
    """Split a message into TSO-sized chunks (<=64 KB each)."""
    return segment_sizes(message_bytes, TSO_MAX_BYTES)


def chunk_fragments(chunk_bytes: int, mtu: int = JUMBO_MTU_VRIO) -> int:
    """TSO fragments the NIC will emit for one chunk (incl. headers)."""
    return len(segment_sizes(chunk_bytes + VRIO_HEADER_BYTES
                             + FAKE_TCPIP_HEADER_BYTES, mtu))


def chunk_wire_payload_bytes(chunk_bytes: int,
                             mtu: int = JUMBO_MTU_VRIO) -> int:
    """L2 payload bytes one chunk occupies on the channel wire."""
    fragments = chunk_fragments(chunk_bytes, mtu)
    return (chunk_bytes
            + VRIO_HEADER_BYTES
            + fragments * FAKE_TCPIP_HEADER_BYTES
            + (fragments - 1) * ETHERNET_HEADER_BYTES)


def transport_tx_cycles(costs: "CostModel", chunk_bytes: int,
                        mtu: int = JUMBO_MTU_VRIO) -> int:
    """Guest cycles to encapsulate + hand one chunk to the channel VF.

    TSO makes this per-chunk, not per-fragment, on the transmit side — the
    NIC does the slicing (§4.3).  Only block traffic larger than 64 KB pays
    software segmentation, which shows up as multiple chunks.
    """
    return int(costs.vrio_transport_per_msg_cycles
               + costs.ring_op_cycles)


def transport_rx_cycles(costs: "CostModel", chunk_bytes: int,
                        mtu: int = JUMBO_MTU_VRIO) -> int:
    """Guest cycles to receive one chunk: reassembly IS software (§4.3)."""
    fragments = chunk_fragments(chunk_bytes, mtu)
    return int(costs.vrio_transport_per_msg_cycles
               + costs.vrio_transport_per_frag_cycles * fragments)


class TransportStats:
    """Counters for one IOclient's transport driver."""

    def __init__(self, name: str = "transport") -> None:
        self.chunks_sent = Counter(f"{name}.chunks_sent")
        self.chunks_received = Counter(f"{name}.chunks_received")
        self.messages_sent = Counter(f"{name}.messages_sent")
        self.messages_received = Counter(f"{name}.messages_received")
        self.bytes_sent = Counter(f"{name}.bytes_sent")
        self.bytes_received = Counter(f"{name}.bytes_received")
