"""vRIO channel protocol objects: block ops, responses, control commands."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ...hw.storage import BlockRequest

__all__ = ["BlockChannelOp", "BlockChannelResp", "ControlCommand"]


@dataclass
class BlockChannelOp:
    """A block request travelling IOclient -> IOhost."""

    request: BlockRequest
    xmit_id: int
    device_id: int
    size_bytes: int = 0     # data carried on the wire in this direction
    kind: str = "blk_op"
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Writes carry their payload toward the IOhost; reads carry only
        # the (small) command descriptor.
        if self.size_bytes == 0:
            self.size_bytes = (self.request.size_bytes
                               if self.request.op == "write" else 64)


@dataclass
class BlockChannelResp:
    """A block completion travelling IOhost -> IOclient."""

    request_id: int
    xmit_id: int
    device_id: int
    ok: bool
    size_bytes: int         # read data, or a small ack for writes
    kind: str = "blk_resp"
    meta: Dict[str, Any] = field(default_factory=dict)


@dataclass
class ControlCommand:
    """I/O-hypervisor -> IOclient device management (§4.1).

    In vRIO, paravirtual devices are created and destroyed *by the I/O
    hypervisor*, not the local hypervisor; the transport driver's secondary
    role is executing these commands.
    """

    action: str             # "create" or "destroy"
    device_type: str        # "net" or "blk"
    device_id: int
    client_id: str
    size_bytes: int = 64
    kind: str = "control"
    params: Optional[Dict[str, Any]] = None
