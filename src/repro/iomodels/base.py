"""Common abstractions shared by all four I/O models.

The contract every model implements:

* a **net port** per VM (:class:`NetPort`): workloads call
  :meth:`NetPort.send` and install :attr:`NetPort.receive_handler`; the
  model moves the message across the fabric, charging every core and wire
  on the way, and finally invokes the far side's handler *after* guest-side
  interrupt processing;
* a **block device** per VM (models expose ``attach_block_device``
  returning an object with ``submit(BlockRequest) -> Event``);
* an :class:`IoEventStats` instance counting the Table-3 events.

:class:`ExternalEndpoint` models bare-metal machines (the load generators)
as first-class fabric citizens with the same send/receive interface.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterator, Optional

from ..hw.cpu import Core
from ..hw.nic import NicFunction
from ..net.frame import ETHERNET_HEADER_BYTES, EthernetFrame, MacAddress, STANDARD_MTU
from ..net.segmentation import segment_sizes
from ..sim import Counter, Environment

if TYPE_CHECKING:
    from ..guest.vm import Vm
    from ..sim.engine import Event

__all__ = [
    "IoEventStats",
    "NetMessage",
    "NetPort",
    "ExternalEndpoint",
    "message_wire_bytes",
]

_message_ids = itertools.count(1)


class IoEventStats:
    """The five Table-3 event counters for one I/O model instance."""

    COLUMNS = ("exits", "guest_interrupts", "injections",
               "host_interrupts", "iohost_interrupts")

    def __init__(self, name: str = ""):
        self.name = name
        self.exits = Counter("exits")
        self.guest_interrupts = Counter("guest_interrupts")
        self.injections = Counter("injections")
        self.host_interrupts = Counter("host_interrupts")
        self.iohost_interrupts = Counter("iohost_interrupts")

    def snapshot(self) -> Dict[str, int]:
        return {col: getattr(self, col).value for col in self.COLUMNS}

    def total(self) -> int:
        """The paper's "sum" column: all overhead events combined."""
        return sum(getattr(self, col).value for col in self.COLUMNS)

    def reset(self) -> None:
        for col in self.COLUMNS:
            getattr(self, col).reset()


@dataclass
class NetMessage:
    """An application-level message travelling between F-level endpoints."""

    src: MacAddress
    dst: MacAddress
    size_bytes: int
    kind: str = "data"
    message_id: int = field(default_factory=lambda: next(_message_ids))
    created_ns: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"message size must be positive: {self.size_bytes}")


def message_wire_bytes(size_bytes: int, mtu: int = STANDARD_MTU) -> int:
    """Total L2 payload bytes for a TSO-aggregated message.

    The message travels as one simulated frame, but its wire time must
    account for the per-MTU-fragment headers real hardware emits.
    """
    fragments = len(segment_sizes(size_bytes, mtu))
    return size_bytes + (fragments - 1) * ETHERNET_HEADER_BYTES


class NetPort:
    """The workload-facing network interface of one VM under one model.

    Concrete models construct these, binding ``_transmit`` to their own
    datapath.  ``receive_handler`` fires with a :class:`NetMessage` after
    the guest has paid interrupt + stack costs for its arrival.
    """

    def __init__(self, env: Environment, vm: "Vm", mac: MacAddress,
                 transmit: Callable[[NetMessage], None],
                 app_dilation: float = 1.0,
                 per_send_extra_cycles: int = 0) -> None:
        self.env = env
        self.vm = vm
        self.mac = mac
        self._transmit = transmit
        self.app_dilation = app_dilation
        # Extra guest cycles the model's xmit path adds per send() syscall
        # (nonzero only for vRIO's transport driver).
        self.per_send_extra_cycles = per_send_extra_cycles
        self.receive_handler: Optional[Callable[[NetMessage], None]] = None
        self.tx_messages = Counter("tx_messages")
        self.rx_messages = Counter("rx_messages")
        self.tx_bytes = Counter("tx_bytes")
        self.rx_bytes = Counter("rx_bytes")

    def send(self, dst: MacAddress, size_bytes: int, kind: str = "data",
             meta: Optional[Dict[str, Any]] = None) -> NetMessage:
        """Asynchronously send a message.  Guest-side costs are charged by
        the model's datapath; the call returns immediately."""
        message = NetMessage(src=self.mac, dst=dst, size_bytes=size_bytes,
                             kind=kind, created_ns=self.env.now,
                             meta=meta or {})
        self.tx_messages.add()
        self.tx_bytes.add(size_bytes)
        self._transmit(message)
        return message

    def deliver(self, message: NetMessage) -> None:
        """Called by the model once the guest has processed the arrival."""
        self.rx_messages.add()
        self.rx_bytes.add(message.size_bytes)
        if self.receive_handler is not None:
            self.receive_handler(message)

    def app_cycles(self, cycles: int) -> int:
        """Application cycle counts, dilated by the model's pollution factor."""
        return int(cycles * self.app_dilation)


class ExternalEndpoint:
    """A bare-metal machine on the fabric (load generator or server).

    Owns a core and a NIC function; converts between frames and
    :class:`NetMessage`, charging per-message stack costs on its core.
    """

    def __init__(self, env: Environment, name: str, core: Core,
                 nic_fn: NicFunction, per_msg_cycles: int = 4_500,
                 mtu: int = STANDARD_MTU) -> None:
        self.env = env
        self.name = name
        self.core = core
        self.nic_fn = nic_fn
        self.per_msg_cycles = per_msg_cycles
        self.mtu = mtu
        self.mac = nic_fn.mac
        self.receive_handler: Optional[Callable[[NetMessage], None]] = None
        self.tx_messages = Counter("tx_messages")
        self.rx_messages = Counter("rx_messages")
        nic_fn.notify_mode = "eli"   # bare metal: no virtualization overhead
        nic_fn.on_notify = self._on_rx

    def send(self, dst: MacAddress, size_bytes: int, kind: str = "data",
             meta: Optional[Dict[str, Any]] = None) -> NetMessage:
        message = NetMessage(src=self.mac, dst=dst, size_bytes=size_bytes,
                             kind=kind, created_ns=self.env.now,
                             meta=meta or {})
        self.tx_messages.add()
        self.env.process(self._tx_path(message), name=f"{self.name}-tx")
        return message

    def _tx_path(self, message: NetMessage) -> Iterator["Event"]:
        yield self.core.execute(self.per_msg_cycles, tag="net_stack")
        frame = EthernetFrame(
            src=self.mac, dst=message.dst, payload=message,
            payload_bytes=message_wire_bytes(message.size_bytes, self.mtu),
            kind=message.kind, created_ns=self.env.now)
        self.nic_fn.transmit(frame)

    def _on_rx(self) -> None:
        self.env.process(self._rx_path(), name=f"{self.name}-rx")

    def _rx_path(self) -> Iterator["Event"]:
        while True:
            ok, frame = self.nic_fn.rx_ring.try_get()
            if not ok:
                break
            yield self.core.execute(self.per_msg_cycles, tag="net_stack",
                                    high_priority=True)
            self.rx_messages.add()
            if self.receive_handler is not None:
                self.receive_handler(frame.payload)
        self.nic_fn.rearm()
