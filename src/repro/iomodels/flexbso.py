"""The *flexbso* I/O model: block-storage offload to a per-host engine.

Modeled after FlexBSO-style flexible block-storage offload
(arXiv 2409.02381): guests post plain virtio requests, but the backend
runs on a dedicated *offload engine* — a SmartNIC service core with its
own run queue and service-time profile — instead of host software.  The
doorbell is a posted MMIO write into the engine (no exit), the engine
DMAs request data through its own memory and drives the medium, and the
completion is written back NIC-side with an exitless interrupt into the
guest.  The §2 cost model charges the engine for its per-request
processing and per-byte DMA staging.

Because every request crosses the engine, interposition works — the same
property Elvis buys with host sidecores, here at SmartNIC prices.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..guest.vm import Vm
from ..hw.cpu import Core
from ..hw.nic import Nic, NicFunction
from ..hw.storage import BlockRequest, StorageDevice
from ..interpose import InterposerChain
from ..net.frame import EthernetFrame, STANDARD_MTU
from ..sim import Counter, Environment, Event
from .base import IoEventStats, NetMessage, NetPort, message_wire_bytes
from .costs import CostModel, DEFAULT_COSTS
from .registry import (
    Capabilities,
    ModelInfo,
    SimpleWiring,
    consolidated_per_host,
    register_model,
)
from .vrio.reliability import BlockDeviceError

__all__ = ["FlexbsoModel", "FlexbsoBlockHandle"]


class FlexbsoBlockHandle:
    """Workload-facing paravirtual block device backed by the engine."""

    def __init__(self, model: "FlexbsoModel", vm: Vm,
                 device: StorageDevice) -> None:
        self.model = model
        self.vm = vm
        self.device = device

    def submit(self, request: BlockRequest) -> Event:
        """Issue a block request; the event triggers after guest completion
        handling (exitless interrupt + block-layer reap) has run."""
        done = self.model.env.event()
        self.model.env.process(
            self.model._blk_path(self.vm, self.device, request, done),
            name=f"flexbso-blk:{self.vm.name}")
        return done


class FlexbsoModel:
    """FlexBSO: per-host offload engine, NIC-side completions."""

    name = "flexbso"
    interposable = True

    def __init__(self, env: Environment, nic: Nic, engine: Core,
                 costs: CostModel = DEFAULT_COSTS,
                 stats: Optional[IoEventStats] = None,
                 interposers: Optional[InterposerChain] = None,
                 mtu: int = STANDARD_MTU,
                 tracer: Optional[Any] = None) -> None:
        self.env = env
        self.nic = nic
        self.engine = engine
        self.costs = costs
        self.stats = stats if stats is not None else IoEventStats("flexbso")
        self.interposers = (interposers if interposers is not None
                            else InterposerChain())
        self.mtu = mtu
        self.tracer = tracer  # optional repro.sim.trace.Tracer
        self._fn_of: Dict[Vm, NicFunction] = {}
        self._port_of: Dict[Vm, NetPort] = {}
        self.offloaded_requests = Counter("offloaded_requests")
        self.engine_dma_bytes = Counter("engine_dma_bytes")

    def register_telemetry(self, namespace: Any) -> None:
        """Register this model's instruments into a metrics namespace."""
        namespace.register_gauge("attached_vms",
                                 lambda m=self: len(m._port_of))
        namespace.register_counter("offloaded_requests",
                                   self.offloaded_requests)
        namespace.register_counter("engine_dma_bytes", self.engine_dma_bytes)
        namespace.register_gauge("engine_queue_length",
                                 lambda m=self: m.engine.queue_length)

    def add_interposer(self, interposer: Any) -> None:
        self.interposers.add(interposer)

    def attach_vm(self, vm: Vm) -> NetPort:
        """Create the VM's engine-backed net device; returns its port."""
        if vm in self._port_of:
            raise ValueError(f"{vm.name} already attached")
        vm.stats = self.stats
        fn = self.nic.create_function(f"flexbso-{vm.name}", notify_mode="eli")
        fn.on_notify = lambda v=vm: self._on_nic_rx(v)
        fn.on_tx_complete = lambda v=vm: self._on_tx_complete(v)
        self._fn_of[vm] = fn
        port = NetPort(self.env, vm, fn.mac,
                       transmit=lambda msg, v=vm: self._start_tx(v, msg))
        self._port_of[vm] = port
        return port

    def attach_block_device(self, vm: Vm,
                            device: StorageDevice) -> FlexbsoBlockHandle:
        if vm not in self._port_of:
            raise ValueError(f"attach_vm({vm.name}) first")
        return FlexbsoBlockHandle(self, vm, device)

    # -- guest transmit --------------------------------------------------------

    def _start_tx(self, vm: Vm, message: NetMessage) -> None:
        self.env.process(self._guest_tx(vm, message),
                         name=f"flexbso-tx:{vm.name}")

    def _guest_tx(self, vm: Vm, message: NetMessage) -> Iterator[Event]:
        c = self.costs
        if self.tracer:
            self.tracer.point(message.message_id, "guest_tx",
                              vm=vm.name, bytes=message.size_bytes)
        cycles = int(c.guest_net_per_msg_cycles
                     + c.guest_net_per_byte_cycles * message.size_bytes
                     + c.ring_op_cycles)
        yield vm.vcpu.execute(cycles, tag="net_tx")
        # Doorbell: posted PCIe write into the engine — latency, no exit.
        yield self.env.timeout(c.flexbso_doorbell_latency_ns)
        self.env.process(self._engine_tx(vm, message),
                         name=f"flexbso-eng-tx:{vm.name}")

    def _engine_tx(self, vm: Vm, message: NetMessage) -> Iterator[Event]:
        c = self.costs
        if not self.interposers.admit(message):
            return
        span = None
        if self.tracer:
            span = self.tracer.begin(message.message_id, "engine_service",
                                     core=self.engine.name, direction="tx")
        self.offloaded_requests.add()
        self.engine_dma_bytes.add(message.size_bytes)
        cycles = int(c.flexbso_engine_per_req_cycles
                     + c.flexbso_dma_per_byte_cycles * message.size_bytes
                     + self.interposers.cycles(message.size_bytes,
                                               message.kind))
        yield self.engine.execute(cycles, tag="engine")
        frame = EthernetFrame(
            src=self._fn_of[vm].mac, dst=message.dst, payload=message,
            payload_bytes=message_wire_bytes(message.size_bytes, self.mtu),
            kind=message.kind, created_ns=self.env.now)
        # The NIC *is* the engine's front end: send completion comes back
        # to the engine, never as a host interrupt.
        self._fn_of[vm].transmit(frame, completion_interrupt=True)
        if span is not None:
            self.tracer.end(span)

    def _on_tx_complete(self, vm: Vm) -> None:
        self.env.process(self._tx_complete_path(vm),
                         name=f"flexbso-txc:{vm.name}")

    def _tx_complete_path(self, vm: Vm) -> Iterator[Event]:
        # Engine writes the used entry back NIC-side and signals the
        # guest exitlessly (posted interrupt).
        yield self.engine.execute(self.costs.ring_op_cycles,
                                  tag="tx_complete")
        vm.deliver_interrupt_exitless()

    # -- receive ---------------------------------------------------------------

    def _on_nic_rx(self, vm: Vm) -> None:
        self.env.process(self._rx_path(vm), name=f"flexbso-rx:{vm.name}")

    def _rx_path(self, vm: Vm) -> Iterator[Event]:
        c = self.costs
        fn = self._fn_of[vm]
        port = self._port_of[vm]
        while True:
            ok, frame = fn.rx_ring.try_get()
            if not ok:
                break
            message: NetMessage = frame.payload
            if not self.interposers.admit(message):
                continue
            span = None
            if self.tracer:
                span = self.tracer.begin(message.message_id, "engine_service",
                                         core=self.engine.name,
                                         direction="rx")
            self.engine_dma_bytes.add(message.size_bytes)
            cycles = int(c.flexbso_engine_per_req_cycles
                         + c.flexbso_dma_per_byte_cycles * message.size_bytes
                         + self.interposers.cycles(message.size_bytes,
                                                   message.kind))
            yield self.engine.execute(cycles, tag="engine")
            if span is not None:
                self.tracer.end(span)
            extra = int(c.guest_net_per_msg_cycles
                        + c.guest_net_per_byte_cycles * message.size_bytes)
            yield vm.deliver_interrupt_exitless(extra_cycles=extra)
            if self.tracer:
                self.tracer.point(message.message_id, "guest_deliver",
                                  vm=vm.name)
            port.deliver(message)
        fn.rearm()

    # -- block -----------------------------------------------------------------

    def _blk_path(self, vm: Vm, device: StorageDevice, request: BlockRequest,
                  done: Event) -> Iterator[Event]:
        c = self.costs
        request.issued_ns = self.env.now
        # Guest: virtio-blk post; the doorbell is device MMIO, no exit.
        yield vm.vcpu.execute(c.guest_blk_per_req_cycles + c.ring_op_cycles,
                              tag="blk_submit")
        yield self.env.timeout(c.flexbso_doorbell_latency_ns)
        # Offload engine: parse/translate the request, stage its data by
        # DMA, and drive the medium from the SmartNIC.
        self.offloaded_requests.add()
        self.engine_dma_bytes.add(request.size_bytes)
        kind = "blk_read" if request.op == "read" else "blk_write"
        cycles = int(c.flexbso_engine_per_req_cycles
                     + c.flexbso_dma_per_byte_cycles * request.size_bytes
                     + device.cpu_cycles(request)
                     + self.interposers.cycles(request.size_bytes, kind))
        yield self.engine.execute(cycles, tag="blk_engine")
        yield device.submit(request)
        yield self.engine.execute(c.ring_op_cycles, tag="blk_complete")
        # NIC-side completion: posted interrupt, guest reaps the ring.
        yield vm.deliver_interrupt_exitless(extra_cycles=c.ring_op_cycles)
        if request.meta.get("device_error"):
            # The engine copies the medium's error status into the used
            # ring verbatim — it offloads the data path, not recovery, so
            # the error lands in the guest (contrast §4.5).
            done.fail(BlockDeviceError(request, attempts=1))
        else:
            done.succeed(request)


# -- registry wiring ----------------------------------------------------------

def _build_simple(ctx: Any) -> SimpleWiring:
    host_nic = ctx.vmhost.new_nic("external")
    ctx.wire_loadgen(host_nic)
    engine = ctx.vmhost.new_sidecore()
    model = FlexbsoModel(ctx.env, host_nic, engine, costs=ctx.costs,
                         stats=ctx.stats)
    ports = [model.attach_vm(vm) for vm in ctx.vms]
    return SimpleWiring(model=model, ports=ports, service_cores=[engine])


def _consolidation_host(
        ctx: Any, vmhost: Any,
) -> Tuple["FlexbsoModel", List[Core], Callable[[Vm], NetPort]]:
    nic = vmhost.new_nic("external")
    engine = vmhost.new_sidecore()
    model = FlexbsoModel(ctx.env, nic, engine, costs=ctx.costs,
                         stats=ctx.stats)
    return model, [engine], model.attach_vm


register_model(ModelInfo(
    name="flexbso",
    description=("block offload to a per-host SmartNIC engine core with "
                 "NIC-side exitless completions (arXiv 2409.02381)"),
    capabilities=Capabilities(net=True, block=True, polling=True,
                              topologies=("simple", "consolidation"),
                              ablation=False, exitless=True),
    build_simple=_build_simple,
    build_consolidation=lambda ctx: consolidated_per_host(
        ctx, _consolidation_host),
    tab_rank=70, throughput_rank=70, block_rank=50,
))
