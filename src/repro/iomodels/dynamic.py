"""Dynamic sidecore allocation — the alternative §2 considers and rejects.

"Conceivably, we could dynamically (de)allocate sidecores in response to
the changing load [49].  But this approach is limited for two reasons.
First, because sidecores are discrete — it is impossible to allocate a
fraction of a sidecore [...].  The second, more significant limitation
[...] is that it is irrelevant when the aggregated need for VM and I/O
processing exceeds the capacity of the individual physical server."

:class:`DynamicSidecoreAllocator` grows/shrinks an Elvis instance's
sidecore set between epochs based on measured *useful* utilization.  Both
limitations are inherent and measurable here: allocation is in whole
cores, and the spare cores must come from — and stay on — the same
VMhost.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from ..hw.cpu import Core
from ..sim import Counter, Environment, Event
from .elvis import ElvisModel

__all__ = ["DynamicSidecoreAllocator"]


class DynamicSidecoreAllocator:
    """Epoch-based sidecore scaling for one Elvis host.

    Parameters
    ----------
    model:
        The Elvis instance whose sidecore set is managed.
    spare_cores:
        Local cores the allocator may turn into sidecores (and must return
        when shrinking).  They cannot serve any other host — the paper's
        second limitation.
    epoch_ns:
        How often utilization is evaluated.
    grow_threshold / shrink_threshold:
        Mean useful-utilization bounds triggering (de)allocation.
    """

    def __init__(self, env: Environment, model: ElvisModel,
                 spare_cores: List[Core], epoch_ns: int = 2_000_000,
                 grow_threshold: float = 0.8,
                 shrink_threshold: float = 0.25) -> None:
        if not 0.0 < shrink_threshold < grow_threshold <= 1.0:
            raise ValueError(
                f"need 0 < shrink ({shrink_threshold}) < grow "
                f"({grow_threshold}) <= 1")
        self.env = env
        self.model = model
        self.spare_cores = list(spare_cores)
        self.epoch_ns = epoch_ns
        self.grow_threshold = grow_threshold
        self.shrink_threshold = shrink_threshold
        self.grow_events = Counter("grow_events")
        self.shrink_events = Counter("shrink_events")
        self._last_useful: Dict[int, int] = {
            id(c): 0 for c in model.sidecores + spare_cores}
        env.process(self._control_loop(), name="sidecore-allocator")

    @property
    def active_sidecores(self) -> int:
        return len(self.model.sidecores)

    def _epoch_utilization(self) -> float:
        """Mean useful fraction of the active sidecores over the epoch."""
        total = 0.0
        for core in self.model.sidecores:
            useful = core.util.useful_ns
            delta = useful - self._last_useful.get(id(core), 0)
            total += delta / self.epoch_ns
        for core in self.model.sidecores + self.spare_cores:
            self._last_useful[id(core)] = core.util.useful_ns
        return total / max(1, len(self.model.sidecores))

    def _rebalance(self) -> None:
        """Spread the model's VMs round-robin over the current sidecores."""
        vms = list(self.model._sidecore_of)
        for index, vm in enumerate(vms):
            self.model._sidecore_of[vm] = self.model.sidecores[
                index % len(self.model.sidecores)]

    def _control_loop(self) -> Iterator[Event]:
        env = self.env
        while True:
            yield env.timeout(self.epoch_ns)
            utilization = self._epoch_utilization()
            if utilization > self.grow_threshold and self.spare_cores:
                core = self.spare_cores.pop(0)
                self.model.sidecores.append(core)
                self.grow_events.add()
                self._rebalance()
            elif (utilization < self.shrink_threshold
                    and len(self.model.sidecores) > 1):
                core = self.model.sidecores.pop()
                self.spare_cores.insert(0, core)
                self.shrink_events.add()
                self._rebalance()
