"""The *nvme_pt* I/O model: NVMe virtualization with I/O-queue passthrough.

Modeled after hardware-assisted NVMe virtualization (arXiv 2304.05148):
each VM gets its own NVMe I/O queue pair mapped straight into the guest,
so data-path submissions never exit — the guest rings a *shadow doorbell*
(a store to a shared page the device polls) and completions arrive as
posted interrupts.  Only the admin queue stays trapped: queue creation,
deletion, and aborts each cost a synchronous exit plus host emulation
work.  The network side is plain SRIOV+ELI direct assignment, as in the
optimum — the passthrough philosophy applied to both device classes.

Like SRIOV, the host never touches the data path, so interposition is
impossible; unlike SRIOV, host-managed block devices *do* work, because
the mediation needed to carve per-VM queue pairs out of one device is
exactly what the admin-queue trap path provides.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..guest.vm import Vm
from ..hw.cpu import Core
from ..hw.nic import Nic, NicFunction
from ..hw.storage import BlockRequest, StorageDevice
from ..net.frame import EthernetFrame, STANDARD_MTU
from ..sim import Counter, Environment, Event
from .base import IoEventStats, NetMessage, NetPort, message_wire_bytes
from .costs import CostModel, DEFAULT_COSTS
from .registry import (
    Capabilities,
    ModelInfo,
    SimpleWiring,
    consolidated_per_host,
    register_model,
)
from .vrio.reliability import BlockDeviceError

__all__ = ["NvmePtModel", "NvmePtBlockHandle"]

# I/O queue-pair creation takes one admin command for the submission
# queue and one for the completion queue — both trapped.
_ADMIN_CMDS_PER_QPAIR = 2


class NvmePtBlockHandle:
    """Workload-facing block device backed by a passthrough queue pair."""

    def __init__(self, model: "NvmePtModel", vm: Vm,
                 device: StorageDevice) -> None:
        self.model = model
        self.vm = vm
        self.device = device

    def submit(self, request: BlockRequest) -> Event:
        """Issue a block request through the VM's mapped I/O queue pair."""
        done = self.model.env.event()
        self.model.env.process(
            self.model._blk_path(self.vm, self.device, request, done),
            name=f"nvmept-blk:{self.vm.name}")
        return done


class NvmePtModel:
    """NVMe I/O-queue passthrough: exitless data path, trapped admin path."""

    name = "nvme_pt"
    interposable = False

    def __init__(self, env: Environment, costs: CostModel = DEFAULT_COSTS,
                 stats: Optional[IoEventStats] = None,
                 mtu: int = STANDARD_MTU,
                 tracer: Optional[Any] = None) -> None:
        self.env = env
        self.costs = costs
        self.stats = stats if stats is not None else IoEventStats("nvme_pt")
        self.mtu = mtu
        self.tracer = tracer  # optional repro.sim.trace.Tracer
        self._vf_of: Dict[Vm, NicFunction] = {}
        self._port_of: Dict[Vm, NetPort] = {}
        self._qpairs_of: Dict[str, int] = {}
        self.admin_commands = Counter("admin_commands")
        self.data_submissions = Counter("data_submissions")

    def register_telemetry(self, namespace: Any) -> None:
        """Register this model's instruments into a metrics namespace."""
        namespace.register_gauge("attached_vms",
                                 lambda m=self: len(m._port_of))
        namespace.register_gauge("mapped_qpairs",
                                 lambda m=self: sum(m._qpairs_of[k]
                                                    for k in
                                                    sorted(m._qpairs_of)))
        namespace.register_counter("admin_commands", self.admin_commands)
        namespace.register_counter("data_submissions", self.data_submissions)

    def attach_vm(self, vm: Vm, nic: Nic) -> NetPort:
        """Assign a fresh VF on ``nic`` to ``vm``; returns its net port."""
        if vm in self._port_of:
            raise ValueError(f"{vm.name} already attached")
        vm.stats = self.stats
        vf = nic.create_function(f"nvmept-{vm.name}", notify_mode="eli")
        port = NetPort(self.env, vm, vf.mac,
                       transmit=lambda msg, v=vm: self._start_tx(v, msg))
        vf.on_notify = lambda v=vm: self._on_rx(v)
        vf.on_tx_complete = lambda v=vm: self._on_tx_complete(v)
        self._vf_of[vm] = vf
        self._port_of[vm] = port
        self._qpairs_of[vm.name] = 0
        return port

    def attach_block_device(self, vm: Vm,
                            device: StorageDevice) -> NvmePtBlockHandle:
        """Map a per-VM I/O queue pair onto ``device``.

        Queue-pair creation goes through the trapped admin path — the one
        place this model still exits.
        """
        if vm not in self._port_of:
            raise ValueError(f"attach_vm({vm.name}) first")
        self._qpairs_of[vm.name] += 1
        self.env.process(self._admin_create_qpair(vm),
                         name=f"nvmept-admin:{vm.name}")
        return NvmePtBlockHandle(self, vm, device)

    def add_interposer(self, interposer: Any) -> None:
        raise NotImplementedError(
            "queue-pair passthrough bypasses the host: interposition is "
            "impossible, as with SRIOV (§2)")

    # -- admin path (trapped) --------------------------------------------------

    def _admin_create_qpair(self, vm: Vm) -> Iterator[Event]:
        c = self.costs
        for _ in range(_ADMIN_CMDS_PER_QPAIR):
            self.admin_commands.add()
            yield vm.sync_exit(extra_cycles=c.nvme_admin_cmd_cycles)

    # -- network transmit (direct VF, as in the optimum) -----------------------

    def _start_tx(self, vm: Vm, message: NetMessage) -> None:
        self.env.process(self._tx_path(vm, message),
                         name=f"nvmept-tx:{vm.name}")

    def _tx_path(self, vm: Vm, message: NetMessage) -> Iterator[Event]:
        c = self.costs
        if self.tracer:
            self.tracer.point(message.message_id, "guest_tx",
                              vm=vm.name, bytes=message.size_bytes)
        cycles = int(c.guest_net_per_msg_cycles
                     + c.guest_net_per_byte_cycles * message.size_bytes
                     + c.ring_op_cycles)
        yield vm.vcpu.execute(cycles, tag="net_tx")
        frame = EthernetFrame(
            src=self._vf_of[vm].mac, dst=message.dst, payload=message,
            payload_bytes=message_wire_bytes(message.size_bytes, self.mtu),
            kind=message.kind, created_ns=self.env.now)
        self._vf_of[vm].transmit(frame, completion_interrupt=True)

    def _on_tx_complete(self, vm: Vm) -> None:
        vm.deliver_interrupt_exitless()

    # -- network receive -------------------------------------------------------

    def _on_rx(self, vm: Vm) -> None:
        self.env.process(self._rx_path(vm), name=f"nvmept-rx:{vm.name}")

    def _rx_path(self, vm: Vm) -> Iterator[Event]:
        c = self.costs
        vf = self._vf_of[vm]
        port = self._port_of[vm]
        while True:
            ok, frame = vf.rx_ring.try_get()
            if not ok:
                break
            message: NetMessage = frame.payload
            extra = int(c.guest_net_per_msg_cycles
                        + c.guest_net_per_byte_cycles * message.size_bytes)
            yield vm.deliver_interrupt_exitless(extra_cycles=extra)
            if self.tracer:
                self.tracer.point(message.message_id, "guest_deliver",
                                  vm=vm.name)
            port.deliver(message)
        vf.rearm()

    # -- block data path (exitless) --------------------------------------------

    def _blk_path(self, vm: Vm, device: StorageDevice, request: BlockRequest,
                  done: Event) -> Iterator[Event]:
        c = self.costs
        request.issued_ns = self.env.now
        self.data_submissions.add()
        # Guest NVMe driver builds the command and rings the shadow
        # doorbell — a store the device polls, not a trapped MMIO.  The
        # guest also runs the whole driver stack itself: with the queue
        # pair mapped in, there is no host software to offload it to.
        yield vm.vcpu.execute(int(c.guest_blk_per_req_cycles
                                  + c.nvme_shadow_doorbell_cycles
                                  + device.cpu_cycles(request)),
                              tag="blk_submit")
        yield device.submit(request)
        # Completion: the device posts to the mapped CQ and its MSI is
        # delivered without host involvement; the guest reaps the entry.
        yield vm.deliver_interrupt_exitless(extra_cycles=c.ring_op_cycles)
        if request.meta.get("device_error"):
            # A media error is a CQE with a bad status code: with no host
            # software interposed there is nothing to retry it — the error
            # goes straight to the guest (contrast §4.5's retransmitting
            # reliability layer).
            done.fail(BlockDeviceError(request, attempts=1))
        else:
            done.succeed(request)


# -- registry wiring ----------------------------------------------------------

def _build_simple(ctx: Any) -> SimpleWiring:
    host_nic = ctx.vmhost.new_nic("external")
    ctx.wire_loadgen(host_nic)
    model = NvmePtModel(ctx.env, costs=ctx.costs, stats=ctx.stats)
    ports = [model.attach_vm(vm, host_nic) for vm in ctx.vms]
    return SimpleWiring(model=model, ports=ports, service_cores=[])


def _consolidation_host(
        ctx: Any, vmhost: Any,
) -> Tuple["NvmePtModel", List[Core], Callable[[Vm], NetPort]]:
    nic = vmhost.new_nic("external")
    model = NvmePtModel(ctx.env, costs=ctx.costs, stats=ctx.stats)
    return model, [], lambda vm, m=model, n=nic: m.attach_vm(vm, n)


register_model(ModelInfo(
    name="nvme_pt",
    description=("NVMe I/O-queue passthrough: shadow doorbells, exitless "
                 "data path, trapped admin queue (arXiv 2304.05148)"),
    capabilities=Capabilities(net=True, block=True, polling=False,
                              topologies=("simple", "consolidation"),
                              ablation=False, exitless=True),
    build_simple=_build_simple,
    build_consolidation=lambda ctx: consolidated_per_host(
        ctx, _consolidation_host),
    tab_rank=60, throughput_rank=60, block_rank=40,
))
