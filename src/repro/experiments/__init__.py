"""One runner per paper table/figure.  See DESIGN.md §4 for the index."""

from .block_experiments import (
    FIG14_MIXES,
    format_fig14,
    format_fig14_ssd,
    run_fig14,
    run_fig14_ssd,
)
from .consolidation_experiments import (
    format_fig15,
    format_fig16a,
    format_fig16b,
    run_fig15,
    run_fig16a,
    run_fig16b,
)
from .dc_scale import format_dc_scale, run_dc_scale
from .energy_experiments import format_energy, run_energy
from .costs_experiments import (
    format_fig01,
    format_fig03,
    format_tab01,
    format_tab02,
    run_fig01,
    run_fig03,
    run_tab01,
    run_tab02,
)
from .latency_experiments import (
    format_fig07,
    format_fig08,
    format_tab04,
    run_fig07,
    run_fig08,
    run_tab04,
)
from .executor import (
    CacheStats,
    SweepCache,
    canonical_json,
    code_version,
    cost_fingerprint,
    default_cache_dir,
    resolve_jobs,
    sweep,
)
from .runner import SeriesPoint, macro_run, rr_run, stream_run
from .scalability_experiments import (
    format_fig13,
    format_fig13_util,
    run_fig13_util,
    run_fig13a,
    run_fig13b,
)
from .tab03_events import PAPER_TAB03, format_tab03, run_tab03
from .throughput_experiments import (
    format_fig05,
    format_fig09,
    format_fig10,
    format_fig11,
    format_fig12,
    run_fig05,
    run_fig09,
    run_fig10,
    run_fig11,
    run_fig12,
)

__all__ = [
    "SeriesPoint", "rr_run", "stream_run", "macro_run",
    "sweep", "SweepCache", "CacheStats", "resolve_jobs",
    "default_cache_dir", "canonical_json", "cost_fingerprint",
    "code_version",
    "run_fig01", "run_tab01", "run_tab02", "run_fig03",
    "format_fig01", "format_tab01", "format_tab02", "format_fig03",
    "run_tab03", "format_tab03", "PAPER_TAB03",
    "run_fig05", "format_fig05",
    "run_fig07", "format_fig07", "run_fig08", "format_fig08",
    "run_tab04", "format_tab04",
    "run_fig09", "format_fig09", "run_fig10", "format_fig10",
    "run_fig11", "format_fig11", "run_fig12", "format_fig12",
    "run_fig13a", "run_fig13b", "format_fig13",
    "run_fig13_util", "format_fig13_util",
    "run_fig14", "format_fig14", "FIG14_MIXES",
    "run_fig14_ssd", "format_fig14_ssd",
    "run_fig15", "format_fig15",
    "run_fig16a", "format_fig16a", "run_fig16b", "format_fig16b",
    "run_energy", "format_energy",
    "run_dc_scale", "format_dc_scale",
]
