"""Shared experiment plumbing: standard run lengths and sweep helpers.

Experiments default to simulating tens of milliseconds — long enough for
thousands of transactions per VM (runs are deterministic, so the paper's
5-repetition averaging is unnecessary), short enough that a full sweep
regenerates in seconds.

Every experiment module decomposes its figure into independent sweep
points and evaluates them through :func:`sweep` (see
:mod:`repro.experiments.executor`), which fans points out over worker
processes and replays unchanged points from a persistent result cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..cluster import Testbed, TestbedSpec, build_testbed
from ..iomodels.costs import CostModel
from ..sim import ms
from ..workloads import ApacheBench, Memslap, NetperfRR, NetperfStream
from .executor import (
    CacheStats,
    SweepCache,
    canonical_json,
    code_version,
    cost_fingerprint,
    default_cache_dir,
    resolve_jobs,
    sweep,
)

__all__ = [
    "DEFAULT_RUN_NS",
    "DEFAULT_WARMUP_NS",
    "rr_run",
    "stream_run",
    "macro_run",
    "SeriesPoint",
    "sweep",
    "SweepCache",
    "CacheStats",
    "resolve_jobs",
    "default_cache_dir",
    "canonical_json",
    "cost_fingerprint",
    "code_version",
]

DEFAULT_RUN_NS = ms(40)
DEFAULT_WARMUP_NS = ms(2)


@dataclass
class SeriesPoint:
    """One (model, N) measurement in a sweep."""

    model: str
    n_vms: int
    value: float
    extra: Optional[dict] = None


def rr_run(model_name: str, n_vms: int,
           costs: Optional[CostModel] = None,
           run_ns: int = DEFAULT_RUN_NS,
           warmup_ns: int = DEFAULT_WARMUP_NS,
           sidecores: int = 1,
           noise: bool = False):
    """Netperf RR on the Figure 6 setup; returns (testbed, workloads).

    ``noise`` installs host background activity (timer ticks and rare
    long housekeeping events) on every core — needed for realistic tail
    percentiles (Table 4).
    """
    tb = build_testbed(TestbedSpec(model=model_name, vms_per_host=n_vms,
                                   costs=costs, sidecores=sidecores))
    workloads = [NetperfRR(tb.env, tb.clients[i], tb.ports[i], tb.costs,
                           warmup_ns=warmup_ns,
                           rng=tb.rng.stream(f"rr-client-{i}"))
                 for i in range(n_vms)]
    if noise:
        install_host_noise(tb)
    tb.env.run(until=run_ns)
    return tb, workloads


def install_host_noise(tb) -> None:
    """Background host activity: periodic timer ticks plus rare long
    events (housekeeping daemons, SMIs) on every core.

    The IOhost's cores get a far quieter profile — it is a dedicated I/O
    machine running nothing else, which is why vRIO's *extreme* tail beats
    Elvis's in Table 4: Elvis's sidecore shares a general-purpose host.
    """
    env = tb.env

    def noise(core, tick_mean_ns, tick_cycles, rare_mean_ns, rare_cycles,
              rng):
        def source(env):
            while True:
                yield env.timeout(max(1, int(rng.expovariate(
                    1.0 / tick_mean_ns))))
                core.execute(int(tick_cycles * rng.uniform(0.5, 1.5)),
                             tag="noise", high_priority=True)

        def rare_source(env):
            while True:
                yield env.timeout(max(1, int(rng.expovariate(
                    1.0 / rare_mean_ns))))
                core.execute(int(rare_cycles * rng.uniform(0.5, 2.0)),
                             tag="noise", high_priority=True)

        env.process(source(env), name=f"noise:{core.name}")
        env.process(rare_source(env), name=f"noise-rare:{core.name}")

    vmhost_cores = [vm.vcpu for vm in tb.vms]
    if tb.iohost is None:
        vmhost_cores += tb.service_cores      # local sidecores share the host
        iohost_cores = []
    else:
        iohost_cores = tb.service_cores
    for core in vmhost_cores:
        noise(core, tick_mean_ns=250_000, tick_cycles=5_000,
              rare_mean_ns=60_000_000, rare_cycles=400_000,
              rng=tb.rng.stream(f"noise-{core.name}"))
    for core in iohost_cores:
        noise(core, tick_mean_ns=1_000_000, tick_cycles=2_000,
              rare_mean_ns=500_000_000, rare_cycles=100_000,
              rng=tb.rng.stream(f"noise-{core.name}"))


def stream_run(model_name: str, n_vms: int,
               costs: Optional[CostModel] = None,
               run_ns: int = DEFAULT_RUN_NS,
               warmup_ns: int = ms(3),
               sidecores: int = 1):
    """Netperf 64 B stream on the Figure 6 setup."""
    tb = build_testbed(TestbedSpec(model=model_name, vms_per_host=n_vms,
                                   costs=costs, sidecores=sidecores))
    workloads = [NetperfStream(tb.env, tb.ports[i], tb.clients[i], tb.costs,
                               warmup_ns=warmup_ns) for i in range(n_vms)]
    tb.env.run(until=run_ns)
    return tb, workloads


_MACRO_CLASSES = {"apache": ApacheBench, "memcached": Memslap}


def macro_run(benchmark: str, model_name: str, n_vms: int,
              costs: Optional[CostModel] = None,
              run_ns: int = ms(30), warmup_ns: int = ms(3)):
    """Apache or memcached on the Figure 6 setup."""
    if benchmark not in _MACRO_CLASSES:
        raise ValueError(f"benchmark must be one of {sorted(_MACRO_CLASSES)}")
    workload_cls = _MACRO_CLASSES[benchmark]
    tb = build_testbed(TestbedSpec(model=model_name, vms_per_host=n_vms,
                                   costs=costs))
    workloads = [workload_cls(tb.env, tb.clients[i], tb.ports[i], tb.costs,
                              warmup_ns=warmup_ns) for i in range(n_vms)]
    tb.env.run(until=run_ns)
    return tb, workloads
