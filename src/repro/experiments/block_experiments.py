"""Figure 14: making a local device remote — filebench on a 1 GB ramdisk.

Three thread mixes per VM (one reader; one reader + one writer; two of
each) doing O_DIRECT 4 KB random I/O.  The counterintuitive result — vRIO
beating Elvis at two pairs — comes from involuntary guest context
switches: Elvis's low-latency completions keep all threads runnable on the
single VCPU, which timeslices them at a cost, while vRIO's network latency
keeps the run queue shallow.

Also here: the §5 SATA-SSD variant ("When applied to SATA SSDs available
to us, the reader's baseline and vRIO throughput become 75%–95% and
83%–95% relative to Elvis") — a slow medium hides most of the remote hop.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..cluster import TestbedSpec, build_testbed
from ..hw.storage import make_sata_ssd
from ..iomodels.registry import filter_models
from ..sim import ms
from ..workloads import FilebenchRandomIO
from .runner import SweepCache, sweep

__all__ = ["run_fig14", "format_fig14", "FIG14_MIXES",
           "run_fig14_ssd", "format_fig14_ssd"]

# Every headline model with host-managed block devices (the optimum has
# none; vrio_nopoll is an ablation), in the figure's series order.
FIG14_MODELS = filter_models(block=True, ablation=False, order="block")
FIG14_MIXES = {
    "1 reader": (1, 0),
    "1 pair": (1, 1),
    "2 pairs": (2, 2),
}


def _fig14_point(params: dict) -> dict:
    """One (mix, model, N) filebench/ramdisk cell."""
    model_name, n = params["model"], params["n_vms"]
    readers, writers = params["readers"], params["writers"]
    tb = build_testbed(TestbedSpec(model=model_name, vms_per_host=n,
                                   with_clients=False))
    workloads = []
    for i, vm in enumerate(tb.vms):
        handle = tb.attach_ramdisk(vm)
        rng = tb.rng.stream(f"filebench-{i}")
        workloads.append(FilebenchRandomIO(
            tb.env, vm, handle, rng, tb.costs,
            readers=readers, writers=writers,
            warmup_ns=ms(2),
            app_dilation=tb.ports[i].app_dilation))
    tb.env.run(until=params["run_ns"])
    total_ops = sum(w.ops_per_sec() for w in workloads)
    switches = sum(w.scheduler.involuntary_switches.value
                   for w in workloads)
    return {"model": model_name, "n_vms": n,
            "ops_per_sec": total_ops,
            "involuntary_switches": switches}


def run_fig14(vm_counts: Sequence[int] = range(1, 8),
              run_ns: int = ms(40),
              jobs: int = 1,
              cache: Optional[SweepCache] = None,
              models: Optional[Sequence[str]] = None) -> Dict[str, List[dict]]:
    """Aggregate filebench ops/sec per mix, model, and VM count."""
    points = [{"mix": mix_name, "readers": readers, "writers": writers,
               "model": model_name, "n_vms": int(n), "run_ns": run_ns}
              for mix_name, (readers, writers) in FIG14_MIXES.items()
              for model_name in (models if models is not None
                                 else FIG14_MODELS)
              for n in vm_counts]
    rows = sweep(points, _fig14_point, jobs=jobs,
                 artifact="fig14", cache=cache)
    result: Dict[str, List[dict]] = {mix: [] for mix in FIG14_MIXES}
    for p, row in zip(points, rows):
        result[p["mix"]].append(row)
    return result


def _fig14_ssd_point(params: dict) -> float:
    """One (model, N) SATA-SSD cell: aggregate single-reader ops/sec."""
    model_name, n = params["model"], params["n_vms"]
    tb = build_testbed(TestbedSpec(model=model_name, vms_per_host=n,
                                   with_clients=False))
    workloads = []
    for i, vm in enumerate(tb.vms):
        device = make_sata_ssd(tb.env, name=f"ssd-{vm.name}")
        handle = tb.attach_block_device(vm, device)
        rng = tb.rng.stream(f"ssd-{i}")
        workloads.append(FilebenchRandomIO(
            tb.env, vm, handle, rng, tb.costs,
            readers=1, writers=0, disk_bytes=device.capacity_bytes,
            warmup_ns=ms(4),
            app_dilation=tb.ports[i].app_dilation))
    tb.env.run(until=params["run_ns"])
    return sum(w.ops_per_sec() for w in workloads)


def run_fig14_ssd(vm_counts: Sequence[int] = (1, 4, 7),
                  run_ns: int = ms(60),
                  jobs: int = 1,
                  cache: Optional[SweepCache] = None,
                  models: Optional[Sequence[str]] = None) -> List[dict]:
    """The §5 SATA-SSD remark: single-reader throughput relative to Elvis.

    A slow medium dominates the service time, so the remote hop matters
    far less than on a ramdisk: baseline and vRIO land within 75–95% of
    Elvis instead of ~40%.
    """
    if models is None:
        models = FIG14_MODELS
    if "elvis" not in models:
        models = ("elvis",) + tuple(models)  # the figure's reference series
    points = [{"model": model_name, "n_vms": int(n), "run_ns": run_ns}
              for n in vm_counts for model_name in models]
    values = sweep(points, _fig14_ssd_point, jobs=jobs,
                   artifact="fig14ssd", cache=cache)
    ops = {(p["model"], p["n_vms"]): v for p, v in zip(points, values)}
    rows = []
    for n in vm_counts:
        row = {"n_vms": int(n), "elvis_ops": ops[("elvis", n)]}
        for model_name in models:
            if model_name == "elvis":
                continue
            row[f"{model_name}_rel"] = (ops[(model_name, n)]
                                        / ops[("elvis", n)])
        rows.append(row)
    return rows


def format_fig14_ssd(rows: List[dict]) -> str:
    models = [k[:-len("_rel")] for k in rows[0] if k.endswith("_rel")]
    lines = ["Figure 14 variant (SATA SSD, 1 reader): throughput relative "
             "to Elvis",
             f"{'N':>3s} {'elvis ops/s':>12s} "
             + " ".join(f"{m:>9s}" for m in models)]
    for r in rows:
        lines.append(f"{r['n_vms']:3d} {r['elvis_ops']:12.0f} "
                     + " ".join(f"{r[m + '_rel']:9.0%}" for m in models))
    return "\n".join(lines)


def format_fig14(result: Dict[str, List[dict]]) -> str:
    blocks = []
    for mix_name, rows in result.items():
        ns = sorted({r["n_vms"] for r in rows})
        lines = [f"Figure 14 ({mix_name}): filebench/ramdisk ops per sec",
                 f"{'model':10s} " + " ".join(f"N={n:<7d}" for n in ns)]
        for model_name in dict.fromkeys(r["model"] for r in rows):
            vals = {r["n_vms"]: r["ops_per_sec"] for r in rows
                    if r["model"] == model_name}
            lines.append(f"{model_name:10s} "
                         + " ".join(f"{vals[n]:9.0f}" for n in ns))
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
