"""Figure 14: making a local device remote — filebench on a 1 GB ramdisk.

Three thread mixes per VM (one reader; one reader + one writer; two of
each) doing O_DIRECT 4 KB random I/O.  The counterintuitive result — vRIO
beating Elvis at two pairs — comes from involuntary guest context
switches: Elvis's low-latency completions keep all threads runnable on the
single VCPU, which timeslices them at a cost, while vRIO's network latency
keeps the run queue shallow.

Also here: the §5 SATA-SSD variant ("When applied to SATA SSDs available
to us, the reader's baseline and vRIO throughput become 75%–95% and
83%–95% relative to Elvis") — a slow medium hides most of the remote hop.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..cluster import build_simple_setup
from ..hw.storage import make_sata_ssd
from ..sim import ms
from ..workloads import FilebenchRandomIO

__all__ = ["run_fig14", "format_fig14", "FIG14_MIXES",
           "run_fig14_ssd", "format_fig14_ssd"]

FIG14_MODELS = ("elvis", "vrio", "baseline")
FIG14_MIXES = {
    "1 reader": (1, 0),
    "1 pair": (1, 1),
    "2 pairs": (2, 2),
}


def run_fig14(vm_counts: Sequence[int] = range(1, 8),
              run_ns: int = ms(40)) -> Dict[str, List[dict]]:
    """Aggregate filebench ops/sec per mix, model, and VM count."""
    result: Dict[str, List[dict]] = {}
    for mix_name, (readers, writers) in FIG14_MIXES.items():
        rows = []
        for model_name in FIG14_MODELS:
            for n in vm_counts:
                tb = build_simple_setup(model_name, n, with_clients=False)
                workloads = []
                for i, vm in enumerate(tb.vms):
                    handle = tb.attach_ramdisk(vm)
                    rng = tb.rng.stream(f"filebench-{i}")
                    workloads.append(FilebenchRandomIO(
                        tb.env, vm, handle, rng, tb.costs,
                        readers=readers, writers=writers,
                        warmup_ns=ms(2),
                        app_dilation=tb.ports[i].app_dilation))
                tb.env.run(until=run_ns)
                total_ops = sum(w.ops_per_sec() for w in workloads)
                switches = sum(w.scheduler.involuntary_switches.value
                               for w in workloads)
                rows.append({"model": model_name, "n_vms": n,
                             "ops_per_sec": total_ops,
                             "involuntary_switches": switches})
        result[mix_name] = rows
    return result


def run_fig14_ssd(vm_counts: Sequence[int] = (1, 4, 7),
                  run_ns: int = ms(60)) -> List[dict]:
    """The §5 SATA-SSD remark: single-reader throughput relative to Elvis.

    A slow medium dominates the service time, so the remote hop matters
    far less than on a ramdisk: baseline and vRIO land within 75–95% of
    Elvis instead of ~40%.
    """
    rows = []
    for n in vm_counts:
        per_model = {}
        for model_name in FIG14_MODELS:
            tb = build_simple_setup(model_name, n, with_clients=False)
            workloads = []
            for i, vm in enumerate(tb.vms):
                device = make_sata_ssd(tb.env, name=f"ssd-{vm.name}")
                handle = tb.attach_block_device(vm, device)
                rng = tb.rng.stream(f"ssd-{i}")
                workloads.append(FilebenchRandomIO(
                    tb.env, vm, handle, rng, tb.costs,
                    readers=1, writers=0, disk_bytes=device.capacity_bytes,
                    warmup_ns=ms(4),
                    app_dilation=tb.ports[i].app_dilation))
            tb.env.run(until=run_ns)
            per_model[model_name] = sum(w.ops_per_sec() for w in workloads)
        rows.append({
            "n_vms": n,
            "elvis_ops": per_model["elvis"],
            "vrio_rel": per_model["vrio"] / per_model["elvis"],
            "baseline_rel": per_model["baseline"] / per_model["elvis"],
        })
    return rows


def format_fig14_ssd(rows: List[dict]) -> str:
    lines = ["Figure 14 variant (SATA SSD, 1 reader): throughput relative "
             "to Elvis",
             f"{'N':>3s} {'elvis ops/s':>12s} {'vrio':>7s} {'baseline':>9s}"]
    for r in rows:
        lines.append(f"{r['n_vms']:3d} {r['elvis_ops']:12.0f} "
                     f"{r['vrio_rel']:7.0%} {r['baseline_rel']:9.0%}")
    return "\n".join(lines)


def format_fig14(result: Dict[str, List[dict]]) -> str:
    blocks = []
    for mix_name, rows in result.items():
        ns = sorted({r["n_vms"] for r in rows})
        lines = [f"Figure 14 ({mix_name}): filebench/ramdisk ops per sec",
                 f"{'model':10s} " + " ".join(f"N={n:<7d}" for n in ns)]
        for model_name in FIG14_MODELS:
            vals = {r["n_vms"]: r["ops_per_sec"] for r in rows
                    if r["model"] == model_name}
            lines.append(f"{model_name:10s} "
                         + " ".join(f"{vals[n]:9.0f}" for n in ns))
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
