"""§3 experiments: Figure 1, Table 1, Table 2, Figure 3 (pure cost model).

These are analytic (no simulation) and cheap, but they still route
through :func:`~repro.experiments.executor.sweep` so ``run all`` treats
every artifact uniformly and caching covers the whole registry.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..costmodel import (
    rack_price_comparison,
    server_table,
    ssd_consolidation_sweep,
    upgrade_points,
)
from .runner import SweepCache, sweep

__all__ = ["run_fig01", "run_tab01", "run_tab02", "run_fig03",
           "format_fig01", "format_tab01", "format_tab02", "format_fig03"]


def _fig01_point(params: dict) -> List[list]:
    return [list(point) for point in upgrade_points(params["kind"])]


def run_fig01(jobs: int = 1,
              cache: Optional[SweepCache] = None) -> Dict[str, List[list]]:
    """Fig. 1: CPU vs NIC upgrade (cost ratio, hardware ratio) points."""
    kinds = ("cpu", "nic")
    points = [{"kind": kind} for kind in kinds]
    values = sweep(points, _fig01_point, jobs=jobs,
                   artifact="fig1", cache=cache)
    return dict(zip(kinds, values))


def _tab01_point(params: dict) -> List[dict]:
    return server_table()


def run_tab01(jobs: int = 1,
              cache: Optional[SweepCache] = None) -> List[dict]:
    """Table 1: R930 per-server price, components, throughput."""
    return sweep([{}], _tab01_point, jobs=jobs,
                 artifact="tab1", cache=cache)[0]


def _tab02_point(params: dict) -> List[dict]:
    return rack_price_comparison()


def run_tab02(jobs: int = 1,
              cache: Optional[SweepCache] = None) -> List[dict]:
    """Table 2: overall Elvis vs vRIO rack prices."""
    return sweep([{}], _tab02_point, jobs=jobs,
                 artifact="tab2", cache=cache)[0]


def _fig03_point(params: dict) -> List[dict]:
    return ssd_consolidation_sweep()


def run_fig03(jobs: int = 1,
              cache: Optional[SweepCache] = None) -> List[dict]:
    """Fig. 3: vRIO price relative to Elvis per SSD consolidation ratio."""
    return sweep([{}], _fig03_point, jobs=jobs,
                 artifact="fig3", cache=cache)[0]


def format_fig01(result: Dict[str, List[tuple]]) -> str:
    lines = ["Figure 1: added hardware vs added cost (upgrade ratios)",
             f"{'kind':6s} {'cost x':>8s} {'hw y':>8s} {'side of diagonal':>18s}"]
    for kind in ("cpu", "nic"):
        for x, y in result[kind]:
            side = "below (premium)" if y < x else "above (bargain)"
            lines.append(f"{kind:6s} {x:8.2f} {y:8.2f} {side:>18s}")
    return "\n".join(lines)


def format_tab01(rows: List[dict]) -> str:
    lines = ["Table 1: Dell R930 per-server price, components, throughput",
             f"{'server':14s} {'price $':>9s} {'cores':>6s} {'DRAM GB':>8s} "
             f"{'Gbps':>7s} {'req Gbps':>9s}"]
    for r in rows:
        lines.append(f"{r['server']:14s} {r['price_usd']:9,.0f} "
                     f"{r['cores']:6d} {r['dram_gb']:8d} "
                     f"{r['total_gbps']:7.1f} {r['required_gbps']:9.2f}")
    return "\n".join(lines)


def format_tab02(rows: List[dict]) -> str:
    lines = ["Table 2: overall price of the Elvis and vRIO setups",
             f"{'setup':10s} {'elvis $':>10s} {'vrio $':>10s} {'diff':>7s}"]
    for r in rows:
        lines.append(f"{r['setup']:10s} {r['elvis_price_usd']:10,.0f} "
                     f"{r['vrio_price_usd']:10,.0f} "
                     f"{r['diff_percent']:6.1f}%")
    return "\n".join(lines)


def format_fig03(rows: List[dict]) -> str:
    lines = ["Figure 3: vRIO price relative to Elvis vs SSD consolidation",
             f"{'rack':10s} {'ratio':7s} {'ssd':7s} {'vrio/elvis':>11s}"]
    for r in rows:
        lines.append(f"{r['rack']:10s} {r['ratio']:7s} {r['ssd']:7s} "
                     f"{r['vrio_over_elvis']:10.1%}")
    return "\n".join(lines)
