"""Latency experiments: Figure 7 (RR latency), Figure 8 (vRIO gap and
IOhost contention), Table 4 (tail latency)."""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..sim import ms
from .runner import DEFAULT_RUN_NS, SeriesPoint, rr_run

__all__ = [
    "run_fig07", "format_fig07",
    "run_fig08", "format_fig08",
    "run_tab04", "format_tab04",
]

FIG7_MODELS = ("baseline", "vrio", "elvis", "optimum")


def run_fig07(vm_counts: Sequence[int] = range(1, 8),
              run_ns: int = DEFAULT_RUN_NS) -> List[SeriesPoint]:
    """Fig. 7: netperf RR mean latency (us) vs number of VMs, 4 models."""
    points = []
    for model_name in FIG7_MODELS:
        for n in vm_counts:
            _tb, workloads = rr_run(model_name, n, run_ns=run_ns)
            mean_us = sum(w.mean_latency_us() for w in workloads) / n
            points.append(SeriesPoint(model_name, n, mean_us))
    return points


def format_fig07(points: List[SeriesPoint]) -> str:
    ns = sorted({p.n_vms for p in points})
    lines = ["Figure 7: netperf RR average latency [usec]",
             f"{'model':10s} " + " ".join(f"N={n:<5d}" for n in ns)]
    for model_name in FIG7_MODELS:
        vals = {p.n_vms: p.value for p in points if p.model == model_name}
        lines.append(f"{model_name:10s} "
                     + " ".join(f"{vals[n]:7.1f}" for n in ns))
    return "\n".join(lines)


def run_fig08(vm_counts: Sequence[int] = range(1, 8),
              run_ns: int = DEFAULT_RUN_NS) -> List[dict]:
    """Fig. 8: vRIO-vs-optimum latency gap and IOhost worker contention."""
    rows = []
    for n in vm_counts:
        _opt_tb, opt = rr_run("optimum", n, run_ns=run_ns)
        vrio_tb, vrio = rr_run("vrio", n, run_ns=run_ns)
        gap = (sum(w.mean_latency_us() for w in vrio) / n
               - sum(w.mean_latency_us() for w in opt) / n)
        contention = vrio_tb.model.pool.contention_fraction()
        rows.append({"n_vms": n, "latency_gap_us": gap,
                     "contention_pct": contention * 100.0})
    return rows


def format_fig08(rows: List[dict]) -> str:
    lines = ["Figure 8: vRIO latency gap (left axis) and contention (right)",
             f"{'N':>3s} {'gap us':>8s} {'contention %':>13s}"]
    for r in rows:
        lines.append(f"{r['n_vms']:3d} {r['latency_gap_us']:8.2f} "
                     f"{r['contention_pct']:13.1f}")
    return "\n".join(lines)


TAB4_MODELS = ("optimum", "elvis", "vrio")
TAB4_PERCENTILES = (99.9, 99.99, 99.999, 100.0)


def run_tab04(run_ns: int = ms(400)) -> Dict[str, Dict[float, float]]:
    """Table 4: tail latency (us) for one VM.

    Runs with host background noise installed (timer ticks + rare long
    housekeeping events; the IOhost is much quieter, being a dedicated
    I/O machine) — the tails come from a request colliding with noise on
    the cores its path crosses.  Longer run than other experiments so the
    high percentiles are populated.
    """
    rows: Dict[str, Dict[float, float]] = {}
    for model_name in TAB4_MODELS:
        _tb, workloads = rr_run(model_name, 1, run_ns=run_ns, noise=True)
        hist = workloads[0].latency_ns
        rows[model_name] = {q: hist.percentile(q) / 1000.0
                            for q in TAB4_PERCENTILES}
    return rows


def format_tab04(rows: Dict[str, Dict[float, float]]) -> str:
    lines = ["Table 4: tail latency in microseconds for one VM",
             f"{'percentile':>11s} " + " ".join(f"{m:>9s}" for m in TAB4_MODELS)]
    for q in TAB4_PERCENTILES:
        label = f"{q}%"
        lines.append(f"{label:>11s} "
                     + " ".join(f"{rows[m][q]:9.1f}" for m in TAB4_MODELS))
    return "\n".join(lines)
