"""Latency experiments: Figure 7 (RR latency), Figure 8 (vRIO gap and
IOhost contention), Table 4 (tail latency).

Each figure is expressed as independent sweep points evaluated through
:func:`~repro.experiments.executor.sweep`, so regeneration parallelizes
across processes and replays from the persistent result cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..iomodels.registry import filter_models
from ..sim import ms
from .runner import DEFAULT_RUN_NS, SeriesPoint, SweepCache, rr_run, sweep

__all__ = [
    "run_fig07", "format_fig07",
    "run_fig08", "format_fig08",
    "run_tab04", "format_tab04",
]

# Headline (non-ablation) net models, worst-first as the figure stacks
# its curves: the reverse of the throughput ordering.
FIG7_MODELS = tuple(reversed(filter_models(net=True, ablation=False,
                                           order="throughput")))


def _fig07_point(params: dict) -> float:
    """One (model, N) cell of Fig. 7: mean RR latency in microseconds."""
    n = params["n_vms"]
    _tb, workloads = rr_run(params["model"], n, run_ns=params["run_ns"])
    return sum(w.mean_latency_us() for w in workloads) / n


def run_fig07(vm_counts: Sequence[int] = range(1, 8),
              run_ns: int = DEFAULT_RUN_NS,
              jobs: int = 1,
              cache: Optional[SweepCache] = None,
              models: Optional[Sequence[str]] = None) -> List[SeriesPoint]:
    """Fig. 7: netperf RR mean latency (us) vs number of VMs."""
    points = [{"model": model_name, "n_vms": int(n), "run_ns": run_ns}
              for model_name in (models if models is not None
                                 else FIG7_MODELS)
              for n in vm_counts]
    values = sweep(points, _fig07_point, jobs=jobs,
                   artifact="fig7", cache=cache)
    return [SeriesPoint(p["model"], p["n_vms"], v)
            for p, v in zip(points, values)]


def format_fig07(points: List[SeriesPoint]) -> str:
    ns = sorted({p.n_vms for p in points})
    lines = ["Figure 7: netperf RR average latency [usec]",
             f"{'model':10s} " + " ".join(f"N={n:<5d}" for n in ns)]
    for model_name in dict.fromkeys(p.model for p in points):
        vals = {p.n_vms: p.value for p in points if p.model == model_name}
        lines.append(f"{model_name:10s} "
                     + " ".join(f"{vals[n]:7.1f}" for n in ns))
    return "\n".join(lines)


def _fig08_point(params: dict) -> dict:
    """One N of Fig. 8: optimum + vRIO runs, gap and contention."""
    n, run_ns = params["n_vms"], params["run_ns"]
    _opt_tb, opt = rr_run("optimum", n, run_ns=run_ns)
    vrio_tb, vrio = rr_run("vrio", n, run_ns=run_ns)
    gap = (sum(w.mean_latency_us() for w in vrio) / n
           - sum(w.mean_latency_us() for w in opt) / n)
    contention = vrio_tb.model.pool.contention_fraction()
    return {"n_vms": n, "latency_gap_us": gap,
            "contention_pct": contention * 100.0}


def run_fig08(vm_counts: Sequence[int] = range(1, 8),
              run_ns: int = DEFAULT_RUN_NS,
              jobs: int = 1,
              cache: Optional[SweepCache] = None) -> List[dict]:
    """Fig. 8: vRIO-vs-optimum latency gap and IOhost worker contention."""
    points = [{"n_vms": int(n), "run_ns": run_ns} for n in vm_counts]
    return sweep(points, _fig08_point, jobs=jobs,
                 artifact="fig8", cache=cache)


def format_fig08(rows: List[dict]) -> str:
    lines = ["Figure 8: vRIO latency gap (left axis) and contention (right)",
             f"{'N':>3s} {'gap us':>8s} {'contention %':>13s}"]
    for r in rows:
        lines.append(f"{r['n_vms']:3d} {r['latency_gap_us']:8.2f} "
                     f"{r['contention_pct']:13.1f}")
    return "\n".join(lines)


# Exitless headline models only: the tail-latency comparison is about
# designs whose steady-state datapath avoids exits and injections.
TAB4_MODELS = filter_models(net=True, ablation=False, exitless=True,
                            order="throughput")
TAB4_PERCENTILES = (99.9, 99.99, 99.999, 100.0)


def _tab04_point(params: dict) -> List[list]:
    """One model of Table 4: ``[percentile, latency_us]`` pairs."""
    _tb, workloads = rr_run(params["model"], 1, run_ns=params["run_ns"],
                            noise=True)
    hist = workloads[0].latency_ns
    return [[q, hist.percentile(q) / 1000.0] for q in TAB4_PERCENTILES]


def run_tab04(run_ns: int = ms(400),
              jobs: int = 1,
              cache: Optional[SweepCache] = None,
              models: Optional[Sequence[str]] = None
              ) -> Dict[str, Dict[float, float]]:
    """Table 4: tail latency (us) for one VM.

    Runs with host background noise installed (timer ticks + rare long
    housekeeping events; the IOhost is much quieter, being a dedicated
    I/O machine) — the tails come from a request colliding with noise on
    the cores its path crosses.  Longer run than other experiments so the
    high percentiles are populated.
    """
    points = [{"model": model_name, "run_ns": run_ns}
              for model_name in (models if models is not None
                                 else TAB4_MODELS)]
    pairs = sweep(points, _tab04_point, jobs=jobs,
                  artifact="tab4", cache=cache)
    return {p["model"]: {float(q): v for q, v in per_model}
            for p, per_model in zip(points, pairs)}


def format_tab04(rows: Dict[str, Dict[float, float]]) -> str:
    models = tuple(rows)
    lines = ["Table 4: tail latency in microseconds for one VM",
             f"{'percentile':>11s} " + " ".join(f"{m:>9s}" for m in models)]
    for q in TAB4_PERCENTILES:
        label = f"{q}%"
        lines.append(f"{label:>11s} "
                     + " ".join(f"{rows[m][q]:9.1f}" for m in models))
    return "\n".join(lines)
