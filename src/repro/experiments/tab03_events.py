"""Table 3: exits and interrupts induced by a single request-response.

The table is *measured*, not asserted: each model's setup carries one
request from an external client into the VM and one response back, and the
I/O model's event counters are read off afterwards.  Expected paper values:

    model         exits  guest  inject  host  iohost  sum
    optimum         0      2      0       0     -      2
    vrio            0      2      0       0     0      2
    elvis           0      2      0       2     -      4
    vrio w/o poll   0      2      0       0     4      6
    baseline        3      2      2       2     -      9
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..cluster import TestbedSpec, build_testbed
from ..iomodels.registry import filter_models
from ..sim import ms
from .runner import SweepCache, sweep

__all__ = ["run_tab03", "format_tab03", "PAPER_TAB03"]

# Every net-capable model in the registry, in Table-3 row order; the
# paper's five come first, post-paper contenders after.
MODEL_ORDER = filter_models(net=True, order="tab")

PAPER_TAB03 = {
    "optimum":     {"exits": 0, "guest_interrupts": 2, "injections": 0,
                    "host_interrupts": 0, "iohost_interrupts": 0},
    "vrio":        {"exits": 0, "guest_interrupts": 2, "injections": 0,
                    "host_interrupts": 0, "iohost_interrupts": 0},
    "elvis":       {"exits": 0, "guest_interrupts": 2, "injections": 0,
                    "host_interrupts": 2, "iohost_interrupts": 0},
    "vrio_nopoll": {"exits": 0, "guest_interrupts": 2, "injections": 0,
                    "host_interrupts": 0, "iohost_interrupts": 4},
    "baseline":    {"exits": 3, "guest_interrupts": 2, "injections": 2,
                    "host_interrupts": 2, "iohost_interrupts": 0},
}


def _single_request_response(model_name: str) -> dict:
    tb = build_testbed(TestbedSpec(model=model_name))
    env = tb.env
    port, client = tb.ports[0], tb.clients[0]
    done = {"received": False}

    def serve(message, port=port):
        port.send(message.src, 64, kind="rr_resp")

    def on_response(message):
        done["received"] = True

    port.receive_handler = serve
    client.receive_handler = on_response
    client.send(port.mac, 64, kind="rr_req")
    # Let the transaction and its trailing completion interrupts land.
    env.run(until=ms(2))
    if not done["received"]:
        raise RuntimeError(f"{model_name}: request-response did not complete")
    return tb.stats.snapshot()


def _tab03_point(params: dict) -> dict:
    """One model's measured event snapshot (sum added post-merge)."""
    return _single_request_response(params["model"])


def run_tab03(jobs: int = 1,
              cache: Optional[SweepCache] = None,
              models: Optional[tuple] = None) -> Dict[str, dict]:
    """Measure Table 3 for every registered net-capable model (or the
    ``models`` subset)."""
    points = [{"model": model_name}
              for model_name in (models if models is not None
                                 else MODEL_ORDER)]
    snapshots = sweep(points, _tab03_point, jobs=jobs,
                      artifact="tab3", cache=cache)
    rows = {}
    for p, snapshot in zip(points, snapshots):
        snapshot["sum"] = sum(snapshot[key] for key in sorted(snapshot))
        rows[p["model"]] = snapshot
    return rows


def format_tab03(rows: Dict[str, dict]) -> str:
    lines = ["Table 3: per request-response virtualization events (measured)",
             f"{'model':13s} {'exits':>6s} {'guest':>6s} {'inject':>7s} "
             f"{'host':>5s} {'iohost':>7s} {'sum':>4s}"]
    for model_name, r in rows.items():
        lines.append(
            f"{model_name:13s} {r['exits']:6d} {r['guest_interrupts']:6d} "
            f"{r['injections']:7d} {r['host_interrupts']:5d} "
            f"{r['iohost_interrupts']:7d} {r['sum']:4d}")
    return "\n".join(lines)
