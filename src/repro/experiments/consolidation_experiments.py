"""Figures 15 and 16: sidecore consolidation — utilization, tradeoff,
and load imbalance.

Setup (§5 *Improving Utilization*): two VMhosts, five VMs each, all
running the filebench Webserver personality on a 1 GB ramdisk (remote at
the IOhost for vRIO).

* Fig. 15 — per-sidecore CPU utilization traces: Elvis's two sidecores
  (one per VMhost) are underutilized; vRIO's single consolidated sidecore
  does the same work on fewer cycles.
* Fig. 16a — throughput tradeoff of consolidating 2 sidecores into 1:
  vRIO within ~8% of Elvis; the baseline far behind.
* Fig. 16b — load imbalance (§5): only one VMhost active, AES-256
  interposition enabled; Elvis can only use that host's single local
  sidecore, while vRIO brings both consolidated sidecores to bear.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..cluster import Testbed, TestbedSpec, build_testbed
from ..interpose import AesEncryption
from ..sim import TimeSeries, ms
from ..telemetry import sample_utilization
from ..workloads import WebserverPersonality
from .runner import SweepCache, sweep

__all__ = [
    "run_fig15", "format_fig15",
    "run_fig16a", "format_fig16a",
    "run_fig16b", "format_fig16b",
]


def _start_webservers(tb: Testbed, vm_indices, run_ns: int,
                      warmup_ns: int) -> List[WebserverPersonality]:
    workloads = []
    for i in vm_indices:
        vm = tb.vms[i]
        handle = tb.attach_ramdisk(vm)
        rng = tb.rng.stream(f"webserver-{i}")
        workloads.append(WebserverPersonality(
            tb.env, vm, handle, rng, tb.costs, warmup_ns=warmup_ns,
            app_dilation=tb.ports[i].app_dilation))
    return workloads


def _sample_utilization(tb: Testbed, interval_ns: int) -> List[TimeSeries]:
    """Periodic useful-cycle utilization of each service core."""
    return sample_utilization(tb.env, tb.service_cores, interval_ns)


def _fig15_point(params: dict) -> dict:
    """One model of Fig. 15: utilization traces of every sidecore."""
    tb = build_testbed(TestbedSpec(
        model=params["model"], topology="consolidation", n_vmhosts=2,
        vms_per_host=5, sidecores=params["workers"]))
    run_ns = params["run_ns"]
    _start_webservers(tb, range(len(tb.vms)), run_ns, warmup_ns=ms(2))
    series = _sample_utilization(tb, params["interval_ns"])
    tb.env.run(until=run_ns)
    return {
        "cores": [ts.name for ts in series],
        "series": [{"name": ts.name, "times": ts.times,
                    "values": ts.values} for ts in series],
        "averages": [ts.mean() for ts in series],
    }


def run_fig15(run_ns: int = ms(60), interval_ns: int = ms(2),
              jobs: int = 1,
              cache: Optional[SweepCache] = None) -> Dict[str, dict]:
    """Fig. 15: sidecore utilization traces for Elvis (2 local) vs vRIO
    (1 consolidated)."""
    points = [{"model": model_name, "workers": workers,
               "run_ns": run_ns, "interval_ns": interval_ns}
              for model_name, workers in (("elvis", 1), ("vrio", 1))]
    rows = sweep(points, _fig15_point, jobs=jobs,
                 artifact="fig15", cache=cache)
    result = {}
    for p, row in zip(points, rows):
        series = []
        for data in row["series"]:
            ts = TimeSeries(data["name"])
            for t, v in zip(data["times"], data["values"]):
                ts.record(t, v)
            series.append(ts)
        result[p["model"]] = {
            "cores": row["cores"],
            "series": series,
            "averages": row["averages"],
        }
    return result


def format_fig15(result: Dict[str, dict]) -> str:
    lines = ["Figure 15: sidecore CPU utilization (useful work, %)"]
    for model_name, data in result.items():
        for name, avg in zip(data["cores"], data["averages"]):
            lines.append(f"  {model_name:6s} {name:24s} avg={avg:5.1f}%")
    return "\n".join(lines)


def _fig16a_point(params: dict) -> float:
    """One model of Fig. 16a: aggregate webserver Mbps."""
    tb = build_testbed(TestbedSpec(
        model=params["model"], topology="consolidation", n_vmhosts=2,
        vms_per_host=5, sidecores=1))
    run_ns = params["run_ns"]
    workloads = _start_webservers(tb, range(len(tb.vms)), run_ns,
                                  warmup_ns=ms(2))
    tb.env.run(until=run_ns)
    return sum(w.throughput_mbps() for w in workloads)


def run_fig16a(run_ns: int = ms(60),
               jobs: int = 1,
               cache: Optional[SweepCache] = None) -> List[dict]:
    """Fig. 16a: the 2=>1 consolidation tradeoff (webserver throughput)."""
    # Paper-fixed cast: Fig. 16 is the sidecore-consolidation tradeoff,
    # defined for the paper's three consolidation contenders (elvis is
    # the reference); not a registry-derived comparison.
    points = [{"model": model_name, "run_ns": run_ns}
              for model_name in ("elvis", "vrio", "baseline")]  # simlint: disable=SIM501
    totals = sweep(points, _fig16a_point, jobs=jobs,
                   artifact="fig16a", cache=cache)
    reference = totals[0]
    return [{"model": p["model"], "throughput_mbps": total,
             "relative": total / reference - 1.0}
            for p, total in zip(points, totals)]


def format_fig16a(rows: List[dict]) -> str:
    lines = ["Figure 16a: consolidation tradeoff (2=>1), webserver Mbps",
             f"{'model':10s} {'Mbps':>8s} {'vs elvis':>9s}"]
    for r in rows:
        lines.append(f"{r['model']:10s} {r['throughput_mbps']:8.0f} "
                     f"{r['relative']:+8.1%}")
    return "\n".join(lines)


def _fig16b_point(params: dict) -> float:
    """One model of Fig. 16b: aggregate Mbps with AES interposition."""
    sidecores = {"elvis": 1, "vrio": 2}[params["model"]]
    tb = build_testbed(TestbedSpec(
        model=params["model"], topology="consolidation", n_vmhosts=2,
        vms_per_host=5, sidecores=sidecores))
    for model in tb.models:
        model.add_interposer(AesEncryption())
    run_ns = params["run_ns"]
    active = range(5)  # VMhost 0's VMs only; VMhost 1 idles
    workloads = _start_webservers(tb, active, run_ns, warmup_ns=ms(2))
    tb.env.run(until=run_ns)
    return sum(w.throughput_mbps() for w in workloads)


def run_fig16b(run_ns: int = ms(60),
               jobs: int = 1,
               cache: Optional[SweepCache] = None) -> List[dict]:
    """Fig. 16b: load imbalance (2=>2) with AES-256 interposition.

    Two-sidecore budget; only VMhost 0 is active.  Elvis's second sidecore
    (on the idle host) is stranded; vRIO's two consolidated workers both
    serve the active host.
    """
    # Paper-fixed cast, as in fig16a: the 2=>2 imbalance story contrasts
    # exactly elvis's stranded sidecore with vRIO's shared workers.
    points = [{"model": model_name, "run_ns": run_ns}
              for model_name in ("elvis", "vrio")]  # simlint: disable=SIM501
    totals = sweep(points, _fig16b_point, jobs=jobs,
                   artifact="fig16b", cache=cache)
    reference = totals[0]
    return [{"model": p["model"], "throughput_mbps": total,
             "relative": total / reference - 1.0}
            for p, total in zip(points, totals)]


def format_fig16b(rows: List[dict]) -> str:
    lines = ["Figure 16b: load imbalance (2=>2) with AES interposition",
             f"{'model':10s} {'Mbps':>8s} {'vs elvis':>9s}"]
    for r in rows:
        lines.append(f"{r['model']:10s} {r['throughput_mbps']:8.0f} "
                     f"{r['relative']:+8.1%}")
    return "\n".join(lines)
