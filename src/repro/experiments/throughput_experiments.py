"""Throughput experiments: Figure 9 (stream), Figure 10 (cycles/packet),
Figure 11 (equal cores), Figure 5 & 12 (macrobenchmarks)."""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..sim import ms
from .runner import DEFAULT_RUN_NS, SeriesPoint, macro_run, stream_run

__all__ = [
    "run_fig09", "format_fig09",
    "run_fig10", "format_fig10",
    "run_fig11", "format_fig11",
    "run_fig05", "format_fig05",
    "run_fig12", "format_fig12",
]

FIG9_MODELS = ("optimum", "elvis", "vrio", "baseline")
FIG5_MODELS = ("optimum", "vrio", "elvis", "vrio_nopoll", "baseline")


def run_fig09(vm_counts: Sequence[int] = range(1, 8),
              run_ns: int = DEFAULT_RUN_NS) -> List[SeriesPoint]:
    """Fig. 9: aggregate netperf 64 B stream throughput (Gbps) vs N."""
    points = []
    for model_name in FIG9_MODELS:
        for n in vm_counts:
            _tb, workloads = stream_run(model_name, n, run_ns=run_ns)
            total = sum(w.throughput_gbps() for w in workloads)
            points.append(SeriesPoint(model_name, n, total))
    return points


def format_fig09(points: List[SeriesPoint]) -> str:
    ns = sorted({p.n_vms for p in points})
    lines = ["Figure 9: netperf stream throughput [Gbps]",
             f"{'model':10s} " + " ".join(f"N={n:<5d}" for n in ns)]
    for model_name in FIG9_MODELS:
        vals = {p.n_vms: p.value for p in points if p.model == model_name}
        lines.append(f"{model_name:10s} "
                     + " ".join(f"{vals[n]:7.2f}" for n in ns))
    return "\n".join(lines)


def run_fig10(run_ns: int = DEFAULT_RUN_NS) -> List[dict]:
    """Fig. 10: per-packet processing cycles with one VM, netperf stream.

    "Packet" is one 64 B application message.  The headline column counts
    guest + VMhost-local cycles — the paper attributes vRIO's +9% to "the
    added processing time incurred by the vRIO driver", i.e. to the
    sender's side; the total column adds the remote IOhost workers.
    """
    rows = []
    reference = None
    for model_name in ("optimum", "vrio", "elvis", "baseline"):
        tb, workloads = stream_run(model_name, 1, run_ns=run_ns)
        stream = workloads[0]
        messages = (stream.chunks_received
                    * tb.costs.netperf_stream_msgs_per_chunk)
        vm_cycles = sum(vm.vcpu.total_cycles for vm in tb.vms)
        service_cycles = sum(core.total_cycles for core in tb.service_cores)
        if model_name.startswith("vrio"):
            client_side = vm_cycles            # workers live at the IOhost
        else:
            client_side = vm_cycles + service_cycles
        total = vm_cycles + service_cycles
        per_packet = client_side / messages if messages else float("inf")
        per_packet_total = total / messages if messages else float("inf")
        if model_name == "optimum":
            reference = per_packet
        rows.append({"model": model_name,
                     "cycles_per_packet": per_packet,
                     "cycles_per_packet_total": per_packet_total,
                     "relative_to_optimum": per_packet / reference - 1.0})
    return rows


def format_fig10(rows: List[dict]) -> str:
    lines = ["Figure 10: netperf stream per-packet processing (N=1)",
             f"{'model':10s} {'cycles/pkt':>11s} {'vs optimum':>11s} "
             f"{'incl IOhost':>12s}"]
    for r in rows:
        lines.append(f"{r['model']:10s} {r['cycles_per_packet']:11.0f} "
                     f"{r['relative_to_optimum']:+10.1%} "
                     f"{r['cycles_per_packet_total']:12.0f}")
    return "\n".join(lines)


def run_fig11(run_ns: int = DEFAULT_RUN_NS) -> List[dict]:
    """Fig. 11: equal-core comparison — the optimum with N+1=8 VMs versus
    everyone else at N=7; shows the price of interposability."""
    reference = None
    rows = []
    configs = [("optimum_8vms", "optimum", 8), ("optimum", "optimum", 7),
               ("elvis", "elvis", 7), ("vrio", "vrio", 7),
               ("baseline", "baseline", 7)]
    for label, model_name, n in configs:
        _tb, workloads = stream_run(model_name, n, run_ns=run_ns)
        total = sum(w.throughput_gbps() for w in workloads)
        if reference is None:
            reference = total
        rows.append({"label": label, "throughput_gbps": total,
                     "relative": total / reference - 1.0})
    return rows


def format_fig11(rows: List[dict]) -> str:
    lines = ["Figure 11: throughput with equalized cores (stream)",
             f"{'config':13s} {'Gbps':>7s} {'vs opt 8vms':>12s}"]
    for r in rows:
        lines.append(f"{r['label']:13s} {r['throughput_gbps']:7.2f} "
                     f"{r['relative']:+11.1%}")
    return "\n".join(lines)


def run_fig05(vm_counts: Sequence[int] = range(1, 8),
              run_ns: int = ms(30)) -> List[SeriesPoint]:
    """Fig. 5: ApacheBench aggregate requests/sec for all five models."""
    points = []
    for model_name in FIG5_MODELS:
        for n in vm_counts:
            _tb, workloads = macro_run("apache", model_name, n, run_ns=run_ns)
            total = sum(w.throughput_tps() for w in workloads)
            points.append(SeriesPoint(model_name, n, total))
    return points


def format_fig05(points: List[SeriesPoint]) -> str:
    ns = sorted({p.n_vms for p in points})
    lines = ["Figure 5: ApacheBench aggregate requests/sec",
             f"{'model':12s} " + " ".join(f"N={n:<7d}" for n in ns)]
    for model_name in FIG5_MODELS:
        vals = {p.n_vms: p.value for p in points if p.model == model_name}
        lines.append(f"{model_name:12s} "
                     + " ".join(f"{vals[n]:9.0f}" for n in ns))
    return "\n".join(lines)


def run_fig12(vm_counts: Sequence[int] = range(1, 8),
              run_ns: int = ms(30)) -> Dict[str, List[SeriesPoint]]:
    """Fig. 12: memcached and Apache transactions/sec vs N, 4 models."""
    result: Dict[str, List[SeriesPoint]] = {}
    for benchmark in ("memcached", "apache"):
        points = []
        for model_name in FIG9_MODELS:
            for n in vm_counts:
                _tb, workloads = macro_run(benchmark, model_name, n,
                                           run_ns=run_ns)
                total = sum(w.throughput_tps() for w in workloads)
                points.append(SeriesPoint(model_name, n, total))
        result[benchmark] = points
    return result


def format_fig12(result: Dict[str, List[SeriesPoint]]) -> str:
    blocks = []
    for benchmark, points in result.items():
        ns = sorted({p.n_vms for p in points})
        lines = [f"Figure 12 ({benchmark}): transactions/sec",
                 f"{'model':10s} " + " ".join(f"N={n:<7d}" for n in ns)]
        for model_name in FIG9_MODELS:
            vals = {p.n_vms: p.value for p in points if p.model == model_name}
            lines.append(f"{model_name:10s} "
                         + " ".join(f"{vals[n]:9.0f}" for n in ns))
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
