"""Throughput experiments: Figure 9 (stream), Figure 10 (cycles/packet),
Figure 11 (equal cores), Figure 5 & 12 (macrobenchmarks).

Sweep points are independent simulations dispatched through
:func:`~repro.experiments.executor.sweep`; cross-point derived columns
(the "relative to optimum" ratios) are computed after the merge so every
point stays hermetic and cacheable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..iomodels.registry import filter_models
from ..sim import ms
from .runner import (
    DEFAULT_RUN_NS,
    SeriesPoint,
    SweepCache,
    macro_run,
    stream_run,
    sweep,
)

__all__ = [
    "run_fig09", "format_fig09",
    "run_fig10", "format_fig10",
    "run_fig11", "format_fig11",
    "run_fig05", "format_fig05",
    "run_fig12", "format_fig12",
]

# Every net-capable model in the registry.  Fig. 9 historically plotted
# four series (no vrio_nopoll); since the registry redesign it carries
# all contenders — per-model sweep points are cached independently, so
# the paper's series are unchanged by the additions.
FIG9_MODELS = filter_models(net=True, order="throughput")
FIG5_MODELS = filter_models(net=True, order="tab")


def _fig09_point(params: dict) -> float:
    """One (model, N) cell of Fig. 9: aggregate stream Gbps."""
    _tb, workloads = stream_run(params["model"], params["n_vms"],
                                run_ns=params["run_ns"])
    return sum(w.throughput_gbps() for w in workloads)


def run_fig09(vm_counts: Sequence[int] = range(1, 8),
              run_ns: int = DEFAULT_RUN_NS,
              jobs: int = 1,
              cache: Optional[SweepCache] = None,
              models: Optional[Sequence[str]] = None) -> List[SeriesPoint]:
    """Fig. 9: aggregate netperf 64 B stream throughput (Gbps) vs N."""
    points = [{"model": model_name, "n_vms": int(n), "run_ns": run_ns}
              for model_name in (models if models is not None
                                 else FIG9_MODELS)
              for n in vm_counts]
    values = sweep(points, _fig09_point, jobs=jobs,
                   artifact="fig9", cache=cache)
    return [SeriesPoint(p["model"], p["n_vms"], v)
            for p, v in zip(points, values)]


def format_fig09(points: List[SeriesPoint]) -> str:
    ns = sorted({p.n_vms for p in points})
    lines = ["Figure 9: netperf stream throughput [Gbps]",
             f"{'model':12s} " + " ".join(f"N={n:<5d}" for n in ns)]
    for model_name in dict.fromkeys(p.model for p in points):
        vals = {p.n_vms: p.value for p in points if p.model == model_name}
        lines.append(f"{model_name:12s} "
                     + " ".join(f"{vals[n]:7.2f}" for n in ns))
    return "\n".join(lines)


def _fig10_point(params: dict) -> dict:
    """One model of Fig. 10: per-packet cycle counts (no ratios yet)."""
    model_name = params["model"]
    tb, workloads = stream_run(model_name, 1, run_ns=params["run_ns"])
    stream = workloads[0]
    messages = (stream.chunks_received
                * tb.costs.netperf_stream_msgs_per_chunk)
    vm_cycles = sum(vm.vcpu.total_cycles for vm in tb.vms)
    service_cycles = sum(core.total_cycles for core in tb.service_cores)
    if model_name.startswith("vrio"):
        client_side = vm_cycles            # workers live at the IOhost
    else:
        client_side = vm_cycles + service_cycles
    total = vm_cycles + service_cycles
    per_packet = client_side / messages if messages else float("inf")
    per_packet_total = total / messages if messages else float("inf")
    return {"model": model_name,
            "cycles_per_packet": per_packet,
            "cycles_per_packet_total": per_packet_total}


def run_fig10(run_ns: int = DEFAULT_RUN_NS,
              jobs: int = 1,
              cache: Optional[SweepCache] = None,
              models: Optional[Sequence[str]] = None) -> List[dict]:
    """Fig. 10: per-packet processing cycles with one VM, netperf stream.

    "Packet" is one 64 B application message.  The headline column counts
    guest + VMhost-local cycles — the paper attributes vRIO's +9% to "the
    added processing time incurred by the vRIO driver", i.e. to the
    sender's side; the total column adds the remote IOhost workers.
    """
    if models is None:
        models = filter_models(net=True, ablation=False, order="tab")
    points = [{"model": model_name, "run_ns": run_ns}
              for model_name in models]
    rows = sweep(points, _fig10_point, jobs=jobs,
                 artifact="fig10", cache=cache)
    by_model = {row["model"]: row for row in rows}
    reference_row = by_model.get("optimum", rows[0])
    reference = reference_row["cycles_per_packet"]
    for row in rows:
        row["relative_to_optimum"] = row["cycles_per_packet"] / reference - 1.0
    return rows


def format_fig10(rows: List[dict]) -> str:
    lines = ["Figure 10: netperf stream per-packet processing (N=1)",
             f"{'model':10s} {'cycles/pkt':>11s} {'vs optimum':>11s} "
             f"{'incl IOhost':>12s}"]
    for r in rows:
        lines.append(f"{r['model']:10s} {r['cycles_per_packet']:11.0f} "
                     f"{r['relative_to_optimum']:+10.1%} "
                     f"{r['cycles_per_packet_total']:12.0f}")
    return "\n".join(lines)


def _fig11_point(params: dict) -> float:
    """One config of Fig. 11: aggregate stream Gbps."""
    _tb, workloads = stream_run(params["model"], params["n_vms"],
                                run_ns=params["run_ns"])
    return sum(w.throughput_gbps() for w in workloads)


def run_fig11(run_ns: int = DEFAULT_RUN_NS,
              jobs: int = 1,
              cache: Optional[SweepCache] = None) -> List[dict]:
    """Fig. 11: equal-core comparison — the optimum with N+1=8 VMs versus
    everyone else at N=7; shows the price of interposability."""
    configs = [("optimum_8vms", "optimum", 8), ("optimum", "optimum", 7),
               ("elvis", "elvis", 7), ("vrio", "vrio", 7),
               ("baseline", "baseline", 7)]
    points = [{"model": model_name, "n_vms": n, "run_ns": run_ns}
              for _label, model_name, n in configs]
    totals = sweep(points, _fig11_point, jobs=jobs,
                   artifact="fig11", cache=cache)
    reference = totals[0]
    return [{"label": label, "throughput_gbps": total,
             "relative": total / reference - 1.0}
            for (label, _model, _n), total in zip(configs, totals)]


def format_fig11(rows: List[dict]) -> str:
    lines = ["Figure 11: throughput with equalized cores (stream)",
             f"{'config':13s} {'Gbps':>7s} {'vs opt 8vms':>12s}"]
    for r in rows:
        lines.append(f"{r['label']:13s} {r['throughput_gbps']:7.2f} "
                     f"{r['relative']:+11.1%}")
    return "\n".join(lines)


def _macro_point(params: dict) -> float:
    """One (benchmark, model, N) macrobenchmark cell: aggregate tps."""
    _tb, workloads = macro_run(params["benchmark"], params["model"],
                               params["n_vms"], run_ns=params["run_ns"])
    return sum(w.throughput_tps() for w in workloads)


def run_fig05(vm_counts: Sequence[int] = range(1, 8),
              run_ns: int = ms(30),
              jobs: int = 1,
              cache: Optional[SweepCache] = None,
              models: Optional[Sequence[str]] = None) -> List[SeriesPoint]:
    """Fig. 5: ApacheBench aggregate requests/sec for every model."""
    points = [{"benchmark": "apache", "model": model_name,
               "n_vms": int(n), "run_ns": run_ns}
              for model_name in (models if models is not None
                                 else FIG5_MODELS)
              for n in vm_counts]
    values = sweep(points, _macro_point, jobs=jobs,
                   artifact="fig5", cache=cache)
    return [SeriesPoint(p["model"], p["n_vms"], v)
            for p, v in zip(points, values)]


def format_fig05(points: List[SeriesPoint]) -> str:
    ns = sorted({p.n_vms for p in points})
    lines = ["Figure 5: ApacheBench aggregate requests/sec",
             f"{'model':12s} " + " ".join(f"N={n:<7d}" for n in ns)]
    for model_name in dict.fromkeys(p.model for p in points):
        vals = {p.n_vms: p.value for p in points if p.model == model_name}
        lines.append(f"{model_name:12s} "
                     + " ".join(f"{vals[n]:9.0f}" for n in ns))
    return "\n".join(lines)


def run_fig12(vm_counts: Sequence[int] = range(1, 8),
              run_ns: int = ms(30),
              jobs: int = 1,
              cache: Optional[SweepCache] = None,
              models: Optional[Sequence[str]] = None
              ) -> Dict[str, List[SeriesPoint]]:
    """Fig. 12: memcached and Apache transactions/sec vs N."""
    benchmarks = ("memcached", "apache")
    points = [{"benchmark": benchmark, "model": model_name,
               "n_vms": int(n), "run_ns": run_ns}
              for benchmark in benchmarks
              for model_name in (models if models is not None
                                 else FIG9_MODELS)
              for n in vm_counts]
    values = sweep(points, _macro_point, jobs=jobs,
                   artifact="fig12", cache=cache)
    result: Dict[str, List[SeriesPoint]] = {b: [] for b in benchmarks}
    for p, v in zip(points, values):
        result[p["benchmark"]].append(SeriesPoint(p["model"], p["n_vms"], v))
    return result


def format_fig12(result: Dict[str, List[SeriesPoint]]) -> str:
    blocks = []
    for benchmark, points in result.items():
        ns = sorted({p.n_vms for p in points})
        lines = [f"Figure 12 ({benchmark}): transactions/sec",
                 f"{'model':10s} " + " ".join(f"N={n:<7d}" for n in ns)]
        for model_name in dict.fromkeys(p.model for p in points):
            vals = {p.n_vms: p.value for p in points if p.model == model_name}
            lines.append(f"{model_name:10s} "
                         + " ".join(f"{vals[n]:9.0f}" for n in ns))
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)
