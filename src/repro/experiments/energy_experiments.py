"""The §4.6 *Energy* extension: monitor/mwait sidecores.

"An inherent downside of the sidecore approach is that polling consumes
energy.  In principle, this cost can be reduced by trading off some
latency and utilizing the CPU's monitor/mwait capability [...] This
optimization is outside the scope of this work."  — paper §4.6.

We implement it anyway: IOhost workers can park in mwait instead of
spinning, paying a ~1.5 us wakeup on each burst of work.  The experiment
sweeps load (number of RR VMs) and reports latency and sidecore energy
per idle policy, exposing the tradeoff the paper predicts: large energy
savings when load is light, converging costs (and a small latency tax)
as the sidecore saturates.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..cluster import TestbedSpec, build_testbed
from ..sim import ms
from ..workloads import NetperfRR
from .runner import SweepCache, sweep

__all__ = ["run_energy", "format_energy"]


def _energy_point(params: dict) -> dict:
    """One (policy, N) cell: RR latency + sidecore energy."""
    policy, n = params["policy"], params["n_vms"]
    tb = build_testbed(TestbedSpec(model="vrio", vms_per_host=n,
                                   worker_idle_policy=policy))
    workloads = [NetperfRR(tb.env, tb.clients[i], tb.ports[i],
                           tb.costs, warmup_ns=ms(2))
                 for i in range(n)]
    tb.env.run(until=params["run_ns"])
    latency = sum(w.mean_latency_us() for w in workloads) / n
    worker = tb.service_cores[0]
    return {
        "policy": policy,
        "n_vms": n,
        "latency_us": latency,
        "sidecore_joules": worker.energy_joules(),
        "sidecore_useful_pct": worker.util.useful_fraction() * 100,
    }


def run_energy(vm_counts: Sequence[int] = (1, 4, 7),
               run_ns: int = ms(30),
               jobs: int = 1,
               cache: Optional[SweepCache] = None) -> List[dict]:
    """RR latency + IOhost sidecore energy for polling vs mwait workers."""
    points = [{"policy": policy, "n_vms": int(n), "run_ns": run_ns}
              for policy in ("poll", "mwait") for n in vm_counts]
    return sweep(points, _energy_point, jobs=jobs,
                 artifact="energy", cache=cache)


def format_energy(rows: List[dict]) -> str:
    lines = ["Energy extension (§4.6): polling vs mwait IOhost sidecore",
             f"{'policy':7s} {'N':>3s} {'latency us':>11s} "
             f"{'energy J':>9s} {'useful %':>9s}"]
    for r in rows:
        lines.append(f"{r['policy']:7s} {r['n_vms']:3d} "
                     f"{r['latency_us']:11.1f} {r['sidecore_joules']:9.3f} "
                     f"{r['sidecore_useful_pct']:9.1f}")
    return "\n".join(lines)
