"""Parallel sweep executor with a persistent content-addressed result cache.

Every paper artifact decomposes into independent sweep points — one
``(model, n_vms, config)`` simulation each building its own
:class:`~repro.cluster.Testbed` — so regenerating a figure is
embarrassingly parallel and, because runs are bit-deterministic (PR 1),
perfectly cacheable.  :func:`sweep` is the single entry point the
experiment modules use:

* points are fanned out over a spawn-safe :mod:`multiprocessing` pool
  (``jobs=1`` keeps today's in-process path, ``jobs="auto"`` uses every
  core) and merged back in deterministic point order;
* each point's JSON result is stored in an on-disk cache addressed by the
  SHA-256 of ``(artifact id, point params, CostModel fingerprint, code
  version)``, so re-running an unchanged sweep is near-instant while any
  change to the inputs — including editing any ``repro`` source file —
  misses cleanly;
* every result, fresh or cached, is round-tripped through canonical JSON
  before being returned, which guarantees serial, parallel, cold and warm
  runs of the same artifact are *byte-identical*.

Point functions must be **module-level** callables taking a single
JSON-serializable params dict and returning JSON-serializable data —
that is what makes them picklable under the ``spawn`` start method and
hashable for the cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, Callable, List, Optional, Sequence, Union

from ..envvars import cache_dir_override, pythonpath_for_spawn
from ..iomodels.costs import CostModel, DEFAULT_COSTS

__all__ = [
    "sweep",
    "SweepCache",
    "CacheStats",
    "resolve_jobs",
    "default_cache_dir",
    "canonical_json",
    "cost_fingerprint",
    "code_version",
    "point_digest",
]

DEFAULT_CACHE_DIRNAME = ".repro_cache"


def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding: sorted keys, no whitespace."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def canonicalize(value: Any) -> Any:
    """Round-trip ``value`` through canonical JSON.

    Applied to *every* sweep result — computed or loaded — so the data a
    caller sees is independent of whether it came from a worker process,
    the in-process path, or the cache (tuples become lists, dict keys
    become strings, floats survive exactly via repr round-tripping).
    """
    return json.loads(canonical_json(value))


def cost_fingerprint(costs: Optional[CostModel]) -> str:
    """SHA-256 over every field of the cost model (``None`` = default)."""
    model = DEFAULT_COSTS if costs is None else costs
    payload = {f.name: getattr(model, f.name) for f in fields(model)}
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


_code_version: Optional[str] = None


def code_version() -> str:
    """SHA-256 over the source of the whole ``repro`` package.

    Any edit to any module invalidates every cache entry — coarse but
    safe, and cheap enough (~1 MB of source) to compute once per process.
    """
    global _code_version
    if _code_version is None:
        root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_version = digest.hexdigest()
    return _code_version


def point_key(artifact: str, params: dict,
              costs: Optional[CostModel]) -> dict:
    """The full key material identifying one sweep point's result."""
    return {
        "artifact": artifact,
        "params": canonicalize(params),
        "costs": cost_fingerprint(costs),
        "code": code_version(),
    }


def point_digest(key: dict) -> str:
    """Content address of one sweep point: SHA-256 of its key material."""
    return hashlib.sha256(canonical_json(key).encode()).hexdigest()


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``.repro_cache`` in the cwd."""
    return Path(cache_dir_override() or DEFAULT_CACHE_DIRNAME)


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`SweepCache` instance."""

    hits: int = 0
    misses: int = 0
    corrupted: int = 0
    stores: int = 0


class SweepCache:
    """Content-addressed on-disk store of sweep-point results.

    Entries live at ``<dir>/<digest[:2]>/<digest>.json`` and carry their
    full key material alongside the result; a load verifies the stored
    key matches before trusting the payload.  Corrupt or mismatching
    entries are dropped and recomputed — never fatal.
    """

    def __init__(self, directory: Union[str, Path, None] = None):
        self.directory = Path(directory) if directory else default_cache_dir()
        self.stats = CacheStats()

    def path_for(self, digest: str) -> Path:
        return self.directory / digest[:2] / f"{digest}.json"

    def load(self, digest: str, key: dict) -> Optional[tuple]:
        """Return ``(result,)`` on a hit, ``None`` on a miss.

        The 1-tuple wrapper keeps a legitimately-``None`` cached result
        distinguishable from a miss.
        """
        path = self.path_for(digest)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
            if entry["key"] != key:
                raise ValueError("cache key mismatch")
            result = entry["result"]
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (ValueError, KeyError, TypeError, OSError):
            # Truncated write, garbage, or digest collision: discard the
            # entry and fall back to recomputation.
            self.stats.corrupted += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return (result,)

    def store(self, digest: str, key: dict, result: Any) -> None:
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump({"key": key, "result": result}, fh, sort_keys=True)
            os.replace(tmp, path)  # atomic: concurrent writers can't tear
            self.stats.stores += 1
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass


def resolve_jobs(jobs: Union[int, str, None]) -> int:
    """Normalize a ``--jobs`` value: ``"auto"``/``0``/``None`` = all cores."""
    if jobs in (None, 0, "auto"):
        return max(1, os.cpu_count() or 1)
    count = int(jobs)
    if count < 1:
        raise ValueError(f"jobs must be >= 1 or 'auto': {jobs!r}")
    return count


def _run_pool(fn: Callable[[dict], Any], params: List[dict],
              jobs: int) -> List[Any]:
    """Map ``fn`` over ``params`` in a spawn pool, preserving order.

    Tests and ad-hoc callers often import ``repro`` via ``sys.path``
    manipulation that a spawned child would not inherit; exporting the
    package's parent directory through the environment closes that gap.
    """
    import multiprocessing

    ctx = multiprocessing.get_context("spawn")
    src_root = str(Path(__file__).resolve().parent.parent.parent)
    with pythonpath_for_spawn(src_root):
        with ctx.Pool(processes=min(jobs, len(params))) as pool:
            return pool.map(fn, params, chunksize=1)


def sweep(points: Sequence[dict], fn: Callable[[dict], Any],
          jobs: Union[int, str, None] = 1, *,
          artifact: str = "",
          cache: Optional[SweepCache] = None,
          costs: Optional[CostModel] = None) -> List[Any]:
    """Evaluate ``fn`` over independent sweep ``points``.

    Parameters
    ----------
    points:
        JSON-serializable params dicts, one per sweep point.  Results are
        returned in this order regardless of completion order.
    fn:
        Module-level callable ``fn(params) -> json_data`` (spawn-safe).
    jobs:
        Worker processes; ``1`` runs in-process, ``"auto"`` uses all
        cores.  The value never affects results, only wall-clock time.
    artifact:
        Cache namespace, normally the artifact id (``"fig13"``).
    cache:
        A :class:`SweepCache`, or ``None`` to disable caching.
    costs:
        The :class:`CostModel` the points run under (``None`` = default);
        part of every cache key, so a recalibration can never replay
        stale results.
    """
    params_list = [dict(p) for p in points]
    job_count = resolve_jobs(jobs)
    results: List[Any] = [None] * len(params_list)

    pending: List[int] = []
    digests: List[Optional[str]] = [None] * len(params_list)
    keys: List[Optional[dict]] = [None] * len(params_list)
    if cache is not None:
        for i, params in enumerate(params_list):
            keys[i] = point_key(artifact, params, costs)
            digests[i] = point_digest(keys[i])
            hit = cache.load(digests[i], keys[i])
            if hit is None:
                pending.append(i)
            else:
                results[i] = hit[0]
    else:
        pending = list(range(len(params_list)))

    if pending:
        if job_count > 1 and len(pending) > 1:
            computed = _run_pool(fn, [params_list[i] for i in pending],
                                 job_count)
        else:
            computed = [fn(params_list[i]) for i in pending]
        for i, raw in zip(pending, computed):
            results[i] = canonicalize(raw)
            if cache is not None:
                cache.store(digests[i], keys[i], results[i])

    # Cached entries already round-tripped through JSON when stored; fresh
    # ones were canonicalized above.  One more pass keeps the guarantee
    # airtight even for cache entries written by older processes.
    return [canonicalize(r) for r in results]
