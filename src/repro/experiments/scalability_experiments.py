"""Figure 13: IOhost scalability — one IOhost serving four logical VMhosts.

VM counts grow 4, 8, ..., 28 (one more VM per VMhost each step), for 1, 2
and 4 IOhost sidecores.  13a measures netperf RR latency (including the
load generators' NUMA artifact); 13b measures aggregate stream throughput,
whose per-sidecore saturation point (~13 Gbps) is the paper's headline
scalability number.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..cluster import TestbedSpec, build_testbed
from ..sim import ms
from ..workloads import NetperfRR, NetperfStream
from .runner import SweepCache, sweep

__all__ = ["run_fig13a", "run_fig13b", "format_fig13",
           "run_fig13_util", "format_fig13_util"]

WORKER_COUNTS = (1, 2, 4)


def _fig13_points(total_vms: Sequence[int], run_ns: int) -> List[dict]:
    points = []
    for workers in WORKER_COUNTS:
        for n in total_vms:
            if n % 4:
                raise ValueError("total VM count must be a multiple of 4")
            points.append({"workers": workers, "n_vms": int(n),
                           "run_ns": run_ns})
    return points


def _fig13a_point(params: dict) -> dict:
    """One (workers, N) cell of Fig. 13a: mean RR latency."""
    workers, n = params["workers"], params["n_vms"]
    tb = build_testbed(TestbedSpec(
        model="vrio", topology="scalability", n_vmhosts=4,
        vms_per_host=n // 4, sidecores=workers,
        model_numa=params["model_numa"]))
    rrs = [NetperfRR(tb.env, tb.clients[i], tb.ports[i], tb.costs,
                     warmup_ns=ms(2)) for i in range(n)]
    tb.env.run(until=params["run_ns"])
    mean_us = sum(r.mean_latency_us() for r in rrs) / n
    return {"workers": workers, "n_vms": n, "latency_us": mean_us}


def run_fig13a(total_vms: Sequence[int] = (4, 8, 12, 16, 20, 24, 28),
               run_ns: int = ms(40), model_numa: bool = True,
               jobs: int = 1,
               cache: Optional[SweepCache] = None) -> List[dict]:
    """Fig. 13a: RR latency vs total VMs for 1/2/4 IOhost sidecores."""
    points = _fig13_points(total_vms, run_ns)
    for p in points:
        p["model_numa"] = model_numa
    return sweep(points, _fig13a_point, jobs=jobs,
                 artifact="fig13a", cache=cache)


def _fig13b_point(params: dict) -> dict:
    """One (workers, N) cell of Fig. 13b: aggregate stream Gbps."""
    workers, n = params["workers"], params["n_vms"]
    tb = build_testbed(TestbedSpec(
        model="vrio", topology="scalability", n_vmhosts=4,
        vms_per_host=n // 4, sidecores=workers, model_numa=False))
    streams = [NetperfStream(tb.env, tb.ports[i], tb.clients[i],
                             tb.costs, warmup_ns=ms(3))
               for i in range(n)]
    tb.env.run(until=params["run_ns"])
    total = sum(s.throughput_gbps() for s in streams)
    return {"workers": workers, "n_vms": n, "throughput_gbps": total}


def run_fig13b(total_vms: Sequence[int] = (4, 8, 12, 16, 20, 24, 28),
               run_ns: int = ms(40),
               jobs: int = 1,
               cache: Optional[SweepCache] = None) -> List[dict]:
    """Fig. 13b: aggregate stream throughput vs total VMs, 1/2/4 sidecores."""
    return sweep(_fig13_points(total_vms, run_ns), _fig13b_point, jobs=jobs,
                 artifact="fig13b", cache=cache)


def run_fig13_util(total_vms: int = 8, workers: int = 2,
                   run_ns: int = ms(40)) -> List[dict]:
    """Per-sidecore utilization of the Fig. 13 stream run, read two ways.

    Runs the 13b topology under a telemetry session and reports each
    IOhost sidecore's busy/useful fractions both directly from the core
    and through the metrics registry — the two must agree, which is the
    registry's correctness check against the scalability experiment.
    """
    from ..telemetry import TelemetrySession

    if total_vms % 4:
        raise ValueError("total VM count must be a multiple of 4")
    with TelemetrySession() as session:
        tb = build_testbed(TestbedSpec(
            model="vrio", topology="scalability", n_vmhosts=4,
            vms_per_host=total_vms // 4, sidecores=workers,
            model_numa=False))
        streams = [NetperfStream(tb.env, tb.ports[i], tb.clients[i],
                                 tb.costs, warmup_ns=ms(3))
                   for i in range(total_vms)]
        tb.env.run(until=run_ns)
    del streams
    snapshot = session.for_testbed(tb).snapshot()
    rows = []
    for idx, core in enumerate(tb.service_cores):
        rows.append({
            "worker": idx,
            "core": core.name,
            "busy_fraction": core.util.busy_fraction(),
            "useful_fraction": core.util.useful_fraction(),
            "busy_fraction_registry":
                snapshot[f"sidecores.{idx}.util.busy_fraction"],
            "useful_fraction_registry":
                snapshot[f"sidecores.{idx}.util.useful_fraction"],
        })
    return rows


def format_fig13_util(rows: List[dict]) -> str:
    lines = ["Figure 13 sidecore utilization: core ledger vs metrics registry",
             f"{'core':24s} {'busy':>7s} {'busy(reg)':>9s} "
             f"{'useful':>7s} {'useful(reg)':>11s}"]
    for r in rows:
        lines.append(f"{r['core']:24s} {r['busy_fraction']:7.4f} "
                     f"{r['busy_fraction_registry']:9.4f} "
                     f"{r['useful_fraction']:7.4f} "
                     f"{r['useful_fraction_registry']:11.4f}")
    return "\n".join(lines)


def format_fig13(rows_a: List[dict], rows_b: List[dict]) -> str:
    def table(rows, key, title, fmt):
        ns = sorted({r["n_vms"] for r in rows})
        lines = [title,
                 f"{'sidecores':>9s} " + " ".join(f"N={n:<5d}" for n in ns)]
        for w in WORKER_COUNTS:
            vals = {r["n_vms"]: r[key] for r in rows if r["workers"] == w}
            lines.append(f"{w:9d} "
                         + " ".join(fmt.format(vals[n]) for n in ns))
        return "\n".join(lines)

    return (table(rows_a, "latency_us",
                  "Figure 13a: vRIO IOhost scalability - latency [usec]",
                  "{:7.1f}")
            + "\n\n"
            + table(rows_b, "throughput_gbps",
                    "Figure 13b: vRIO IOhost scalability - throughput [Gbps]",
                    "{:7.2f}"))
