"""dc_scale: multi-rack fabrics under open-loop load (ROADMAP item 2).

The paper's evaluation stops at one rack, but its §3 cost argument is a
datacenter argument — consolidation ratios pay per rack, so they only
matter multiplied by a fleet.  This artifact runs the simulated half of
that claim: a racks × users sweep over the ``racks`` topology (leaf/
spine fabric, per-rack IOhosts, cross-rack clients) under the open-loop
session generator, reporting end-to-end p99 both aggregate and as the
worst windowed p99 any telemetry window saw (the number an SLO burns
on), next to the §3 fleet consolidation row for the same rack count.

Every cell crosses the spine twice per transaction (clients live one
rack over from their VMs), so the latency curves carry the trunk
oversubscription penalty as ``users`` climbs — the effect single-rack
runs cannot show.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..cluster import TestbedSpec, build_testbed
from ..costmodel.racks import fleet_consolidation_row
from ..sim import Histogram, ms
from ..telemetry import DEFAULT_WINDOW_NS, TelemetrySession
from ..workloads import OpenLoopRR
from .runner import SweepCache, sweep

__all__ = ["run_dc_scale", "format_dc_scale"]

RACK_COUNTS = (1, 2, 4)
USER_COUNTS = (1_000, 10_000)

# Open-loop shape shared by every cell: a 30% diurnal swing with two
# compressed cycles per 8 ms run, plus 2x MMPP bursts.
RATE_PER_USER_HZ = 50.0
DIURNAL_AMPLITUDE = 0.3
DIURNAL_PERIOD_NS = ms(4)
BURST_FACTOR = 2.0


def _dc_point(params: dict) -> dict:
    """One (racks, users) cell: open-loop load over the racks fabric."""
    racks, users = params["racks"], params["users"]
    run_ns = params["run_ns"]
    with TelemetrySession(timeline_width_ns=DEFAULT_WINDOW_NS) as session:
        tb = build_testbed(TestbedSpec(
            model="vrio", topology="racks", n_racks=racks,
            n_vmhosts=params["vmhosts"], vms_per_host=params["vms_per_host"],
            sidecores=params["sidecores"], n_spines=params["spines"],
            oversubscription=params["oversubscription"]))
        telemetry = session.for_testbed(tb)
        n = len(tb.vms)
        gens = [OpenLoopRR(
            tb.env, tb.clients[i], tb.ports[i], tb.costs,
            arrivals_rng=tb.rng.stream(f"openloop-{i}-arrivals"),
            size_rng=tb.rng.stream(f"openloop-{i}-sizes"),
            phase_rng=tb.rng.stream(f"openloop-{i}-phase"),
            users=users // n + (1 if i < users % n else 0),
            rate_per_user_hz=RATE_PER_USER_HZ,
            diurnal_amplitude=DIURNAL_AMPLITUDE,
            diurnal_period_ns=DIURNAL_PERIOD_NS,
            burst_factor=BURST_FACTOR,
            warmup_ns=ms(1)) for i in range(n)]
        telemetry.register_workloads(gens)
        tb.env.run(until=run_ns)

    merged = Histogram("dc_latency_ns")
    for gen in gens:
        for sample in gen.latency_ns.samples:
            merged.add(sample)
    # Worst windowed p99 across all generators and windows — the
    # timeline's view, which aggregate percentiles smooth away.
    peak_p99_ns = 0.0
    for i in range(n):
        for value in telemetry.timeline.series(f"workload.{i}.latency_ns"):
            peak_p99_ns = max(peak_p99_ns, value)
    counters = tb.fabric.counters()
    cost = fleet_consolidation_row(racks)
    return {
        "racks": racks,
        "users": users,
        "offered": sum(g.offered for g in gens),
        "completed": sum(g.transactions for g in gens),
        "p99_us": (merged.percentile(99) / 1_000.0 if merged.count else 0.0),
        "mean_us": (merged.mean() / 1_000.0 if merged.count else 0.0),
        "peak_window_p99_us": peak_p99_ns / 1_000.0,
        "fabric_forwarded": counters["forwarded"],
        "fabric_flooded": counters["flooded"],
        "fabric_unknown_dst": counters["unknown_dst"],
        "trunk_mb": tb.fabric.trunk_tx_bytes() / 1e6,
        "vm_cores": cost["vm_cores"],
        "fleet_savings_usd": cost["savings_usd"],
    }


def run_dc_scale(rack_counts: Sequence[int] = RACK_COUNTS,
                 user_counts: Sequence[int] = USER_COUNTS,
                 run_ns: int = ms(8), vmhosts: int = 2,
                 vms_per_host: int = 1, sidecores: int = 1,
                 spines: int = 1, oversubscription: float = 4.0,
                 jobs: int = 1,
                 cache: Optional[SweepCache] = None) -> List[dict]:
    """The racks × users sweep (defaults: 1/2/4 racks × 1k/10k users,
    4:1 oversubscribed single-spine fabric, 2 VMhosts per rack)."""
    points = [{"racks": r, "users": u, "run_ns": run_ns,
               "vmhosts": vmhosts, "vms_per_host": vms_per_host,
               "sidecores": sidecores, "spines": spines,
               "oversubscription": oversubscription}
              for r in rack_counts for u in user_counts]
    return sweep(points, _dc_point, jobs=jobs,
                 artifact="dc_scale", cache=cache)


def format_dc_scale(rows: List[dict]) -> str:
    lines = ["dc_scale: open-loop p99 and §3 fleet savings vs racks × users",
             f"{'racks':>5s} {'users':>6s} {'offered':>8s} {'done':>8s} "
             f"{'p99[us]':>9s} {'peak-w-p99':>10s} {'trunkMB':>8s} "
             f"{'flood':>6s} {'fleet-save[$]':>13s}"]
    for r in rows:
        lines.append(
            f"{r['racks']:5d} {r['users']:6d} {r['offered']:8d} "
            f"{r['completed']:8d} {r['p99_us']:9.1f} "
            f"{r['peak_window_p99_us']:10.1f} {r['trunk_mb']:8.2f} "
            f"{r['fabric_flooded']:6d} {r['fleet_savings_usd']:13,.0f}")
    return "\n".join(lines)
