"""Filebench workloads (§5): 4 KB random readers/writers and the Webserver
personality.

The micro workloads reproduce the *Making a Local Device Remote*
experiment (Fig. 14): per-VM thread groups doing O_DIRECT 4 KB random I/O
against a 1 GB virtual disk, scheduled on the single VCPU by the guest
scheduler (whose involuntary context switches are the figure's
counterintuitive crossover mechanism).

The Webserver personality reproduces the consolidation experiments
(Figs. 15/16): 30 K files with a 28 KB mean size, 4 threads per VM doing
open/read/close plus a log append, reported in Mbps of file data read.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..guest.blkqueue import GuestBlockScheduler
from ..guest.scheduler import GuestScheduler
from ..guest.vm import Vm
from ..hw.storage import SECTOR_BYTES, BlockRequest
from ..iomodels.costs import CostModel, DEFAULT_COSTS
from ..sim import Environment

__all__ = ["FilebenchRandomIO", "WebserverPersonality"]


class FilebenchRandomIO:
    """A thread group doing 4 KB random reads/writes on one VM's disk."""

    def __init__(self, env: Environment, vm: Vm, block_handle,
                 rng: random.Random, costs: CostModel = DEFAULT_COSTS,
                 readers: int = 1, writers: int = 0, io_bytes: int = 4_096,
                 disk_bytes: int = 1 << 30, warmup_ns: int = 2_000_000,
                 app_dilation: float = 1.0,
                 scheduler: Optional[GuestScheduler] = None):
        if readers + writers < 1:
            raise ValueError("need at least one thread")
        self.env = env
        self.vm = vm
        self.costs = costs
        self.rng = rng
        self.io_bytes = io_bytes
        self.warmup_ns = warmup_ns
        self.app_dilation = app_dilation
        self.operations = 0
        self._measure_start = None
        self.scheduler = scheduler or GuestScheduler(env, vm.vcpu)
        self.block_sched = GuestBlockScheduler(env, block_handle.submit)
        self._sectors = disk_bytes // SECTOR_BYTES
        self._io_sectors = max(1, io_bytes // SECTOR_BYTES)
        threads = (["read"] * readers) + (["write"] * writers)
        for i, op in enumerate(threads):
            env.process(self._thread(f"t{i}", op),
                        name=f"filebench:{vm.name}:t{i}")

    def _random_request(self, op: str) -> BlockRequest:
        slots = self._sectors // self._io_sectors
        sector = self.rng.randrange(slots) * self._io_sectors
        return BlockRequest(op=op, sector=sector, size_bytes=self.io_bytes)

    def _thread(self, tid: str, op: str):
        env = self.env
        base = self.costs.filebench_op_cycles * self.app_dilation
        # Stagger thread start-up and jitter op costs (+-10%) so identical
        # threads don't phase-lock into artificial lockstep.
        yield env.timeout(self.rng.randrange(0, 30_000))
        while True:
            cycles = int(base * self.rng.uniform(0.9, 1.1))
            yield self.scheduler.run((self.vm.name, tid), cycles)
            yield self.block_sched.submit(self._random_request(op))
            if env.now >= self.warmup_ns:
                if self._measure_start is None:
                    self._measure_start = env.now
                self.operations += 1

    def ops_per_sec(self) -> float:
        if self._measure_start is None:
            return 0.0
        elapsed = self.env.now - self._measure_start
        if elapsed <= 0:
            return 0.0
        return self.operations * 1e9 / elapsed


class WebserverPersonality:
    """Filebench's Webserver I/O personality on one VM (Figs. 15/16).

    30 K files of variable size (lognormal, 28 KB mean); 4 threads, each
    looping open/read-whole-file/close, appending to a shared log every
    10 operations.  Throughput is file bytes read per second (Mbps).
    """

    FILE_COUNT = 30_000
    MEAN_FILE_BYTES = 28 * 1024
    THREADS = 4
    LOG_EVERY = 10
    LOG_APPEND_BYTES = 16 * 1024

    def __init__(self, env: Environment, vm: Vm, block_handle,
                 rng: random.Random, costs: CostModel = DEFAULT_COSTS,
                 disk_bytes: int = 1 << 30, warmup_ns: int = 2_000_000,
                 app_dilation: float = 1.0,
                 scheduler: Optional[GuestScheduler] = None):
        self.env = env
        self.vm = vm
        self.costs = costs
        self.rng = rng
        self.warmup_ns = warmup_ns
        self.app_dilation = app_dilation
        self.bytes_read = 0
        self.operations = 0
        self._measure_start = None
        self.scheduler = scheduler or GuestScheduler(env, vm.vcpu)
        self.block_sched = GuestBlockScheduler(env, block_handle.submit)
        self._file_sectors = self._build_fileset(disk_bytes)
        self._log_sector = self._file_sectors[-1][0]
        for i in range(self.THREADS):
            env.process(self._thread(f"w{i}"),
                        name=f"webserver:{vm.name}:{i}")

    def _build_fileset(self, disk_bytes: int) -> List[tuple]:
        """Lay out (sector, size) for the fileset, wrapped onto the disk.

        Sizes are lognormal with the paper's 28 KB mean, truncated to
        [1 KB, 256 KB], rounded up to whole sectors.
        """
        files = []
        sector = 0
        total_sectors = disk_bytes // SECTOR_BYTES
        mu, sigma = 9.8, 1.0  # lognormal with mean ~ 28 KB
        for _ in range(self.FILE_COUNT):
            size = int(self.rng.lognormvariate(mu, sigma))
            size = max(1024, min(size, 256 * 1024))
            sectors = -(-size // SECTOR_BYTES)
            if sector + sectors >= total_sectors:
                sector = 0
            files.append((sector, sectors * SECTOR_BYTES))
            sector += sectors
        return files

    def _thread(self, tid: str):
        env = self.env
        base = self.costs.webserver_op_cycles * self.app_dilation
        ops = 0
        yield env.timeout(self.rng.randrange(0, 50_000))
        while True:
            # open + read + close: app work then one whole-file read.
            op_cycles = int(base * self.rng.uniform(0.9, 1.1))
            yield self.scheduler.run((self.vm.name, tid), op_cycles)
            sector, size = self.rng.choice(self._file_sectors)
            yield self.block_sched.submit(
                BlockRequest(op="read", sector=sector, size_bytes=size))
            ops += 1
            if ops % self.LOG_EVERY == 0:
                yield self.block_sched.submit(
                    BlockRequest(op="write", sector=self._log_sector,
                                 size_bytes=self.LOG_APPEND_BYTES))
            if env.now >= self.warmup_ns:
                if self._measure_start is None:
                    self._measure_start = env.now
                self.bytes_read += size
                self.operations += 1

    def throughput_mbps(self) -> float:
        if self._measure_start is None:
            return 0.0
        elapsed = self.env.now - self._measure_start
        if elapsed <= 0:
            return 0.0
        return self.bytes_read * 8 * 1e9 / elapsed / 1e6

    def ops_per_sec(self) -> float:
        if self._measure_start is None:
            return 0.0
        elapsed = self.env.now - self._measure_start
        if elapsed <= 0:
            return 0.0
        return self.operations * 1e9 / elapsed
