"""Transactional macrobenchmarks: Apache/ApacheBench and memcached/memslap.

Both are closed-loop request-response workloads with server-side
application work; they differ in per-request weight, response size,
concurrency, and — critically for the I/O models — the number of network
round trips a transaction costs:

* ApacheBench (no keep-alive) opens a TCP connection per request, so one
  HTTP transaction is several wire round trips (SYN/SYN-ACK, request,
  response, FIN), multiplying exposure to per-message I/O overheads —
  which is why Figure 5's throughput tracks Table 3's event "sum".
* Memslap drives memcached over a persistent connection: one round trip.
"""

from __future__ import annotations

import itertools
from typing import Dict

from ..iomodels.base import ExternalEndpoint, NetMessage, NetPort
from ..iomodels.costs import CostModel, DEFAULT_COSTS
from ..sim import Environment, Event

__all__ = ["TransactionalWorkload", "ApacheBench", "Memslap"]

_conn_ids = itertools.count(1)

_HANDSHAKE_BYTES = 64
_HANDSHAKE_SERVER_CYCLES = 1_500


class TransactionalWorkload:
    """A closed-loop client fleet driving one server VM."""

    def __init__(self, env: Environment, client: ExternalEndpoint,
                 port: NetPort, costs: CostModel = DEFAULT_COSTS,
                 request_bytes: int = 200, response_bytes: int = 1_024,
                 server_cycles: int = 20_000, client_cycles: int = 6_000,
                 round_trips: int = 1, concurrency: int = 4,
                 warmup_ns: int = 2_000_000, name: str = "txn"):
        if round_trips < 1:
            raise ValueError(f"round trips must be >= 1: {round_trips}")
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1: {concurrency}")
        self.env = env
        self.client = client
        self.port = port
        self.costs = costs
        self.request_bytes = request_bytes
        self.response_bytes = response_bytes
        self.server_cycles = server_cycles
        self.client_cycles = client_cycles
        self.round_trips = round_trips
        self.warmup_ns = warmup_ns
        self.name = name
        self.transactions = 0
        self._measure_start = None
        self._waiters: Dict[int, Event] = {}
        port.receive_handler = self._serve
        client.receive_handler = self._on_response
        for _ in range(concurrency):
            env.process(self._connection_loop(),
                        name=f"{name}:{port.vm.name}")

    # -- server side ------------------------------------------------------------

    def _serve(self, message: NetMessage) -> None:
        self.env.process(self._serve_path(message))

    def _serve_path(self, message: NetMessage):
        final = message.meta.get("final_rt", True)
        if final:
            cycles = self.port.app_cycles(self.server_cycles)
            size = self.response_bytes
        else:
            cycles = self.port.app_cycles(_HANDSHAKE_SERVER_CYCLES)
            size = _HANDSHAKE_BYTES
        yield self.port.vm.compute(cycles, tag="server_app")
        self.port.send(message.src, size, kind="resp",
                       meta={"conn": message.meta["conn"]})

    # -- client side -----------------------------------------------------------------

    def _on_response(self, message: NetMessage) -> None:
        waiter = self._waiters.get(message.meta["conn"])
        if waiter is not None and not waiter.triggered:
            waiter.succeed(message)

    def _connection_loop(self):
        env = self.env
        while True:
            conn = next(_conn_ids)
            yield self.client.core.execute(self.client_cycles,
                                           tag="txn_client")
            for rt in range(self.round_trips):
                final = rt == self.round_trips - 1
                waiter = env.event()
                self._waiters[conn] = waiter
                self.client.send(
                    self.port.mac,
                    self.request_bytes if final else _HANDSHAKE_BYTES,
                    kind="req", meta={"conn": conn, "final_rt": final})
                yield waiter
            del self._waiters[conn]
            if env.now >= self.warmup_ns:
                if self._measure_start is None:
                    self._measure_start = env.now
                self.transactions += 1

    # -- results --------------------------------------------------------------------------

    def throughput_tps(self) -> float:
        if self._measure_start is None:
            return 0.0
        elapsed = self.env.now - self._measure_start
        if elapsed <= 0:
            return 0.0
        return self.transactions * 1e9 / elapsed


class ApacheBench(TransactionalWorkload):
    """ab driving an Apache VM: heavy requests, one connection each."""

    def __init__(self, env: Environment, client: ExternalEndpoint,
                 port: NetPort, costs: CostModel = DEFAULT_COSTS,
                 concurrency: int = 4, warmup_ns: int = 2_000_000):
        super().__init__(env, client, port, costs,
                         request_bytes=220, response_bytes=8_192,
                         server_cycles=costs.apache_request_cycles,
                         client_cycles=9_000,
                         round_trips=costs.apache_round_trips,
                         concurrency=concurrency, warmup_ns=warmup_ns,
                         name="apachebench")


class Memslap(TransactionalWorkload):
    """memslap driving a memcached VM: light ops, persistent connection."""

    def __init__(self, env: Environment, client: ExternalEndpoint,
                 port: NetPort, costs: CostModel = DEFAULT_COSTS,
                 concurrency: int = 8, warmup_ns: int = 2_000_000):
        super().__init__(env, client, port, costs,
                         request_bytes=96, response_bytes=1_024,
                         server_cycles=costs.memcached_request_cycles,
                         client_cycles=4_000, round_trips=1,
                         concurrency=concurrency, warmup_ns=warmup_ns,
                         name="memslap")
