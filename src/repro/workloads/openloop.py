"""Open-loop session load for datacenter-scale runs.

The paper's netperf harness is *closed-loop*: each client waits for its
response before issuing the next request, so offered load self-throttles
exactly when the system congests — the regime where p99 matters most is
the regime a closed loop refuses to enter.  :class:`OpenLoopRR` issues
requests on an arrival process that does not care whether earlier
requests completed, the way real user populations do.

The arrival process is a thinned non-homogeneous Poisson process
(Lewis–Shedler): candidate arrivals are drawn at the peak rate and
accepted with probability ``rate(t) / peak``, which keeps the draw
count — and therefore the RNG stream consumption — independent of the
rate curve's shape.  The instantaneous rate composes three factors:

* a base session rate, ``users × rate_per_user_hz`` (the *users* axis of
  a ``dc_scale`` sweep scales offered load without touching topology);
* a diurnal curve — a sinusoid with configurable amplitude and a
  time-compressed period so a millisecond-scale run sees whole cycles;
* a 2-state MMPP burst modulator: a background Markov chain flips
  between a calm state and one ``burst_factor`` hotter, with
  exponentially distributed dwell times.

Response sizes are bounded-Pareto (heavy-tailed objects, truncated so a
single draw cannot exceed the wire's sanity), drawn client-side and
carried to the server in request metadata so the echo path stays
stateless.  All randomness comes from three dedicated substreams
(``arrivals``, ``sizes``, ``phase``) that callers mint from the run's
:class:`repro.sim.RngRegistry` — one draw order, bit-identical replays.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Optional

from ..iomodels.base import ExternalEndpoint, NetMessage, NetPort
from ..iomodels.costs import CostModel, DEFAULT_COSTS
from ..sim import Environment, Histogram

__all__ = ["OpenLoopRR", "bounded_pareto"]

_NS_PER_S = 1_000_000_000


def bounded_pareto(rng: random.Random, alpha: float, low: float,
                   high: float) -> float:
    """One bounded-Pareto(alpha, L=low, H=high) variate via inversion."""
    u = rng.random()
    la, ha = low ** -alpha, high ** -alpha
    return (la - u * (la - ha)) ** (-1.0 / alpha)


class OpenLoopRR:
    """One open-loop request source driving one VM port.

    ``users`` sessions each offer ``rate_per_user_hz`` requests/s on
    average; the generator is their superposition (a single thinned
    NHPP at ``users × rate_per_user_hz``, rate-modulated as described in
    the module docstring).  Requests are fired without waiting for
    responses; per-request latency is matched up by request id.

    Telemetry: ``latency_ns`` (histogram) and ``transactions`` (progress
    counter) follow the workload-attribute naming the registry binds
    automatically; ``offered`` counts requests sent (post-warmup), so
    ``offered - transactions`` is the in-flight/abandoned backlog.
    """

    def __init__(self, env: Environment, client: ExternalEndpoint,
                 port: NetPort, costs: CostModel = DEFAULT_COSTS, *,
                 arrivals_rng: random.Random,
                 size_rng: random.Random,
                 phase_rng: random.Random,
                 users: int = 1,
                 rate_per_user_hz: float = 50.0,
                 diurnal_amplitude: float = 0.0,
                 diurnal_period_ns: int = 2_000_000,
                 burst_factor: float = 1.0,
                 burst_dwell_ns: int = 200_000,
                 request_bytes: int = 64,
                 size_alpha: float = 1.3,
                 size_low: int = 64,
                 size_high: int = 16_384,
                 warmup_ns: int = 1_000_000):
        if users <= 0:
            raise ValueError(f"need at least one user, got {users}")
        if rate_per_user_hz <= 0:
            raise ValueError(f"rate must be positive: {rate_per_user_hz}")
        if not 0.0 <= diurnal_amplitude < 1.0:
            raise ValueError(
                f"diurnal amplitude must be in [0, 1): {diurnal_amplitude}")
        if burst_factor < 1.0:
            raise ValueError(
                f"burst factor must be >= 1: {burst_factor}")
        if not 0 < size_low <= size_high:
            raise ValueError(
                f"need 0 < size_low <= size_high, got "
                f"{size_low}..{size_high}")
        self.env = env
        self.client = client
        self.port = port
        self.costs = costs
        self.users = users
        self.base_rate_hz = users * rate_per_user_hz
        self.diurnal_amplitude = diurnal_amplitude
        self.diurnal_period_ns = diurnal_period_ns
        self.burst_factor = burst_factor
        self.burst_dwell_ns = burst_dwell_ns
        self.request_bytes = request_bytes
        self.size_alpha = size_alpha
        self.size_low = size_low
        self.size_high = size_high
        self.warmup_ns = warmup_ns
        self._arrivals_rng = arrivals_rng
        self._size_rng = size_rng
        self._phase_rng = phase_rng
        self.latency_ns = Histogram("openloop_latency_ns")
        self.transactions = 0        # responses received post-warmup
        self.offered = 0             # requests sent post-warmup
        self._burst_state = 0
        self._next_req = 0
        self._sent_ns: Dict[int, int] = {}
        port.receive_handler = self._serve
        client.receive_handler = self._on_response
        env.process(self._arrival_loop(),
                    name=f"openloop:{port.vm.name}")
        if burst_factor > 1.0:
            env.process(self._burst_modulator(),
                        name=f"openloop-mmpp:{port.vm.name}")

    # -- rate curve ---------------------------------------------------------

    @property
    def peak_rate_hz(self) -> float:
        """The thinning envelope: every factor at its maximum."""
        return (self.base_rate_hz * (1.0 + self.diurnal_amplitude)
                * self.burst_factor)

    def rate_hz(self, now_ns: int) -> float:
        """The instantaneous offered rate at simulation time ``now_ns``."""
        rate = self.base_rate_hz
        if self.diurnal_amplitude:
            phase = 2.0 * math.pi * now_ns / self.diurnal_period_ns
            rate *= 1.0 + self.diurnal_amplitude * math.sin(phase)
        if self._burst_state:
            rate *= self.burst_factor
        return rate

    def _burst_modulator(self):
        """2-state MMPP: exponential dwell in calm, then in burst."""
        rng = self._phase_rng
        while True:
            yield self.env.timeout(
                max(1, round(rng.expovariate(1.0 / self.burst_dwell_ns))))
            self._burst_state ^= 1

    # -- client side --------------------------------------------------------

    def _arrival_loop(self):
        env = self.env
        rng = self._arrivals_rng
        peak = self.peak_rate_hz
        mean_gap_ns = _NS_PER_S / peak
        while True:
            # Lewis–Shedler thinning: candidates at the peak rate,
            # accepted with probability rate(now)/peak.
            gap = max(1, round(rng.expovariate(1.0) * mean_gap_ns))
            yield env.timeout(gap)
            if rng.random() * peak > self.rate_hz(env.now):
                continue
            self._fire()

    def _fire(self) -> None:
        req = self._next_req
        self._next_req += 1
        resp_bytes = max(self.size_low, min(self.size_high, round(
            bounded_pareto(self._size_rng, self.size_alpha,
                           self.size_low, self.size_high))))
        self._sent_ns[req] = self.env.now
        if self.env.now >= self.warmup_ns:
            self.offered += 1
        self.client.send(self.port.mac, self.request_bytes, kind="ol_req",
                         meta={"req": req, "resp_bytes": resp_bytes})

    def _on_response(self, message: NetMessage) -> None:
        sent = self._sent_ns.pop(message.meta["req"], None)
        if sent is None or sent < self.warmup_ns:
            return
        self.latency_ns.add(self.env.now - sent)
        self.transactions += 1

    # -- guest side: echo server --------------------------------------------

    def _serve(self, message: NetMessage) -> None:
        self.env.process(self._serve_path(message))

    def _serve_path(self, message: NetMessage):
        cycles = self.port.app_cycles(self.costs.netperf_rr_server_cycles)
        yield self.port.vm.compute(cycles, tag="openloop_server")
        self.port.send(message.src, message.meta["resp_bytes"],
                       kind="ol_resp", meta=dict(message.meta))

    # -- results ------------------------------------------------------------

    def mean_latency_us(self) -> float:
        return self.latency_ns.mean() / 1_000.0

    def percentile_us(self, q: float) -> float:
        return self.latency_ns.percentile(q) / 1_000.0
