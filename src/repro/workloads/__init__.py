"""The paper's five benchmark workloads (§5 Methodology)."""

from .filebench import FilebenchRandomIO, WebserverPersonality
from .netperf import NetperfRR, NetperfStream
from .transactional import ApacheBench, Memslap, TransactionalWorkload

__all__ = [
    "NetperfRR", "NetperfStream",
    "TransactionalWorkload", "ApacheBench", "Memslap",
    "FilebenchRandomIO", "WebserverPersonality",
]
