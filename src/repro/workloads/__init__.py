"""The paper's five benchmark workloads (§5 Methodology), plus the
open-loop session generator used by datacenter-scale runs."""

from .filebench import FilebenchRandomIO, WebserverPersonality
from .netperf import NetperfRR, NetperfStream
from .openloop import OpenLoopRR, bounded_pareto
from .transactional import ApacheBench, Memslap, TransactionalWorkload

__all__ = [
    "NetperfRR", "NetperfStream",
    "OpenLoopRR", "bounded_pareto",
    "TransactionalWorkload", "ApacheBench", "Memslap",
    "FilebenchRandomIO", "WebserverPersonality",
]
