"""Netperf workloads (§5): UDP request-response and TCP stream.

* :class:`NetperfRR` — the standard latency measure: a closed loop sending
  one small request and waiting for the small response; reported latency is
  wall time per transaction (as netperf reports it).
* :class:`NetperfStream` — maximal one-connection throughput with 64-byte
  messages ("to stress the I/O models"); the guest TCP stack coalesces
  sends into 64 KB TSO chunks, so the per-send syscall cost dominates guest
  CPU, exactly the regime the paper measures.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..iomodels.base import ExternalEndpoint, NetMessage, NetPort
from ..iomodels.costs import CostModel, DEFAULT_COSTS
from ..sim import Environment, Event, Histogram, Store

__all__ = ["NetperfRR", "NetperfStream"]


class NetperfRR:
    """One netperf UDP_RR client driving one VM.

    ``rng`` enables ±10% jitter on the client's per-transaction work —
    real clients are never cycle-exact, and without it closed loops
    phase-lock into artificial synchrony.
    """

    def __init__(self, env: Environment, client: ExternalEndpoint,
                 port: NetPort, costs: CostModel = DEFAULT_COSTS,
                 request_bytes: int = 64, response_bytes: int = 64,
                 warmup_ns: int = 2_000_000,
                 rng: Optional[random.Random] = None):
        self.env = env
        self.client = client
        self.port = port
        self.costs = costs
        self.request_bytes = request_bytes
        self.response_bytes = response_bytes
        self.warmup_ns = warmup_ns
        self.rng = rng
        self.latency_ns = Histogram("rr_latency_ns")
        self.transactions = 0
        self._response: Optional[Event] = None
        port.receive_handler = self._serve
        client.receive_handler = self._on_response
        env.process(self._client_loop(), name=f"netperf-rr:{port.vm.name}")

    # -- guest side: netserver echo -----------------------------------------

    def _serve(self, message: NetMessage) -> None:
        self.env.process(self._serve_path(message))

    def _serve_path(self, message: NetMessage):
        cycles = self.port.app_cycles(self.costs.netperf_rr_server_cycles)
        yield self.port.vm.compute(cycles, tag="netserver")
        self.port.send(message.src, self.response_bytes, kind="rr_resp",
                       meta=dict(message.meta))

    # -- client side ------------------------------------------------------------

    def _on_response(self, message: NetMessage) -> None:
        if self._response is not None and not self._response.triggered:
            self._response.succeed(message)

    def _client_loop(self):
        env = self.env
        if self.rng is not None:
            # Desynchronize the client fleet's start-up.
            yield env.timeout(self.rng.randrange(0, 20_000))
        while True:
            start = env.now
            cycles = self.costs.loadgen_rr_cycles
            if self.rng is not None:
                cycles = int(cycles * self.rng.uniform(0.9, 1.1))
            yield self.client.core.execute(cycles, tag="rr_client")
            self._response = env.event()
            self.client.send(self.port.mac, self.request_bytes,
                             kind="rr_req", meta={})
            yield self._response
            if env.now >= self.warmup_ns:
                self.latency_ns.add(env.now - start)
                self.transactions += 1

    # -- results -------------------------------------------------------------------

    def mean_latency_us(self) -> float:
        return self.latency_ns.mean() / 1_000.0

    def percentile_us(self, q: float) -> float:
        return self.latency_ns.percentile(q) / 1_000.0


class NetperfStream:
    """One netperf TCP_STREAM sender inside a VM, sinking at a client."""

    def __init__(self, env: Environment, port: NetPort,
                 client: ExternalEndpoint,
                 costs: CostModel = DEFAULT_COSTS,
                 message_bytes: int = 64, window_chunks: int = 4,
                 warmup_ns: int = 2_000_000):
        if window_chunks <= 0:
            raise ValueError(f"window must be positive: {window_chunks}")
        self.env = env
        self.port = port
        self.client = client
        self.costs = costs
        self.message_bytes = message_bytes
        self.msgs_per_chunk = costs.netperf_stream_msgs_per_chunk
        self.chunk_bytes = self.msgs_per_chunk * message_bytes
        self.warmup_ns = warmup_ns
        self.bytes_received = 0
        self.chunks_received = 0
        self._measure_start: Optional[int] = None
        self._window: Store = Store(env, capacity=window_chunks)
        for _ in range(window_chunks):
            self._window.try_put(None)
        client.receive_handler = self._on_chunk
        env.process(self._sender(), name=f"netperf-stream:{port.vm.name}")

    def _sender(self):
        costs = self.costs
        per_send = (costs.netperf_stream_send_cycles
                    + self.port.per_send_extra_cycles)
        send_cost = self.port.app_cycles(per_send * self.msgs_per_chunk)
        while True:
            # The guest performs msgs_per_chunk send() syscalls whose bytes
            # the TCP stack coalesces into one TSO chunk.
            yield self.port.vm.compute(send_cost, tag="stream_send")
            yield self._window.get()
            self.port.send(self.client.mac, self.chunk_bytes, kind="stream")

    def _on_chunk(self, message: NetMessage) -> None:
        self._window.try_put(None)
        if self.env.now >= self.warmup_ns:
            if self._measure_start is None:
                self._measure_start = self.env.now
            self.bytes_received += message.size_bytes
            self.chunks_received += 1

    def throughput_gbps(self) -> float:
        if self._measure_start is None:
            return 0.0
        elapsed = self.env.now - self._measure_start
        if elapsed <= 0:
            return 0.0
        return self.bytes_received * 8 / elapsed
