"""Command-line interface: ``python -m repro <command>``.

Commands
--------
list
    Show every reproducible artifact and its description.
run ARTIFACT [--quick] [--chart] [--models A,B,...] [--jobs N]
             [--no-cache] [--cache-dir D]
    Regenerate one artifact (e.g. ``fig7``, ``tab3``, ``energy``) — or
    ``all`` of them — and print the reproduced rows; ``--chart`` adds an
    ASCII chart for the series-valued figures.  ``--models`` restricts a
    model-comparison artifact to a comma-separated subset of registered
    model ids (unknown ids exit 2 with the valid listing).  ``--jobs``
    fans sweep points out over worker processes; results are
    byte-identical at any job count.  Unchanged sweep points replay from
    the persistent result cache (disable with ``--no-cache``).
models [--list | --json]
    Describe every I/O model in the registry: one-line description and
    capability flags, generated from ``repro.iomodels.registry``.
costs
    Dump the calibrated cost-model constants.
verify [--scenario NAME] [--update-goldens] [--list] [--telemetry]
       [--lint] [--engine] [--jobs N] [--no-cache] [--cache-dir D]
    Run the verification harness: every canonical scenario is executed,
    audited against the simulation invariants, re-run to prove bit
    determinism, and compared to its committed golden fingerprint.
    ``--telemetry`` adds a pass validating each scenario's metrics and
    Chrome-trace exports.  ``--lint`` adds the simlint static-analysis
    pass over the source tree.  ``--engine`` adds the scheduler smoke:
    the calendar queue must clearly outpace the legacy heap and the
    committed ``BENCH_engine.json`` must be schema-valid.  Scenarios fan
    out over ``--jobs`` processes and replay from the result cache when
    the code is unchanged.
lint [PATH ...] [--json] [--baseline FILE] [--update-baseline]
     [--only CODE] [--list-rules] [--project] [--jobs N] [--no-cache]
     [--changed]
    Run simlint, the AST-based static analyzer enforcing the simulator's
    invariants: SIM1xx determinism, SIM2xx cycle-ledger integrity,
    SIM3xx event-callback safety, SIM4xx telemetry hygiene, SIM5xx model
    catalog.  ``--project`` adds the whole-program SIM6xx rules (module
    graph, call graph, dataflow: RNG provenance, ledger flow, callback
    escape, telemetry reachability), with per-file symbol summaries
    cached by content hash (``--no-cache`` bypasses; ``--jobs`` fans
    cold parsing out over worker processes).  ``--changed`` lints only
    files differing from ``git merge-base HEAD main``.  Exit 0 when
    clean, 1 on findings, 2 on usage errors.
faults [CAMPAIGN ...] [--all] [--list] [--seed N] [--jobs N]
    Run fault-injection campaigns (IOhost crash, link loss/blackout, NIC
    failure, storage error bursts, sidecore stalls, live migration) and
    print each recovery report: detection latency, failover downtime,
    requests lost/retried/recovered, and throughput before/during/after
    the fault.  Reports are byte-identical per seed and cache/parallelize
    like any sweep.  ``verify --faults`` runs the quick smoke variant.
observe SCENARIO [--seed N] [--trace PATH] [--json FILE] [--csv FILE]
        [--timeline] [--window NS] [--timeline-json FILE]
        [--timeline-csv FILE] [--attribution] [--flamegraph BASE]
        [--slo] [--slo-p99-us US] [--slo-floor OPS] [--slo-downtime-us US]
    Run one scenario (or a figure alias like ``fig12``) under full
    telemetry: print the per-stage latency breakdown and key metrics and
    write a Chrome ``trace_event`` JSON file.  ``--timeline`` adds the
    windowed sparkline dashboard (exportable as schema-validated JSON /
    CSV), ``--attribution`` the queueing-vs-service decomposition with
    the p99-dominating stage, ``--flamegraph`` folded-stack + speedscope
    profiles, and the ``--slo`` family evaluates a declarative SLO probe
    per window.  Unknown scenarios exit 2 with the valid listing.
bench [ARTIFACT ...] [--quick] [--jobs N] [--out PATH]
    Time each artifact's regeneration three ways — serial cold, parallel
    cold, and warm-cache — and write the timings to ``BENCH_sweep.json``.
bench --engine [--quick] [--check] [--out PATH]
    Benchmark the event-scheduler hot path: calendar queue vs the legacy
    heap on completion storms, captured fig12/fig13 schedule replays,
    end-to-end artifact wall times, and the whole-tree project lint
    (cold vs warm symbol cache); writes ``BENCH_engine.json``.
    ``--check`` compares against the committed baseline instead and
    fails on a >10% calendar events/sec regression, a lint cache
    warm-up below 5x, or new lint findings.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional, Tuple, Union

from . import experiments as ex
from .analysis import series_by_model
from .analysis.charts import ascii_chart
from .experiments import SweepCache, sweep
from .iomodels.costs import DEFAULT_COSTS
from .sim import ms

__all__ = ["main", "ARTIFACTS"]


def _quick_ns(quick: bool) -> int:
    return ms(15) if quick else ms(30)


def _fig05(quick, **kw):
    points = ex.run_fig05(vm_counts=(1, 4, 7) if quick else range(1, 8),
                          run_ns=_quick_ns(quick), **kw)
    return ex.format_fig05(points), points


def _fig07(quick, **kw):
    points = ex.run_fig07(vm_counts=(1, 4, 7) if quick else range(1, 8),
                          run_ns=_quick_ns(quick), **kw)
    return ex.format_fig07(points), points


def _fig09(quick, **kw):
    points = ex.run_fig09(vm_counts=(1, 4, 7) if quick else range(1, 8),
                          run_ns=_quick_ns(quick), **kw)
    return ex.format_fig09(points), points


def _dc_scale(quick, **kw):
    racks = (1, 2) if quick else (1, 2, 4)
    users = (500, 2_000) if quick else (1_000, 10_000)
    points = ex.run_dc_scale(rack_counts=racks, user_counts=users,
                             run_ns=ms(4) if quick else ms(8), **kw)
    return ex.format_dc_scale(points), points


def _fig13(quick, **kw):
    vms = (4, 12, 28) if quick else (4, 8, 12, 16, 20, 24, 28)
    text = ex.format_fig13(ex.run_fig13a(total_vms=vms,
                                         run_ns=_quick_ns(quick), **kw),
                           ex.run_fig13b(total_vms=vms,
                                         run_ns=_quick_ns(quick), **kw))
    return text, None


# artifact -> (description, runner(quick, jobs=, cache=) -> (text, points))
ARTIFACTS: Dict[str, Tuple[str, Callable]] = {
    "fig1": ("CPU vs NIC upgrade price ratios",
             lambda q, **kw: (ex.format_fig01(ex.run_fig01(**kw)), None)),
    "tab1": ("Dell R930 server configurations",
             lambda q, **kw: (ex.format_tab01(ex.run_tab01(**kw)), None)),
    "tab2": ("Elvis vs vRIO rack prices",
             lambda q, **kw: (ex.format_tab02(ex.run_tab02(**kw)), None)),
    "fig3": ("SSD consolidation price ratios",
             lambda q, **kw: (ex.format_fig03(ex.run_fig03(**kw)), None)),
    "tab3": ("per request-response virtualization events",
             lambda q, **kw: (ex.format_tab03(ex.run_tab03(**kw)), None)),
    "fig5": ("ApacheBench throughput, all five models", _fig05),
    "fig7": ("netperf RR latency vs number of VMs", _fig07),
    "fig8": ("vRIO latency gap and IOhost contention",
             lambda q, **kw: (ex.format_fig08(ex.run_fig08(
                 vm_counts=(1, 4, 7) if q else range(1, 8),
                 run_ns=_quick_ns(q), **kw)), None)),
    "tab4": ("tail latency percentiles",
             lambda q, **kw: (ex.format_tab04(ex.run_tab04(
                 run_ns=ms(150) if q else ms(400), **kw)), None)),
    "fig9": ("netperf 64B stream throughput", _fig09),
    "fig10": ("per-packet processing cycles",
              lambda q, **kw: (ex.format_fig10(
                  ex.run_fig10(_quick_ns(q), **kw)), None)),
    "fig11": ("equal-core throughput comparison",
              lambda q, **kw: (ex.format_fig11(
                  ex.run_fig11(_quick_ns(q), **kw)), None)),
    "fig12": ("memcached + Apache macrobenchmarks",
              lambda q, **kw: (ex.format_fig12(ex.run_fig12(
                  vm_counts=(1, 4, 7) if q else range(1, 8),
                  run_ns=_quick_ns(q), **kw)), None)),
    "fig13": ("IOhost scalability (4 VMhosts)", _fig13),
    "fig14": ("filebench on a remote ramdisk",
              lambda q, **kw: (ex.format_fig14(ex.run_fig14(
                  vm_counts=(1, 4, 7) if q else range(1, 8),
                  run_ns=_quick_ns(q), **kw)), None)),
    "fig14ssd": ("the SATA-SSD variant of fig14",
                 lambda q, **kw: (ex.format_fig14_ssd(ex.run_fig14_ssd(
                     vm_counts=(1, 4), run_ns=ms(50), **kw)), None)),
    "fig15": ("sidecore utilization under consolidation",
              lambda q, **kw: (ex.format_fig15(
                  ex.run_fig15(ms(50), **kw)), None)),
    "fig16a": ("consolidation tradeoff 2=>1",
               lambda q, **kw: (ex.format_fig16a(
                   ex.run_fig16a(ms(40), **kw)), None)),
    "fig16b": ("load imbalance 2=>2 with AES",
               lambda q, **kw: (ex.format_fig16b(
                   ex.run_fig16b(ms(40), **kw)), None)),
    "energy": ("mwait vs polling sidecores (extension)",
               lambda q, **kw: (ex.format_energy(ex.run_energy(
                   vm_counts=(1, 4, 7), run_ns=_quick_ns(q), **kw)), None)),
    "dc_scale": ("multi-rack fabric under open-loop load (extension)",
                 _dc_scale),
}

# Artifacts whose run_* functions take a ``models=`` registry filter, so
# ``repro run FIG --models a,b,c`` can restrict the cast.  The remaining
# artifacts have fixed casts (price models, vRIO-only topologies, the
# vrio-vs-optimum latency-gap study, ...).
MODEL_FILTERABLE = frozenset((
    "tab3", "fig5", "fig7", "tab4", "fig9", "fig10", "fig12",
    "fig14", "fig14ssd"))


def _jobs_arg(value: str) -> Union[int, str]:
    """``--jobs`` accepts a positive integer or ``auto`` (= all cores)."""
    if value == "auto":
        return "auto"
    try:
        count = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"jobs must be a positive integer or 'auto': {value!r}")
    if count < 1:
        raise argparse.ArgumentTypeError(f"jobs must be >= 1: {value!r}")
    return count


def _add_sweep_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=_jobs_arg, default=1, metavar="N",
                        help="worker processes for sweep points (an "
                             "integer or 'auto' for all cores; results "
                             "are identical at any value)")
    parser.add_argument("--no-cache", action="store_true",
                        help="recompute every sweep point instead of "
                             "replaying unchanged ones from the cache")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="result cache location (default: "
                             "$REPRO_CACHE_DIR or ./.repro_cache)")


def _make_cache(args) -> Optional[SweepCache]:
    if args.no_cache:
        return None
    return SweepCache(args.cache_dir)

def _trace_one_request() -> None:
    """Run one request-response through vRIO with tracing and print the
    lifecycle of both messages (request in, response out)."""
    from .cluster import TestbedSpec, build_testbed
    from .sim import Tracer

    testbed = build_testbed(TestbedSpec(model="vrio"))
    tracer = Tracer(testbed.env)
    testbed.model.tracer = tracer
    port, client = testbed.ports[0], testbed.clients[0]
    responses = {}

    def serve(message):
        responses["response"] = port.send(message.src, 128)

    port.receive_handler = serve
    client.receive_handler = lambda m: None
    request = client.send(port.mac, 64)
    testbed.env.run(until=ms(5))
    print("request (load generator -> IOhost -> VM):")
    print(tracer.format_trace(request.message_id))
    if "response" in responses:
        print("\nresponse (VM -> IOhost -> load generator):")
        print(tracer.format_trace(responses["response"].message_id))


def _telemetry_smoke(name: str, seed: int) -> Optional[str]:
    """Re-run ``name`` under a telemetry session and validate the outputs.

    Returns None on success, or a short description of what failed.
    Asserts the metrics dump is non-empty and schema-valid and the Chrome
    trace export round-trips as valid ``trace_event`` JSON.
    """
    from .telemetry import (
        TelemetrySession,
        validate_chrome_trace,
        validate_metrics,
    )
    from .testing import run_scenario

    with TelemetrySession() as session:
        result = run_scenario(name, seed=seed)
    telemetry = session.for_testbed(result.testbed)
    if telemetry is None:
        return "testbed was not bound to the telemetry session"
    try:
        validate_metrics(telemetry.snapshot())
        validate_chrome_trace(telemetry.chrome_trace())
    except ValueError as exc:
        return str(exc)
    return None


def _verify_point(params: dict) -> dict:
    """Run one scenario's determinism + invariant audit (sweep-safe).

    Returns a JSON-serializable digest: the determinism verdict, the
    invariant violations as strings, the metrics dict for golden
    comparison in the parent, and the optional telemetry verdict.
    """
    from .testing import check_deterministic, run_scenario, verify_testbed

    name, seed = params["scenario"], params["seed"]
    out: dict = {"det": "ok", "det_problems": []}
    try:
        results = check_deterministic(name, seed=seed)
    except AssertionError as exc:
        # Still audit the single run we can get.
        results = [run_scenario(name, seed=seed)]
        out["det"] = "DIVERGED"
        out["det_problems"].append(str(exc))
    result = results[0]
    out["violations"] = [
        str(v) for v in verify_testbed(result.testbed, result.monitor)]
    out["metrics"] = result.metrics
    if params["telemetry"]:
        out["telemetry_issue"] = _telemetry_smoke(name, seed=seed)
    return out


def _verify_command(args) -> int:
    """Run scenarios through invariants, determinism, and golden checks."""
    from .testing import (
        GoldenMismatch,
        SCENARIOS,
        assert_matches_golden,
        golden_path,
        save_golden,
        scenario_names,
    )

    names = args.scenario or scenario_names()
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        print(f"unknown scenario(s): {', '.join(unknown)}")
        print(f"known: {', '.join(scenario_names())}")
        return 1
    if args.list:
        for name in scenario_names():
            print(f"{name:24s} {SCENARIOS[name].description}")
        return 0

    points = [{"scenario": name, "seed": args.seed,
               "telemetry": bool(args.telemetry)} for name in names]
    outcomes = sweep(points, _verify_point, jobs=args.jobs,
                     artifact="verify", cache=_make_cache(args))

    failures = 0
    header = (f"{'scenario':24s} {'invariants':>10s} {'determinism':>11s} "
              f"{'golden':>8s}")
    if args.telemetry:
        header += f" {'telemetry':>9s}"
    print(header)
    for name, outcome in zip(names, outcomes):
        problems = list(outcome["det_problems"])
        violations = outcome["violations"]
        inv = "ok" if not violations else f"{len(violations)} broken"
        problems.extend(violations)
        metrics = outcome["metrics"]
        if args.update_goldens:
            save_golden(name, metrics)
            golden = "updated"
        elif not golden_path(name).exists():
            golden = "missing"
        else:
            try:
                assert_matches_golden(name, metrics)
                golden = "ok"
            except GoldenMismatch as exc:
                golden = "MISMATCH"
                problems.append(str(exc))
        line = f"{name:24s} {inv:>10s} {outcome['det']:>11s} {golden:>8s}"
        if args.telemetry:
            issue = outcome.get("telemetry_issue")
            if issue is None:
                line += f" {'ok':>9s}"
            else:
                line += f" {'INVALID':>9s}"
                problems.append(f"telemetry: {issue}")
        print(line)
        if problems:
            failures += 1
            for problem in problems:
                for line in str(problem).splitlines():
                    print(f"    {line}")
    if args.faults:
        issue = _fault_smoke_line()
        if issue is not None:
            failures += 1
    if args.lint:
        issue = _lint_smoke_line()
        if issue is not None:
            failures += 1
    if args.engine:
        issue = _engine_smoke_line()
        if issue is not None:
            failures += 1
    if args.observe:
        issue = _observe_smoke_line()
        if issue is not None:
            failures += 1
    if failures:
        print(f"\n{failures} of {len(names)} scenario(s) FAILED")
        return 1
    print(f"\nall {len(names)} scenario(s) verified")
    return 0


def _fault_smoke_line() -> Optional[str]:
    """Run the fault-campaign smoke and print its verdict row."""
    from .faults import run_fault_smoke

    issue = run_fault_smoke(seed=0)
    if issue is None:
        print(f"{'faults':24s} {'ok':>10s}")
    else:
        print(f"{'faults':24s} {'FAILED':>10s}")
        print(f"    {issue}")
    return issue


def _lint_smoke_line() -> Optional[str]:
    """Run simlint (per-file + project rules) and print its verdict row."""
    from .lint import lint_tree

    result = lint_tree(project=True)
    if result.clean:
        print(f"{'lint':24s} {'ok':>10s}")
        return None
    print(f"{'lint':24s} {'FAILED':>10s}")
    for finding in result.all_findings():
        print(f"    {finding.format()}")
    return f"{len(result.all_findings())} lint finding(s)"


def _engine_smoke_line() -> Optional[str]:
    """Run the engine-scheduler smoke and print its verdict row."""
    from .bench_engine import run_engine_smoke

    issue = run_engine_smoke()
    if issue is None:
        print(f"{'engine':24s} {'ok':>10s}")
    else:
        print(f"{'engine':24s} {'FAILED':>10s}")
        print(f"    {issue}")
    return issue


def _observe_smoke(name: str = "rr_vrio", seed: int = 0) -> Optional[str]:
    """Validate the windowed-telemetry stack on one scenario.

    Checks that binding a timeline leaves the run's metrics untouched
    (reference-registration: observation must not perturb the schedule),
    that the timeline payload passes its schema validator, that every
    trace's stage decomposition tiles exactly to its end-to-end latency,
    and that the speedscope export is structurally valid.
    """
    from .telemetry import (
        DEFAULT_WINDOW_NS,
        TelemetrySession,
        to_speedscope,
        validate_speedscope,
        validate_timeline,
    )
    from .testing import run_scenario

    reference = run_scenario(name, seed=seed)
    with TelemetrySession(timeline_width_ns=DEFAULT_WINDOW_NS) as session:
        observed = run_scenario(name, seed=seed)
    if observed.metrics != reference.metrics:
        return "timeline-bound run diverged from the reference metrics"
    telemetry = session.for_testbed(observed.testbed)
    timeline = telemetry.timeline
    if not timeline.windows:
        return "timeline closed no windows"
    try:
        validate_timeline(timeline.to_payload())
    except ValueError as exc:
        return f"timeline payload invalid: {exc}"
    attribution = telemetry.attribution()
    if not attribution.traces:
        return "no traces were attributed"
    for trace in attribution.traces:
        total = sum(duration for _stage, duration in trace.stages)
        if total != trace.end_to_end:
            return (f"stage decomposition does not tile trace "
                    f"{trace.trace_id}: {total} != {trace.end_to_end}")
    try:
        validate_speedscope(to_speedscope(attribution, name=name))
        validate_speedscope(to_speedscope(observed.testbed, name=name))
    except ValueError as exc:
        return f"speedscope export invalid: {exc}"
    return None


def _observe_smoke_line() -> Optional[str]:
    """Run the windowed-telemetry smoke and print its verdict row."""
    issue = _observe_smoke()
    if issue is None:
        print(f"{'observe':24s} {'ok':>10s}")
    else:
        print(f"{'observe':24s} {'FAILED':>10s}")
        print(f"    {issue}")
    return issue


def _faults_command(args) -> int:
    """Run fault campaigns and print their recovery reports."""
    from .faults import (
        CAMPAIGNS,
        DEFAULT_CAMPAIGN,
        campaign_names,
        format_report,
        run_campaigns,
    )

    if args.list:
        for name in campaign_names():
            print(f"{name:16s} {CAMPAIGNS[name].description}")
        return 0
    names = args.campaigns or (
        campaign_names() if args.all else [DEFAULT_CAMPAIGN])
    unknown = [n for n in names if n not in CAMPAIGNS]
    if unknown:
        print(f"unknown campaign(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(campaign_names())}", file=sys.stderr)
        return 2
    reports = run_campaigns(names, seed=args.seed, jobs=args.jobs,
                            cache=_make_cache(args))
    unrecovered = 0
    for i, report in enumerate(reports):
        if i:
            print()
        print(format_report(report))
        unrecovered += report["unrecovered"]
    if unrecovered:
        print(f"\n{unrecovered} fault(s) went UNRECOVERED")
        return 1
    return 0


def _bench_command(args) -> int:
    """Time artifact regeneration: serial cold, parallel cold, warm cache.

    Writes ``BENCH_sweep.json`` (or ``--out``) with per-artifact wall
    times and speedups — the repo's performance trajectory record.
    """
    import json
    import os
    import tempfile
    import time

    if args.engine:
        from .bench_engine import DEFAULT_OUT, main as engine_main
        if args.artifacts:
            print("--engine takes no artifact arguments", file=sys.stderr)
            return 2
        engine_argv = ["--out", args.out or DEFAULT_OUT]
        if args.quick:
            engine_argv.append("--quick")
        if args.check:
            engine_argv.append("--check")
        return engine_main(engine_argv)
    if args.check:
        print("--check requires --engine", file=sys.stderr)
        return 2
    if args.out is None:
        args.out = "BENCH_sweep.json"

    names = args.artifacts or sorted(ARTIFACTS)
    unknown = [n for n in names if n not in ARTIFACTS]
    if unknown:
        print(f"unknown artifact(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"valid artifacts: {', '.join(sorted(ARTIFACTS))}",
              file=sys.stderr)
        return 2

    results = []
    for name in names:
        runner = ARTIFACTS[name][1]
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            cold_cache = SweepCache(tmp)
            t0 = time.perf_counter()
            runner(args.quick, jobs=1, cache=cold_cache)
            serial_s = time.perf_counter() - t0

            t0 = time.perf_counter()
            runner(args.quick, jobs=args.jobs, cache=None)
            parallel_s = time.perf_counter() - t0

            t0 = time.perf_counter()
            runner(args.quick, jobs=1, cache=cold_cache)
            warm_s = time.perf_counter() - t0
        row = {
            "artifact": name,
            "serial_s": round(serial_s, 4),
            "parallel_s": round(parallel_s, 4),
            "warm_cache_s": round(warm_s, 4),
            "speedup_parallel": round(serial_s / parallel_s, 2),
            "speedup_warm_cache": round(serial_s / warm_s, 2),
        }
        results.append(row)
        print(f"{name:10s} serial {serial_s:7.2f}s  "
              f"parallel({args.jobs}) {parallel_s:7.2f}s  "
              f"warm cache {warm_s:7.3f}s  "
              f"({row['speedup_warm_cache']:.0f}x)")

    payload = {
        "benchmark": "sweep-executor",
        "quick": bool(args.quick),
        "jobs": args.jobs,
        "cpu_count": os.cpu_count(),
        "results": results,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\ntimings written to {args.out}")
    return 0


# Figure artifacts accepted by `repro observe` as aliases for the
# scenario reproducing that figure's shape.
_OBSERVE_ALIASES = {
    "fig7": "rr_vrio",
    "fig9": "stream_vrio",
    "fig12": "apache_vrio",
    "fig13": "scalability_vrio",
    "fig14": "filebench_vrio",
}


def _observe_slo_spec(args, scenario: str, width_ns: int):
    """Build the SloSpec requested by the --slo family of flags.

    With no clause flags the probe defaults to a liveness objective
    (``max_downtime_ns=0``): any window with zero workload throughput is
    a violation.
    """
    from .telemetry import SloSpec

    p99 = args.slo_p99_us * 1000.0 if args.slo_p99_us is not None else None
    floor = args.slo_floor
    downtime = (int(args.slo_downtime_us * 1000)
                if args.slo_downtime_us is not None else None)
    if p99 is None and floor is None and downtime is None:
        downtime = 0
    return SloSpec(name=f"{scenario}_slo",
                   p99_latency_ceiling_ns=p99,
                   throughput_floor_per_s=floor,
                   max_downtime_ns=downtime,
                   latency_metric="workload.",
                   throughput_metric="workload.",
                   window_ns=width_ns)


def _observe_command(args) -> int:
    """Run one scenario under full telemetry and report what it did."""
    import json

    from .telemetry import (
        DEFAULT_WINDOW_NS,
        TelemetrySession,
        render_dashboard,
        to_chrome_trace_json,
        to_folded_stacks,
        to_metrics_csv,
        to_metrics_json,
        to_speedscope,
        to_timeline_csv,
        to_timeline_json,
        validate_speedscope,
        validate_timeline,
    )
    from .testing import SCENARIOS, run_scenario, scenario_names

    name = _OBSERVE_ALIASES.get(args.scenario, args.scenario)
    if name not in SCENARIOS:
        print(f"unknown scenario: {args.scenario}", file=sys.stderr)
        print(f"valid scenarios: {', '.join(scenario_names())}",
              file=sys.stderr)
        print("figure aliases: "
              + ", ".join(f"{k}={v}"
                          for k, v in sorted(_OBSERVE_ALIASES.items())),
              file=sys.stderr)
        return 2

    width_ns = args.window or DEFAULT_WINDOW_NS
    want_slo = (args.slo or args.slo_p99_us is not None
                or args.slo_floor is not None
                or args.slo_downtime_us is not None)
    want_timeline = (args.timeline or want_slo
                     or args.timeline_json or args.timeline_csv)
    slos = [_observe_slo_spec(args, name, width_ns)] if want_slo else []
    with TelemetrySession(
            timeline_width_ns=width_ns if want_timeline else None,
            slos=slos) as session:
        result = run_scenario(name, seed=args.seed)
    telemetry = session.for_testbed(result.testbed)
    print(telemetry.report(title=f"{name} (seed {args.seed})"))

    timeline = telemetry.timeline
    if timeline is not None:
        print()
        print(render_dashboard(timeline))
    for probe in telemetry.probes:
        print()
        spec = probe.spec
        if probe.violations:
            print(f"SLO {spec.name}: {len(probe.violations)} violation(s) "
                  f"in {probe.windows_evaluated} window(s)")
            for v in probe.violations[:8]:
                print(f"  {v.kind:12s} window #{v.window_index} "
                      f"[{v.start_ns}-{v.end_ns})ns observed "
                      f"{v.observed:.6g} vs limit {v.limit:.6g}")
            extra = len(probe.violations) - 8
            if extra > 0:
                print(f"  ... {extra} more")
        else:
            print(f"SLO {spec.name}: met in all "
                  f"{probe.windows_evaluated} window(s)")
    if args.attribution:
        attribution = telemetry.attribution()
        print()
        print(attribution.format())

    trace_path = args.trace or f"{name}.trace.json"
    with open(trace_path, "w") as fh:
        fh.write(to_chrome_trace_json(telemetry.tracer))
    print(f"\nchrome trace written to {trace_path} "
          f"(load via chrome://tracing or https://ui.perfetto.dev)")
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(to_metrics_json(telemetry.snapshot()))
        print(f"metrics JSON written to {args.json}")
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(to_metrics_csv(telemetry.snapshot()))
        print(f"metrics CSV written to {args.csv}")
    if args.timeline_json:
        validate_timeline(timeline.to_payload())
        with open(args.timeline_json, "w") as fh:
            fh.write(to_timeline_json(timeline))
        print(f"timeline JSON written to {args.timeline_json} "
              f"({len(timeline.windows)} windows, schema-validated)")
    if args.timeline_csv:
        with open(args.timeline_csv, "w") as fh:
            fh.write(to_timeline_csv(timeline))
        print(f"timeline CSV written to {args.timeline_csv}")
    if args.flamegraph:
        attribution = telemetry.attribution()
        outputs = [
            (f"{args.flamegraph}.folded", attribution.to_folded()),
            (f"{args.flamegraph}.cycles.folded",
             to_folded_stacks(result.testbed)),
        ]
        for source, suffix in ((attribution, "speedscope.json"),
                               (result.testbed, "cycles.speedscope.json")):
            document = to_speedscope(source, name=name)
            validate_speedscope(document)
            outputs.append((f"{args.flamegraph}.{suffix}",
                            json.dumps(document, indent=2, sort_keys=True)
                            + "\n"))
        for path, text in outputs:
            with open(path, "w") as fh:
                fh.write(text)
            print(f"flamegraph written to {path}")
    return 0


def _model_flags(info) -> str:
    """One-line capability summary for a registered model."""
    caps = info.capabilities
    flags = []
    if caps.net:
        flags.append("net")
    if caps.block:
        flags.append("block")
    if caps.polling:
        flags.append("polling")
    flags.append("exitless" if caps.exitless else "interrupt-driven")
    if caps.ablation:
        flags.append("ablation")
    flags.append("topologies=" + ",".join(caps.topologies))
    return " ".join(flags)


def _format_model_help() -> str:
    """Registry-generated replacement for the old hand-written model help."""
    from .iomodels.registry import all_models
    import textwrap

    infos = all_models()
    lines = [f"The {len(infos)} registered I/O model configurations "
             f"(paper §2 + ROADMAP item 3; see DESIGN.md §14):", ""]
    for info in infos:
        body = textwrap.wrap(info.description, width=66)
        lines.append(f"{info.name:12s} {body[0]}")
        for continuation in body[1:]:
            lines.append(f"{'':12s} {continuation}")
        lines.append(f"{'':12s} [{_model_flags(info)}]")
    return "\n".join(lines)


def _models_command(args) -> int:
    from .iomodels.registry import all_models, model_names

    if args.list:
        for name in model_names():
            print(name)
        return 0
    if args.json:
        import json
        payload = [{"name": info.name,
                    "description": info.description,
                    "net": info.capabilities.net,
                    "block": info.capabilities.block,
                    "polling": info.capabilities.polling,
                    "exitless": info.capabilities.exitless,
                    "ablation": info.capabilities.ablation,
                    "topologies": list(info.capabilities.topologies)}
                   for info in all_models()]
        print(json.dumps(payload, indent=2))
        return 0
    print(_format_model_help())
    return 0


def _parse_models_filter(spec: str) -> Union[Tuple[str, ...], int]:
    """Parse/validate a ``--models a,b,c`` value; 2 on a usage error."""
    from .iomodels.registry import model_names

    selected = tuple(m.strip() for m in spec.split(",") if m.strip())
    if not selected:
        print("--models needs at least one model id", file=sys.stderr)
        print(f"valid models: {', '.join(model_names())}", file=sys.stderr)
        return 2
    unknown = [m for m in selected if m not in model_names()]
    if unknown:
        print(f"unknown model{'s' if len(unknown) > 1 else ''}: "
              f"{', '.join(unknown)}", file=sys.stderr)
        print(f"valid models: {', '.join(model_names())}", file=sys.stderr)
        return 2
    return selected


def main(argv: Optional[list] = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Output piped into head/less that exited early: not an error.
        return 0


def _main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="vRIO (ASPLOS'16) reproduction toolkit")
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list reproducible artifacts")
    models_parser = sub.add_parser(
        "models", help="describe the registered I/O models")
    models_parser.add_argument("--list", action="store_true",
                               help="print just the model ids, one per line")
    models_parser.add_argument("--json", action="store_true",
                               help="dump the registry (names, descriptions, "
                                    "capability flags) as JSON")
    sub.add_parser("costs", help="dump the calibrated cost constants")
    sub.add_parser("trace", help="trace one request-response through vRIO")
    run_parser = sub.add_parser(
        "run", help="regenerate one artifact (or 'all')")
    run_parser.add_argument("artifact", metavar="ARTIFACT",
                            help="artifact id (see 'repro list'), or "
                                 "'all' for every artifact")
    run_parser.add_argument("--quick", action="store_true",
                            help="coarser sweep, shorter runs")
    run_parser.add_argument("--chart", action="store_true",
                            help="also render an ASCII chart (series "
                                 "figures only)")
    run_parser.add_argument("--models", metavar="A,B,...", default=None,
                            help="restrict a model-comparison artifact to "
                                 "these registered model ids (comma-"
                                 "separated; see 'repro models --list')")
    _add_sweep_flags(run_parser)
    verify_parser = sub.add_parser(
        "verify", help="run the verification harness")
    _add_sweep_flags(verify_parser)
    verify_parser.add_argument("--scenario", action="append", default=None,
                               metavar="NAME",
                               help="verify only this scenario (repeatable)")
    verify_parser.add_argument("--seed", type=int, default=0,
                               help="master RNG seed for the runs")
    verify_parser.add_argument("--update-goldens", action="store_true",
                               help="rewrite the golden fingerprints "
                                    "instead of comparing")
    verify_parser.add_argument("--list", action="store_true",
                               help="list scenarios and exit")
    verify_parser.add_argument("--telemetry", action="store_true",
                               help="also re-run each scenario under a "
                                    "telemetry session and validate its "
                                    "metrics + Chrome-trace exports")
    verify_parser.add_argument("--faults", action="store_true",
                               help="also run the fault-campaign smoke: "
                                    "the IOhost-crash campaign must detect, "
                                    "fail over, and reproduce byte-"
                                    "identically")
    verify_parser.add_argument("--lint", action="store_true",
                               help="also run the simlint static-analysis "
                                    "pass over the source tree")
    verify_parser.add_argument("--engine", action="store_true",
                               help="also run the engine-scheduler smoke: "
                                    "the calendar queue must beat the legacy "
                                    "heap on the storm shape and the "
                                    "committed BENCH_engine.json must be "
                                    "schema-valid")
    verify_parser.add_argument("--observe", action="store_true",
                               help="also run the windowed-telemetry smoke: "
                                    "timeline binding must not perturb the "
                                    "run, the timeline/speedscope exports "
                                    "must be schema-valid, and stage "
                                    "attribution must tile each trace's "
                                    "end-to-end latency exactly")
    lint_parser = sub.add_parser(
        "lint", help="run simlint static analysis over the source tree")
    from .lint import add_lint_arguments
    add_lint_arguments(lint_parser)
    faults_parser = sub.add_parser(
        "faults", help="run fault-injection campaigns")
    faults_parser.add_argument("campaigns", metavar="CAMPAIGN", nargs="*",
                               help="campaign names (default: "
                                    "iohost_crash; see --list)")
    faults_parser.add_argument("--all", action="store_true",
                               help="run every stock campaign")
    faults_parser.add_argument("--list", action="store_true",
                               help="list campaigns and exit")
    faults_parser.add_argument("--seed", type=int, default=0,
                               help="master RNG seed (reports are byte-"
                                    "identical per seed)")
    _add_sweep_flags(faults_parser)
    observe_parser = sub.add_parser(
        "observe", help="run one scenario under full telemetry")
    observe_parser.add_argument("scenario", metavar="SCENARIO",
                                help="scenario name (see verify --list) or "
                                     "a figure alias (fig7, fig9, fig12, "
                                     "fig13, fig14)")
    observe_parser.add_argument("--seed", type=int, default=0,
                                help="master RNG seed for the run")
    observe_parser.add_argument("--trace", metavar="PATH", default=None,
                                help="Chrome trace output path "
                                     "(default: <scenario>.trace.json)")
    observe_parser.add_argument("--json", metavar="FILE", default=None,
                                help="also dump the metrics snapshot as JSON")
    observe_parser.add_argument("--csv", metavar="FILE", default=None,
                                help="also dump the metrics snapshot as CSV")
    observe_parser.add_argument("--timeline", action="store_true",
                                help="bind a windowed timeline and print the "
                                     "per-window sparkline dashboard")
    observe_parser.add_argument("--window", type=int, default=None,
                                metavar="NS",
                                help="timeline window width in simulated ns "
                                     "(default: 500us)")
    observe_parser.add_argument("--timeline-json", metavar="FILE",
                                default=None,
                                help="dump the windowed timeline as JSON "
                                     "(schema repro-timeline/v1)")
    observe_parser.add_argument("--timeline-csv", metavar="FILE",
                                default=None,
                                help="dump the windowed timeline as "
                                     "long-form CSV")
    observe_parser.add_argument("--attribution", action="store_true",
                                help="print the queueing-vs-service latency "
                                     "attribution per pipeline stage and "
                                     "the stage dominating the p99 tail")
    observe_parser.add_argument("--flamegraph", metavar="BASE", default=None,
                                help="write BASE.folded / BASE.speedscope"
                                     ".json (latency attribution) and "
                                     "BASE.cycles.* (simulated cycles per "
                                     "component) flamegraph files")
    observe_parser.add_argument("--slo", action="store_true",
                                help="evaluate an SLO probe per window "
                                     "(default clause: no zero-throughput "
                                     "window allowed)")
    observe_parser.add_argument("--slo-p99-us", type=float, default=None,
                                metavar="US",
                                help="SLO clause: workload p99 latency "
                                     "ceiling, in microseconds")
    observe_parser.add_argument("--slo-floor", type=float, default=None,
                                metavar="OPS",
                                help="SLO clause: workload throughput floor, "
                                     "ops/sec per window")
    observe_parser.add_argument("--slo-downtime-us", type=float, default=None,
                                metavar="US",
                                help="SLO clause: max tolerated consecutive "
                                     "zero-throughput time, in microseconds")
    bench_parser = sub.add_parser(
        "bench", help="time artifact regeneration (serial/parallel/cached)")
    bench_parser.add_argument("artifacts", metavar="ARTIFACT", nargs="*",
                              help="artifacts to time (default: all)")
    bench_parser.add_argument("--quick", action="store_true",
                              help="coarser sweeps, shorter runs")
    bench_parser.add_argument("--jobs", type=_jobs_arg, default="auto",
                              metavar="N",
                              help="worker processes for the parallel pass "
                                   "(default: auto)")
    bench_parser.add_argument("--out", metavar="PATH",
                              default=None,
                              help="output JSON path (default: "
                                   "BENCH_sweep.json, or BENCH_engine.json "
                                   "with --engine)")
    bench_parser.add_argument("--engine", action="store_true",
                              help="benchmark the event-scheduler hot path "
                                   "(calendar queue vs legacy heap) instead "
                                   "of the sweep executor")
    bench_parser.add_argument("--check", action="store_true",
                              help="with --engine: compare against the "
                                   "committed baseline and fail on a >10%% "
                                   "events/sec regression instead of "
                                   "rewriting it")
    args = parser.parse_args(argv)

    if args.command == "list":
        for name in sorted(ARTIFACTS):
            print(f"{name:10s} {ARTIFACTS[name][0]}")
        return 0
    if args.command == "models":
        return _models_command(args)
    if args.command == "costs":
        from dataclasses import fields
        for f in fields(DEFAULT_COSTS):
            print(f"{f.name:40s} {getattr(DEFAULT_COSTS, f.name)}")
        return 0
    if args.command == "trace":
        _trace_one_request()
        return 0
    if args.command == "verify":
        return _verify_command(args)
    if args.command == "lint":
        from .lint import run_lint
        return run_lint(args)
    if args.command == "faults":
        return _faults_command(args)
    if args.command == "observe":
        return _observe_command(args)
    if args.command == "bench":
        return _bench_command(args)
    if args.command == "run":
        if args.artifact != "all" and args.artifact not in ARTIFACTS:
            print(f"unknown artifact: {args.artifact}", file=sys.stderr)
            print(f"valid artifacts: all, {', '.join(sorted(ARTIFACTS))}",
                  file=sys.stderr)
            return 2
        models = None
        if args.models is not None:
            models = _parse_models_filter(args.models)
            if isinstance(models, int):
                return models
            if args.artifact != "all" \
                    and args.artifact not in MODEL_FILTERABLE:
                print(f"{args.artifact} does not take a --models filter",
                      file=sys.stderr)
                print(f"filterable artifacts: "
                      f"{', '.join(sorted(MODEL_FILTERABLE))}",
                      file=sys.stderr)
                return 2
        kw = {"jobs": args.jobs, "cache": _make_cache(args)}
        names = sorted(ARTIFACTS) if args.artifact == "all" \
            else [args.artifact]
        for i, name in enumerate(names):
            _description, runner = ARTIFACTS[name]
            if models is not None and name in MODEL_FILTERABLE:
                text, points = runner(args.quick, models=models, **kw)
            else:
                text, points = runner(args.quick, **kw)
            if args.artifact == "all":
                if i:
                    print()
                print(f"== {name} ==")
            print(text)
            if args.chart:
                if points is None:
                    print("\n(no chartable series for this artifact)")
                else:
                    series = {s: [(float(n), v) for n, v in values]
                              for s, values in series_by_model(points).items()}
                    print()
                    print(ascii_chart(series, title=name))
        return 0
    parser.print_help()
    return 1


if __name__ == "__main__":
    sys.exit(main())
