"""Engine hot-path benchmark: scheduler events/sec and artifact wall time.

Measures the calendar-queue scheduler against the legacy heap scheduler
(``Environment(scheduler="heap")``, which reproduces the pre-overhaul
engine byte-for-byte) on three kinds of rows and writes the results to
``BENCH_engine.json``:

* **Poll-batch completion storms** — 64 pollers that each complete a
  batch of zero-delay descriptor hand-offs per tick and then re-arm,
  running over a deep population of far-future background timers.  This
  is the shape of the paper's exit-less polling dispatcher completing
  virtio descriptor batches (rings are 128-256 deep), and it is where
  the calendar queue's O(1) zero-delay lane pays off most.  The batch-32
  storm is the headline row for the >=5x acceptance criterion.
* **Timeline-bound storm** — the batch-32 storm re-run with a live
  windowed :class:`~repro.telemetry.timeline.Timeline` attached as an
  engine advance monitor, reporting events/sec bound vs unbound and the
  resulting overhead fraction: the cost of ``repro observe --timeline``.
* **Captured-profile replays** — lanes replaying the *measured*
  step-time profile of the fig12 (``apache_vrio``) and fig13
  (``scalability_vrio``) scenarios: for each run-length-encoded
  ``(gap, burst)`` pair, ``burst`` zero-delay hand-offs followed by a
  ``gap``-ns timer.  These rows are honest about the mixed schedule the
  real artifacts produce (~58% zero-delay / ~42% short timers) and show
  a smaller but real speedup.
* **Artifact wall times** — end-to-end ``run_scenario`` wall-clock for
  the fig12/fig13 scenario paths under both schedulers, asserting the
  metrics dictionaries are identical (the differential guarantee).
* **Whole-tree lint** — ``repro lint --project`` over the full tree,
  cold (fresh symbol cache) and warm (populated cache): wall times,
  finding count, and the cold/warm ratio the incremental cache buys
  (``--check`` requires >=5x and no new findings).

``--check`` compares a fresh measurement against a committed baseline
and fails on a >10% events/sec regression in any comparable calendar
row.  ``--quick`` shrinks event counts and background depth for CI
smoke runs; quick numbers are not meant to be committed.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .sim import Environment

__all__ = [
    "run_engine_bench",
    "run_engine_smoke",
    "check_regression",
    "validate_payload",
    "write_payload",
    "main",
]

SCHEMA = "repro-bench-engine/v1"
DEFAULT_OUT = "BENCH_engine.json"
HEADLINE_ROW = "completion_storm_b32"
HEADLINE_TARGET = 5.0
REGRESSION_TOLERANCE = 0.10

# Background timers land far beyond the measured window so they load the
# queue without ever firing; the stride spreads them over distinct keys.
_BG_DELAY = 500_000_000
_BG_STRIDE = 37
_RUN_UNTIL = 400_000_000
_STORM_LANES = 64
_REPLAY_LANES = 64
# Window width for the timeline-overhead row: 1 ms keeps window closes
# frequent relative to the storm's ~30 ms of simulated activity.
_BENCH_WINDOW_NS = 1_000_000

_SCHEDULERS = ("heap", "calendar")


def _noop() -> None:
    return None


class _PollLane:
    """One poll dispatch completes a batch of descriptors (zero-delay
    hand-offs), then re-arms itself for the next poll tick."""

    __slots__ = ("env", "left", "batch")

    def __init__(self, env: Environment, left: int, batch: int) -> None:
        self.env = env
        self.left = left
        self.batch = batch

    def __call__(self) -> None:
        left = self.left
        if left <= 0:
            return
        self.left = left - self.batch - 1
        cs = self.env.call_soon
        for _ in range(self.batch):
            cs(_noop)
        cs(self, 1 + (left & 2047))  # next poll tick


class _ProfileLane:
    """Replays one lane of a captured scenario step-time profile.

    ``pattern`` is a run-length encoding of the scenario's consecutive
    step-time deltas: each ``(gap, burst)`` pair means ``burst``
    zero-delay dispatches happened back-to-back, then the clock advanced
    ``gap`` ns.  The lane walks the pattern cyclically from its own
    offset until its event budget is spent.
    """

    __slots__ = ("env", "pattern", "idx", "left")

    def __init__(self, env: Environment, pattern: Sequence[Tuple[int, int]],
                 idx: int, left: int) -> None:
        self.env = env
        self.pattern = pattern
        self.idx = idx
        self.left = left

    def __call__(self) -> None:
        left = self.left
        if left <= 0:
            return
        pattern = self.pattern
        gap, burst = pattern[self.idx]
        idx = self.idx + 1
        self.idx = idx if idx < len(pattern) else 0
        self.left = left - burst - 1
        cs = self.env.call_soon
        for _ in range(burst):
            cs(_noop)
        cs(self, gap)


class _FabricBudget:
    """Shared hop budget for one fabric storm measurement."""

    __slots__ = ("left",)

    def __init__(self, left: int) -> None:
        self.left = left


class _FabricHost:
    """One relay host on a leaf: every received frame is immediately
    re-sent to the next host around the ring, so each hop drives the
    full leaf -> spine -> leaf switch datapath (ingress, MAC lookup,
    batched egress flush, trunk serialization)."""

    __slots__ = ("budget", "endpoint", "mac", "next_mac")

    def __init__(self, budget: _FabricBudget, endpoint, mac,
                 next_mac) -> None:
        self.budget = budget
        self.endpoint = endpoint
        self.mac = mac
        self.next_mac = next_mac

    def __call__(self, frame) -> None:
        from .net.frame import EthernetFrame

        budget = self.budget
        if budget.left <= 0:
            return
        budget.left -= 1
        self.endpoint.transmit(EthernetFrame(
            src=self.mac, dst=self.next_mac, payload=None,
            payload_bytes=64, kind="storm"))


_FABRIC_RACKS = 4
_FABRIC_TOKENS = 256


def _fabric_storm_rate(scheduler: str, hops: int) -> float:
    """Relay-ring storm over a 4-leaf/1-spine fabric (dc_scale shape).

    ``hops`` host-to-host messages, each crossing two leaves and the
    spine; ~256 frames stay in flight so egress batching and the flush
    freelist are continuously exercised.  Rate is hops/sec, not raw
    engine events/sec — comparable release-to-release like every row.
    """
    from .hw.fabric import LeafSpineFabric
    from .hw.link import Link
    from .net.frame import EthernetFrame, MacAddress

    env = Environment(scheduler=scheduler)
    fabric = LeafSpineFabric(env, _FABRIC_RACKS, 1, downlinks_per_leaf=1,
                             downlink_gbps=10.0, name="storm-fabric")
    budget = _FabricBudget(hops)
    macs = [MacAddress(f"storm-h{r}") for r in range(_FABRIC_RACKS)]
    endpoints = []
    for r in range(_FABRIC_RACKS):
        link = Link(env, gbps=10.0, name=f"storm{r}")
        end = fabric.host_port(r, link)
        fabric.learn_host(r, macs[r], link)
        endpoints.append(end)
    for r in range(_FABRIC_RACKS):
        host = _FabricHost(budget, endpoints[r], macs[r],
                           macs[(r + 1) % _FABRIC_RACKS])
        endpoints[r].attach_receiver(host)
    for t in range(_FABRIC_TOKENS):
        r = t % _FABRIC_RACKS
        endpoints[r].transmit(EthernetFrame(
            src=macs[r], dst=macs[(r + 1) % _FABRIC_RACKS], payload=None,
            payload_bytes=64, kind="storm"))
    return hops / _timed_run(env, _RUN_UNTIL)


def _pattern_from_times(times: Sequence[int]) -> List[Tuple[int, int]]:
    """Run-length encode step times into ``(gap ns, zero-delay burst)``."""
    pattern: List[Tuple[int, int]] = []
    gap: Optional[int] = None
    burst = 0
    prev = times[0]
    for t in times[1:]:
        delta = t - prev
        prev = t
        if delta == 0:
            burst += 1
        else:
            if gap is not None:
                pattern.append((gap, burst))
            gap = delta
            burst = 0
    if gap is not None:
        pattern.append((gap, burst))
    return pattern


def _capture_pattern(scenario: str, seed: int = 0) -> List[Tuple[int, int]]:
    """Run ``scenario`` once with step-time capture and RLE the profile."""
    from .testing.invariants import EngineMonitor
    from .testing.scenarios import run_scenario

    EngineMonitor.capture_times = True
    try:
        result = run_scenario(scenario, seed=seed)
    finally:
        EngineMonitor.capture_times = False
    times = result.monitor.times
    if len(times) < 2:
        raise RuntimeError(f"scenario {scenario!r} produced no step profile")
    return _pattern_from_times(times)


def _fill_background(env: Environment, background: int) -> None:
    cs = env.call_soon
    for i in range(background):
        cs(_noop, _BG_DELAY + i * _BG_STRIDE)


def _timed_run(env: Environment, until: int) -> float:
    t0 = time.perf_counter()
    env.run(until=until)
    return time.perf_counter() - t0


def _storm_rate(scheduler: str, events: int, background: int,
                batch: int) -> float:
    env = Environment(scheduler=scheduler)
    _fill_background(env, background)
    per_lane = events // _STORM_LANES
    for i in range(_STORM_LANES):
        env.call_soon(_PollLane(env, per_lane, batch), 1 + i)
    return events / _timed_run(env, _RUN_UNTIL)


def _timeline_storm_rate(scheduler: str, events: int, background: int,
                         batch: int) -> float:
    """The batch-``batch`` storm with a live windowed timeline bound.

    Binding flips the engine onto the monitored run loop and pays one
    window close per ``_BENCH_WINDOW_NS`` of simulated time — the real
    cost of ``repro observe --timeline`` relative to an unbound run.
    """
    from .telemetry import Timeline

    env = Environment(scheduler=scheduler)
    timeline = Timeline(_BENCH_WINDOW_NS)
    progress = [0.0]
    timeline.watch_rate("storm_events", lambda: progress[0])
    env.add_monitor(timeline)
    _fill_background(env, background)
    per_lane = events // _STORM_LANES
    for i in range(_STORM_LANES):
        env.call_soon(_PollLane(env, per_lane, batch), 1 + i)
    rate = events / _timed_run(env, _RUN_UNTIL)
    timeline.flush(env.now)
    return rate


def _replay_rate(scheduler: str, pattern: Sequence[Tuple[int, int]],
                 events: int, background: int) -> float:
    env = Environment(scheduler=scheduler)
    _fill_background(env, background)
    per_lane = events // _REPLAY_LANES
    step = max(1, len(pattern) // _REPLAY_LANES)
    for i in range(_REPLAY_LANES):
        lane = _ProfileLane(env, pattern, (i * step) % len(pattern), per_lane)
        env.call_soon(lane, 1 + i)
    return events / _timed_run(env, _RUN_UNTIL)


def _pattern_zero_frac(pattern: Sequence[Tuple[int, int]]) -> float:
    zeros = sum(burst for _gap, burst in pattern)
    total = sum(burst + 1 for _gap, burst in pattern)
    return zeros / total if total else 0.0


def _row(name: str, mode: str, path: str, rate_fn: Callable[[str], float],
         *, events: int, background: int, lanes: int,
         batch: Optional[int] = None, note: str = "",
         zero_frac: Optional[float] = None) -> Dict[str, Any]:
    rates = {sched: rate_fn(sched) for sched in _SCHEDULERS}
    row: Dict[str, Any] = {
        "name": name,
        "mode": mode,
        "path": path,
        "lanes": lanes,
        "events": events,
        "background": background,
        "batch": batch,
        "events_per_sec": {k: round(v, 1) for k, v in rates.items()},
        "speedup": round(rates["calendar"] / rates["heap"], 3),
    }
    if zero_frac is not None:
        row["zero_frac"] = round(zero_frac, 4)
    if note:
        row["note"] = note
    return row


def _artifact_row(scenario: str, path: str, seed: int = 0) -> Dict[str, Any]:
    """Monitored scenario run: wall time + scheduler metrics identity."""
    from .sim import scheduler_override
    from .testing.scenarios import run_scenario

    walls: Dict[str, float] = {}
    metrics: Dict[str, Dict[str, float]] = {}
    for sched in _SCHEDULERS:
        with scheduler_override(sched):
            t0 = time.perf_counter()
            result = run_scenario(scenario, seed=seed)
            walls[sched] = time.perf_counter() - t0
        metrics[sched] = dict(result.metrics)
    return {
        "scenario": scenario,
        "path": path,
        "kind": "monitored-scenario",
        "wall_s": {k: round(v, 4) for k, v in walls.items()},
        "speedup": round(walls["heap"] / walls["calendar"], 3),
        "identical_metrics": metrics["heap"] == metrics["calendar"],
        "sim_steps": int(metrics["calendar"].get("sim.steps", 0)),
    }


def _point_row(name: str, path: str, point_fn: Callable[[dict], Any],
               params: dict) -> Dict[str, Any]:
    """One real (unmonitored) figure sweep point under both schedulers.

    This is what ``repro run fig12``/``fig13`` actually executes per
    cell — no monitors attached, so it exercises the specialized fast
    loop — and the reproduced figure value must be identical under both
    schedulers.
    """
    from .sim import scheduler_override

    walls: Dict[str, float] = {}
    values: Dict[str, Any] = {}
    for sched in _SCHEDULERS:
        with scheduler_override(sched):
            t0 = time.perf_counter()
            values[sched] = point_fn(dict(params))
            walls[sched] = time.perf_counter() - t0
    return {
        "scenario": name,
        "path": path,
        "kind": "figure-point",
        "params": dict(params),
        "wall_s": {k: round(v, 4) for k, v in walls.items()},
        "speedup": round(walls["heap"] / walls["calendar"], 3),
        "identical_metrics": values["heap"] == values["calendar"],
    }


def _lint_row() -> Dict[str, Any]:
    """Whole-tree project-lint wall time, cold vs warm symbol cache.

    Times :func:`repro.lint.build_project` — parse + summary extraction
    + indexing, the part the incremental symbol cache governs — against
    a fresh private cache directory: cold extracts every summary, warm
    replays all of them from the cache.  ``warmup_x`` is the cold/warm
    ratio the cache is accountable for — the acceptance criterion is
    >=5x, gated by ``--check``.  The SIM6xx rules then run once over the
    warm analysis for the finding count (rule evaluation is identical
    cold or warm, so timing it would only dilute the ratio).
    """
    import shutil
    import tempfile
    from pathlib import Path

    from .lint import build_project, run_project_rules

    cache_dir = Path(tempfile.mkdtemp(prefix="repro-bench-lint-"))
    try:
        t0 = time.perf_counter()
        cold = build_project(cache_dir=cache_dir)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = build_project(cache_dir=cache_dir)
        warm_s = time.perf_counter() - t0
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    if cold.cache_hits or warm.cache_misses:
        raise RuntimeError(
            f"lint bench cache not cold/warm as expected: cold hits "
            f"{cold.cache_hits}, warm misses {warm.cache_misses}")
    result = run_project_rules(warm)
    return {
        "name": "lint_tree",
        "files": len(warm.summaries),
        "findings": len(result.all_findings()),
        "cold_wall_s": round(cold_s, 4),
        "warm_wall_s": round(warm_s, 4),
        "warmup_x": round(cold_s / warm_s, 2) if warm_s else 0.0,
    }


LINT_WARMUP_TARGET = 5.0


def run_engine_bench(quick: bool = False,
                     progress: Optional[Callable[[str], None]] = None
                     ) -> Dict[str, Any]:
    """Run every row and return the BENCH_engine payload dict."""
    say = progress or (lambda _msg: None)
    if quick:
        storm_events, replay_events, background = 200_000, 100_000, 100_000
    else:
        storm_events, replay_events, background = 2_000_000, 1_000_000, 1_000_000

    say("capturing fig12/fig13 step-time profiles ...")
    fig12_pattern = _capture_pattern("apache_vrio")
    fig13_pattern = _capture_pattern("scalability_vrio")

    rows: List[Dict[str, Any]] = []
    for batch in (8, 16, 32):
        say(f"completion storm, batch {batch} ...")
        rows.append(_row(
            f"completion_storm_b{batch}", "poll-batch-storm", "fig12+fig13",
            lambda sched, b=batch: _storm_rate(
                sched, storm_events, background, b),
            events=storm_events, background=background, lanes=_STORM_LANES,
            batch=batch,
            note=(f"{_STORM_LANES} pollers each completing {batch} zero-delay "
                  "descriptor hand-offs per tick over a deep background "
                  "timer population (virtio ring completion shape)")))
    say("timeline-bound completion storm, batch 32 ...")
    unbound = next(r for r in rows if r["name"] == "completion_storm_b32")
    bound = {sched: _timeline_storm_rate(sched, storm_events, background, 32)
             for sched in _SCHEDULERS}
    rows.append({
        "name": "timeline_storm_b32",
        "mode": "timeline-storm",
        "path": "observe",
        "lanes": _STORM_LANES,
        "events": storm_events,
        "background": background,
        "batch": 32,
        "events_per_sec": {k: round(v, 1) for k, v in bound.items()},
        "speedup": round(bound["calendar"] / bound["heap"], 3),
        "unbound_events_per_sec": dict(unbound["events_per_sec"]),
        "timeline_overhead": {
            sched: round(
                1.0 - bound[sched] / unbound["events_per_sec"][sched], 4)
            for sched in _SCHEDULERS},
        "note": ("the batch-32 storm with a live windowed timeline bound "
                 f"({_BENCH_WINDOW_NS} ns windows): monitored-loop + "
                 "window-close cost of repro observe --timeline vs the "
                 "unbound fast loop"),
    })
    fabric_hops = 50_000 if quick else 500_000
    say("fabric relay storm, 4-leaf/1-spine ...")
    rows.append(_row(
        "fabric_storm_r4", "fabric-storm", "dc_scale",
        lambda sched: _fabric_storm_rate(sched, fabric_hops),
        events=fabric_hops, background=0, lanes=_FABRIC_RACKS,
        note=(f"{_FABRIC_TOKENS} frames relayed around a "
              f"{_FABRIC_RACKS}-leaf/1-spine ring; every hop crosses two "
              "switches through the hoisted ingress closure and batched "
              "egress flush (events = host-to-host hops)")))
    for name, path, pattern in (
            ("replay_fig12", "fig12", fig12_pattern),
            ("replay_fig13", "fig13", fig13_pattern)):
        say(f"captured-profile replay, {path} ...")
        rows.append(_row(
            name, "captured-replay", path,
            lambda sched, p=pattern: _replay_rate(
                sched, p, replay_events, background),
            events=replay_events, background=background, lanes=_REPLAY_LANES,
            zero_frac=_pattern_zero_frac(pattern),
            note=(f"replays the measured {path} step-time profile "
                  "(zero-delay bursts + short timers)")))

    from .experiments.throughput_experiments import _macro_point
    from .experiments.scalability_experiments import _fig13b_point
    from .sim import ms

    artifacts = []
    point_specs = [
        ("fig12:apache/vrio", "fig12", _macro_point,
         {"benchmark": "apache", "model": "vrio",
          "n_vms": 2 if quick else 4, "run_ns": ms(8 if quick else 30)}),
        ("fig13:stream/vrio", "fig13", _fig13b_point,
         {"workers": 2, "n_vms": 4 if quick else 8,
          "run_ns": ms(8 if quick else 40)}),
    ]
    for name, path, point_fn, params in point_specs:
        say(f"artifact sweep point, {name} ...")
        artifacts.append(_point_row(name, path, point_fn, params))
    artifact_specs = [("apache_vrio", "fig12")]
    if not quick:
        artifact_specs.append(("scalability_vrio", "fig13"))
    for scenario, path in artifact_specs:
        say(f"artifact wall time, {scenario} ({path}) ...")
        artifacts.append(_artifact_row(scenario, path))

    say("whole-tree project lint, cold + warm cache ...")
    lint = _lint_row()

    headline = next(r for r in rows if r["name"] == HEADLINE_ROW)
    return {
        "schema": SCHEMA,
        "quick": quick,
        "python": platform.python_version(),
        "rows": rows,
        "artifacts": artifacts,
        "lint": lint,
        "headline": {
            "row": HEADLINE_ROW,
            "speedup": headline["speedup"],
            "target_x": HEADLINE_TARGET,
            "pass": headline["speedup"] >= HEADLINE_TARGET,
            "note": ("heap mode reproduces the pre-overhaul scheduler "
                     "byte-for-byte and shares the new Event layout, so it "
                     "is an equal-or-faster stand-in for the pre-PR engine"),
        },
    }


def run_engine_smoke(baseline_path: str = DEFAULT_OUT) -> Optional[str]:
    """Quick sanity used by ``repro verify --engine``.

    The calendar scheduler must clearly beat the legacy heap on a small
    completion-storm shape (full-scale ratio is ~6x; the 1.5x bar here
    leaves wide noise margin), and the committed baseline file — when
    present — must be schema-valid.  Returns a problem string or None.
    """
    heap = _storm_rate("heap", 100_000, 50_000, 32)
    cal = _storm_rate("calendar", 100_000, 50_000, 32)
    if cal < heap * 1.5:
        return (f"calendar storm rate {cal:,.0f} ev/s is not >=1.5x the "
                f"heap rate {heap:,.0f} ev/s")
    try:
        with open(baseline_path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
    except OSError:
        return None  # no committed baseline to validate
    except ValueError as exc:
        return f"{baseline_path} is not valid JSON: {exc}"
    problems = validate_payload(baseline)
    if problems:
        return f"{baseline_path}: " + "; ".join(problems[:3])
    return None


# -- baseline gate -----------------------------------------------------------

_COMPARABLE_KEYS = ("mode", "events", "background", "batch", "lanes")


def check_regression(current: Dict[str, Any], baseline: Dict[str, Any],
                     tolerance: float = REGRESSION_TOLERANCE) -> List[str]:
    """Return regression messages (empty = gate passes).

    Calendar events/sec of each row present in both payloads *at the
    same scale* must be within ``tolerance`` of the baseline.  Rows only
    in the baseline count as regressions (coverage must not shrink);
    rows at a different scale are skipped (quick vs full runs are not
    comparable).
    """
    problems: List[str] = []
    current_rows = {r["name"]: r for r in current.get("rows", [])}
    for base in baseline.get("rows", []):
        row = current_rows.get(base["name"])
        if row is None:
            problems.append(f"{base['name']}: in baseline but not measured")
            continue
        if any(row.get(k) != base.get(k) for k in _COMPARABLE_KEYS):
            continue
        cur = row["events_per_sec"]["calendar"]
        ref = base["events_per_sec"]["calendar"]
        if cur < ref * (1.0 - tolerance):
            drop = (1.0 - cur / ref) * 100.0
            problems.append(
                f"{base['name']}: calendar {cur:,.0f} ev/s vs baseline "
                f"{ref:,.0f} ev/s (-{drop:.1f}%, tolerance "
                f"{tolerance * 100:.0f}%)")
    base_lint = baseline.get("lint")
    cur_lint = current.get("lint")
    if base_lint is not None:
        if cur_lint is None:
            problems.append("lint_tree: in baseline but not measured")
        else:
            # Wall times are machine-dependent; what must not regress is
            # what the tree and the cache are accountable for: a clean
            # tree stays clean, and warm runs stay >=5x faster than cold.
            if cur_lint["findings"] > base_lint["findings"]:
                problems.append(
                    f"lint_tree: {cur_lint['findings']} finding(s) vs "
                    f"baseline {base_lint['findings']}")
            if cur_lint["warmup_x"] < LINT_WARMUP_TARGET:
                problems.append(
                    f"lint_tree: warm cache only {cur_lint['warmup_x']:.1f}x "
                    f"faster than cold (target {LINT_WARMUP_TARGET:.0f}x)")
    return problems


def validate_payload(payload: Dict[str, Any]) -> List[str]:
    """Schema-check a BENCH_engine payload; returns problem strings."""
    problems: List[str] = []
    if payload.get("schema") != SCHEMA:
        problems.append(f"schema is {payload.get('schema')!r}, want {SCHEMA!r}")
    rows = payload.get("rows")
    if not isinstance(rows, list) or not rows:
        problems.append("rows missing or empty")
        rows = []
    for row in rows:
        name = row.get("name", "<unnamed>")
        for key in ("name", "mode", "path", "lanes", "events", "background",
                    "events_per_sec", "speedup"):
            if key not in row:
                problems.append(f"row {name}: missing {key!r}")
        eps = row.get("events_per_sec", {})
        for sched in _SCHEDULERS:
            rate = eps.get(sched)
            if not isinstance(rate, (int, float)) or rate <= 0:
                problems.append(f"row {name}: bad events_per_sec[{sched!r}]")
        if row.get("mode") == "timeline-storm":
            for key in ("unbound_events_per_sec", "timeline_overhead"):
                if not isinstance(row.get(key), dict):
                    problems.append(f"row {name}: missing {key!r}")
    artifacts = payload.get("artifacts")
    if not isinstance(artifacts, list) or not artifacts:
        problems.append("artifacts missing or empty")
        artifacts = []
    for art in artifacts:
        scenario = art.get("scenario", "<unnamed>")
        for key in ("scenario", "path", "wall_s", "speedup"):
            if key not in art:
                problems.append(f"artifact {scenario}: missing {key!r}")
        if art.get("identical_metrics") is not True:
            problems.append(
                f"artifact {scenario}: metrics differ between schedulers")
    lint = payload.get("lint")
    if lint is not None:
        for key in ("name", "files", "findings", "cold_wall_s",
                    "warm_wall_s", "warmup_x"):
            if key not in lint:
                problems.append(f"lint: missing {key!r}")
        if lint.get("files", 0) <= 0:
            problems.append("lint: no files measured")
        if not isinstance(lint.get("findings"), int):
            problems.append("lint: findings is not an integer")
    headline = payload.get("headline")
    if not isinstance(headline, dict):
        problems.append("headline missing")
    else:
        row_names = {r.get("name") for r in rows}
        if headline.get("row") not in row_names:
            problems.append(f"headline row {headline.get('row')!r} not in rows")
        if not isinstance(headline.get("speedup"), (int, float)):
            problems.append("headline speedup missing")
    return problems


def write_payload(payload: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")


def _print_report(payload: Dict[str, Any], out=sys.stdout) -> None:
    for row in payload["rows"]:
        eps = row["events_per_sec"]
        line = (
            f"  {row['name']:<24} heap {eps['heap'] / 1e6:6.3f} M/s  "
            f"calendar {eps['calendar'] / 1e6:6.3f} M/s  "
            f"speedup {row['speedup']:.2f}x")
        overhead = row.get("timeline_overhead")
        if overhead is not None:
            line += f"  timeline overhead {overhead['calendar'] * 100:.1f}%"
        out.write(line + "\n")
    for art in payload["artifacts"]:
        wall = art["wall_s"]
        flag = "" if art["identical_metrics"] else "  METRICS DIFFER"
        out.write(
            f"  {art['scenario']:<24} heap {wall['heap']:6.3f} s    "
            f"calendar {wall['calendar']:6.3f} s    "
            f"speedup {art['speedup']:.2f}x{flag}\n")
    lint = payload.get("lint")
    if lint is not None:
        out.write(
            f"  {lint['name']:<24} cold {lint['cold_wall_s']:6.3f} s    "
            f"warm {lint['warm_wall_s']:6.3f} s    "
            f"warmup {lint['warmup_x']:.2f}x  "
            f"({lint['files']} files, {lint['findings']} findings)\n")
    head = payload["headline"]
    verdict = "pass" if head["pass"] else "BELOW TARGET"
    out.write(f"  headline {head['row']}: {head['speedup']:.2f}x "
              f"(target {head['target_x']:.0f}x) -> {verdict}\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``repro bench --engine`` (also runnable directly)."""
    parser = argparse.ArgumentParser(prog="repro bench --engine")
    parser.add_argument("--quick", action="store_true",
                        help="smaller scales for CI smoke runs")
    parser.add_argument("--check", action="store_true",
                        help="fail on >10%% events/sec regression vs the "
                             "committed baseline instead of overwriting it")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help="output (and --check baseline) path")
    args = parser.parse_args(argv)

    payload = run_engine_bench(
        quick=args.quick, progress=lambda msg: print(f"[bench-engine] {msg}"))
    _print_report(payload)
    bad_artifacts = [a["scenario"] for a in payload["artifacts"]
                     if not a["identical_metrics"]]
    if bad_artifacts:
        print(f"FAIL: scheduler metrics diverged for {bad_artifacts}")
        return 1

    if args.check:
        try:
            with open(args.out, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"FAIL: cannot load baseline {args.out}: {exc}")
            return 1
        problems = check_regression(payload, baseline)
        if problems:
            print("FAIL: events/sec regression vs baseline:")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print(f"ok: no calendar events/sec regression vs {args.out}")
        return 0

    write_payload(payload, args.out)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
