"""Rack-level assembly: machines, topologies, paper testbed builders."""

from .host import IoHostMachine, LoadGenHost, VmHostMachine, guest_costs_from
from .testbed import (
    MODEL_NAMES,
    TOPOLOGIES,
    Testbed,
    TestbedSpec,
    build_consolidation_setup,
    build_scalability_setup,
    build_simple_setup,
    build_switched_setup,
    build_testbed,
)

__all__ = [
    "VmHostMachine", "IoHostMachine", "LoadGenHost", "guest_costs_from",
    "Testbed", "TestbedSpec", "build_testbed",
    "MODEL_NAMES", "TOPOLOGIES",
    "build_simple_setup", "build_scalability_setup",
    "build_consolidation_setup", "build_switched_setup",
]
