"""Rack-level assembly: machines, topologies, paper testbed builders."""

from .host import IoHostMachine, LoadGenHost, VmHostMachine, guest_costs_from
from .testbed import (
    MODEL_NAMES,
    Testbed,
    build_consolidation_setup,
    build_scalability_setup,
    build_simple_setup,
    build_switched_setup,
)

__all__ = [
    "VmHostMachine", "IoHostMachine", "LoadGenHost", "guest_costs_from",
    "Testbed", "MODEL_NAMES",
    "build_simple_setup", "build_scalability_setup",
    "build_consolidation_setup", "build_switched_setup",
]
