"""Declarative testbed construction for the paper's experimental setups (§5).

One :class:`TestbedSpec` describes any of the paper's topologies as pure
data — model, topology, host/VM counts, knobs, cost model, and (for fault
campaigns) a :class:`repro.faults.FaultPlan` — and :func:`build_testbed`
assembles it.  Because specs are plain serializable data, a campaign
(spec × fault plan × seed) can be cached, shipped to worker processes, and
reproduced bit-for-bit.

The four historical builders remain as thin shims over specs:

* ``build_simple_setup`` — Figure 6: one VMhost, one load generator, and —
  for vRIO — an IOhost interposed between them.  Core budgets follow the
  paper: N+1 active cores for baseline/Elvis/vRIO (the +1 being the
  sidecore, local or remote) and N for the optimum.
* ``build_scalability_setup`` — Figure 13: four logical VMhosts, each with
  its own load generator, all served by one IOhost.
* ``build_switched_setup`` — §4.6: client traffic through a rack switch
  that can re-steer F addresses to the VMhost after an IOhost failure.
* ``build_consolidation_setup`` — Figure 15/16: several VMhosts running
  block workloads on ramdisks — local sidecores under Elvis/baseline,
  consolidated remote sidecores under vRIO.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional

from ..guest.vm import Vm
from ..hw.cpu import Core
from ..hw.link import Link
from ..iomodels import (
    DEFAULT_COSTS,
    IoEventStats,
    NetPort,
    VrioModel,
)
from ..iomodels.base import ExternalEndpoint
from ..iomodels.costs import CostModel
from ..iomodels.registry import get_model, model_names
from ..hw.storage import StorageDevice, make_ramdisk
from ..sim import Environment, RngRegistry
from ..telemetry import bind_testbed, register_storage_device
from .host import IoHostMachine, LoadGenHost, VmHostMachine

__all__ = [
    "Testbed",
    "TestbedSpec",
    "SimpleTopologyContext",
    "ConsolidationContext",
    "build_testbed",
    "MODEL_NAMES",
    "TOPOLOGIES",
    "build_simple_setup",
    "build_scalability_setup",
    "build_consolidation_setup",
    "build_switched_setup",
]

# Derived from the model registry (importing ..iomodels above registered
# every model module): the catalog is the single source of truth, this
# tuple is a snapshot taken at import time for the historical name.
MODEL_NAMES = model_names()
# TOPOLOGIES is derived from _TOPOLOGY_BUILDERS below — one registry,
# so the error message for an unknown topology can never drift from the
# set of builders that actually exist.


@dataclass
class Testbed:
    """Everything an experiment needs from one assembled setup."""

    env: Environment
    costs: CostModel
    model_name: str
    vms: List[Vm]
    ports: List[NetPort]
    clients: List[ExternalEndpoint]
    stats: IoEventStats
    service_cores: List[Core]           # sidecores / io cores / workers
    rng: RngRegistry
    vmhosts: List[VmHostMachine] = field(default_factory=list)
    iohost: Optional[IoHostMachine] = None
    loadgens: List[LoadGenHost] = field(default_factory=list)
    models: List[object] = field(default_factory=list)
    links: Dict[str, Link] = field(default_factory=dict)
    channels: List[object] = field(default_factory=list)   # VmhostChannels
    storage_devices: List[StorageDevice] = field(default_factory=list)
    spec: Optional["TestbedSpec"] = None
    fault_injector: Optional[object] = None
    _model_by_vm: Dict[str, object] = field(default_factory=dict)

    @property
    def model(self):
        return self.models[0]

    def attach_ramdisk(self, vm: Vm, capacity_bytes: int = 1 << 30):
        """Give ``vm`` a 1 GB ramdisk under this setup's I/O model.

        Local to the VMhost for baseline/Elvis; resident at the IOhost for
        vRIO (§5 *Making a Local Device Remote*).
        """
        device = make_ramdisk(self.env, name=f"ramdisk-{vm.name}",
                              capacity_bytes=capacity_bytes)
        return self.attach_block_device(vm, device)

    def attach_block_device(self, vm: Vm, device: StorageDevice):
        """Attach ``device`` to ``vm`` under whichever model owns the VM.

        The single block-attachment path shared by every topology, all
        I/O models, and the fault injector: the owning model is resolved
        per VM, so consolidation setups route each VM to its own Elvis /
        baseline instance while vRIO VMs share the consolidated IOhost.
        """
        model = self._model_by_vm.get(vm.name)
        if model is None:
            raise NotImplementedError(
                f"model {self.model_name!r} does not support host-managed "
                "block devices")
        handle = model.attach_block_device(vm, device)
        telemetry = getattr(self, "telemetry", None)
        if telemetry is not None:
            register_storage_device(telemetry.registry, device)
        self.storage_devices.append(device)
        return handle


@dataclass(frozen=True)
class TestbedSpec:
    """A declarative, serializable description of one experimental setup.

    Fields that only some topologies consume (``channel_loss``,
    ``model_numa``, …) are ignored by the others, matching the historical
    builder signatures.  ``sidecores`` means: vRIO worker count (total, at
    the IOhost; per rack in the racks topology), Elvis sidecore count /
    baseline I/O core count (per host in the consolidation topology).

    ``n_racks``/``n_spines``/``oversubscription`` shape the ``racks``
    topology only: N racks of ``n_vmhosts`` VMhosts each, every rack with
    its own IOhost and load generator hanging off a leaf switch, leaves
    joined by ``n_spines`` spines with trunk bandwidth provisioned at the
    given edge oversubscription ratio (see :mod:`repro.hw.fabric`).
    """

    model: str = "vrio"
    topology: str = "simple"
    n_vmhosts: int = 1
    vms_per_host: int = 1
    sidecores: int = 1
    with_clients: bool = True
    seed: int = 0
    channel_loss: float = 0.0
    channel_rx_ring: int = 4096
    channel_mtu: int = 8100
    pump_window: int = 32
    steering_policy: str = "affinity"
    worker_idle_policy: Optional[str] = None
    model_numa: bool = True
    n_racks: int = 1
    n_spines: int = 1
    oversubscription: float = 1.0
    costs: Optional[CostModel] = None
    fault_plan: Optional[object] = None     # repro.faults.FaultPlan

    @property
    def n_vms(self) -> int:
        return self.n_vmhosts * self.vms_per_host

    def copy(self, **overrides) -> "TestbedSpec":
        """A copy of this spec with selected fields replaced."""
        return replace(self, **overrides)

    def to_dict(self) -> dict:
        """JSON-serializable form (round-trips via :meth:`from_dict`)."""
        data = {
            "model": self.model,
            "topology": self.topology,
            "n_vmhosts": self.n_vmhosts,
            "vms_per_host": self.vms_per_host,
            "sidecores": self.sidecores,
            "with_clients": self.with_clients,
            "seed": self.seed,
            "channel_loss": self.channel_loss,
            "channel_rx_ring": self.channel_rx_ring,
            "channel_mtu": self.channel_mtu,
            "pump_window": self.pump_window,
            "steering_policy": self.steering_policy,
            "worker_idle_policy": self.worker_idle_policy,
            "model_numa": self.model_numa,
            "n_racks": self.n_racks,
            "n_spines": self.n_spines,
            "oversubscription": self.oversubscription,
            "costs": None if self.costs is None else asdict(self.costs),
            "fault_plan": (None if self.fault_plan is None
                           else self.fault_plan.to_dict()),
        }
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "TestbedSpec":
        data = dict(data)
        costs = data.get("costs")
        if costs is not None and not isinstance(costs, CostModel):
            data["costs"] = CostModel(**costs)
        plan = data.get("fault_plan")
        if plan is not None and isinstance(plan, dict):
            from ..faults.plan import FaultPlan
            data["fault_plan"] = FaultPlan.from_dict(plan)
        return cls(**data)


def _check_model_name(model_name: str) -> None:
    get_model(model_name)  # raises ValueError listing the valid ids


def build_testbed(spec: TestbedSpec) -> Testbed:
    """Assemble the testbed a :class:`TestbedSpec` describes.

    Validates the spec against the model registry's capability flags,
    dispatches on topology, binds telemetry, and — when the spec carries
    a fault plan — arms a :class:`repro.faults.FaultInjector` so the
    planned faults fire as simulation events during the run.
    """
    info = get_model(spec.model)
    if spec.topology not in _TOPOLOGY_BUILDERS:
        raise ValueError(
            f"unknown topology {spec.topology!r}; "
            f"valid topologies: {', '.join(TOPOLOGIES)}")
    if spec.topology not in info.capabilities.topologies:
        if spec.topology == "consolidation":
            raise ValueError(f"{spec.model} is not part of this experiment")
        # The remaining multi-host topologies are hard-wired IOhost
        # studies (scalability/switched/racks), which only vRIO declares.
        raise ValueError(
            f"the {spec.topology} topology is vRIO-only, got {spec.model!r}")
    if spec.topology == "simple" and spec.n_vmhosts != 1:
        raise ValueError("the simple topology has exactly one VMhost")
    if spec.n_vmhosts <= 0 or spec.vms_per_host <= 0:
        raise ValueError("need positive host and VM counts")
    if spec.sidecores <= 0:
        raise ValueError(f"need at least one sidecore, got {spec.sidecores}")
    if spec.topology == "racks":
        if spec.n_racks <= 0 or spec.n_spines <= 0:
            raise ValueError(
                f"need positive rack and spine counts, got "
                f"{spec.n_racks} racks × {spec.n_spines} spines")
        if spec.oversubscription <= 0:
            raise ValueError(
                f"oversubscription ratio must be positive: "
                f"{spec.oversubscription}")

    builder = _TOPOLOGY_BUILDERS[spec.topology]
    testbed = builder(spec)
    testbed.spec = spec
    bind_testbed(testbed)
    if spec.fault_plan:
        from ..faults.inject import FaultInjector
        testbed.fault_injector = FaultInjector(testbed,
                                               spec.fault_plan).arm()
    return testbed


@dataclass
class SimpleTopologyContext:
    """What a registered model's simple-topology builder works with.

    The testbed creates the VMhost and its VMs first (their creation
    order is part of the reproducible surface), then hands this context
    to the model's ``build_simple``.  The builder wires NICs, service
    cores, and — for remote models — an IOhost and channel links, using
    only the factories here, so model modules never import the cluster
    layer.
    """

    env: Environment
    spec: TestbedSpec
    costs: CostModel
    stats: IoEventStats
    rng: RngRegistry
    vmhost: VmHostMachine
    vms: List[Vm]
    iohost: Optional[IoHostMachine] = None
    lg_endpoint: Optional[object] = None
    links: Dict[str, Link] = field(default_factory=dict)
    channels: List[object] = field(default_factory=list)

    def new_iohost(self, name: str = "iohost") -> IoHostMachine:
        """Create the setup's IOhost (remote-sidecore models only)."""
        self.iohost = IoHostMachine(self.env, name, self.costs)
        return self.iohost

    def new_link(self, name: str, gbps: float, loss: float = 0.0) -> Link:
        """A named fabric link; lossy links draw from ``{name}-loss``."""
        link = Link(self.env, gbps=gbps,
                    propagation_ns=self.costs.propagation_ns,
                    loss_probability=loss,
                    rng=self.rng.stream(f"{name}-loss") if loss else None,
                    name=name)
        self.links[name] = link
        return link

    def wire_loadgen(self, nic) -> None:
        """Hang the load-generator link off ``nic`` (the model-facing
        side of the client fabric; the LoadGenHost itself is attached by
        the testbed afterwards iff the spec asks for clients)."""
        lg_link = Link(self.env, gbps=self.costs.link_gbps,
                       propagation_ns=self.costs.propagation_ns, name="lg")
        self.links["lg"] = lg_link
        nic.attach(lg_link.side_a)
        self.lg_endpoint = lg_link.side_b


@dataclass
class ConsolidationContext:
    """What a registered model's consolidation builder works with.

    Unlike the simple topology, VMhosts and VMs are created *by* the
    builder (per-host wiring order differs across models), through the
    factories here.
    """

    env: Environment
    spec: TestbedSpec
    costs: CostModel
    stats: IoEventStats
    rng: RngRegistry
    vmhosts: List[VmHostMachine] = field(default_factory=list)
    iohost: Optional[IoHostMachine] = None
    links: Dict[str, Link] = field(default_factory=dict)
    channels: List[object] = field(default_factory=list)

    def new_vmhost(self, index: int) -> VmHostMachine:
        vmhost = VmHostMachine(self.env, f"vmhost{index}", self.costs)
        self.vmhosts.append(vmhost)
        return vmhost

    def new_iohost(self, name: str = "iohost") -> IoHostMachine:
        self.iohost = IoHostMachine(self.env, name, self.costs)
        return self.iohost

    def new_link(self, name: str, gbps: float, loss: float = 0.0) -> Link:
        link = Link(self.env, gbps=gbps,
                    propagation_ns=self.costs.propagation_ns,
                    loss_probability=loss,
                    rng=self.rng.stream(f"{name}-loss") if loss else None,
                    name=name)
        self.links[name] = link
        return link


def _build_simple(spec: TestbedSpec) -> Testbed:
    """The Figure 6 setup for any registered model."""
    info = get_model(spec.model)
    n_vms = spec.vms_per_host
    costs = spec.costs if spec.costs is not None else DEFAULT_COSTS
    env = Environment()
    rng = RngRegistry(spec.seed)

    vmhost = VmHostMachine(env, "vmhost0", costs)
    vms = [vmhost.new_vm() for _ in range(n_vms)]
    stats = IoEventStats(spec.model)

    ctx = SimpleTopologyContext(env=env, spec=spec, costs=costs,
                                stats=stats, rng=rng, vmhost=vmhost, vms=vms)
    wiring = info.build_simple(ctx)

    loadgens: List[LoadGenHost] = []
    clients: List[ExternalEndpoint] = []
    if spec.with_clients:
        from ..hw.nic import Nic
        lg_nic = Nic(env, "loadgen/nic", endpoint=ctx.lg_endpoint)
        loadgen = LoadGenHost(env, "loadgen0", lg_nic, costs)
        loadgens.append(loadgen)
        clients = [loadgen.new_client_endpoint() for _ in range(n_vms)]

    # Models without host-managed block devices (the optimum) raise from
    # attach_block_device itself ("there is no such thing as an SRIOV
    # ramdisk"), so every model routes through the same map.
    model_by_vm = {vm.name: wiring.model for vm in vms}
    return Testbed(env=env, costs=costs, model_name=spec.model, vms=vms,
                   ports=wiring.ports, clients=clients, stats=stats,
                   service_cores=wiring.service_cores, rng=rng,
                   vmhosts=[vmhost], iohost=ctx.iohost, loadgens=loadgens,
                   models=[wiring.model], links=ctx.links,
                   channels=ctx.channels, _model_by_vm=model_by_vm)


def _build_scalability(spec: TestbedSpec) -> Testbed:
    """The Figure 13 topology: one IOhost serving several VMhosts, each
    paired with its own load generator (vRIO only)."""
    costs = spec.costs if spec.costs is not None else DEFAULT_COSTS
    env = Environment()
    rng = RngRegistry(spec.seed)
    stats = IoEventStats("vrio")

    iohost = IoHostMachine(env, "iohost", costs)
    worker_cores = [iohost.new_worker() for _ in range(spec.sidecores)]
    model = VrioModel(env, worker_cores, costs=costs, stats=stats)

    vms: List[Vm] = []
    ports: List[NetPort] = []
    clients: List[ExternalEndpoint] = []
    vmhosts: List[VmHostMachine] = []
    loadgens: List[LoadGenHost] = []
    links: Dict[str, Link] = {}
    channels: List[object] = []

    from ..hw.nic import Nic
    for h in range(spec.n_vmhosts):
        vmhost = VmHostMachine(env, f"vmhost{h}", costs, core_budget=8)
        vmhosts.append(vmhost)
        channel_link = Link(env, gbps=costs.channel_gbps,
                            propagation_ns=costs.propagation_ns,
                            name=f"channel{h}")
        links[f"channel{h}"] = channel_link
        vmhost_nic = vmhost.new_nic("channel")
        vmhost_nic.attach(channel_link.side_a)
        iohost_channel_nic = iohost.new_nic(f"channel{h}")
        iohost_channel_nic.attach(channel_link.side_b)
        channel = model.connect_vmhost(f"vmhost{h}", vmhost_nic,
                                       iohost_channel_nic)
        channels.append(channel)

        external_nic = iohost.new_nic(f"external{h}")
        lg_link = Link(env, gbps=costs.link_gbps,
                       propagation_ns=costs.propagation_ns, name=f"lg{h}")
        links[f"lg{h}"] = lg_link
        external_nic.attach(lg_link.side_a)
        lg_nic = Nic(env, f"loadgen{h}/nic", endpoint=lg_link.side_b)
        loadgen = LoadGenHost(env, f"loadgen{h}", lg_nic, costs,
                              model_numa=spec.model_numa)
        loadgens.append(loadgen)

        for _ in range(spec.vms_per_host):
            vm = vmhost.new_vm()
            vms.append(vm)
            ports.append(model.attach_vm(vm, channel, external_nic))
            clients.append(loadgen.new_client_endpoint())

    return Testbed(env=env, costs=costs, model_name="vrio", vms=vms,
                   ports=ports, clients=clients, stats=stats,
                   service_cores=worker_cores, rng=rng, vmhosts=vmhosts,
                   iohost=iohost, loadgens=loadgens, models=[model],
                   links=links, channels=channels,
                   _model_by_vm={vm.name: model for vm in vms})


def _build_switched(spec: TestbedSpec) -> Testbed:
    """The §4.6 fault-tolerant arrangement: client traffic flows through
    the rack switch, which steers each F address to the IOhost — and can
    re-steer it to the VMhost after an IOhost failure.

    Extras stashed on the returned testbed:

    * ``testbed.switch`` — the rack switch;
    * ``testbed.switch_ports`` — dict of the LG/IOhost/VMhost endpoints;
    * ``testbed.vmhost_fallback_nic`` — the VMhost's switch-facing NIC
      (where local virtio devices are created on failover);
    * ``testbed.fallback_io_core`` — a spare VMhost core for the local
      vhost service.
    """
    from ..hw.nic import Nic
    from ..hw.switch_fabric import Switch

    costs = spec.costs if spec.costs is not None else DEFAULT_COSTS
    env = Environment()
    rng = RngRegistry(spec.seed)
    stats = IoEventStats("vrio")

    switch = Switch(env, "rack-switch")
    vmhost = VmHostMachine(env, "vmhost0", costs)
    iohost = IoHostMachine(env, "iohost", costs)
    worker_cores = [iohost.new_worker() for _ in range(spec.sidecores)]
    model = VrioModel(env, worker_cores, costs=costs, stats=stats)

    # Direct channel link VMhost <-> IOhost (cheap wiring stays).
    channel_link = Link(env, gbps=costs.channel_gbps,
                        propagation_ns=costs.propagation_ns, name="channel")
    vmhost_channel_nic = vmhost.new_nic("channel")
    vmhost_channel_nic.attach(channel_link.side_a)
    iohost_channel_nic = iohost.new_nic("channel")
    iohost_channel_nic.attach(channel_link.side_b)
    channel = model.connect_vmhost("vmhost0", vmhost_channel_nic,
                                   iohost_channel_nic)

    # Everyone else hangs off the switch.
    lg_link = Link(env, gbps=costs.link_gbps,
                   propagation_ns=costs.propagation_ns, name="lg")
    lg_end = switch.add_port(lg_link)
    iohost_link = Link(env, gbps=costs.link_gbps,
                       propagation_ns=costs.propagation_ns, name="iohost")
    iohost_end = switch.add_port(iohost_link)
    vmhost_link = Link(env, gbps=costs.link_gbps,
                       propagation_ns=costs.propagation_ns, name="vmhost")
    vmhost_end = switch.add_port(vmhost_link)

    external_nic = iohost.new_nic("external")
    external_nic.attach(iohost_end)
    vmhost_fallback_nic = vmhost.new_nic("fallback")
    vmhost_fallback_nic.attach(vmhost_end)
    lg_nic = Nic(env, "loadgen/nic", endpoint=lg_end)
    loadgen = LoadGenHost(env, "loadgen0", lg_nic, costs)

    vms = [vmhost.new_vm() for _ in range(spec.vms_per_host)]
    ports = [model.attach_vm(vm, channel, external_nic) for vm in vms]
    clients = [loadgen.new_client_endpoint() for _ in range(spec.vms_per_host)]
    for port in ports:
        switch.learn(port.mac, iohost_link.side_a)
    for client in clients:
        switch.learn(client.mac, lg_link.side_a)

    testbed = Testbed(env=env, costs=costs, model_name="vrio", vms=vms,
                      ports=ports, clients=clients, stats=stats,
                      service_cores=worker_cores, rng=rng, vmhosts=[vmhost],
                      iohost=iohost, loadgens=[loadgen], models=[model],
                      links={"channel": channel_link, "lg": lg_link,
                             "iohost": iohost_link, "vmhost": vmhost_link},
                      channels=[channel],
                      _model_by_vm={vm.name: model for vm in vms})
    testbed.switch = switch
    testbed.switch_ports = {"loadgen": lg_link.side_a,
                            "iohost": iohost_link.side_a,
                            "vmhost": vmhost_link.side_a}
    testbed.vmhost_fallback_nic = vmhost_fallback_nic
    testbed.fallback_io_core = vmhost.new_io_core()
    return testbed


def _build_consolidation(spec: TestbedSpec) -> Testbed:
    """The Figure 15/16 topology: several VMhosts running block workloads.

    Host-local models (Elvis, baseline, …) get ``sidecores`` local
    service cores per VMhost; vRIO gets ``sidecores`` consolidated
    workers at one IOhost.  Per-model wiring lives with the model's
    registry entry.
    """
    info = get_model(spec.model)
    costs = spec.costs if spec.costs is not None else DEFAULT_COSTS
    env = Environment()
    rng = RngRegistry(spec.seed)
    stats = IoEventStats(spec.model)

    ctx = ConsolidationContext(env=env, spec=spec, costs=costs,
                               stats=stats, rng=rng)
    wiring = info.build_consolidation(ctx)

    return Testbed(env=env, costs=costs, model_name=spec.model,
                   vms=wiring.vms, ports=wiring.ports, clients=[],
                   stats=stats, service_cores=wiring.service_cores,
                   rng=rng, vmhosts=ctx.vmhosts, iohost=ctx.iohost,
                   loadgens=[], models=wiring.models, links=ctx.links,
                   channels=ctx.channels,
                   _model_by_vm=wiring.model_by_vm)


def _build_racks(spec: TestbedSpec) -> Testbed:
    """The multi-rack datacenter topology (ROADMAP item 2, vRIO only).

    ``n_racks`` racks, each a self-contained §5 rack: ``n_vmhosts``
    VMhosts with direct channel links to the rack's own IOhost (its
    workers come from ``sidecores``, interpreted per rack), plus a
    per-rack load generator.  Each rack's IOhost-external NIC and load
    generator hang off the rack's leaf switch; leaves are joined by a
    :class:`repro.hw.fabric.LeafSpineFabric` with ``n_spines`` spines at
    the spec's ``oversubscription`` ratio.

    Clients for rack *r*'s VMs live on rack *(r+1) mod N*'s load
    generator, so every request/response pair crosses the spine —
    single-rack fabrics keep clients local, everything else exercises
    the trunks.  Leaves statically know their locally attached MACs;
    the trunk direction is dynamically learned from the first (flooded)
    frames, exactly the L2 behaviour the fabric models.

    Extras stashed on the returned testbed: ``testbed.fabric`` (the
    :class:`LeafSpineFabric`) and ``testbed.iohosts`` (one per rack;
    ``testbed.iohost`` stays ``None``).
    """
    from ..hw.fabric import LeafSpineFabric
    from ..hw.nic import Nic

    costs = spec.costs if spec.costs is not None else DEFAULT_COSTS
    env = Environment()
    rng = RngRegistry(spec.seed)
    stats = IoEventStats("vrio")
    n_racks = spec.n_racks

    # Two host downlinks per leaf: the IOhost external NIC and the rack's
    # load generator.
    fabric = LeafSpineFabric(env, n_racks, spec.n_spines,
                             downlinks_per_leaf=2,
                             downlink_gbps=costs.link_gbps,
                             oversubscription=spec.oversubscription)

    vms: List[Vm] = []
    ports: List[NetPort] = []
    vmhosts: List[VmHostMachine] = []
    iohosts: List[IoHostMachine] = []
    loadgens: List[LoadGenHost] = []
    models: List[object] = []
    service_cores: List[Core] = []
    links: Dict[str, Link] = {}
    channels: List[object] = []
    model_by_vm: Dict[str, object] = {}
    rack_ports: List[List[NetPort]] = []
    lg_links: List[Link] = []

    for r in range(n_racks):
        iohost = IoHostMachine(env, f"rack{r}/iohost", costs)
        iohosts.append(iohost)
        workers = [iohost.new_worker() for _ in range(spec.sidecores)]
        service_cores.extend(workers)
        model = VrioModel(env, workers, costs=costs, stats=stats)
        models.append(model)

        ext_link = Link(env, gbps=costs.link_gbps,
                        propagation_ns=costs.propagation_ns,
                        name=f"r{r}ext")
        links[f"r{r}ext"] = ext_link
        external_nic = iohost.new_nic("external")
        external_nic.attach(fabric.host_port(r, ext_link))

        lg_link = Link(env, gbps=costs.link_gbps,
                       propagation_ns=costs.propagation_ns,
                       name=f"r{r}lg")
        links[f"r{r}lg"] = lg_link
        lg_end = fabric.host_port(r, lg_link)
        lg_nic = Nic(env, f"rack{r}/loadgen/nic", endpoint=lg_end)
        loadgen = LoadGenHost(env, f"rack{r}/loadgen", lg_nic, costs,
                              model_numa=spec.model_numa)
        loadgens.append(loadgen)
        lg_links.append(lg_link)

        this_rack_ports: List[NetPort] = []
        for h in range(spec.n_vmhosts):
            vmhost = VmHostMachine(env, f"rack{r}/vmhost{h}", costs,
                                   core_budget=8)
            vmhosts.append(vmhost)
            channel_link = Link(env, gbps=costs.channel_gbps,
                                propagation_ns=costs.propagation_ns,
                                name=f"r{r}channel{h}")
            links[f"r{r}channel{h}"] = channel_link
            vmhost_nic = vmhost.new_nic("channel")
            vmhost_nic.attach(channel_link.side_a)
            iohost_channel_nic = iohost.new_nic(f"channel{h}")
            iohost_channel_nic.attach(channel_link.side_b)
            channel = model.connect_vmhost(f"rack{r}/vmhost{h}", vmhost_nic,
                                           iohost_channel_nic)
            channels.append(channel)
            for _ in range(spec.vms_per_host):
                vm = vmhost.new_vm()
                vms.append(vm)
                port = model.attach_vm(vm, channel, external_nic)
                ports.append(port)
                this_rack_ports.append(port)
                model_by_vm[vm.name] = model
        rack_ports.append(this_rack_ports)
        # The leaf statically knows the F addresses it serves locally;
        # remote leaves learn them from the first response frames.
        for port in this_rack_ports:
            fabric.learn_host(r, port.mac, ext_link)

    # Clients for rack r's VMs sit on rack (r+1) mod N's load generator,
    # in the same global order as `ports`.
    clients: List[ExternalEndpoint] = []
    for r in range(n_racks):
        q = (r + 1) % n_racks
        for _ in rack_ports[r]:
            client = loadgens[q].new_client_endpoint()
            clients.append(client)
            fabric.learn_host(q, client.mac, lg_links[q])

    testbed = Testbed(env=env, costs=costs, model_name="vrio", vms=vms,
                      ports=ports, clients=clients, stats=stats,
                      service_cores=service_cores, rng=rng, vmhosts=vmhosts,
                      iohost=None, loadgens=loadgens, models=models,
                      links=links, channels=channels,
                      _model_by_vm=model_by_vm)
    testbed.fabric = fabric
    testbed.iohosts = iohosts
    return testbed


_TOPOLOGY_BUILDERS = {
    "simple": _build_simple,
    "scalability": _build_scalability,
    "switched": _build_switched,
    "consolidation": _build_consolidation,
    "racks": _build_racks,
}

TOPOLOGIES = tuple(sorted(_TOPOLOGY_BUILDERS))


# -- historical builder names (shims over TestbedSpec) -----------------------

def build_simple_setup(model_name: str, n_vms: int,
                       costs: Optional[CostModel] = None,
                       sidecores: int = 1,
                       seed: int = 0,
                       with_clients: bool = True,
                       channel_loss: float = 0.0,
                       channel_rx_ring: int = 4096,
                       channel_mtu: int = 8100,
                       pump_window: int = 32,
                       worker_idle_policy: Optional[str] = None) -> Testbed:
    """Shim: the Figure 6 setup as a spec (see :func:`build_testbed`).

    ``sidecores`` controls the Elvis sidecore count / baseline I/O core
    count / vRIO worker count (the paper's default experiments use 1).
    """
    _check_model_name(model_name)
    if n_vms <= 0:
        raise ValueError(f"need at least one VM, got {n_vms}")
    return build_testbed(TestbedSpec(
        model=model_name, topology="simple", n_vmhosts=1,
        vms_per_host=n_vms, sidecores=sidecores, seed=seed,
        with_clients=with_clients, channel_loss=channel_loss,
        channel_rx_ring=channel_rx_ring, channel_mtu=channel_mtu,
        pump_window=pump_window, worker_idle_policy=worker_idle_policy,
        costs=costs))


def build_scalability_setup(n_vmhosts: int = 4, vms_per_host: int = 1,
                            workers: int = 1,
                            costs: Optional[CostModel] = None,
                            seed: int = 0,
                            model_numa: bool = True) -> Testbed:
    """Shim: the Figure 13 topology as a spec (see :func:`build_testbed`)."""
    return build_testbed(TestbedSpec(
        model="vrio", topology="scalability", n_vmhosts=n_vmhosts,
        vms_per_host=vms_per_host, sidecores=workers, seed=seed,
        model_numa=model_numa, costs=costs))


def build_switched_setup(n_vms: int = 1, workers: int = 1,
                         costs: Optional[CostModel] = None,
                         seed: int = 0) -> Testbed:
    """Shim: the §4.6 switched topology as a spec (see
    :func:`build_testbed` and :func:`_build_switched` for the extras)."""
    return build_testbed(TestbedSpec(
        model="vrio", topology="switched", n_vmhosts=1, vms_per_host=n_vms,
        sidecores=workers, seed=seed, costs=costs))


def build_consolidation_setup(model_name: str, n_vmhosts: int = 2,
                              vms_per_host: int = 5,
                              sidecores_per_host: int = 1,
                              vrio_workers: int = 1,
                              costs: Optional[CostModel] = None,
                              seed: int = 0) -> Testbed:
    """Shim: the Figure 15/16 topology as a spec (see :func:`build_testbed`).

    Elvis/baseline get ``sidecores_per_host`` local service cores per
    VMhost; vRIO gets ``vrio_workers`` consolidated workers at one IOhost.
    """
    _check_model_name(model_name)
    sidecores = vrio_workers if model_name == "vrio" else sidecores_per_host
    return build_testbed(TestbedSpec(
        model=model_name, topology="consolidation", n_vmhosts=n_vmhosts,
        vms_per_host=vms_per_host, sidecores=sidecores, seed=seed,
        costs=costs))
