"""Builders for the paper's experimental setups (§5).

:func:`build_simple_setup` reproduces Figure 6: one VMhost, one load
generator, and — for vRIO — an IOhost interposed between them.  Core
budgets follow the paper: N+1 active cores for baseline/Elvis/vRIO (the
+1 being the sidecore, local or remote) and N for the optimum.

:func:`build_scalability_setup` reproduces the Figure 13 topology: four
logical VMhosts, each with its own load generator, all served by one
IOhost.

:func:`build_consolidation_setup` reproduces the Figure 15/16 topology:
two VMhosts running block workloads on ramdisks — local sidecores under
Elvis/baseline, consolidated remote sidecores under vRIO.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..guest.vm import Vm
from ..hw.cpu import Core
from ..hw.link import Link
from ..hw.storage import StorageDevice, make_ramdisk
from ..iomodels import (
    BaselineModel,
    DEFAULT_COSTS,
    ElvisModel,
    IoEventStats,
    NetPort,
    OptimumModel,
    VrioModel,
)
from ..iomodels.base import ExternalEndpoint
from ..iomodels.costs import CostModel
from ..sim import Environment, RngRegistry
from ..telemetry import bind_testbed, register_storage_device
from .host import IoHostMachine, LoadGenHost, VmHostMachine

__all__ = [
    "Testbed",
    "MODEL_NAMES",
    "build_simple_setup",
    "build_scalability_setup",
    "build_consolidation_setup",
    "build_switched_setup",
]

MODEL_NAMES = ("baseline", "elvis", "optimum", "vrio", "vrio_nopoll")


@dataclass
class Testbed:
    """Everything an experiment needs from one assembled setup."""

    env: Environment
    costs: CostModel
    model_name: str
    vms: List[Vm]
    ports: List[NetPort]
    clients: List[ExternalEndpoint]
    stats: IoEventStats
    service_cores: List[Core]           # sidecores / io cores / workers
    rng: RngRegistry
    vmhosts: List[VmHostMachine] = field(default_factory=list)
    iohost: Optional[IoHostMachine] = None
    loadgens: List[LoadGenHost] = field(default_factory=list)
    models: List[object] = field(default_factory=list)
    _block_attach: Optional[Callable[[Vm, StorageDevice], object]] = None

    @property
    def model(self):
        return self.models[0]

    def attach_ramdisk(self, vm: Vm, capacity_bytes: int = 1 << 30):
        """Give ``vm`` a 1 GB ramdisk under this setup's I/O model.

        Local to the VMhost for baseline/Elvis; resident at the IOhost for
        vRIO (§5 *Making a Local Device Remote*).
        """
        device = make_ramdisk(self.env, name=f"ramdisk-{vm.name}",
                              capacity_bytes=capacity_bytes)
        return self.attach_block_device(vm, device)

    def attach_block_device(self, vm: Vm, device: StorageDevice):
        if self._block_attach is None:
            raise NotImplementedError(
                f"model {self.model_name!r} does not support host-managed "
                "block devices")
        telemetry = getattr(self, "telemetry", None)
        if telemetry is not None:
            register_storage_device(telemetry.registry, device)
        return self._block_attach(vm, device)


def _check_model_name(model_name: str) -> None:
    if model_name not in MODEL_NAMES:
        raise ValueError(
            f"unknown model {model_name!r}; expected one of {MODEL_NAMES}")


def build_simple_setup(model_name: str, n_vms: int,
                       costs: Optional[CostModel] = None,
                       sidecores: int = 1,
                       seed: int = 0,
                       with_clients: bool = True,
                       channel_loss: float = 0.0,
                       channel_rx_ring: int = 4096,
                       channel_mtu: int = 8100,
                       pump_window: int = 32,
                       worker_idle_policy: Optional[str] = None) -> Testbed:
    """The Figure 6 setup for any of the five model names.

    ``sidecores`` controls the Elvis sidecore count / baseline I/O core
    count / vRIO worker count (the paper's default experiments use 1).
    """
    _check_model_name(model_name)
    if n_vms <= 0:
        raise ValueError(f"need at least one VM, got {n_vms}")
    if sidecores <= 0:
        raise ValueError(f"need at least one sidecore, got {sidecores}")
    costs = costs if costs is not None else DEFAULT_COSTS
    env = Environment()
    rng = RngRegistry(seed)

    vmhost = VmHostMachine(env, "vmhost0", costs)
    vms = [vmhost.new_vm() for _ in range(n_vms)]
    stats = IoEventStats(model_name)

    # -- fabric: load generator on one side ---------------------------------
    lg_nic_host = None
    loadgens: List[LoadGenHost] = []
    clients: List[ExternalEndpoint] = []

    iohost: Optional[IoHostMachine] = None
    service_cores: List[Core] = []
    models: List[object] = []
    block_attach = None

    if model_name in ("vrio", "vrio_nopoll"):
        poll = model_name == "vrio"
        iohost = IoHostMachine(env, "iohost", costs)
        workers = [iohost.new_worker(poll_mode=poll,
                                     idle_policy=worker_idle_policy)
                   for _ in range(sidecores)]
        service_cores = workers
        model = VrioModel(env, workers, costs=costs, stats=stats, poll=poll,
                          channel_mtu=channel_mtu,
                          channel_rx_ring=channel_rx_ring,
                          pump_window=pump_window)
        models.append(model)
        # Channel link: VMhost <-> IOhost.
        channel_link = Link(env, gbps=costs.channel_gbps,
                            propagation_ns=costs.propagation_ns,
                            loss_probability=channel_loss,
                            rng=rng.stream("channel-loss") if channel_loss else None,
                            name="channel")
        vmhost_nic = vmhost.new_nic("channel")
        vmhost_nic.attach(channel_link.side_a)
        iohost_channel_nic = iohost.new_nic("channel")
        iohost_channel_nic.attach(channel_link.side_b)
        channel = model.connect_vmhost("vmhost0", vmhost_nic,
                                       iohost_channel_nic)
        # External link: load generator <-> IOhost.
        external_nic = iohost.new_nic("external")
        lg_link = Link(env, gbps=costs.link_gbps,
                       propagation_ns=costs.propagation_ns, name="lg")
        external_nic.attach(lg_link.side_a)
        lg_nic_host = lg_link.side_b
        ports = [model.attach_vm(vm, channel, external_nic) for vm in vms]
        block_attach = model.attach_block_device
    else:
        host_nic = vmhost.new_nic("external")
        lg_link = Link(env, gbps=costs.link_gbps,
                       propagation_ns=costs.propagation_ns, name="lg")
        host_nic.attach(lg_link.side_a)
        lg_nic_host = lg_link.side_b
        if model_name == "elvis":
            cores = [vmhost.new_sidecore() for _ in range(sidecores)]
            service_cores = cores
            model = ElvisModel(env, host_nic, cores, costs=costs, stats=stats)
            ports = [model.attach_vm(vm) for vm in vms]
            block_attach = model.attach_block_device
        elif model_name == "baseline":
            io_core = vmhost.new_io_core()
            service_cores = [io_core]
            model = BaselineModel(env, host_nic, io_core, costs=costs,
                                  stats=stats)
            ports = [model.attach_vm(vm) for vm in vms]
            block_attach = model.attach_block_device
        else:  # optimum
            model = OptimumModel(env, costs=costs, stats=stats)
            ports = [model.attach_vm(vm, host_nic) for vm in vms]
        models.append(model)

    if with_clients:
        from ..hw.nic import Nic
        lg_nic = Nic(env, "loadgen/nic", endpoint=lg_nic_host)
        loadgen = LoadGenHost(env, "loadgen0", lg_nic, costs)
        loadgens.append(loadgen)
        clients = [loadgen.new_client_endpoint() for _ in range(n_vms)]

    testbed = Testbed(env=env, costs=costs, model_name=model_name, vms=vms,
                      ports=ports, clients=clients, stats=stats,
                      service_cores=service_cores, rng=rng, vmhosts=[vmhost],
                      iohost=iohost, loadgens=loadgens, models=models,
                      _block_attach=block_attach)
    bind_testbed(testbed)
    return testbed


def build_scalability_setup(n_vmhosts: int = 4, vms_per_host: int = 1,
                            workers: int = 1,
                            costs: Optional[CostModel] = None,
                            seed: int = 0,
                            model_numa: bool = True) -> Testbed:
    """The Figure 13 topology: one IOhost serving several VMhosts, each
    paired with its own load generator (vRIO only)."""
    if n_vmhosts <= 0 or vms_per_host <= 0:
        raise ValueError("need positive host and VM counts")
    costs = costs if costs is not None else DEFAULT_COSTS
    env = Environment()
    rng = RngRegistry(seed)
    stats = IoEventStats("vrio")

    iohost = IoHostMachine(env, "iohost", costs)
    worker_cores = [iohost.new_worker() for _ in range(workers)]
    model = VrioModel(env, worker_cores, costs=costs, stats=stats)

    vms: List[Vm] = []
    ports: List[NetPort] = []
    clients: List[ExternalEndpoint] = []
    vmhosts: List[VmHostMachine] = []
    loadgens: List[LoadGenHost] = []

    from ..hw.nic import Nic
    for h in range(n_vmhosts):
        vmhost = VmHostMachine(env, f"vmhost{h}", costs, core_budget=8)
        vmhosts.append(vmhost)
        channel_link = Link(env, gbps=costs.channel_gbps,
                            propagation_ns=costs.propagation_ns,
                            name=f"channel{h}")
        vmhost_nic = vmhost.new_nic("channel")
        vmhost_nic.attach(channel_link.side_a)
        iohost_channel_nic = iohost.new_nic(f"channel{h}")
        iohost_channel_nic.attach(channel_link.side_b)
        channel = model.connect_vmhost(f"vmhost{h}", vmhost_nic,
                                       iohost_channel_nic)

        external_nic = iohost.new_nic(f"external{h}")
        lg_link = Link(env, gbps=costs.link_gbps,
                       propagation_ns=costs.propagation_ns, name=f"lg{h}")
        external_nic.attach(lg_link.side_a)
        lg_nic = Nic(env, f"loadgen{h}/nic", endpoint=lg_link.side_b)
        loadgen = LoadGenHost(env, f"loadgen{h}", lg_nic, costs,
                              model_numa=model_numa)
        loadgens.append(loadgen)

        for _ in range(vms_per_host):
            vm = vmhost.new_vm()
            vms.append(vm)
            ports.append(model.attach_vm(vm, channel, external_nic))
            clients.append(loadgen.new_client_endpoint())

    testbed = Testbed(env=env, costs=costs, model_name="vrio", vms=vms,
                      ports=ports, clients=clients, stats=stats,
                      service_cores=worker_cores, rng=rng, vmhosts=vmhosts,
                      iohost=iohost, loadgens=loadgens, models=[model],
                      _block_attach=model.attach_block_device)
    bind_testbed(testbed)
    return testbed


def build_switched_setup(n_vms: int = 1, workers: int = 1,
                         costs: Optional[CostModel] = None,
                         seed: int = 0) -> Testbed:
    """The §4.6 fault-tolerant arrangement: client traffic flows through
    the rack switch, which steers each F address to the IOhost — and can
    re-steer it to the VMhost after an IOhost failure.

    Extras stashed on the returned testbed:

    * ``testbed.switch`` — the rack switch;
    * ``testbed.switch_ports`` — dict of the LG/IOhost/VMhost endpoints;
    * ``testbed.vmhost_fallback_nic`` — the VMhost's switch-facing NIC
      (where local virtio devices are created on failover);
    * ``testbed.fallback_io_core`` — a spare VMhost core for the local
      vhost service.
    """
    from ..hw.nic import Nic
    from ..hw.switch_fabric import Switch

    costs = costs if costs is not None else DEFAULT_COSTS
    env = Environment()
    rng = RngRegistry(seed)
    stats = IoEventStats("vrio")

    switch = Switch(env, "rack-switch")
    vmhost = VmHostMachine(env, "vmhost0", costs)
    iohost = IoHostMachine(env, "iohost", costs)
    worker_cores = [iohost.new_worker() for _ in range(workers)]
    model = VrioModel(env, worker_cores, costs=costs, stats=stats)

    # Direct channel link VMhost <-> IOhost (cheap wiring stays).
    channel_link = Link(env, gbps=costs.channel_gbps,
                        propagation_ns=costs.propagation_ns, name="channel")
    vmhost_channel_nic = vmhost.new_nic("channel")
    vmhost_channel_nic.attach(channel_link.side_a)
    iohost_channel_nic = iohost.new_nic("channel")
    iohost_channel_nic.attach(channel_link.side_b)
    channel = model.connect_vmhost("vmhost0", vmhost_channel_nic,
                                   iohost_channel_nic)

    # Everyone else hangs off the switch.
    lg_link = Link(env, gbps=costs.link_gbps,
                   propagation_ns=costs.propagation_ns, name="lg")
    lg_end = switch.add_port(lg_link)
    iohost_link = Link(env, gbps=costs.link_gbps,
                       propagation_ns=costs.propagation_ns, name="iohost")
    iohost_end = switch.add_port(iohost_link)
    vmhost_link = Link(env, gbps=costs.link_gbps,
                       propagation_ns=costs.propagation_ns, name="vmhost")
    vmhost_end = switch.add_port(vmhost_link)

    external_nic = iohost.new_nic("external")
    external_nic.attach(iohost_end)
    vmhost_fallback_nic = vmhost.new_nic("fallback")
    vmhost_fallback_nic.attach(vmhost_end)
    lg_nic = Nic(env, "loadgen/nic", endpoint=lg_end)
    loadgen = LoadGenHost(env, "loadgen0", lg_nic, costs)

    vms = [vmhost.new_vm() for _ in range(n_vms)]
    ports = [model.attach_vm(vm, channel, external_nic) for vm in vms]
    clients = [loadgen.new_client_endpoint() for _ in range(n_vms)]
    for port in ports:
        switch.learn(port.mac, iohost_link.side_a)
    for client in clients:
        switch.learn(client.mac, lg_link.side_a)

    testbed = Testbed(env=env, costs=costs, model_name="vrio", vms=vms,
                      ports=ports, clients=clients, stats=stats,
                      service_cores=worker_cores, rng=rng, vmhosts=[vmhost],
                      iohost=iohost, loadgens=[loadgen], models=[model],
                      _block_attach=model.attach_block_device)
    testbed.switch = switch
    testbed.switch_ports = {"loadgen": lg_link.side_a,
                            "iohost": iohost_link.side_a,
                            "vmhost": vmhost_link.side_a}
    testbed.vmhost_fallback_nic = vmhost_fallback_nic
    testbed.fallback_io_core = vmhost.new_io_core()
    bind_testbed(testbed)
    return testbed


def build_consolidation_setup(model_name: str, n_vmhosts: int = 2,
                              vms_per_host: int = 5,
                              sidecores_per_host: int = 1,
                              vrio_workers: int = 1,
                              costs: Optional[CostModel] = None,
                              seed: int = 0) -> Testbed:
    """The Figure 15/16 topology: several VMhosts running block workloads.

    Elvis/baseline get ``sidecores_per_host`` local service cores per
    VMhost; vRIO gets ``vrio_workers`` consolidated workers at one IOhost.
    """
    _check_model_name(model_name)
    if model_name in ("optimum", "vrio_nopoll"):
        raise ValueError(f"{model_name} is not part of this experiment")
    costs = costs if costs is not None else DEFAULT_COSTS
    env = Environment()
    rng = RngRegistry(seed)
    stats = IoEventStats(model_name)

    vms: List[Vm] = []
    ports: List[NetPort] = []
    vmhosts: List[VmHostMachine] = []
    models: List[object] = []
    service_cores: List[Core] = []
    iohost: Optional[IoHostMachine] = None
    attach_map: Dict[str, Callable] = {}

    if model_name == "vrio":
        iohost = IoHostMachine(env, "iohost", costs)
        worker_cores = [iohost.new_worker() for _ in range(vrio_workers)]
        service_cores = worker_cores
        model = VrioModel(env, worker_cores, costs=costs, stats=stats)
        models.append(model)
        for h in range(n_vmhosts):
            vmhost = VmHostMachine(env, f"vmhost{h}", costs)
            vmhosts.append(vmhost)
            channel_link = Link(env, gbps=costs.channel_gbps,
                                propagation_ns=costs.propagation_ns,
                                name=f"channel{h}")
            vmhost_nic = vmhost.new_nic("channel")
            vmhost_nic.attach(channel_link.side_a)
            iohost_channel_nic = iohost.new_nic(f"channel{h}")
            iohost_channel_nic.attach(channel_link.side_b)
            channel = model.connect_vmhost(f"vmhost{h}", vmhost_nic,
                                           iohost_channel_nic)
            external_nic = iohost.new_nic(f"external{h}")
            for _ in range(vms_per_host):
                vm = vmhost.new_vm()
                vms.append(vm)
                ports.append(model.attach_vm(vm, channel, external_nic))
                attach_map[vm.name] = model.attach_block_device
    else:
        for h in range(n_vmhosts):
            vmhost = VmHostMachine(env, f"vmhost{h}", costs)
            vmhosts.append(vmhost)
            nic = vmhost.new_nic("external")  # unused by block workloads
            if model_name == "elvis":
                cores = [vmhost.new_sidecore()
                         for _ in range(sidecores_per_host)]
                service_cores.extend(cores)
                model = ElvisModel(env, nic, cores, costs=costs, stats=stats)
            else:
                io_core = vmhost.new_io_core()
                service_cores.append(io_core)
                model = BaselineModel(env, nic, io_core, costs=costs,
                                      stats=stats)
            models.append(model)
            for _ in range(vms_per_host):
                vm = vmhost.new_vm()
                vms.append(vm)
                ports.append(model.attach_vm(vm))
                attach_map[vm.name] = model.attach_block_device

    def block_attach(vm: Vm, device: StorageDevice):
        return attach_map[vm.name](vm, device)

    testbed = Testbed(env=env, costs=costs, model_name=model_name, vms=vms,
                      ports=ports, clients=[], stats=stats,
                      service_cores=service_cores, rng=rng, vmhosts=vmhosts,
                      iohost=iohost, loadgens=[], models=models,
                      _block_attach=block_attach)
    bind_testbed(testbed)
    return testbed
