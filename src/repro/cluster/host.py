"""Physical machines of the testbed (§5 *Methodology*).

* VMhosts: IBM System x3550 M4 — 2x 8-core 2.2 GHz Xeon E5-2660.
* IOhost:  IBM System x3650 M4 — 2x 8-core 2.7 GHz Xeon E5-2680.
* Load generators: IBM System x3550 M2 — 2x 4-core 2.93 GHz Xeon 5500,
  whose single PCIe bus hangs off socket 0; clients scheduled onto socket 1
  pay a remote-DRAM penalty (the Figure 13a artifact).
"""

from __future__ import annotations

from typing import List, Optional

from ..guest.vm import GuestCosts, Vm
from ..hw.cpu import Core
from ..hw.nic import Nic
from ..iomodels.base import ExternalEndpoint
from ..iomodels.costs import CostModel, DEFAULT_COSTS
from ..sim import Environment

__all__ = ["VmHostMachine", "IoHostMachine", "LoadGenHost", "guest_costs_from"]


def guest_costs_from(costs: CostModel) -> GuestCosts:
    """Project the shared cost model onto guest-side event costs."""
    return GuestCosts(irq_handler_cycles=costs.guest_irq_handler_cycles,
                      eoi_exit_cycles=costs.eoi_exit_cycles,
                      sync_exit_cycles=costs.sync_exit_cycles)


class VmHostMachine:
    """A VMhost: VM cores plus (optionally) local sidecores."""

    def __init__(self, env: Environment, name: str,
                 costs: CostModel = DEFAULT_COSTS, core_budget: int = 16):
        self.env = env
        self.name = name
        self.costs = costs
        self.core_budget = core_budget
        self._core_count = 0
        self.vms: List[Vm] = []
        self.sidecores: List[Core] = []
        self.nics: List[Nic] = []

    def _new_core(self, label: str, poll_mode: bool = False) -> Core:
        if self._core_count >= self.core_budget:
            raise RuntimeError(
                f"{self.name}: core budget of {self.core_budget} exhausted")
        self._core_count += 1
        return Core(self.env, f"{self.name}/{label}", self.costs.vmhost_ghz,
                    poll_mode=poll_mode,
                    poll_dispatch_ns=self.costs.poll_dispatch_ns)

    def new_vm(self, name: Optional[str] = None) -> Vm:
        """Create a 1-VCPU guest pinned to a fresh VMcore."""
        vm_name = name or f"{self.name}-vm{len(self.vms)}"
        vcpu = self._new_core(f"vmcore{len(self.vms)}")
        vm = Vm(self.env, vm_name, vcpu, costs=guest_costs_from(self.costs))
        self.vms.append(vm)
        return vm

    def new_sidecore(self) -> Core:
        """Dedicate a core to I/O polling (Elvis)."""
        core = self._new_core(f"sidecore{len(self.sidecores)}",
                              poll_mode=True)
        self.sidecores.append(core)
        return core

    def new_io_core(self) -> Core:
        """A spare core for baseline vhost threads (not polling)."""
        return self._new_core("iocore")

    def new_nic(self, label: str = "nic") -> Nic:
        nic = Nic(self.env, f"{self.name}/{label}{len(self.nics)}")
        self.nics.append(nic)
        return nic


class IoHostMachine:
    """The IOhost: worker sidecores + channel/external NICs."""

    def __init__(self, env: Environment, name: str = "iohost",
                 costs: CostModel = DEFAULT_COSTS, core_budget: int = 16):
        self.env = env
        self.name = name
        self.costs = costs
        self.core_budget = core_budget
        self.workers: List[Core] = []
        self.nics: List[Nic] = []

    def new_worker(self, poll_mode: bool = True,
                   idle_policy: Optional[str] = None) -> Core:
        """A worker sidecore.  ``idle_policy="mwait"`` trades ~1.5 us of
        wakeup latency for a cheap idle state (§4.6 Energy)."""
        if len(self.workers) >= self.core_budget:
            raise RuntimeError(
                f"{self.name}: core budget of {self.core_budget} exhausted")
        core = Core(self.env, f"{self.name}/worker{len(self.workers)}",
                    self.costs.iohost_ghz, poll_mode=poll_mode,
                    poll_dispatch_ns=self.costs.poll_dispatch_ns,
                    idle_policy=idle_policy)
        self.workers.append(core)
        return core

    def new_nic(self, label: str = "nic") -> Nic:
        nic = Nic(self.env, f"{self.name}/{label}{len(self.nics)}")
        self.nics.append(nic)
        return nic


class LoadGenHost:
    """A load-generator machine with the paper's NUMA quirk.

    Two 4-core sockets; the NIC's PCIe bus is local to socket 0.  Core 0 is
    reserved for interrupt handling (as in §5), so client processes occupy
    cores 1..7 in order — the 4th simultaneous client of a generator lands
    on socket 1 and dilates (Fig. 13a).
    """

    def __init__(self, env: Environment, name: str, nic: Nic,
                 costs: CostModel = DEFAULT_COSTS, cores_per_socket: int = 4,
                 sockets: int = 2, model_numa: bool = True):
        self.env = env
        self.name = name
        self.nic = nic
        self.costs = costs
        self.cores_per_socket = cores_per_socket
        self.total_cores = cores_per_socket * sockets
        self.model_numa = model_numa
        self._cores: List[Core] = []
        self._next_client = 0

    def _client_core(self, index: int) -> Core:
        # Core 0 reserved; clients use 1..total-1 then wrap.
        core_index = 1 + index % (self.total_cores - 1)
        while len(self._cores) <= core_index:
            self._cores.append(Core(self.env,
                                    f"{self.name}/core{len(self._cores)}",
                                    self.costs.loadgen_ghz))
        return self._cores[core_index]

    def _dilation(self, core_index: int) -> float:
        if not self.model_numa:
            return 1.0
        on_remote_socket = core_index >= self.cores_per_socket
        return self.costs.loadgen_numa_remote_dilation if on_remote_socket else 1.0

    def new_client_endpoint(self) -> ExternalEndpoint:
        """A client process (netperf/ab/memslap instance) on the next core."""
        index = self._next_client
        self._next_client += 1
        core_index = 1 + index % (self.total_cores - 1)
        core = self._client_core(index)
        dilation = self._dilation(core_index)
        per_msg = int(self.costs.loadgen_per_msg_cycles * dilation)
        endpoint = ExternalEndpoint(self.env, f"{self.name}/client{index}",
                                    core, self.nic.create_function(f"client{index}"),
                                    per_msg_cycles=per_msg)
        endpoint.numa_dilation = dilation
        return endpoint
