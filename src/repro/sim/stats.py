"""Measurement primitives: counters, histograms, utilization, time series.

All statistics are cheap to update on the simulation hot path and are only
summarized on demand.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from .engine import Environment

__all__ = [
    "Counter",
    "Histogram",
    "TimeWeighted",
    "UtilizationTracker",
    "TimeSeries",
    "percentile",
]


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile ``q`` in [0, 100] of sorted data."""
    if not sorted_values:
        raise ValueError("percentile of empty data")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile out of range: {q}")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    rank = (q / 100.0) * (len(sorted_values) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return float(sorted_values[low])
    frac = rank - low
    return float(sorted_values[low]) * (1 - frac) + float(sorted_values[high]) * frac


class Counter:
    """A named monotonic event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {self.value})"


class Histogram:
    """Collects samples; summarizes mean/percentiles on demand.

    The sorted view backing every percentile query is computed once and
    cached until the next ``add`` — post-processing reads many
    percentiles from the same frozen sample set, and re-sorting the full
    list per query made that path O(n log n) each time.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._samples: List[float] = []
        self._sorted: Optional[List[float]] = None

    def add(self, value: float) -> None:
        self._samples.append(value)
        self._sorted = None

    def _sorted_samples(self) -> List[float]:
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return self._sorted

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[float]:
        return self._samples

    def mean(self) -> float:
        if not self._samples:
            raise ValueError(f"histogram {self.name!r} is empty")
        return sum(self._samples) / len(self._samples)

    def stdev(self) -> float:
        n = len(self._samples)
        if n < 2:
            return 0.0
        mu = self.mean()
        return math.sqrt(sum((x - mu) ** 2 for x in self._samples) / (n - 1))

    def min(self) -> float:
        return min(self._samples)

    def max(self) -> float:
        return max(self._samples)

    def percentile(self, q: float) -> float:
        return percentile(self._sorted_samples(), q)

    def percentiles(self, qs: Sequence[float]) -> Dict[float, float]:
        data = self._sorted_samples()
        return {q: percentile(data, q) for q in qs}

    def summary(self) -> Dict[str, Optional[float]]:
        """Count/mean/p50/p95/p99/max digest of the samples.

        Unlike the raising accessors above, an empty histogram summarizes
        to ``count=0`` with ``None`` statistics instead of an error, so
        reports over idle components stay renderable.
        """
        if not self._samples:
            return {"count": 0, "mean": None, "p50": None, "p95": None,
                    "p99": None, "max": None}
        data = self._sorted_samples()
        return {
            "count": len(data),
            "mean": sum(data) / len(data),
            "p50": percentile(data, 50),
            "p95": percentile(data, 95),
            "p99": percentile(data, 99),
            "max": float(data[-1]),
        }


class TimeWeighted:
    """Tracks the time-weighted average of a piecewise-constant value."""

    def __init__(self, env: Environment, initial: float = 0.0) -> None:
        self.env = env
        self._value = initial
        self._last_change = env.now
        self._weighted_sum = 0.0
        self._start = env.now

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float) -> None:
        now = self.env.now
        self._weighted_sum += self._value * (now - self._last_change)
        self._value = value
        self._last_change = now

    def add(self, delta: float) -> None:
        self.set(self._value + delta)

    def average(self) -> float:
        """Time-weighted average from creation until now."""
        now = self.env.now
        total = now - self._start
        if total == 0:
            return self._value
        weighted = self._weighted_sum + self._value * (now - self._last_change)
        return weighted / total


class UtilizationTracker:
    """Tracks the busy fraction of a serving resource (e.g. a core).

    Distinguishes *busy* (executing any work) from *useful* (executing work
    that is not idle polling), which is what Figure 15 of the paper plots:
    a polling sidecore is 100% busy but may be mostly useless.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._busy_since: Optional[int] = None
        self._busy_ns = 0
        self._useful_ns = 0
        self._start = env.now

    def begin_busy(self) -> None:
        if self._busy_since is None:
            self._busy_since = self.env.now

    def end_busy(self, useful: bool = True) -> None:
        if self._busy_since is None:
            return
        span = self.env.now - self._busy_since
        self._busy_ns += span
        if useful:
            self._useful_ns += span
        self._busy_since = None

    def account(self, duration_ns: int, useful: bool = True) -> None:
        """Directly account ``duration_ns`` of completed busy time."""
        self._busy_ns += duration_ns
        if useful:
            self._useful_ns += duration_ns

    @property
    def busy_ns(self) -> int:
        extra = 0
        if self._busy_since is not None:
            extra = self.env.now - self._busy_since
        return self._busy_ns + extra

    @property
    def useful_ns(self) -> int:
        return self._useful_ns

    def busy_fraction(self) -> float:
        total = self.env.now - self._start
        return self.busy_ns / total if total else 0.0

    def useful_fraction(self) -> float:
        total = self.env.now - self._start
        return self._useful_ns / total if total else 0.0

    def reset(self) -> None:
        self._busy_ns = 0
        self._useful_ns = 0
        self._start = self.env.now
        if self._busy_since is not None:
            self._busy_since = self.env.now


class TimeSeries:
    """Periodic samples of a callable, e.g. utilization over time."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.times: List[int] = []
        self.values: List[float] = []

    def record(self, time_ns: int, value: float) -> None:
        self.times.append(time_ns)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def mean(self) -> float:
        if not self.values:
            raise ValueError(f"time series {self.name!r} is empty")
        return sum(self.values) / len(self.values)

    def as_pairs(self) -> List[Tuple[int, float]]:
        return list(zip(self.times, self.values))
