"""Waitable queues and resources for the simulation kernel.

:class:`Store` is an unbounded-or-bounded FIFO of Python objects with
blocking ``get``/``put``; :class:`Resource` is a counting resource with FIFO
admission.  Both hand out plain :class:`~repro.sim.engine.Event` objects so
they compose with ``yield`` inside processes.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from .engine import Environment, Event, SimulationError

__all__ = ["Store", "Resource", "PriorityStore"]


class Store:
    """A FIFO buffer of items with waitable get/put.

    With ``capacity=None`` the store is unbounded and ``put`` always
    succeeds immediately.  Otherwise ``put`` blocks while full.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise SimulationError("capacity must be positive or None")
        self.env = env
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple] = deque()  # (event, item)

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> Deque[Any]:
        """The buffered items (read-only view by convention)."""
        return self._items

    def put(self, item: Any) -> Event:
        """Return an event that triggers once ``item`` is buffered."""
        event = Event(self.env)
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
            self._wake_getter()
        else:
            self._putters.append((event, item))
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False if the store is full."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        self._wake_getter()
        return True

    def get(self) -> Event:
        """Return an event that triggers with the next item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> tuple:
        """Non-blocking get; returns ``(ok, item)``."""
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            return True, item
        return False, None

    def _wake_getter(self) -> None:
        while self._getters and self._items:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            getter.succeed(self._items.popleft())
            self._admit_putter()

    def _admit_putter(self) -> None:
        while self._putters:
            if self.capacity is not None and len(self._items) >= self.capacity:
                return
            event, item = self._putters.popleft()
            if event.triggered:
                continue
            self._items.append(item)
            event.succeed()
            self._wake_getter()


class PriorityStore(Store):
    """A Store that yields the smallest item first.

    Items must be orderable; ties resolve by insertion order.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None) -> None:
        super().__init__(env, capacity)
        self._counter = 0

    def put(self, item: Any) -> Event:
        self._counter += 1
        return super().put((item, self._counter))

    def try_put(self, item: Any) -> bool:
        self._counter += 1
        return super().try_put((item, self._counter))

    def get(self) -> Event:
        self._sort()
        event = super().get()
        if event.triggered:
            event._value = event._value[0]
        else:
            original = event

            # Unwrap on delivery: intercept via callback ordering is fragile;
            # instead wrap succeed by post-processing in _wake_getter.  We
            # keep it simple: PriorityStore stores (item, seq) and getters
            # receive (item, seq); unwrap here for the immediate path and in
            # get_value for the deferred path.
            def unwrap(ev: Event, _orig: Event = original) -> None:
                ev._value = ev._value[0]

            event.prepend_callback(unwrap)
        return event

    def _sort(self) -> None:
        self._items = deque(sorted(self._items))


class Resource:
    """A counting resource with FIFO admission.

    Usage::

        req = resource.request()
        yield req
        ...critical section...
        resource.release()
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that triggers when a slot is acquired."""
        event = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release one previously acquired slot."""
        if self._in_use <= 0:
            raise SimulationError("release without matching request")
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.triggered:
                continue
            waiter.succeed()
            return
        self._in_use -= 1
