"""Deterministic random-number streams.

Every stochastic component draws from its own named substream derived from a
single master seed, so adding a component never perturbs the draws of
another and whole experiments are bit-reproducible.
"""

from __future__ import annotations

import random
from typing import Dict

__all__ = ["RngRegistry"]


class RngRegistry:
    """Hands out independent, reproducible ``random.Random`` substreams.

    Substreams are keyed by name; the same ``(master_seed, name)`` pair
    always yields the same sequence regardless of creation order.
    ``random.Random`` seeds strings via SHA-512, which is stable across
    processes (unlike ``hash()``).
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the substream called ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            rng = random.Random(f"{self.master_seed}/{name}")
            self._streams[name] = rng
        return rng

    def exponential(self, name: str, mean: float) -> float:
        """One exponential draw with the given mean from substream ``name``."""
        return self.stream(name).expovariate(1.0 / mean)

    def uniform(self, name: str, low: float, high: float) -> float:
        return self.stream(name).uniform(low, high)
