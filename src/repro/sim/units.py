"""Time/data unit helpers.  Simulation time is integer nanoseconds."""

from __future__ import annotations

__all__ = [
    "NS", "US", "MS", "SEC",
    "KB", "MB", "GB",
    "ns_to_us", "us", "ms", "seconds",
    "gbps_to_bytes_per_ns", "bytes_per_ns_to_gbps", "wire_time_ns",
]

NS = 1
US = 1_000
MS = 1_000_000
SEC = 1_000_000_000

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


def us(value: float) -> int:
    """Microseconds -> integer nanoseconds."""
    return int(round(value * US))


def ms(value: float) -> int:
    """Milliseconds -> integer nanoseconds."""
    return int(round(value * MS))


def seconds(value: float) -> int:
    """Seconds -> integer nanoseconds."""
    return int(round(value * SEC))


def ns_to_us(value_ns: float) -> float:
    """Nanoseconds -> microseconds (float)."""
    return value_ns / US


def gbps_to_bytes_per_ns(gbps: float) -> float:
    """Link rate in Gbit/s -> bytes per nanosecond."""
    return gbps * 1e9 / 8 / 1e9


def bytes_per_ns_to_gbps(bytes_per_ns: float) -> float:
    return bytes_per_ns * 8


def wire_time_ns(size_bytes: int, gbps: float) -> int:
    """Serialization delay of ``size_bytes`` on a ``gbps`` link, in ns."""
    if gbps <= 0:
        raise ValueError(f"link rate must be positive, got {gbps}")
    return max(1, int(round(size_bytes * 8 / gbps)))
