"""Discrete-event simulation kernel.

A small, fast, generator-based event engine in the style of SimPy, built for
the vRIO reproduction.  Time is kept as an integer number of nanoseconds so
that event ordering is exact and runs are bit-reproducible.

The core concepts:

* :class:`Environment` owns the clock and the pending-event queue.
* :class:`Event` is a one-shot waitable.  Processes wait on events by
  yielding them.
* :class:`Process` wraps a generator.  Each ``yield`` suspends the process
  until the yielded event triggers; the event's value becomes the result of
  the ``yield`` expression.  A process is itself an event that triggers when
  the generator returns (with the generator's return value).
* :class:`Timeout` is an event that triggers after a fixed delay.

Scheduler
---------
The default scheduler splits pending work across two structures:

* a plain FIFO deque of *ready* items — events triggered at the current
  time and zero-delay ``call_soon`` entries (the bulk of per-packet
  traffic: descriptor completions, queue hand-offs);
* a :class:`~repro.sim.calqueue.CalendarQueue` of future timers.

At any timestamp every calendar entry precedes every ready entry in the
legacy heap's ``(time, seq)`` order — calendar entries at time ``t`` were
scheduled before the clock reached ``t``, ready entries only after — so
draining "calendar at ``t``, then ready" reproduces the heap's schedule
exactly.  The pre-overhaul binary-heap scheduler is retained behind
``Environment(scheduler="heap")`` and is the reference implementation for
the differential test suite.

Example
-------
>>> env = Environment()
>>> def proc(env):
...     yield env.timeout(5)
...     return env.now
>>> p = env.process(proc(env))
>>> env.run()
>>> p.value
5
"""

from __future__ import annotations

import heapq
from collections import deque
from contextlib import contextmanager
from typing import (Any, Callable, Deque, Generator, Iterable, Iterator,
                    List, Optional, Tuple, Union)

from .calqueue import CalendarQueue

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "SimulationError",
    "SCHEDULERS",
    "default_scheduler",
    "set_default_scheduler",
    "scheduler_override",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


# Event states.
_PENDING = 0
_TRIGGERED = 1  # scheduled, value fixed, callbacks not yet run
_PROCESSED = 2  # callbacks have run


class Event:
    """A one-shot occurrence that processes can wait for.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    *triggers* it, scheduling its callbacks to run at the current simulation
    time.  Waiting on an already-processed event resumes the waiter
    immediately (on the next scheduling step) with the stored value.

    Callbacks live in a flyweight pair — a single inline slot (``_cb0``,
    the common case: one waiter per event) plus an overflow list that is
    only allocated for the second waiter — so the per-packet event churn
    does not allocate a list per event.  Use :meth:`add_callback`,
    :meth:`prepend_callback` and :meth:`_discard_callback` to manage them;
    the :attr:`callbacks` view is read-only.
    """

    __slots__ = ("env", "_cb0", "_cbs", "_value", "_state", "_ok")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._cb0: Optional[Callable[["Event"], None]] = None
        self._cbs: Optional[List[Callable[["Event"], None]]] = None
        self._value: Any = None
        self._state = _PENDING
        self._ok = True

    # -- inspection --------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value (callbacks may not have run)."""
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (not failed)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is still pending."""
        if self._state == _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    @property
    def callbacks(self) -> Tuple[Callable[["Event"], None], ...]:
        """Read-only view of the pending callbacks, in firing order."""
        first = self._cb0
        rest = self._cbs
        if first is None:
            return tuple(rest) if rest else ()
        if rest:
            return (first,) + tuple(rest)
        return (first,)

    # -- triggering --------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        self._value = value
        self._state = _TRIGGERED
        self.env._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to raise in waiters."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._value = exception
        self._ok = False
        self._state = _TRIGGERED
        self.env._schedule_event(self)
        return self

    def _run_callbacks(self) -> None:
        self._state = _PROCESSED
        cb = self._cb0
        if cb is not None:
            self._cb0 = None
            cb(self)
        cbs = self._cbs
        if cbs is not None:
            self._cbs = None
            for cb in cbs:
                cb(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed."""
        if self._state == _PROCESSED:
            # Already done: deliver on the next scheduling step to preserve
            # run-to-completion semantics.
            self.env.call_soon(lambda: callback(self))
        elif self._cbs is not None:
            self._cbs.append(callback)
        elif self._cb0 is None:
            self._cb0 = callback
        else:
            self._cbs = [callback]

    def prepend_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback`` to fire before any already-registered one."""
        first = self._cb0
        if first is None and not self._cbs:
            self._cb0 = callback
            return
        cbs = self._cbs if self._cbs is not None else []
        if first is not None:
            cbs.insert(0, first)
        self._cbs = cbs
        self._cb0 = callback

    def _discard_callback(self, callback: Callable[["Event"], None]) -> None:
        """Remove one registration of ``callback`` (no-op if absent)."""
        if self._cb0 == callback:
            self._cb0 = None
            return
        cbs = self._cbs
        if cbs is not None:
            try:
                cbs.remove(callback)
            except ValueError:
                pass


class Timeout(Event):
    """An event that triggers ``delay`` nanoseconds in the future."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: int, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Inlined Event.__init__: timeouts are the per-packet allocation
        # hot spot, and they are born triggered.
        self.env = env
        self._cb0 = None
        self._cbs = None
        self._value = value
        self._state = _TRIGGERED
        self._ok = True
        self.delay = delay
        env._schedule_timeout(self, delay)


class Process(Event):
    """A running generator; also an event that triggers on completion."""

    __slots__ = ("generator", "_waiting_on", "name")

    def __init__(self, env: "Environment", generator: Generator,
                 name: str = "") -> None:
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick off on the next scheduling step.
        env.call_soon(lambda: self._resume(None, None))

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            return
        waiting = self._waiting_on
        if waiting is not None:
            # Detach from the event we were waiting on.
            waiting._discard_callback(self._on_event)
            self._waiting_on = None
        self.env.call_soon(lambda: self._resume(None, Interrupt(cause)))

    # -- plumbing ----------------------------------------------------------

    def _on_event(self, event: Event) -> None:
        self._waiting_on = None
        if event.ok:
            self._resume(event.value, None)
        else:
            self._resume(None, event.value)

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if not self.is_alive:
            return
        try:
            if exc is not None:
                target = self.generator.throw(exc)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # An unhandled interrupt terminates the process quietly.
            self.succeed(None)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, not an Event")
        if target.env is not self.env:
            raise SimulationError("yielded event belongs to another Environment")
        self._waiting_on = target
        target.add_callback(self._on_event)


class AllOf(Event):
    """Triggers when all given events have succeeded.

    Value is the list of the events' values in the given order.  Fails as
    soon as any constituent fails.
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed([])
            return
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        if not event.ok:
            # Detach from the still-outstanding children so a settled AllOf
            # holds no callbacks on long-lived events.
            for ev in self._events:
                if ev is not event:
                    ev._discard_callback(self._on_child)
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e.value for e in self._events])


class AnyOf(Event):
    """Triggers when the first of the given events does.

    Value is a ``(event, value)`` tuple identifying the winner.
    """

    __slots__ = ("_events",)

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        if not self._events:
            raise SimulationError("AnyOf requires at least one event")
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._state != _PENDING:
            return
        # Detach from the losers: without this every losing event keeps the
        # settled AnyOf's callback registered forever, pinning it (and
        # firing into it) long after the race is decided.
        for ev in self._events:
            if ev is not event:
                ev._discard_callback(self._on_child)
        if event.ok:
            self.succeed((event, event.value))
        else:
            self.fail(event.value)


SCHEDULERS = ("calendar", "heap")

_DEFAULT_SCHEDULER: List[str] = ["calendar"]


def default_scheduler() -> str:
    """The scheduler new :class:`Environment` instances use by default."""
    return _DEFAULT_SCHEDULER[0]


def set_default_scheduler(name: str) -> str:
    """Set the process-wide default scheduler; returns the previous one."""
    if name not in SCHEDULERS:
        raise SimulationError(
            f"unknown scheduler {name!r}; expected one of {SCHEDULERS}")
    previous = _DEFAULT_SCHEDULER[0]
    _DEFAULT_SCHEDULER[0] = name
    return previous


@contextmanager
def scheduler_override(name: str) -> Iterator[None]:
    """Force every :class:`Environment` built in this block onto ``name``.

    The differential test harness uses this to steer scenario builders —
    which construct their own environments internally — onto the legacy
    heap scheduler without threading a parameter through every layer.
    """
    previous = set_default_scheduler(name)
    try:
        yield
    finally:
        set_default_scheduler(previous)


class Environment:
    """The simulation clock and scheduler.

    Time is an integer count of nanoseconds since the start of the run.

    ``scheduler`` selects the pending-queue implementation: ``"calendar"``
    (default) is the bucket-queue fast path, ``"heap"`` the pre-overhaul
    binary heap kept as the differential-testing reference.  Both produce
    byte-identical schedules.
    """

    # Heap entries: (time, seq, event-or-None, callable-or-None); exactly
    # one of the last two is set.
    _HeapEntry = Tuple[int, int, Optional[Event], Optional[Callable[[], None]]]

    def __init__(self, scheduler: Optional[str] = None) -> None:
        if scheduler is None:
            scheduler = _DEFAULT_SCHEDULER[0]
        if scheduler not in SCHEDULERS:
            raise SimulationError(
                f"unknown scheduler {scheduler!r}; expected one of {SCHEDULERS}")
        self._now: int = 0
        self._seq: int = 0  # tie-breaker preserving FIFO order at equal times
        self._monitors: List[Any] = []
        # Split views of _monitors by capability; add_monitor/remove_monitor
        # keep all three in sync.  _monitors stays the union because its
        # emptiness drives the fast/monitored loop switch.
        self._step_monitors: List[Any] = []
        self._advance_monitors: List[Any] = []
        self.scheduler = scheduler
        if scheduler == "heap":
            self._heap: List[Environment._HeapEntry] = []
            # Route every scheduling/execution entry point to the legacy
            # implementations; the calendar structures are never created.
            self._schedule_event = self._schedule_event_heap  # type: ignore[method-assign]
            self._schedule_timeout = self._schedule_timeout_heap  # type: ignore[method-assign]
            self.call_soon = self._call_soon_heap  # type: ignore[method-assign]
            self.step = self._step_heap  # type: ignore[method-assign]
            self.run = self._run_heap  # type: ignore[method-assign]
            self.peek = self._peek_heap  # type: ignore[method-assign]
        else:
            # Ready lane: items due at the current time, in FIFO order —
            # triggered events and zero-delay call_soon entries.
            self._ready: Deque[Union[Event, Callable[[], None]]] = deque()
            self._cal = CalendarQueue()

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    # -- monitoring --------------------------------------------------------

    def add_monitor(self, monitor: Any) -> None:
        """Attach an execution monitor.

        A monitor exposes either or both of two hooks.  ``on_step(now,
        item)`` is called after every scheduler step with the (possibly
        advanced) clock and the processed item — an :class:`Event` or,
        for ``call_soon`` entries, the bare callable.  ``on_advance(now)``
        is called whenever the clock strictly advances, *before* any item
        at the new timestamp dispatches — the hook windowed-telemetry
        timelines hang off, guaranteeing every observed sample is
        strictly older than ``now``.  The run loop is specialized at
        attach/detach time: with no monitors attached the engine runs a
        loop containing no monitor test at all, so production runs pay
        nothing.  Attaching mid-run takes effect at the next clock
        advance.
        """
        if monitor not in self._monitors:
            self._monitors.append(monitor)
            if hasattr(monitor, "on_step"):
                self._step_monitors.append(monitor)
            if hasattr(monitor, "on_advance"):
                self._advance_monitors.append(monitor)

    def remove_monitor(self, monitor: Any) -> None:
        """Detach a previously attached monitor (no-op if absent)."""
        for group in (self._monitors, self._step_monitors,
                      self._advance_monitors):
            try:
                group.remove(monitor)
            except ValueError:
                pass

    # -- scheduling --------------------------------------------------------

    # The three scheduling entry points below duplicate CalendarQueue.push's
    # common case (a future bucket within the horizon, ahead of the scan) to
    # save the extra call frame on the per-timer hot path; anything else
    # falls through to the real push.  The condition mirrors push() exactly.

    def _schedule_event(self, event: Event, delay: int = 0) -> None:
        if delay:
            seq = self._seq + 1
            self._seq = seq
            time = self._now + delay
            cal = self._cal
            bidx = time >> cal._shift
            if cal._cursor < bidx < cal._floor + cal._nbuckets:
                free = cal._free
                if free:
                    e = free.pop()
                    e[0] = time
                    e[1] = seq
                    e[2] = event
                else:
                    e = [time, seq, event]
                cal._buckets[bidx & cal._mask].append(e)
                count = cal._count + 1
                cal._count = count
                if count > cal._grow_at:
                    cal._maybe_grow(count)
                return
            cal.push(time, seq, event)
        else:
            self._ready.append(event)

    def _schedule_timeout(self, event: Event, delay: int) -> None:
        if delay:
            seq = self._seq + 1
            self._seq = seq
            time = self._now + delay
            cal = self._cal
            bidx = time >> cal._shift
            if cal._cursor < bidx < cal._floor + cal._nbuckets:
                free = cal._free
                if free:
                    e = free.pop()
                    e[0] = time
                    e[1] = seq
                    e[2] = event
                else:
                    e = [time, seq, event]
                cal._buckets[bidx & cal._mask].append(e)
                count = cal._count + 1
                cal._count = count
                if count > cal._grow_at:
                    cal._maybe_grow(count)
                return
            cal.push(time, seq, event)
        else:
            self._ready.append(event)

    def call_soon(self, fn: Callable[[], None], delay: int = 0) -> None:
        """Run ``fn()`` after ``delay`` ns (0 = this time step, FIFO)."""
        if delay:
            seq = self._seq + 1
            self._seq = seq
            time = self._now + delay
            cal = self._cal
            bidx = time >> cal._shift
            if cal._cursor < bidx < cal._floor + cal._nbuckets:
                free = cal._free
                if free:
                    e = free.pop()
                    e[0] = time
                    e[1] = seq
                    e[2] = fn
                else:
                    e = [time, seq, fn]
                cal._buckets[bidx & cal._mask].append(e)
                count = cal._count + 1
                cal._count = count
                if count > cal._grow_at:
                    cal._maybe_grow(count)
                return
            cal.push(time, seq, fn)
        else:
            self._ready.append(fn)

    def schedule_at(self, at_ns: int, fn: Callable[[], None]) -> None:
        """Run ``fn()`` at the absolute time ``at_ns``.

        The hook for externally planned occurrences — fault injections,
        campaign phase marks — that are specified in wall-clock simulation
        time rather than relative to the caller.
        """
        if at_ns < self._now:
            raise SimulationError(
                f"cannot schedule at {at_ns} ns; clock is at {self._now} ns")
        self.call_soon(fn, delay=at_ns - self._now)

    # -- factories ---------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start running ``generator`` as a simulation process."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution ---------------------------------------------------------

    def step(self) -> None:
        """Process the single next scheduled item."""
        cal = self._cal
        when = cal.min_time()
        if when is not None and when == self._now:
            # Calendar entries at the current time precede every ready
            # item in (time, seq) order (see the module docstring).
            item = cal.pop()[2]
        elif self._ready:
            when = self._now
            item = self._ready.popleft()
        elif when is None:
            raise IndexError("step from an empty schedule")
        else:
            if when < self._now:
                raise SimulationError("time went backwards")
            self._now = when
            for monitor in self._advance_monitors:
                monitor.on_advance(when)
            item = cal.pop()[2]
        if isinstance(item, Event):
            item._run_callbacks()
        else:
            item()
        if self._step_monitors:
            for monitor in self._step_monitors:
                monitor.on_step(when, item)

    def run(self, until: Optional[int] = None) -> None:
        """Run until the schedule empties or the clock would pass ``until``.

        When ``until`` is given the clock is left exactly at ``until`` and
        any events scheduled for later remain pending.
        """
        if until is not None and until < self._now:
            raise SimulationError("cannot run backwards in time")
        while True:
            if self._monitors:
                if self._run_monitored(until):
                    return
            elif self._run_fast(until):
                return

    def _run_fast(self, until: Optional[int]) -> bool:
        """Monitor-free run loop; returns False to switch loops.

        This is the engine's hot path, and it deliberately reaches into
        :class:`CalendarQueue` internals: after ``min_time()`` positions
        the cursor bucket, the whole run of entries at that timestamp is
        consumed straight out of the bucket list with zero per-item call
        frames.  The coupling is one-way and confined to this method (plus
        the invariants spelled out below); everything outside ``repro.sim``
        goes through the public API (enforced by simlint).

        Invariants honored while draining inline:

        * ``cal._pos``/``cal._count`` are updated *before* each dispatch —
          callbacks may push into the active bucket (``insort`` keyed off
          ``_pos``) or trigger a rebuild (which compacts ``b[:_pos]``).
        * A rebuild during dispatch replaces ``cal._buckets``; the identity
          check detects it and re-derives the position via ``min_time()``.
        * No push can land at the draining timestamp (delays are strictly
          positive; zero-delay work goes to the ready deque), so the run's
          extent is fixed once entered — ready items produced by the
          dispatches run strictly after the run, preserving heap order.
        """
        ready = self._ready
        cal = self._cal
        min_time = cal.min_time
        monitors = self._monitors
        while True:
            while ready:
                item = ready.popleft()
                if isinstance(item, Event):
                    # Inlined Event._run_callbacks.
                    item._state = _PROCESSED
                    cb = item._cb0
                    if cb is not None:
                        item._cb0 = None
                        cb(item)
                    cbs = item._cbs
                    if cbs is not None:
                        item._cbs = None
                        for cb in cbs:
                            cb(item)
                else:
                    item()
            if monitors:
                return False
            # Inlined min_time() fast path: the cursor bucket is mid-drain
            # and its head is not preempted by the overflow heap.  When it
            # applies, the drain loop below reuses the derived position.
            t = None
            if cal._active:
                b = cal._buckets[cal._cursor & cal._mask]
                pos = cal._pos
                if pos < len(b):
                    far = cal._far
                    t0 = b[pos][0]
                    if not far or far[0][0] > t0:
                        t = t0
            if t is None:
                t = min_time()
                if t is None:
                    if until is not None:
                        self._now = until
                    return True
            if until is not None and t > until:
                self._now = until
                return True
            if t < self._now:
                raise SimulationError("time went backwards")
            self._now = t
            while True:
                cal._floor = cal._cursor
                bref = cal._buckets
                b = bref[cal._cursor & cal._mask]
                pos = cal._pos
                n = len(b)
                clean = True
                while pos < n:
                    e = b[pos]
                    if e[0] != t:
                        break
                    pos += 1
                    cal._pos = pos
                    cal._count -= 1
                    item = e[2]
                    if isinstance(item, Event):
                        item._state = _PROCESSED
                        cb = item._cb0
                        if cb is not None:
                            item._cb0 = None
                            cb(item)
                        cbs = item._cbs
                        if cbs is not None:
                            item._cbs = None
                            for cb in cbs:
                                cb(item)
                    else:
                        item()
                    if cal._buckets is not bref:
                        # A push during dispatch rebuilt the queue; local
                        # position state is stale.
                        clean = False
                        break
                    n = len(b)
                if clean or min_time() != t:
                    break

    def _run_monitored(self, until: Optional[int]) -> bool:
        """Per-step run loop notifying monitors; returns False to switch.

        Cal time steps are retired in bulk with ``drain_due`` — delays
        are strictly positive, so nothing dispatched from the batch can
        land at the drained timestamp — then dispatched one item at a
        time with a per-step monitor notification.  The global dispatch
        order (cal entries at the current timestamp before ready
        entries, FIFO within each) is identical to the fast loop's.
        """
        ready = self._ready
        cal = self._cal
        min_time = cal.min_time
        drain_due = cal.drain_due
        monitors = self._monitors
        step_monitors = self._step_monitors
        advance_monitors = self._advance_monitors
        batch: List[Any] = []
        while monitors:
            t = min_time()
            if t is not None and t <= self._now:
                if t < self._now:
                    raise SimulationError("time went backwards")
                drain_due(None, batch)
            elif ready:
                item = ready.popleft()
                if isinstance(item, Event):
                    item._run_callbacks()
                else:
                    item()
                when = self._now
                for monitor in step_monitors:
                    monitor.on_step(when, item)
                continue
            elif t is None:
                if until is not None and until > self._now:
                    self._now = until
                    for monitor in advance_monitors:
                        monitor.on_advance(until)
                return True
            else:
                if until is not None and t > until:
                    if until > self._now:
                        self._now = until
                        for monitor in advance_monitors:
                            monitor.on_advance(until)
                    return True
                self._now = t
                # Advance hooks fire before anything at t dispatches, so
                # a timeline closing windows here sees only state produced
                # strictly before t.
                for monitor in advance_monitors:
                    monitor.on_advance(t)
                drain_due(None, batch)
            when = t
            # Dispatch the whole batch even if a callback detaches the
            # last monitor mid-way; the notification check per item keeps
            # attach/detach-during-dispatch semantics exact.
            for item in batch:
                if isinstance(item, Event):
                    item._run_callbacks()
                else:
                    item()
                if monitors:
                    for monitor in step_monitors:
                        monitor.on_step(when, item)
            del batch[:]
        return False

    def peek(self) -> Optional[int]:
        """Time of the next scheduled item, or None if none is pending."""
        if self._ready:
            return self._now
        return self._cal.min_time()

    # -- legacy heap scheduler ---------------------------------------------
    # The pre-overhaul implementation, byte-for-byte semantics, selected
    # with Environment(scheduler="heap").  It is the reference model the
    # differential suite runs every scenario against.

    def _schedule_event_heap(self, event: Event, delay: int = 0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, event, None))

    def _schedule_timeout_heap(self, event: Event, delay: int) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, event, None))

    def _call_soon_heap(self, fn: Callable[[], None], delay: int = 0) -> None:
        """Run ``fn()`` after ``delay`` ns (0 = this time step, FIFO)."""
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, None, fn))

    def _step_heap(self) -> None:
        """Process the single next scheduled item."""
        when, _seq, event, fn = heapq.heappop(self._heap)
        if when < self._now:
            raise SimulationError("time went backwards")
        if when > self._now:
            self._now = when
            for monitor in self._advance_monitors:
                monitor.on_advance(when)
        if event is not None:
            event._run_callbacks()
        else:
            assert fn is not None  # heap entries carry one of the two
            fn()
        if self._step_monitors:
            item: Any = event if event is not None else fn
            for monitor in self._step_monitors:
                monitor.on_step(when, item)

    def _run_heap(self, until: Optional[int] = None) -> None:
        """Run until the heap empties or the clock would pass ``until``."""
        if until is not None and until < self._now:
            raise SimulationError("cannot run backwards in time")
        heap = self._heap
        step = self.step
        while heap:
            if until is not None and heap[0][0] > until:
                self._advance_clock(until)
                return
            step()
        if until is not None:
            self._advance_clock(until)

    def _advance_clock(self, t: int) -> None:
        """Advance the clock to ``t`` (end of run), notifying advance hooks."""
        if t > self._now:
            self._now = t
            for monitor in self._advance_monitors:
                monitor.on_advance(t)

    def _peek_heap(self) -> Optional[int]:
        """Time of the next scheduled item, or None if the heap is empty."""
        return self._heap[0][0] if self._heap else None
