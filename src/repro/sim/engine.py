"""Discrete-event simulation kernel.

A small, fast, generator-based event engine in the style of SimPy, built for
the vRIO reproduction.  Time is kept as an integer number of nanoseconds so
that event ordering is exact and runs are bit-reproducible.

The core concepts:

* :class:`Environment` owns the clock and the pending-event heap.
* :class:`Event` is a one-shot waitable.  Processes wait on events by
  yielding them.
* :class:`Process` wraps a generator.  Each ``yield`` suspends the process
  until the yielded event triggers; the event's value becomes the result of
  the ``yield`` expression.  A process is itself an event that triggers when
  the generator returns (with the generator's return value).
* :class:`Timeout` is an event that triggers after a fixed delay.

Example
-------
>>> env = Environment()
>>> def proc(env):
...     yield env.timeout(5)
...     return env.now
>>> p = env.process(proc(env))
>>> env.run()
>>> p.value
5
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "AllOf",
    "AnyOf",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


# Event states.
_PENDING = 0
_TRIGGERED = 1  # scheduled, value fixed, callbacks not yet run
_PROCESSED = 2  # callbacks have run


class Event:
    """A one-shot occurrence that processes can wait for.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    *triggers* it, scheduling its callbacks to run at the current simulation
    time.  Waiting on an already-processed event resumes the waiter
    immediately (on the next scheduling step) with the stored value.
    """

    __slots__ = ("env", "callbacks", "_value", "_state", "_ok")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: List[Callable[["Event"], None]] = []
        self._value: Any = None
        self._state = _PENDING
        self._ok = True

    # -- inspection --------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once the event has a value (callbacks may not have run)."""
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (not failed)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value; raises if the event is still pending."""
        if self._state == _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    # -- triggering --------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        self._value = value
        self._state = _TRIGGERED
        self.env._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to raise in waiters."""
        if self._state != _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._value = exception
        self._ok = False
        self._state = _TRIGGERED
        self.env._schedule_event(self)
        return self

    def _run_callbacks(self) -> None:
        self._state = _PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed."""
        if self._state == _PROCESSED:
            # Already done: deliver on the next scheduling step to preserve
            # run-to-completion semantics.
            self.env.call_soon(lambda: callback(self))
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that triggers ``delay`` nanoseconds in the future."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: int, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._value = value
        self._state = _TRIGGERED
        env._schedule_event(self, delay)


class Process(Event):
    """A running generator; also an event that triggers on completion."""

    __slots__ = ("generator", "_waiting_on", "name")

    def __init__(self, env: "Environment", generator: Generator,
                 name: str = "") -> None:
        super().__init__(env)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick off on the next scheduling step.
        env.call_soon(lambda: self._resume(None, None))

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._state == _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            return
        waiting = self._waiting_on
        if waiting is not None:
            # Detach from the event we were waiting on.
            try:
                waiting.callbacks.remove(self._on_event)
            except ValueError:
                pass
            self._waiting_on = None
        self.env.call_soon(lambda: self._resume(None, Interrupt(cause)))

    # -- plumbing ----------------------------------------------------------

    def _on_event(self, event: Event) -> None:
        self._waiting_on = None
        if event.ok:
            self._resume(event.value, None)
        else:
            self._resume(None, event.value)

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if not self.is_alive:
            return
        try:
            if exc is not None:
                target = self.generator.throw(exc)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # An unhandled interrupt terminates the process quietly.
            self.succeed(None)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, not an Event")
        if target.env is not self.env:
            raise SimulationError("yielded event belongs to another Environment")
        self._waiting_on = target
        target.add_callback(self._on_event)


class AllOf(Event):
    """Triggers when all given events have succeeded.

    Value is the list of the events' values in the given order.  Fails as
    soon as any constituent fails.
    """

    __slots__ = ("_events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed([])
            return
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e.value for e in self._events])


class AnyOf(Event):
    """Triggers when the first of the given events does.

    Value is a ``(event, value)`` tuple identifying the winner.
    """

    __slots__ = ("_events",)

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events = list(events)
        if not self._events:
            raise SimulationError("AnyOf requires at least one event")
        for event in self._events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed((event, event.value))
        else:
            self.fail(event.value)


class Environment:
    """The simulation clock and scheduler.

    Time is an integer count of nanoseconds since the start of the run.
    """

    # Heap entries: (time, seq, event-or-None, callable-or-None); exactly
    # one of the last two is set.
    _HeapEntry = Tuple[int, int, Optional[Event], Optional[Callable[[], None]]]

    def __init__(self) -> None:
        self._now: int = 0
        self._heap: List[Environment._HeapEntry] = []
        self._seq: int = 0  # tie-breaker preserving FIFO order at equal times
        self._monitors: List[Any] = []

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    # -- monitoring --------------------------------------------------------

    def add_monitor(self, monitor: Any) -> None:
        """Attach an execution monitor.

        A monitor is anything with an ``on_step(now, item)`` method; it is
        called after every scheduler step with the (possibly advanced)
        clock and the processed item — an :class:`Event` or, for
        ``call_soon`` entries, the bare callable.  Monitors cost one truth
        test per step while none are attached, so production runs are
        unaffected; the verification harness uses them to audit clock
        monotonicity and event flow.
        """
        if monitor not in self._monitors:
            self._monitors.append(monitor)

    def remove_monitor(self, monitor: Any) -> None:
        """Detach a previously attached monitor (no-op if absent)."""
        try:
            self._monitors.remove(monitor)
        except ValueError:
            pass

    # -- scheduling --------------------------------------------------------

    def _schedule_event(self, event: Event, delay: int = 0) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, event, None))

    def call_soon(self, fn: Callable[[], None], delay: int = 0) -> None:
        """Run ``fn()`` after ``delay`` ns (0 = this time step, FIFO)."""
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, None, fn))

    def schedule_at(self, at_ns: int, fn: Callable[[], None]) -> None:
        """Run ``fn()`` at the absolute time ``at_ns``.

        The hook for externally planned occurrences — fault injections,
        campaign phase marks — that are specified in wall-clock simulation
        time rather than relative to the caller.
        """
        if at_ns < self._now:
            raise SimulationError(
                f"cannot schedule at {at_ns} ns; clock is at {self._now} ns")
        self.call_soon(fn, delay=at_ns - self._now)

    # -- factories ---------------------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """Create an event that triggers ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start running ``generator`` as a simulation process."""
        return Process(self, generator, name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution ---------------------------------------------------------

    def step(self) -> None:
        """Process the single next scheduled item."""
        when, _seq, event, fn = heapq.heappop(self._heap)
        if when < self._now:
            raise SimulationError("time went backwards")
        self._now = when
        if event is not None:
            event._run_callbacks()
        else:
            assert fn is not None  # heap entries carry one of the two
            fn()
        if self._monitors:
            item = event if event is not None else fn
            for monitor in self._monitors:
                monitor.on_step(when, item)

    def run(self, until: Optional[int] = None) -> None:
        """Run until the heap empties or the clock would pass ``until``.

        When ``until`` is given the clock is left exactly at ``until`` and
        any events scheduled for later remain pending.
        """
        if until is not None and until < self._now:
            raise SimulationError("cannot run backwards in time")
        heap = self._heap
        while heap:
            if until is not None and heap[0][0] > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until

    def peek(self) -> Optional[int]:
        """Time of the next scheduled item, or None if the heap is empty."""
        return self._heap[0][0] if self._heap else None
