"""Discrete-event simulation kernel used by the whole reproduction."""

from .calqueue import CalendarQueue
from .engine import (
    SCHEDULERS,
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
    default_scheduler,
    scheduler_override,
    set_default_scheduler,
)
from .queues import PriorityStore, Resource, Store
from .rng import RngRegistry
from .trace import Span, TraceEvent, Tracer
from .stats import (
    Counter,
    Histogram,
    TimeSeries,
    TimeWeighted,
    UtilizationTracker,
    percentile,
)
from .units import (
    GB,
    KB,
    MB,
    MS,
    NS,
    SEC,
    US,
    bytes_per_ns_to_gbps,
    gbps_to_bytes_per_ns,
    ms,
    ns_to_us,
    seconds,
    us,
    wire_time_ns,
)

__all__ = [
    "AllOf", "AnyOf", "CalendarQueue", "Environment", "Event", "Interrupt",
    "Process", "SCHEDULERS", "SimulationError", "Timeout",
    "default_scheduler", "scheduler_override", "set_default_scheduler",
    "PriorityStore", "Resource", "Store",
    "RngRegistry",
    "Tracer", "Span", "TraceEvent",
    "Counter", "Histogram", "TimeSeries", "TimeWeighted",
    "UtilizationTracker", "percentile",
    "GB", "KB", "MB", "MS", "NS", "SEC", "US",
    "bytes_per_ns_to_gbps", "gbps_to_bytes_per_ns", "ms", "ns_to_us",
    "seconds", "us", "wire_time_ns",
]
