"""Request-lifecycle tracing.

A :class:`Tracer` records typed spans and point events against the
simulation clock, so the journey of one request — guest submit, channel
hop, worker service, device access, completion — can be inspected or
exported.  Tracing is off unless a tracer is installed, and costs one dict
append per event when on.

Models accept a tracer via duck typing: anything exposing
``point(trace_id, name, **attrs)`` and ``begin/end`` works.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .engine import Environment

__all__ = ["Tracer", "Span", "TraceEvent"]

_span_ids = itertools.count(1)


@dataclass
class TraceEvent:
    """An instantaneous event on a trace."""

    trace_id: Any
    name: str
    at_ns: int
    attrs: dict = field(default_factory=dict)


@dataclass
class Span:
    """A named interval on a trace."""

    span_id: int
    trace_id: Any
    name: str
    start_ns: int
    end_ns: Optional[int] = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration_ns(self) -> Optional[int]:
        if self.end_ns is None:
            return None
        return self.end_ns - self.start_ns


class Tracer:
    """Collects spans and events, indexable by trace id."""

    def __init__(self, env: Environment, capacity: int = 100_000):
        self.env = env
        self.capacity = capacity
        self.events: List[TraceEvent] = []
        self.spans: List[Span] = []
        self._open: Dict[int, Span] = {}
        self.dropped = 0

    # -- recording -----------------------------------------------------------

    def point(self, trace_id: Any, name: str, **attrs) -> None:
        """Record an instantaneous event."""
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(TraceEvent(trace_id, name, self.env.now, attrs))

    def begin(self, trace_id: Any, name: str, **attrs) -> int:
        """Open a span; returns its id for :meth:`end`."""
        span = Span(next(_span_ids), trace_id, name, self.env.now,
                    attrs=attrs)
        if len(self.spans) >= self.capacity:
            self.dropped += 1
            return span.span_id
        self.spans.append(span)
        self._open[span.span_id] = span
        return span.span_id

    def end(self, span_id: int, **attrs) -> None:
        span = self._open.pop(span_id, None)
        if span is None:
            return
        span.end_ns = self.env.now
        span.attrs.update(attrs)

    # -- querying ---------------------------------------------------------------

    def trace(self, trace_id: Any) -> List[Any]:
        """All events and spans of one trace, in time order."""
        items: List[Any] = [e for e in self.events if e.trace_id == trace_id]
        items += [s for s in self.spans if s.trace_id == trace_id]
        return sorted(items, key=lambda i: getattr(i, "at_ns",
                                                   getattr(i, "start_ns", 0)))

    def span_durations(self, name: str) -> List[int]:
        """Durations (ns) of every completed span with this name."""
        return [s.duration_ns for s in self.spans
                if s.name == name and s.end_ns is not None]

    def format_trace(self, trace_id: Any) -> str:
        """Render one trace as an indented timeline."""
        lines = [f"trace {trace_id}:"]
        for item in self.trace(trace_id):
            if isinstance(item, TraceEvent):
                lines.append(f"  {item.at_ns / 1000.0:10.2f}us  . {item.name}"
                             + (f" {item.attrs}" if item.attrs else ""))
            else:
                dur = (f"{item.duration_ns / 1000.0:.2f}us"
                       if item.duration_ns is not None else "open")
                lines.append(f"  {item.start_ns / 1000.0:10.2f}us  "
                             f"[{item.name} {dur}]"
                             + (f" {item.attrs}" if item.attrs else ""))
        return "\n".join(lines)
