"""Request-lifecycle tracing.

A :class:`Tracer` records typed spans and point events against the
simulation clock, so the journey of one request — guest submit, channel
hop, worker service, device access, completion — can be inspected or
exported.  Tracing is off unless a tracer is installed, and costs one dict
append per event when on.

Models accept a tracer via duck typing: anything exposing
``point(trace_id, name, **attrs)`` and ``begin/end`` works.

Capacity is a hard bound enforced by eviction: the tracer keeps at most
``capacity`` events and ``capacity`` spans, discarding the *oldest* record
when a new one would overflow (flight-recorder semantics — the most
recent history is always retained).  ``dropped`` counts evictions.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from .engine import Environment

__all__ = ["Tracer", "Span", "TraceEvent"]

_span_ids = itertools.count(1)


@dataclass
class TraceEvent:
    """An instantaneous event on a trace."""

    trace_id: Any
    name: str
    at_ns: int
    attrs: dict = field(default_factory=dict)


@dataclass
class Span:
    """A named interval on a trace."""

    span_id: int
    trace_id: Any
    name: str
    start_ns: int
    end_ns: Optional[int] = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration_ns(self) -> Optional[int]:
        if self.end_ns is None:
            return None
        return self.end_ns - self.start_ns


class Tracer:
    """Collects spans and events, indexable by trace id."""

    def __init__(self, env: Environment, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError(f"tracer capacity must be positive: {capacity}")
        self.env = env
        self.capacity = capacity
        self.events: Deque[TraceEvent] = deque()
        self.spans: Deque[Span] = deque()
        self._open: Dict[int, Span] = {}
        self.dropped = 0

    # -- recording -----------------------------------------------------------

    def point(self, trace_id: Any, name: str, **attrs) -> None:
        """Record an instantaneous event, evicting the oldest at capacity."""
        if len(self.events) >= self.capacity:
            self.events.popleft()
            self.dropped += 1
        self.events.append(TraceEvent(trace_id, name, self.env.now, attrs))

    def begin(self, trace_id: Any, name: str, **attrs) -> int:
        """Open a span; returns its id for :meth:`end`."""
        span = Span(next(_span_ids), trace_id, name, self.env.now,
                    attrs=attrs)
        if len(self.spans) >= self.capacity:
            evicted = self.spans.popleft()
            self._open.pop(evicted.span_id, None)
            self.dropped += 1
        self.spans.append(span)
        self._open[span.span_id] = span
        return span.span_id

    def end(self, span_id: int, **attrs) -> None:
        span = self._open.pop(span_id, None)
        if span is None:
            return
        span.end_ns = self.env.now
        span.attrs.update(attrs)

    # -- querying ---------------------------------------------------------------

    def trace(self, trace_id: Any) -> List[Any]:
        """All events and spans of one trace, in time order."""
        items: List[Any] = [e for e in self.events if e.trace_id == trace_id]
        items += [s for s in self.spans if s.trace_id == trace_id]
        return sorted(items, key=lambda i: getattr(i, "at_ns",
                                                   getattr(i, "start_ns", 0)))

    def trace_ids(self) -> List[Any]:
        """Every distinct trace id, in first-seen order."""
        seen: Dict[Any, None] = {}
        for event in self.events:
            seen.setdefault(event.trace_id)
        for span in self.spans:
            seen.setdefault(span.trace_id)
        return list(seen)

    def span_durations(self, name: str) -> List[int]:
        """Durations (ns) of every completed span with this name."""
        return [s.duration_ns for s in self.spans
                if s.name == name and s.end_ns is not None]

    def format_trace(self, trace_id: Any) -> str:
        """Render one trace as an indented timeline."""
        lines = [f"trace {trace_id}:"]
        for item in self.trace(trace_id):
            if isinstance(item, TraceEvent):
                lines.append(f"  {item.at_ns / 1000.0:10.2f}us  . {item.name}"
                             + (f" {item.attrs}" if item.attrs else ""))
            else:
                dur = (f"{item.duration_ns / 1000.0:.2f}us"
                       if item.duration_ns is not None else "open")
                lines.append(f"  {item.start_ns / 1000.0:10.2f}us  "
                             f"[{item.name} {dur}]"
                             + (f" {item.attrs}" if item.attrs else ""))
        return "\n".join(lines)

    # -- export -------------------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """Export as a Chrome ``trace_event`` document (chrome://tracing).

        Completed spans become complete events (``ph: "X"``), open spans
        begin events (``ph: "B"``), and points instant events
        (``ph: "i"``).  Timestamps are microseconds, as the format
        requires; each distinct trace id maps to its own ``tid`` so one
        request renders as one row, with the original id kept in ``args``.
        """
        tids: Dict[Any, int] = {}

        def tid_of(trace_id: Any) -> int:
            return tids.setdefault(trace_id, len(tids) + 1)

        records: List[dict] = []
        for span in self.spans:
            record = {
                "name": span.name,
                "cat": "span",
                "ts": span.start_ns / 1000.0,
                "pid": 1,
                "tid": tid_of(span.trace_id),
                "args": dict(span.attrs, trace_id=str(span.trace_id)),
            }
            if span.end_ns is not None:
                record["ph"] = "X"
                record["dur"] = span.duration_ns / 1000.0
            else:
                record["ph"] = "B"
            records.append(record)
        for event in self.events:
            records.append({
                "name": event.name,
                "cat": "point",
                "ph": "i",
                "s": "t",
                "ts": event.at_ns / 1000.0,
                "pid": 1,
                "tid": tid_of(event.trace_id),
                "args": dict(event.attrs, trace_id=str(event.trace_id)),
            })
        records.sort(key=lambda r: (r["ts"], r["tid"], r["name"]))
        return {"displayTimeUnit": "ms", "traceEvents": records}
