"""A calendar (bucket) queue for the simulation scheduler.

Priority queue over ``(time, seq)`` keys with O(1) amortized push/pop,
replacing the global binary heap whose O(log n) per-operation cost
dominates at the 10^5..10^6 outstanding-event populations that
datacenter-scale runs produce.

Layout
------
* A ring of ``nbuckets`` (a power of two) buckets, each ``2**shift``
  nanoseconds wide: an entry at time ``t`` lives in bucket
  ``(t >> shift) & (nbuckets - 1)``.  Each ring slot holds entries of
  exactly one absolute bucket index (the classic calendar-queue
  invariant), so cross-bucket order is bucket order.
* Two positions walk the ring.  The *floor* is the bucket of the most
  recently popped entry: pushes are validated against it, and the ring's
  horizon is ``floor + nbuckets``.  The *cursor* is the scan position
  looking for the next non-empty bucket; it may run ahead of the floor
  across empty buckets, and a push into a bucket it already passed simply
  pulls it back.  Keeping the floor pinned to popped time (rather than to
  the scan) is what lets causally-scheduled short timers — pushed while
  the current timestamp is still draining — land in the ring instead of
  bouncing through the overflow heap.
* Entries are recycled ``[time, seq, item]`` lists (an internal
  freelist caps allocation churn); within a bucket they are sorted
  lazily — once, when the cursor reaches the bucket — by ``(time,
  seq)``, which preserves the exact FIFO tie-break at equal timestamps.
* Events beyond the horizon overflow into a small binary heap (``_far``)
  and migrate into the ring as the horizon advances.
* Resizing is lazy: when occupancy or overflow drifts out of band the
  whole queue is rebuilt with a fresh power-of-two geometry sized from
  the live entry population (bucket count ~ entry count / target
  occupancy, width ~ the 99th-percentile span / bucket count).
  Rebuilds are guarded so they amortize to O(1) per operation.

Ordering contract: ``pop`` always returns the entry with the smallest
``(time, seq)``.  Pushes earlier than the floor (only possible through
scheduler misuse, e.g. negative delays) are still ordered correctly —
they overflow and force a rewind — so the owning Environment can detect
them and raise its own time-went-backwards error.
"""

from __future__ import annotations

from bisect import insort
from heapq import heapify, heappop, heappush
from typing import Any, List, Optional, Tuple

__all__ = ["CalendarQueue"]

# Entry: [time, seq, item] — a recycled mutable record.
_Entry = List[Any]

_MIN_BUCKETS = 64
_MAX_BUCKETS = 1 << 17
_FREELIST_CAP = 4096
# Geometry targets a mean occupancy of 2**_TARGET_OCC_SHIFT entries per
# bucket at rebuild time.  The classic calendar queue aims for ~1, but in
# CPython the *fixed* per-bucket costs (scan step, sort call, activation
# bookkeeping) dwarf the per-entry C-level comparison costs, so denser
# buckets amortize much better.
_TARGET_OCC_SHIFT = 3
# Rebuild when mean bucket occupancy exceeds this (finer buckets needed).
_MAX_OCCUPANCY_SHIFT = 6  # count > nbuckets << 6, i.e. mean occupancy > 64
# Rebuild when the overflow heap dwarfs the ring (wider buckets needed).
_FAR_SLACK = 256


class CalendarQueue:
    """Bucket queue over ``(time, seq)`` keys; see the module docstring."""

    __slots__ = (
        "_shift", "_nbuckets", "_mask", "_buckets", "_floor", "_cursor",
        "_count", "_far", "_free", "_pos", "_active", "_rebuilt_at",
        "_grow_at", "rebuilds",
    )

    def __init__(self, shift: int = 10) -> None:
        self._shift = shift                # bucket width = 2**shift ns
        self._nbuckets = _MIN_BUCKETS
        self._mask = _MIN_BUCKETS - 1
        self._buckets: List[List[_Entry]] = [[] for _ in range(_MIN_BUCKETS)]
        self._floor = 0                    # bucket of the last popped entry
        self._cursor = 0                   # scan position, >= floor
        self._count = 0                    # un-consumed entries in the ring
        self._far: List[_Entry] = []       # overflow heap beyond the horizon
        self._free: List[_Entry] = []      # entry freelist
        self._pos = 0                      # consume position in cursor bucket
        self._active = False               # cursor bucket sorted & draining
        self._rebuilt_at = 0               # population at the last rebuild
        self._grow_at = _MIN_BUCKETS << _MAX_OCCUPANCY_SHIFT  # grow threshold
        self.rebuilds = 0                  # lifetime rebuild count (telemetry)

    def __len__(self) -> int:
        return self._count + len(self._far)

    # -- scheduling ----------------------------------------------------------

    def push(self, time: int, seq: int, item: Any) -> None:
        """Insert ``item`` keyed by ``(time, seq)``; ``seq`` must be unique."""
        free = self._free
        if free:
            e = free.pop()
            e[0] = time
            e[1] = seq
            e[2] = item
        else:
            e = [time, seq, item]
        bidx = time >> self._shift
        if self._cursor < bidx < self._floor + self._nbuckets:
            # Common case: a future bucket within the horizon, ahead of the
            # scan (bidx > cursor >= floor implies bidx >= floor).
            self._buckets[bidx & self._mask].append(e)
            count = self._count + 1
            self._count = count
            if count > self._grow_at:
                self._maybe_grow(count)
            return
        rel = bidx - self._floor
        if 0 <= rel < self._nbuckets:
            cursor = self._cursor
            if bidx > cursor:
                self._buckets[bidx & self._mask].append(e)
            elif bidx == cursor and self._active:
                # The cursor bucket is mid-drain and already sorted; the new
                # entry's (time, seq) exceeds everything consumed so far, so
                # an ordered insert at/after the consume position keeps it
                # sorted.
                insort(self._buckets[cursor & self._mask], e, lo=self._pos)
            else:
                if bidx < cursor:
                    # The scan already passed this bucket: pull it back.
                    if self._active:
                        b = self._buckets[cursor & self._mask]
                        del b[:self._pos]
                        self._pos = 0
                        self._active = False
                    self._cursor = bidx
                self._buckets[bidx & self._mask].append(e)
            count = self._count + 1
            self._count = count
            if count > self._grow_at:
                self._maybe_grow(count)
        else:
            # Beyond the horizon (or, for a misuse push before the floor,
            # behind it): overflow.  min_time() reconciles.
            heappush(self._far, e)
            if len(self._far) > (self._count << 2) + _FAR_SLACK:
                self._rebuild()

    def _maybe_grow(self, count: int) -> None:
        """Occupancy tripped ``_grow_at``: rebuild, or defer the threshold."""
        if count <= self._rebuilt_at * 2:
            # Too soon after the last rebuild to have learned anything new.
            self._grow_at = self._rebuilt_at * 2
        elif self._nbuckets >= _MAX_BUCKETS:
            self._grow_at = 1 << 62
        else:
            self._rebuild()

    # -- inspection ----------------------------------------------------------

    def min_time(self) -> Optional[int]:
        """Earliest scheduled time, or None when empty.

        Guarantees on a non-None return that the cursor bucket is sorted
        and positioned on the globally smallest ``(time, seq)`` entry.
        """
        if self._active:
            # Fast path: the cursor bucket is mid-drain and non-empty.
            b = self._buckets[self._cursor & self._mask]
            if self._pos < len(b):
                t = b[self._pos][0]
                far = self._far
                if not far or far[0][0] > t:
                    return t
        while True:
            t = self._ring_min()
            far = self._far
            if far and (t is None or far[0][0] <= t):
                self._pull_far()
                continue
            return t

    def peek(self) -> Optional[Tuple[int, int]]:
        """``(time, seq)`` of the next entry, or None when empty."""
        t = self.min_time()
        if t is None:
            return None
        e = self._buckets[self._cursor & self._mask][self._pos]
        return (e[0], e[1])

    # -- consuming -----------------------------------------------------------

    def pop_at(self, time: int) -> Any:
        """Pop the next item if scheduled exactly at ``time``, else None.

        The scheduler's hot path: after ``min_time()`` returned ``time``,
        repeated ``pop_at(time)`` drains every entry at that timestamp in
        FIFO (seq) order without re-deriving the minimum.
        """
        while True:
            if self._active:
                b = self._buckets[self._cursor & self._mask]
                pos = self._pos
                if pos < len(b):
                    e = b[pos]
                    if e[0] != time:
                        return None
                    self._pos = pos + 1
                    self._count -= 1
                    self._floor = self._cursor
                    return e[2]
            if self.min_time() != time:
                return None

    def drain_due(self, until: Optional[int], out: List[Any]) -> Optional[int]:
        """Drain every item at the next scheduled timestamp into ``out``.

        Returns that timestamp, or None when the queue is empty or the
        next timestamp exceeds ``until``.  Items are appended in ``seq``
        (FIFO) order.  The engine's bulk hot path: because delays are
        strictly positive, no push during the batch's dispatch can land at
        the drained timestamp, so one call retires the whole time step.
        """
        t = None
        b = None
        pos = 0
        if self._active:
            # Inlined min_time fast path: cursor bucket mid-drain.
            b = self._buckets[self._cursor & self._mask]
            pos = self._pos
            if pos < len(b):
                far = self._far
                t0 = b[pos][0]
                if not far or far[0][0] > t0:
                    t = t0
                else:
                    b = None
            else:
                b = None
        if t is None:
            t = self.min_time()
            if t is None:
                return None
            b = self._buckets[self._cursor & self._mask]
            pos = self._pos
        if until is not None and t > until:
            return None
        assert b is not None
        n = len(b)
        j = pos
        append = out.append
        while j < n:
            e = b[j]
            if e[0] != t:
                break
            append(e[2])
            j += 1
        self._pos = j
        self._count -= j - pos
        self._floor = self._cursor
        return t

    def pop(self) -> Tuple[int, int, Any]:
        """Pop the smallest ``(time, seq, item)``; raises IndexError if empty."""
        t = self.min_time()
        if t is None:
            raise IndexError("pop from an empty CalendarQueue")
        b = self._buckets[self._cursor & self._mask]
        e = b[self._pos]
        self._pos += 1
        self._count -= 1
        self._floor = self._cursor
        return (t, e[1], e[2])

    # -- internals -----------------------------------------------------------

    def _ring_min(self) -> Optional[int]:
        """Time of the ring's smallest entry, advancing the cursor lazily."""
        if self._active:
            b = self._buckets[self._cursor & self._mask]
            if self._pos < len(b):
                return b[self._pos][0]
            # Bucket exhausted: recycle its (fully consumed) entry records
            # in one bulk extend, then release it.  Recycling happens only
            # here — never at pop time — so no entry can ever sit on the
            # freelist while still reachable from a bucket.  Stale item
            # refs on recycled entries are overwritten on reuse and
            # bounded by the freelist cap.
            free = self._free
            if len(free) < _FREELIST_CAP:
                free.extend(b)
                del free[_FREELIST_CAP:]
            del b[:]
            self._pos = 0
            self._active = False
            self._cursor += 1
            if (self._nbuckets > _MIN_BUCKETS
                    and self._count < self._nbuckets >> 5
                    and len(self) * 2 < self._rebuilt_at):
                self._rebuild()
        if not self._count:
            return None
        buckets, mask = self._buckets, self._mask
        cursor = self._cursor
        limit = self._floor + self._nbuckets
        while cursor < limit:
            b = buckets[cursor & mask]
            if b:
                self._cursor = cursor
                b.sort()
                self._active = True
                self._pos = 0
                return b[0][0]
            cursor += 1
        raise RuntimeError(
            "calendar invariant broken: count>0 but no entry in the ring")

    def _pull_far(self) -> None:
        """Migrate due overflow entries into the ring (rewind if behind)."""
        far = self._far
        if self._active:
            # Compact the consumed prefix so merged entries can sort in.
            b = self._buckets[self._cursor & self._mask]
            del b[:self._pos]
            self._pos = 0
            self._active = False
        shift = self._shift
        if not self._count and far:
            # Ring empty: re-anchor at the earliest overflow entry.
            self._floor = self._cursor = far[0][0] >> shift
        first = far[0][0] >> shift if far else self._floor
        if first < self._floor:
            self._rewind(first)
        horizon = self._floor + self._nbuckets
        buckets, mask = self._buckets, self._mask
        count = self._count
        while far and (far[0][0] >> shift) < horizon:
            e = heappop(far)
            buckets[(e[0] >> shift) & mask].append(e)
            count += 1
        self._count = count
        # Pulled entries may precede buckets the scan already passed.
        self._cursor = self._floor

    def _rewind(self, new_floor: int) -> None:
        """Drop the floor to ``new_floor``, evacuating out-of-horizon tails.

        Only reachable through pushes behind the floor (scheduler misuse,
        e.g. negative delays) — kept for strict ordering correctness so the
        Environment can surface its own error.
        """
        nbuckets = self._nbuckets
        buckets, mask = self._buckets, self._mask
        far = self._far
        hi = self._floor + nbuckets
        lo = max(new_floor + nbuckets, self._floor, hi - nbuckets)
        for idx in range(lo, hi):
            b = buckets[idx & mask]
            if b:
                self._count -= len(b)
                for e in b:
                    heappush(far, e)
                del b[:]
        self._floor = new_floor
        self._cursor = new_floor

    def _rebuild(self) -> None:
        """Re-derive geometry from the live population and redistribute."""
        if self._active:
            b = self._buckets[self._cursor & self._mask]
            del b[:self._pos]
            self._pos = 0
            self._active = False
        entries: List[_Entry] = []
        for b in self._buckets:
            if b:
                entries.extend(b)
        entries.extend(self._far)
        n = len(entries)
        self.rebuilds += 1
        self._rebuilt_at = n
        if not n:
            self._nbuckets = _MIN_BUCKETS
            self._mask = _MIN_BUCKETS - 1
            self._buckets = [[] for _ in range(_MIN_BUCKETS)]
            self._far = []
            self._count = 0
            self._grow_at = _MIN_BUCKETS << _MAX_OCCUPANCY_SHIFT
            return
        entries.sort()
        nbuckets = 1 << max(6, min(_MAX_BUCKETS.bit_length() - 1,
                                   (n - 1).bit_length() - _TARGET_OCC_SHIFT))
        t0 = entries[0][0]
        # Anchor at the old floor's time, not the earliest entry: pushes
        # arriving right after the rebuild may still carry the current
        # (already partially drained) timestamp, which the floor must keep
        # covering or they would bounce through the overflow heap.
        anchor = min(self._floor << self._shift, t0)
        # Width from the 99th-percentile span so a tail of far-future
        # timers (retransmit clocks among packet events) cannot force
        # absurdly coarse buckets on the dense near-term population, while
        # keeping the horizon wide enough that the bulk of the common gap
        # distribution stays in-ring rather than churning the overflow
        # heap.  The
        # span is measured from the *anchor*: when the population starts
        # far above the floor (a long idle gap, e.g. setup pushing
        # lease-expiry timers before the clock moves), sizing from ``t0``
        # would leave every entry beyond the horizon and the next push
        # would rebuild again — a quadratic storm.
        span = max(1, entries[n - 1 - n // 100][0] - anchor)
        shift = max(0, (span // nbuckets).bit_length())
        floor = anchor >> shift
        horizon = floor + nbuckets
        mask = nbuckets - 1
        buckets: List[List[_Entry]] = [[] for _ in range(nbuckets)]
        far: List[_Entry] = []
        count = 0
        for e in entries:
            bidx = e[0] >> shift
            if bidx < horizon:
                buckets[bidx & mask].append(e)
                count += 1
            else:
                far.append(e)
        heapify(far)
        self._shift = shift
        self._nbuckets = nbuckets
        self._mask = mask
        self._floor = floor
        self._cursor = floor
        self._buckets = buckets
        self._far = far
        self._count = count
        if nbuckets >= _MAX_BUCKETS:
            self._grow_at = 1 << 62
        else:
            self._grow_at = max(nbuckets << _MAX_OCCUPANCY_SHIFT, n * 2)
