"""Virtqueues: the guest/host shared-memory rings of the virtio protocol.

A :class:`Virtqueue` carries requests from a guest *front-end* to a host
*back-end* (the avail ring) and completions back (the used ring).  The
protocol detail that separates the I/O models is **notification policy**:

* In the **baseline**, the guest *kicks* the host after adding to the avail
  ring — a hypercall that costs a VM exit — and the host *injects* an
  interrupt after adding to the used ring.
* Under a **sidecore** (Elvis, and conceptually vRIO's remote worker), the
  back-end disables kick notifications entirely and polls the avail ring;
  completions are delivered by exitless IPI.

Both rings support virtio's notification suppression: ``add_avail`` returns
whether a kick is needed, which is False while the back-end has suppression
on or a previous notification is still outstanding.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from ..sim import Counter, Environment, Event, Store

__all__ = ["Virtqueue", "VirtioRequest", "RING_SIZE_DEFAULT"]

RING_SIZE_DEFAULT = 256

_request_ids = itertools.count(1)


@dataclass
class VirtioRequest:
    """One descriptor-chain's worth of work travelling through a virtqueue.

    ``kind`` distinguishes net tx/rx from block read/write; ``size_bytes``
    is the data payload; ``payload`` carries the model-specific object
    (a NetMessage or BlockRequest).
    """

    kind: str
    size_bytes: int
    payload: Any = None
    device_id: int = 0
    request_id: int = field(default_factory=lambda: next(_request_ids))
    posted_ns: int = 0
    meta: dict = field(default_factory=dict)


class Virtqueue:
    """A single virtio queue (one direction pair: avail + used)."""

    def __init__(self, env: Environment, name: str = "vq",
                 size: int = RING_SIZE_DEFAULT):
        if size <= 0:
            raise ValueError(f"ring size must be positive: {size}")
        self.env = env
        self.name = name
        self.size = size
        self._avail: Store = Store(env, capacity=size)
        self._used: Store = Store(env, capacity=size)
        # Kick suppression: the back-end turns this off when it polls.
        self.kick_notifications_enabled = True
        self._kick_outstanding = False
        self.kicks = Counter(f"{name}.kicks")
        self.kicks_suppressed = Counter(f"{name}.kicks_suppressed")
        self.posted = Counter(f"{name}.posted")
        self.completed = Counter(f"{name}.completed")
        self.full_rejections = Counter(f"{name}.full_rejections")

    # -- guest (front-end) side ---------------------------------------------

    def add_avail(self, request: VirtioRequest) -> bool:
        """Post a request.  Returns True iff the guest must kick the host.

        Raises if the ring is full (callers should bound outstanding
        requests; a full ring is a front-end driver bug).
        """
        request.posted_ns = self.env.now
        if not self._avail.try_put(request):
            self.full_rejections.add()
            raise BufferError(f"virtqueue {self.name} avail ring full")
        self.posted.add()
        if not self.kick_notifications_enabled:
            self.kicks_suppressed.add()
            return False
        if self._kick_outstanding:
            self.kicks_suppressed.add()
            return False
        self._kick_outstanding = True
        self.kicks.add()
        return True

    def get_used(self) -> Event:
        """Wait for the next completion (used-ring entry)."""
        return self._used.get()

    def try_get_used(self):
        """Non-blocking used-ring reap; returns ``(ok, request)``."""
        return self._used.try_get()

    # -- host (back-end) side -----------------------------------------------

    def kick_serviced(self) -> None:
        """The host finished reacting to a kick; further posts kick again."""
        self._kick_outstanding = False

    def disable_kicks(self) -> None:
        """Sidecore mode: the back-end polls, guests never kick."""
        self.kick_notifications_enabled = False

    def enable_kicks(self) -> None:
        self.kick_notifications_enabled = True

    def get_avail(self) -> Event:
        """Host-side wait for the next posted request."""
        return self._avail.get()

    def try_get_avail(self):
        """Non-blocking avail poll; returns ``(ok, request)``."""
        return self._avail.try_get()

    def add_used(self, request: VirtioRequest) -> None:
        """Complete a request back to the guest."""
        self.completed.add()
        if not self._used.try_put(request):
            # A used ring is as large as avail: overflow means a protocol bug.
            raise BufferError(f"virtqueue {self.name} used ring full")

    # -- introspection --------------------------------------------------------

    @property
    def avail_pending(self) -> int:
        return len(self._avail)

    @property
    def used_pending(self) -> int:
        return len(self._used)
