"""Paravirtual (virtio) protocol substrate: rings and request metadata."""

from .ring import RING_SIZE_DEFAULT, VirtioRequest, Virtqueue

__all__ = ["Virtqueue", "VirtioRequest", "RING_SIZE_DEFAULT"]
