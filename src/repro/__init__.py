"""vRIO — Paravirtual Remote I/O (ASPLOS 2016), reproduced in simulation.

The package is organized exactly like the system in the paper:

* :mod:`repro.sim` — the discrete-event kernel everything runs on;
* :mod:`repro.hw` — cores, NICs (with SRIOV functions), links, switches,
  storage devices;
* :mod:`repro.net` — Ethernet frames, MTU/TSO segmentation, zero-copy
  reassembly;
* :mod:`repro.virtio` — virtqueues and the paravirtual protocol;
* :mod:`repro.guest` — VMs, guest thread scheduling, the guest disk
  scheduler;
* :mod:`repro.iomodels` — the four virtual I/O models: baseline KVM/virtio,
  Elvis (local sidecores), SRIOV+ELI (the non-interposable optimum), and
  **vRIO** — the paper's contribution, including its transport driver,
  remote I/O hypervisor, block reliability protocol, control plane, and
  live-migration support;
* :mod:`repro.interpose` — programmable interposition services;
* :mod:`repro.workloads` — netperf, ApacheBench, memslap, filebench;
* :mod:`repro.cluster` — the paper's testbed topologies;
* :mod:`repro.costmodel` — the §3 rack-pricing analysis;
* :mod:`repro.experiments` — one runner per paper table/figure.

Quick start::

    from repro.cluster import TestbedSpec, build_testbed
    from repro.workloads import NetperfRR
    from repro.sim import ms

    testbed = build_testbed(TestbedSpec(model="vrio", vms_per_host=1))
    rr = NetperfRR(testbed.env, testbed.clients[0], testbed.ports[0],
                   testbed.costs)
    testbed.env.run(until=ms(30))
    print(rr.mean_latency_us(), testbed.stats.snapshot())

Fault campaigns (:mod:`repro.faults`) ride the same spec: attach a
``FaultPlan`` to the spec and the planned faults fire as simulation
events — ``python -m repro faults`` runs the stock campaigns.
"""

from . import (
    analysis,
    cluster,
    costmodel,
    experiments,
    guest,
    hw,
    interpose,
    iomodels,
    net,
    sim,
    virtio,
    workloads,
)
from .cluster import (
    TestbedSpec,
    build_consolidation_setup,
    build_scalability_setup,
    build_simple_setup,
    build_testbed,
)
from .iomodels import (
    BaselineModel,
    CostModel,
    DEFAULT_COSTS,
    ElvisModel,
    IoEventStats,
    OptimumModel,
    VrioModel,
)

__version__ = "1.0.0"

__all__ = [
    "sim", "hw", "net", "virtio", "guest", "iomodels", "interpose",
    "workloads", "cluster", "costmodel", "experiments", "analysis",
    "TestbedSpec", "build_testbed",
    "build_simple_setup", "build_scalability_setup",
    "build_consolidation_setup",
    "BaselineModel", "ElvisModel", "OptimumModel", "VrioModel",
    "CostModel", "DEFAULT_COSTS", "IoEventStats",
    "__version__",
]
