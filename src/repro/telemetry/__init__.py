"""Unified observability for the vRIO reproduction.

The paper's claims are observability claims — events per request (Table
3), latency/throughput/utilization across models (Fig. 5–9), per-sidecore
scalability (Fig. 13, 15).  This package gives every run one way to see
those numbers:

* :mod:`.registry` — a namespaced :class:`MetricsRegistry` that components
  register their existing counters/histograms/utilization trackers into;
* :mod:`.instrument` — walks a testbed and registers everything;
* :mod:`.stages` — per-request stage-latency breakdown from the Tracer;
* :mod:`.timeline` — fixed-width simulated-time windows turning counters
  into rates, sampling gauges, and computing rolling percentiles, driven
  by the engine's ``on_advance`` monitor hook (zero-cost unbound);
* :mod:`.attribution` — queueing-vs-service decomposition of each traced
  request plus cycles-per-component flamegraph exports;
* :mod:`.slo` — declarative :class:`SloSpec` probes evaluated per
  window, with violations mirrored into the flight recorder;
* :mod:`.exporters` — Chrome ``trace_event`` JSON, metrics JSON/CSV,
  timeline JSON/CSV, speedscope profiles, and a text report;
* :mod:`.flight` — a bounded ring buffer of recent engine steps, dumped
  when an invariant breaks;
* :mod:`.session` — :class:`TelemetrySession`, a context manager that
  instruments every testbed built inside it (the cluster builders call
  :func:`bind_testbed`; it is free when no session is active).

Driven from the command line by ``python -m repro observe <scenario>``.
"""

from .attribution import (
    LatencyAttribution,
    attribute,
    stage_kind,
    to_folded_stacks,
    to_speedscope,
)
from .exporters import (
    text_report,
    to_chrome_trace_json,
    to_metrics_csv,
    to_metrics_json,
    to_timeline_csv,
    to_timeline_json,
    validate_chrome_trace,
    validate_metrics,
    validate_speedscope,
    validate_timeline,
)
from .flight import FlightEntry, FlightRecorder
from .instrument import (
    instrument_testbed,
    register_core,
    register_nic,
    register_storage_device,
    register_switch,
    sample_utilization,
)
from .registry import MetricsNamespace, MetricsRegistry
from .session import (
    TelemetrySession,
    TestbedTelemetry,
    active_session,
    bind_testbed,
)
from .slo import SloProbe, SloSpec, SloViolation
from .stages import StageBreakdown, stage_breakdown, trace_markers
from .timeline import (
    DEFAULT_WINDOW_NS,
    Timeline,
    render_dashboard,
    sparkline,
)

__all__ = [
    "MetricsRegistry", "MetricsNamespace",
    "instrument_testbed", "register_core", "register_nic",
    "register_storage_device", "register_switch", "sample_utilization",
    "StageBreakdown", "stage_breakdown", "trace_markers",
    "LatencyAttribution", "attribute", "stage_kind",
    "to_folded_stacks", "to_speedscope",
    "DEFAULT_WINDOW_NS", "Timeline", "render_dashboard", "sparkline",
    "SloSpec", "SloProbe", "SloViolation",
    "to_metrics_json", "to_metrics_csv", "to_chrome_trace_json",
    "to_timeline_json", "to_timeline_csv",
    "text_report", "validate_metrics", "validate_chrome_trace",
    "validate_timeline", "validate_speedscope",
    "FlightRecorder", "FlightEntry",
    "TelemetrySession", "TestbedTelemetry", "bind_testbed",
    "active_session",
]
