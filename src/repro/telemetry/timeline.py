"""Windowed time-series telemetry over the metrics registry.

A :class:`Timeline` chops simulated time into fixed-width windows
``[k*W, (k+1)*W)`` and, at each window close, reads the live instruments
registered in a :class:`~repro.telemetry.registry.MetricsRegistry`:
counters become per-window deltas and per-second rates, gauges are
sampled, histograms yield *windowed* p50/p95/p99 over only the samples
that arrived inside the window, and utilization trackers yield busy /
useful fractions of the window span.  Arbitrary monotone callables can
ride along via :meth:`Timeline.watch_rate` (fault campaigns feed their
completed-operation count through this to build recovery curves).

The timeline is an engine *advance monitor*: it exposes only
``on_advance(now)``, which :class:`~repro.sim.Environment` calls whenever
the clock strictly advances, before anything at the new timestamp
dispatches.  Two consequences:

* **Exactness** — when a window ``[s, s+W)`` closes, every update the
  instruments have seen is from time < now, and the clock advanced
  through every intermediate timestamp one batch at a time, so the close
  observes precisely the updates with timestamps inside the window.  The
  decomposition is identical under the calendar and heap schedulers.
* **Zero cost unbound** — binding a timeline flips the engine into the
  monitored run loop (PR 6); with no timeline bound ``_run_fast`` runs
  untouched, and because registration stores references (PR 2) a bound
  timeline never perturbs event order: runs stay bit-identical.

Window widths are configuration, not code: take them from
``DEFAULT_WINDOW_NS``, an :class:`~repro.telemetry.slo.SloSpec`, or a
named constant — simlint SIM405 rejects inline numeric widths elsewhere.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..sim.stats import percentile

__all__ = [
    "DEFAULT_WINDOW_NS",
    "Timeline",
    "sparkline",
    "render_dashboard",
]

# Default window width for scenario observation: 500 us gives ~12-40
# windows across the registry scenarios' 6-20 ms runs.
DEFAULT_WINDOW_NS = 500_000

_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


class Timeline:
    """Fixed-width windowed view of live telemetry instruments.

    Parameters
    ----------
    width_ns:
        Window width in simulated nanoseconds (must be positive).
    registry:
        Optional :class:`MetricsRegistry` whose instruments are read at
        every window close.  The name list is re-walked each close, so
        instruments registered mid-run (e.g. a storage device attached
        after boot) are picked up from their first complete window.
    start_ns:
        Simulated time the observation starts at; the first window is
        the one containing ``start_ns``.
    """

    def __init__(self, width_ns: int, registry: Optional[Any] = None,
                 start_ns: int = 0) -> None:
        if width_ns <= 0:
            raise ValueError(f"window width must be positive: {width_ns}")
        self.width_ns = int(width_ns)
        self.registry = registry
        self._start_ns = int(start_ns)
        # First boundary strictly after start: close of the window
        # containing start_ns.
        self._next_close = (self._start_ns // self.width_ns + 1) * self.width_ns
        self._window_start = self._start_ns
        self._windows: List[Dict[str, Any]] = []
        self._counter_last: Dict[str, float] = {}
        self._util_last: Dict[str, Tuple[int, int]] = {}
        self._hist_offset: Dict[str, int] = {}
        self._rate_watches: List[Tuple[str, Callable[[], float]]] = []
        self._rate_last: Dict[str, float] = {}
        self._subscribers: List[Callable[["Timeline", Dict[str, Any]], None]] = []
        self._flushed = False

    # -- wiring ------------------------------------------------------------

    def watch_rate(self, name: str, read: Callable[[], float]) -> None:
        """Track a monotone callable as a per-window delta/rate series."""
        if any(n == name for n, _ in self._rate_watches):
            raise ValueError(f"rate watch {name!r} already registered")
        self._rate_watches.append((name, read))

    def subscribe(self, fn: Callable[["Timeline", Dict[str, Any]], None]) -> None:
        """Call ``fn(timeline, window)`` at every window close.

        The hook point SLO probes — and, later, the elastic control
        plane — attach to.
        """
        self._subscribers.append(fn)

    # -- engine monitor hook ----------------------------------------------

    def on_advance(self, now: int) -> None:
        """Engine hook: close every window that ended at or before ``now``.

        Called before anything at ``now`` dispatches, so a closing window
        observes exactly the updates timestamped inside it.
        """
        next_close = self._next_close
        while now >= next_close:
            self._close(next_close, partial=False)
            next_close += self.width_ns
        self._next_close = next_close

    def flush(self, now: int) -> None:
        """Close the final (possibly partial) window at end of run.

        Idempotent; call once after the run with the final clock value.
        """
        if self._flushed:
            return
        self.on_advance(now)
        if now > self._window_start:
            self._close(now, partial=True)
        self._flushed = True

    # -- window close ------------------------------------------------------

    def _close(self, end_ns: int, partial: bool) -> None:
        start_ns = self._window_start
        span = end_ns - start_ns
        window: Dict[str, Any] = {
            "index": len(self._windows),
            "start_ns": start_ns,
            "end_ns": end_ns,
            "partial": partial,
            "counters": {},
            "gauges": {},
            "histograms": {},
            "utilization": {},
            "rates": {},
        }
        if self.registry is not None:
            self._read_registry(window, span)
        for name, read in self._rate_watches:
            value = float(read())
            last = self._rate_last.get(name, 0.0)
            delta = value - last
            self._rate_last[name] = value
            window["rates"][name] = {
                "delta": delta,
                "rate_per_s": delta * 1e9 / span if span else 0.0,
            }
        self._windows.append(window)
        self._window_start = end_ns
        for fn in self._subscribers:
            fn(self, window)

    def _read_registry(self, window: Dict[str, Any], span: int) -> None:
        registry = self.registry
        for name in registry.names():
            kind = registry.kind_of(name)
            instrument = registry.get(name)
            if kind == "counter":
                value = float(instrument.value)
                last = self._counter_last.get(name, 0.0)
                delta = value - last
                self._counter_last[name] = value
                window["counters"][name] = {
                    "delta": delta,
                    "rate_per_s": delta * 1e9 / span if span else 0.0,
                }
            elif kind == "gauge":
                window["gauges"][name] = float(instrument())
            elif kind == "time_weighted":
                window["gauges"][name] = float(instrument.value)
            elif kind == "utilization":
                busy, useful = instrument.busy_ns, instrument.useful_ns
                last_busy, last_useful = self._util_last.get(name, (0, 0))
                self._util_last[name] = (busy, useful)
                window["utilization"][name] = {
                    "busy_fraction": (busy - last_busy) / span if span else 0.0,
                    "useful_fraction":
                        (useful - last_useful) / span if span else 0.0,
                }
            else:  # histogram
                samples = instrument.samples
                offset = self._hist_offset.get(name, 0)
                fresh = samples[offset:]
                self._hist_offset[name] = len(samples)
                window["histograms"][name] = _digest(fresh)

    # -- reading -----------------------------------------------------------

    @property
    def windows(self) -> List[Dict[str, Any]]:
        return self._windows

    def series(self, name: str) -> List[float]:
        """One value per window for the named metric.

        Counters and rate watches yield their per-second rate, gauges
        their sampled value, histograms their windowed p99 (0.0 for empty
        windows), utilization its busy fraction.
        """
        out: List[float] = []
        for window in self._windows:
            if name in window["counters"]:
                out.append(window["counters"][name]["rate_per_s"])
            elif name in window["rates"]:
                out.append(window["rates"][name]["rate_per_s"])
            elif name in window["gauges"]:
                out.append(window["gauges"][name])
            elif name in window["utilization"]:
                out.append(window["utilization"][name]["busy_fraction"])
            elif name in window["histograms"]:
                digest = window["histograms"][name]
                out.append(digest["p99"] if digest["count"] else 0.0)
            else:
                out.append(0.0)
        return out

    def metric_names(self) -> List[str]:
        """Every metric name appearing in any window, sorted."""
        names: Set[str] = set()
        for window in self._windows:
            for group in ("counters", "gauges", "histograms",
                          "utilization", "rates"):
                names.update(window[group])
        return sorted(names)

    def to_payload(self) -> Dict[str, Any]:
        """JSON-ready dict (schema ``repro-timeline/v1``)."""
        return {
            "schema": "repro-timeline/v1",
            "width_ns": self.width_ns,
            "start_ns": self._start_ns,
            "windows": self._windows,
        }


def _digest(samples: Sequence[float]) -> Dict[str, Any]:
    if not samples:
        return {"count": 0, "mean": None, "p50": None, "p95": None,
                "p99": None}
    data = sorted(samples)
    return {
        "count": len(data),
        "mean": sum(data) / len(data),
        "p50": percentile(data, 50),
        "p95": percentile(data, 95),
        "p99": percentile(data, 99),
    }


# -- text dashboard --------------------------------------------------------


def sparkline(values: Sequence[float]) -> str:
    """Render ``values`` as a unicode sparkline (empty input → '')."""
    if not values:
        return ""
    lo = min(values)
    hi = max(values)
    if hi <= lo:
        return _SPARK_GLYPHS[0] * len(values)
    span = hi - lo
    top = len(_SPARK_GLYPHS) - 1
    return "".join(
        _SPARK_GLYPHS[int((v - lo) / span * top + 0.5)] for v in values)


def render_dashboard(timeline: Timeline,
                     names: Optional[Sequence[str]] = None,
                     limit: int = 24) -> str:
    """Text sparkline dashboard: one row per metric series.

    With no explicit ``names`` the busiest series are picked: rate
    watches first, then counters by total delta, then histogram p99s and
    utilization, capped at ``limit`` rows.
    """
    windows = timeline.windows
    lines = [
        f"timeline: {len(windows)} windows × {timeline.width_ns} ns"
    ]
    if not windows:
        return "\n".join(lines + ["(no windows closed)"])
    if names is None:
        names = _default_dashboard_names(timeline, limit)
    width = max((len(n) for n in names), default=0)
    for name in names:
        series = timeline.series(name)
        last = series[-1] if series else 0.0
        lines.append(
            f"{name:<{width}}  {sparkline(series)}  "
            f"min={min(series):.3g} max={max(series):.3g} last={last:.3g}")
    return "\n".join(lines)


def _default_dashboard_names(timeline: Timeline, limit: int) -> List[str]:
    windows = timeline.windows
    rate_names = sorted(
        {name for w in windows for name in w["rates"]})
    totals: Dict[str, float] = {}
    for window in windows:
        for name, cell in window["counters"].items():
            totals[name] = totals.get(name, 0.0) + cell["delta"]
    counter_names = [name for name, total in
                     sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
                     if total > 0]
    hist_names = sorted(
        {name for w in windows for name, d in w["histograms"].items()
         if d["count"]})
    util_names = sorted(
        {name for w in windows for name in w["utilization"]})
    picked: List[str] = []
    for group in (rate_names, counter_names, hist_names, util_names):
        for name in group:
            if name not in picked:
                picked.append(name)
            if len(picked) >= limit:
                return picked
    return picked
