"""Exporters: metrics and traces in machine- and human-readable forms.

Three formats, all dependency-free:

* ``to_metrics_json`` / ``to_metrics_csv`` — the flat registry snapshot,
  for diffing runs or feeding plotting scripts;
* ``to_chrome_trace_json`` — the Tracer's span/point stream as a Chrome
  ``trace_event`` document, loadable in chrome://tracing or Perfetto;
* ``text_report`` — a terminal report combining the stage-latency
  breakdown with the registry's headline numbers.

``validate_metrics`` and ``validate_chrome_trace`` are the schema checks
behind ``repro verify --telemetry``.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List

from .stages import stage_breakdown

__all__ = [
    "to_metrics_json",
    "to_metrics_csv",
    "to_chrome_trace_json",
    "to_timeline_json",
    "to_timeline_csv",
    "text_report",
    "validate_metrics",
    "validate_chrome_trace",
    "validate_timeline",
    "validate_speedscope",
]

# Every trace_event record must carry these keys to render.
_CHROME_REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")
_CHROME_PHASES = ("X", "B", "E", "i")


def to_metrics_json(snapshot: Dict[str, float], indent: int = 2) -> str:
    """The metrics snapshot as sorted, stable JSON."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def to_metrics_csv(snapshot: Dict[str, float]) -> str:
    """The metrics snapshot as two-column ``metric,value`` CSV."""
    lines = ["metric,value"]
    for name in sorted(snapshot):
        value = snapshot[name]
        rendered = repr(value) if isinstance(value, float) else str(value)
        lines.append(f"{name},{rendered}")
    return "\n".join(lines) + "\n"


def to_chrome_trace_json(tracer: Any) -> str:
    """The tracer's records as a Chrome ``trace_event`` JSON document."""
    return json.dumps(tracer.to_chrome_trace(), indent=1)


def text_report(telemetry: Any, title: str = "") -> str:
    """Human-readable run report: stages, models, sidecores, headline I/O."""
    lines: List[str] = []
    if title:
        lines += [title, "=" * len(title), ""]
    lines.append(stage_breakdown(telemetry.tracer).format())
    snapshot = telemetry.registry.snapshot()
    interesting = [name for name in sorted(snapshot)
                   if name.startswith(("stats.", "sidecores.", "ports.",
                                       "model", "storage."))
                   and not name.endswith(("_ns",))]
    if interesting:
        lines += ["", "key metrics"]
        for name in interesting:
            value = snapshot[name]
            if isinstance(value, float) and not value.is_integer():
                lines.append(f"  {name:54s} {value:12.4f}")
            else:
                lines.append(f"  {name:54s} {int(value):12d}")
    lines += ["", f"metrics registered: {len(snapshot)}   "
                  f"trace events: {len(telemetry.tracer.events)}   "
                  f"spans: {len(telemetry.tracer.spans)}   "
                  f"flight entries: {telemetry.recorder.recorded}"]
    return "\n".join(lines)


def validate_metrics(snapshot: Dict[str, float]) -> None:
    """Raise ``ValueError`` unless the snapshot is a non-empty, flat
    mapping of dotted names to finite numbers."""
    if not isinstance(snapshot, dict) or not snapshot:
        raise ValueError("metrics snapshot is empty")
    for name, value in snapshot.items():
        if not isinstance(name, str) or not name:
            raise ValueError(f"bad metric name: {name!r}")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"metric {name!r} has non-numeric value "
                             f"{value!r}")
        if isinstance(value, float) and not math.isfinite(value):
            raise ValueError(f"metric {name!r} is not finite: {value!r}")


def to_timeline_json(timeline: Any, indent: int = 2) -> str:
    """A timeline's windows as a ``repro-timeline/v1`` JSON document."""
    return json.dumps(timeline.to_payload(), indent=indent, sort_keys=True)


def to_timeline_csv(timeline: Any) -> str:
    """Long-form CSV: one row per (window, metric series).

    Columns: window index, start/end, series kind, metric name, and the
    windowed value (counters/rates report their per-second rate plus the
    raw delta; histograms their windowed count and p50/p95/p99).
    """
    lines = ["window,start_ns,end_ns,kind,metric,value,extra"]

    def row(window: Dict[str, Any], kind: str, name: str, value: Any,
            extra: str = "") -> None:
        rendered = repr(value) if isinstance(value, float) else str(value)
        lines.append(f"{window['index']},{window['start_ns']},"
                     f"{window['end_ns']},{kind},{name},{rendered},{extra}")

    for window in timeline.windows:
        for name in sorted(window["counters"]):
            cell = window["counters"][name]
            row(window, "counter", name, cell["rate_per_s"],
                f"delta={cell['delta']:g}")
        for name in sorted(window["rates"]):
            cell = window["rates"][name]
            row(window, "rate", name, cell["rate_per_s"],
                f"delta={cell['delta']:g}")
        for name in sorted(window["gauges"]):
            row(window, "gauge", name, window["gauges"][name])
        for name in sorted(window["utilization"]):
            cell = window["utilization"][name]
            row(window, "utilization", name, cell["busy_fraction"],
                f"useful={cell['useful_fraction']:g}")
        for name in sorted(window["histograms"]):
            digest = window["histograms"][name]
            if digest["count"]:
                row(window, "histogram", name, digest["p99"],
                    f"count={digest['count']};p50={digest['p50']:g};"
                    f"p95={digest['p95']:g}")
            else:
                row(window, "histogram", name, 0, "count=0")
    return "\n".join(lines) + "\n"


_WINDOW_GROUPS = ("counters", "gauges", "histograms", "utilization", "rates")


def validate_timeline(payload: dict) -> None:
    """Raise ``ValueError`` unless ``payload`` is a well-formed
    ``repro-timeline/v1`` document: contiguous half-open windows with
    per-kind series groups and finite numbers throughout."""
    if not isinstance(payload, dict):
        raise ValueError("timeline payload must be a JSON object")
    if payload.get("schema") != "repro-timeline/v1":
        raise ValueError(f"bad timeline schema: {payload.get('schema')!r}")
    width = payload.get("width_ns")
    if not isinstance(width, int) or width <= 0:
        raise ValueError(f"bad timeline width: {width!r}")
    windows = payload.get("windows")
    if not isinstance(windows, list):
        raise ValueError("timeline lacks a windows list")
    prev_end = None
    for index, window in enumerate(windows):
        if not isinstance(window, dict):
            raise ValueError(f"window {index} is not an object")
        if window.get("index") != index:
            raise ValueError(f"window {index} misnumbered: "
                             f"{window.get('index')!r}")
        start, end = window.get("start_ns"), window.get("end_ns")
        if not isinstance(start, int) or not isinstance(end, int):
            raise ValueError(f"window {index} has non-integer bounds")
        if end <= start:
            raise ValueError(f"window {index} is empty or inverted: "
                             f"[{start}, {end})")
        if prev_end is not None and start != prev_end:
            raise ValueError(f"window {index} not contiguous: starts at "
                             f"{start}, previous ended at {prev_end}")
        if not window.get("partial") and (end - start) != width:
            raise ValueError(f"full window {index} has width {end - start}, "
                             f"expected {width}")
        prev_end = end
        for group in _WINDOW_GROUPS:
            series = window.get(group)
            if not isinstance(series, dict):
                raise ValueError(f"window {index} lacks group {group!r}")
            for name, cell in series.items():
                _check_cell(index, group, name, cell)
    json.loads(json.dumps(payload))


def _check_cell(index: int, group: str, name: str, cell: Any) -> None:
    if group == "gauges":
        values = {name: cell}
    elif not isinstance(cell, dict):
        raise ValueError(f"window {index} {group}[{name!r}] is not an object")
    else:
        values = cell
    for key, value in values.items():
        if value is None and group == "histograms":
            continue  # empty-window stats are None by design
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"window {index} {group}[{name!r}].{key} is "
                             f"non-numeric: {value!r}")
        if isinstance(value, float) and not math.isfinite(value):
            raise ValueError(f"window {index} {group}[{name!r}].{key} is "
                             f"not finite")


def validate_speedscope(document: dict) -> None:
    """Raise ``ValueError`` unless ``document`` is a loadable speedscope
    sampled-profile file: frames referenced by every sample exist and
    weights align one-to-one with samples."""
    if not isinstance(document, dict):
        raise ValueError("speedscope document must be a JSON object")
    frames = document.get("shared", {}).get("frames")
    if not isinstance(frames, list):
        raise ValueError("speedscope document lacks shared.frames")
    for frame in frames:
        if not isinstance(frame, dict) or not frame.get("name"):
            raise ValueError(f"bad speedscope frame: {frame!r}")
    profiles = document.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        raise ValueError("speedscope document lacks profiles")
    for profile in profiles:
        if profile.get("type") != "sampled":
            raise ValueError(f"unsupported profile type: "
                             f"{profile.get('type')!r}")
        samples = profile.get("samples")
        weights = profile.get("weights")
        if not isinstance(samples, list) or not isinstance(weights, list):
            raise ValueError("sampled profile lacks samples/weights")
        if len(samples) != len(weights):
            raise ValueError(f"samples/weights length mismatch: "
                             f"{len(samples)} vs {len(weights)}")
        for stack in samples:
            for idx in stack:
                if not isinstance(idx, int) or not 0 <= idx < len(frames):
                    raise ValueError(f"sample references missing frame "
                                     f"{idx!r}")
        for weight in weights:
            if (isinstance(weight, bool)
                    or not isinstance(weight, (int, float))
                    or weight < 0 or not math.isfinite(weight)):
                raise ValueError(f"bad sample weight: {weight!r}")
    json.loads(json.dumps(document))


def validate_chrome_trace(document: dict) -> None:
    """Raise ``ValueError`` unless ``document`` is a loadable Chrome
    ``trace_event`` object-format document."""
    if not isinstance(document, dict):
        raise ValueError("chrome trace must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("chrome trace lacks a traceEvents list")
    for record in events:
        if not isinstance(record, dict):
            raise ValueError(f"trace event is not an object: {record!r}")
        missing = [key for key in _CHROME_REQUIRED_KEYS if key not in record]
        if missing:
            raise ValueError(f"trace event missing {missing}: {record!r}")
        if record["ph"] not in _CHROME_PHASES:
            raise ValueError(f"unknown phase {record['ph']!r}")
        if record["ph"] == "X" and "dur" not in record:
            raise ValueError(f"complete event lacks dur: {record!r}")
        if not isinstance(record["ts"], (int, float)) or record["ts"] < 0:
            raise ValueError(f"bad timestamp in {record!r}")
    # The document must survive a JSON round trip.
    json.loads(json.dumps(document))
