"""Exporters: metrics and traces in machine- and human-readable forms.

Three formats, all dependency-free:

* ``to_metrics_json`` / ``to_metrics_csv`` — the flat registry snapshot,
  for diffing runs or feeding plotting scripts;
* ``to_chrome_trace_json`` — the Tracer's span/point stream as a Chrome
  ``trace_event`` document, loadable in chrome://tracing or Perfetto;
* ``text_report`` — a terminal report combining the stage-latency
  breakdown with the registry's headline numbers.

``validate_metrics`` and ``validate_chrome_trace`` are the schema checks
behind ``repro verify --telemetry``.
"""

from __future__ import annotations

import json
import math
from typing import Dict, List

from .stages import stage_breakdown

__all__ = [
    "to_metrics_json",
    "to_metrics_csv",
    "to_chrome_trace_json",
    "text_report",
    "validate_metrics",
    "validate_chrome_trace",
]

# Every trace_event record must carry these keys to render.
_CHROME_REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")
_CHROME_PHASES = ("X", "B", "E", "i")


def to_metrics_json(snapshot: Dict[str, float], indent: int = 2) -> str:
    """The metrics snapshot as sorted, stable JSON."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def to_metrics_csv(snapshot: Dict[str, float]) -> str:
    """The metrics snapshot as two-column ``metric,value`` CSV."""
    lines = ["metric,value"]
    for name in sorted(snapshot):
        value = snapshot[name]
        rendered = repr(value) if isinstance(value, float) else str(value)
        lines.append(f"{name},{rendered}")
    return "\n".join(lines) + "\n"


def to_chrome_trace_json(tracer) -> str:
    """The tracer's records as a Chrome ``trace_event`` JSON document."""
    return json.dumps(tracer.to_chrome_trace(), indent=1)


def text_report(telemetry, title: str = "") -> str:
    """Human-readable run report: stages, models, sidecores, headline I/O."""
    lines: List[str] = []
    if title:
        lines += [title, "=" * len(title), ""]
    lines.append(stage_breakdown(telemetry.tracer).format())
    snapshot = telemetry.registry.snapshot()
    interesting = [name for name in sorted(snapshot)
                   if name.startswith(("stats.", "sidecores.", "ports.",
                                       "model", "storage."))
                   and not name.endswith(("_ns",))]
    if interesting:
        lines += ["", "key metrics"]
        for name in interesting:
            value = snapshot[name]
            if isinstance(value, float) and not value.is_integer():
                lines.append(f"  {name:54s} {value:12.4f}")
            else:
                lines.append(f"  {name:54s} {int(value):12d}")
    lines += ["", f"metrics registered: {len(snapshot)}   "
                  f"trace events: {len(telemetry.tracer.events)}   "
                  f"spans: {len(telemetry.tracer.spans)}   "
                  f"flight entries: {telemetry.recorder.recorded}"]
    return "\n".join(lines)


def validate_metrics(snapshot: Dict[str, float]) -> None:
    """Raise ``ValueError`` unless the snapshot is a non-empty, flat
    mapping of dotted names to finite numbers."""
    if not isinstance(snapshot, dict) or not snapshot:
        raise ValueError("metrics snapshot is empty")
    for name, value in snapshot.items():
        if not isinstance(name, str) or not name:
            raise ValueError(f"bad metric name: {name!r}")
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(f"metric {name!r} has non-numeric value "
                             f"{value!r}")
        if isinstance(value, float) and not math.isfinite(value):
            raise ValueError(f"metric {name!r} is not finite: {value!r}")


def validate_chrome_trace(document: dict) -> None:
    """Raise ``ValueError`` unless ``document`` is a loadable Chrome
    ``trace_event`` object-format document."""
    if not isinstance(document, dict):
        raise ValueError("chrome trace must be a JSON object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("chrome trace lacks a traceEvents list")
    for record in events:
        if not isinstance(record, dict):
            raise ValueError(f"trace event is not an object: {record!r}")
        missing = [key for key in _CHROME_REQUIRED_KEYS if key not in record]
        if missing:
            raise ValueError(f"trace event missing {missing}: {record!r}")
        if record["ph"] not in _CHROME_PHASES:
            raise ValueError(f"unknown phase {record['ph']!r}")
        if record["ph"] == "X" and "dur" not in record:
            raise ValueError(f"complete event lacks dur: {record!r}")
        if not isinstance(record["ts"], (int, float)) or record["ts"] < 0:
            raise ValueError(f"bad timestamp in {record!r}")
    # The document must survive a JSON round trip.
    json.loads(json.dumps(document))
