"""Per-request stage-latency breakdown, derived from a Tracer.

Every traced request leaves a trail of *markers* on the clock: point
events contribute one marker each, spans contribute a start marker (the
span's name) and an end marker (``<name>_end``).  Consecutive markers of
one trace delimit a **stage**:

* the interval from a span's start marker straight to its own end marker
  is named after the span (``iohost_service``);
* any other interval is named ``a→b`` after its two bounding markers
  (``guest_tx→iohost_service`` is the channel hop, for example).

Because stages tile the marker range of each trace exactly, the per-trace
stage durations sum to the trace's ``end_to_end`` (last minus first
marker) with no rounding — a property the tests assert.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..sim import Histogram

__all__ = ["StageBreakdown", "stage_breakdown", "trace_markers"]

END_TO_END = "end_to_end"


def trace_markers(tracer: Any, trace_id: Any) -> List[Tuple[int, str]]:
    """The time-ordered ``(at_ns, label)`` markers of one trace.

    Ties on the clock are broken by recording order (events before the
    spans recorded after them), which is deterministic.
    """
    keyed: List[Tuple[int, int, str]] = []
    seq = 0
    for event in tracer.events:
        if event.trace_id == trace_id:
            keyed.append((event.at_ns, seq, event.name))
        seq += 1
    for span in tracer.spans:
        if span.trace_id == trace_id:
            keyed.append((span.start_ns, seq, span.name))
            if span.end_ns is not None:
                keyed.append((span.end_ns, seq + 1, f"{span.name}_end"))
        seq += 2
    keyed.sort(key=lambda m: (m[0], m[1]))
    return [(at_ns, label) for at_ns, _seq, label in keyed]


def _stage_name(prev: str, nxt: str) -> str:
    if nxt == f"{prev}_end":
        return prev
    return f"{prev}→{nxt}"


class StageBreakdown:
    """Aggregated stage durations across many traces."""

    def __init__(self) -> None:
        # Insertion-ordered: stages appear in first-seen datapath order.
        self.stages: Dict[str, Histogram] = {}
        self.end_to_end = Histogram(END_TO_END)
        self.traces = 0

    def _add(self, stage: str, duration_ns: int) -> None:
        histogram = self.stages.get(stage)
        if histogram is None:
            histogram = self.stages[stage] = Histogram(stage)
        histogram.add(duration_ns)

    def add_trace(self, markers: List[Tuple[int, str]]) -> None:
        """Fold one trace's markers in (ignored if fewer than two)."""
        if len(markers) < 2:
            return
        self.traces += 1
        for (t0, a), (t1, b) in zip(markers, markers[1:]):
            self._add(_stage_name(a, b), t1 - t0)
        self.end_to_end.add(markers[-1][0] - markers[0][0])

    def summarize(self) -> Dict[str, Dict[str, Optional[float]]]:
        """Stage name -> count/mean/p50/p95/p99/max digest (ns)."""
        out = {name: h.summary() for name, h in self.stages.items()}
        out[END_TO_END] = self.end_to_end.summary()
        return out

    def format(self) -> str:
        """Render the breakdown as an aligned text table (values in us)."""
        if not self.traces:
            return "stage breakdown: no traced requests"
        lines = [f"stage latency breakdown ({self.traces} traced requests, us)",
                 f"{'stage':38s} {'count':>7s} {'mean':>9s} {'p50':>9s} "
                 f"{'p95':>9s} {'p99':>9s} {'max':>9s}"]
        rows = list(self.stages.items()) + [(END_TO_END, self.end_to_end)]
        for name, histogram in rows:
            d = histogram.summary()
            if d["count"] == 0:
                lines.append(f"{name:38s} {0:7d}")
                continue
            cells = " ".join(f"{d[s] / 1000.0:9.2f}"
                             for s in ("mean", "p50", "p95", "p99", "max"))
            lines.append(f"{name:38s} {d['count']:7d} {cells}")
        return "\n".join(lines)


def stage_breakdown(tracer: Any, trace_ids: Optional[List[Any]] = None
                    ) -> StageBreakdown:
    """Build the breakdown over ``trace_ids`` (default: every trace)."""
    breakdown = StageBreakdown()
    if trace_ids is None:
        trace_ids = tracer.trace_ids()
    for trace_id in trace_ids:
        breakdown.add_trace(trace_markers(tracer, trace_id))
    return breakdown
