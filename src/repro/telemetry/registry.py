"""The central metrics registry.

A :class:`MetricsRegistry` maps dot-namespaced metric names onto the
measurement primitives the simulator already keeps —
:class:`~repro.sim.Counter`, :class:`~repro.sim.Histogram`,
:class:`~repro.sim.UtilizationTracker`, :class:`~repro.sim.TimeWeighted` —
plus lazy *gauges* (zero-argument callables read at snapshot time).

Registration stores a **reference**, not a copy: components keep updating
their own counters on the hot path exactly as before, and the registry
only reads them when :meth:`MetricsRegistry.snapshot` flattens everything
into one ``{name: number}`` dict.  Instrumentation therefore never
perturbs event order, which keeps golden fingerprints and bit-determinism
intact.

Names are unique; registering the same name twice raises.  Use
:meth:`MetricsRegistry.namespace` to hand a component a prefixed view so
it can register its own metrics without knowing where it sits in the
hierarchy.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..sim import Counter, Histogram, TimeWeighted, UtilizationTracker

__all__ = ["MetricsRegistry", "MetricsNamespace"]

_KINDS = ("counter", "gauge", "histogram", "utilization", "time_weighted")


def _check_name(name: str) -> str:
    if not name or not isinstance(name, str):
        raise ValueError(f"metric name must be a non-empty string: {name!r}")
    if any(ch.isspace() for ch in name):
        raise ValueError(f"metric name may not contain whitespace: {name!r}")
    if name.startswith(".") or name.endswith(".") or ".." in name:
        raise ValueError(f"malformed metric namespace in {name!r}")
    return name


class MetricsRegistry:
    """Namespaced registry of measurement instruments."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Tuple[str, Any]] = {}

    # -- registration ------------------------------------------------------

    def _register(self, name: str, kind: str, instrument: Any) -> Any:
        _check_name(name)
        assert kind in _KINDS
        if name in self._instruments:
            raise ValueError(f"metric {name!r} already registered")
        self._instruments[name] = (kind, instrument)
        return instrument

    def register_counter(self, name: str,
                         counter: Optional[Counter] = None) -> Counter:
        """Register an existing counter, or create one if none is given."""
        if counter is None:
            counter = Counter(name)
        return self._register(name, "counter", counter)

    def register_gauge(self, name: str, read: Callable[[], float]) -> None:
        """Register a lazy gauge: ``read()`` is called at snapshot time."""
        if not callable(read):
            raise TypeError(f"gauge {name!r} needs a callable, got {read!r}")
        self._register(name, "gauge", read)

    def register_histogram(self, name: str,
                           histogram: Optional[Histogram] = None) -> Histogram:
        if histogram is None:
            histogram = Histogram(name)
        return self._register(name, "histogram", histogram)

    def register_utilization(self, name: str,
                             tracker: UtilizationTracker) -> UtilizationTracker:
        return self._register(name, "utilization", tracker)

    def register_time_weighted(self, name: str,
                               value: TimeWeighted) -> TimeWeighted:
        return self._register(name, "time_weighted", value)

    def namespace(self, prefix: str) -> "MetricsNamespace":
        """A view that prepends ``prefix.`` to every registered name."""
        _check_name(prefix)
        return MetricsNamespace(self, prefix)

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def kind_of(self, name: str) -> str:
        return self._instruments[name][0]

    def get(self, name: str) -> Any:
        """The registered instrument object (or gauge callable)."""
        return self._instruments[name][1]

    # -- reading -----------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Flatten every instrument into one ``{name: number}`` dict.

        Counters and gauges contribute one entry.  Utilization trackers
        expand into ``.busy_ns`` / ``.useful_ns`` / ``.busy_fraction`` /
        ``.useful_fraction``; histograms into ``.count`` plus (when
        non-empty) ``.mean`` / ``.p50`` / ``.p95`` / ``.p99`` / ``.max``,
        so every value is a plain finite number fit for golden files.
        """
        out: Dict[str, float] = {}
        for name in sorted(self._instruments):
            kind, instrument = self._instruments[name]
            if kind == "counter":
                out[name] = instrument.value
            elif kind == "gauge":
                out[name] = instrument()
            elif kind == "time_weighted":
                out[f"{name}.average"] = instrument.average()
            elif kind == "utilization":
                out[f"{name}.busy_ns"] = instrument.busy_ns
                out[f"{name}.useful_ns"] = instrument.useful_ns
                out[f"{name}.busy_fraction"] = instrument.busy_fraction()
                out[f"{name}.useful_fraction"] = instrument.useful_fraction()
            else:  # histogram
                digest = instrument.summary()
                out[f"{name}.count"] = digest["count"]
                for stat in ("mean", "p50", "p95", "p99", "max"):
                    if digest[stat] is not None:
                        out[f"{name}.{stat}"] = digest[stat]
        return out


class MetricsNamespace:
    """A prefix-bound view of a :class:`MetricsRegistry`.

    Mirrors the registry's ``register_*`` methods with the prefix applied,
    so a component can instrument itself without global-name knowledge.
    """

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self.registry = registry
        self.prefix = prefix

    def _name(self, name: str) -> str:
        return f"{self.prefix}.{name}"

    def register_counter(self, name: str,
                         counter: Optional[Counter] = None) -> Counter:
        return self.registry.register_counter(self._name(name), counter)

    def register_gauge(self, name: str, read: Callable[[], float]) -> None:
        self.registry.register_gauge(self._name(name), read)

    def register_histogram(self, name: str,
                           histogram: Optional[Histogram] = None) -> Histogram:
        return self.registry.register_histogram(self._name(name), histogram)

    def register_utilization(self, name: str,
                             tracker: UtilizationTracker) -> UtilizationTracker:
        return self.registry.register_utilization(self._name(name), tracker)

    def register_time_weighted(self, name: str,
                               value: TimeWeighted) -> TimeWeighted:
        return self.registry.register_time_weighted(self._name(name), value)

    def namespace(self, prefix: str) -> "MetricsNamespace":
        return MetricsNamespace(self.registry, self._name(prefix))
