"""Declarative SLO probes evaluated per timeline window.

An :class:`SloSpec` states a service-level objective in three optional
clauses — a p99 latency ceiling, a throughput floor, and a maximum
tolerable downtime — plus the metric series each clause reads.  An
:class:`SloProbe` attaches the spec to a :class:`~repro.telemetry
.timeline.Timeline` and evaluates it at every window close, emitting one
violation record per breached clause with the offending window's full
context embedded, and mirroring each violation into a
:class:`~repro.telemetry.flight.FlightRecorder` (when given one) so a
post-mortem dump shows the SLO breach in line with the surrounding
engine activity.

``SloProbe.on_violation`` callbacks are the subscription point the
future elastic control plane (ROADMAP item 4) hangs off: a violation is
the signal to re-balance sidecores or migrate clients.

Matching: a clause's metric name selects a window series exactly, or —
when it ends with ``"."`` — aggregates every series under that dotted
prefix (latency clauses merge the windows' sample digests by worst p99;
throughput clauses sum rates).

Downtime is measured as consecutive windows with zero throughput: a run
of empty windows longer than ``max_downtime_ns`` emits one violation per
window once the budget is exceeded, so an outage spanning window
boundaries is still caught even though each individual window looks
merely idle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = ["SloSpec", "SloProbe", "SloViolation"]


@dataclass(frozen=True)
class SloSpec:
    """A declarative service-level objective.

    Clauses left at ``None`` are not evaluated.  ``window_ns`` is the
    sanctioned carrier for window widths (simlint SIM405): build the
    timeline from ``spec.window_ns`` rather than an inline literal.
    """

    name: str
    p99_latency_ceiling_ns: Optional[float] = None
    throughput_floor_per_s: Optional[float] = None
    max_downtime_ns: Optional[int] = None
    latency_metric: str = ""
    throughput_metric: str = ""
    window_ns: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "p99_latency_ceiling_ns": self.p99_latency_ceiling_ns,
            "throughput_floor_per_s": self.throughput_floor_per_s,
            "max_downtime_ns": self.max_downtime_ns,
            "latency_metric": self.latency_metric,
            "throughput_metric": self.throughput_metric,
            "window_ns": self.window_ns,
        }


@dataclass
class SloViolation:
    """One breached clause in one window."""

    slo: str
    kind: str  # "p99_latency" | "throughput" | "downtime"
    window_index: int
    start_ns: int
    end_ns: int
    observed: float
    limit: float
    window: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "slo": self.slo,
            "kind": self.kind,
            "window_index": self.window_index,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "observed": self.observed,
            "limit": self.limit,
            "window": self.window,
        }


def _match(series: Dict[str, Any], metric: str) -> List[str]:
    if not metric:
        return []
    if metric.endswith("."):
        return sorted(n for n in series if n.startswith(metric))
    return [metric] if metric in series else []


class SloProbe:
    """Evaluates one :class:`SloSpec` at every timeline window close."""

    def __init__(self, spec: SloSpec, recorder: Optional[Any] = None) -> None:
        self.spec = spec
        self.recorder = recorder
        self.violations: List[SloViolation] = []
        self.windows_evaluated = 0
        self._downtime_ns = 0
        self._callbacks: List[Callable[[SloViolation], None]] = []

    def attach(self, timeline: Any) -> "SloProbe":
        """Subscribe to ``timeline``; evaluation then runs per window."""
        timeline.subscribe(self._on_window)
        return self

    def on_violation(self, fn: Callable[[SloViolation], None]) -> None:
        """Register a callback fired on every violation — the hook the
        elastic control plane subscribes to."""
        self._callbacks.append(fn)

    # -- evaluation --------------------------------------------------------

    def _on_window(self, timeline: Any, window: Dict[str, Any]) -> None:
        self.windows_evaluated += 1
        spec = self.spec
        if spec.p99_latency_ceiling_ns is not None:
            p99 = self._window_p99(window)
            if p99 is not None and p99 > spec.p99_latency_ceiling_ns:
                self._emit("p99_latency", window, p99,
                           spec.p99_latency_ceiling_ns)
        throughput = self._window_throughput(window)
        if (spec.throughput_floor_per_s is not None
                and throughput is not None
                and throughput < spec.throughput_floor_per_s):
            self._emit("throughput", window, throughput,
                       spec.throughput_floor_per_s)
        if spec.max_downtime_ns is not None and throughput is not None:
            if throughput > 0.0:
                self._downtime_ns = 0
            else:
                self._downtime_ns += window["end_ns"] - window["start_ns"]
                if self._downtime_ns > spec.max_downtime_ns:
                    self._emit("downtime", window,
                               float(self._downtime_ns),
                               float(spec.max_downtime_ns))

    def _window_p99(self, window: Dict[str, Any]) -> Optional[float]:
        """Worst windowed p99 across the matched histogram series.

        Empty windows (no samples landed) return None: an SLO says
        nothing about latency nobody observed.
        """
        worst: Optional[float] = None
        for name in _match(window["histograms"], self.spec.latency_metric):
            digest = window["histograms"][name]
            if digest["count"]:
                p99 = digest["p99"]
                if worst is None or p99 > worst:
                    worst = p99
        return worst

    def _window_throughput(self, window: Dict[str, Any]) -> Optional[float]:
        """Summed per-second rate across matched counter/rate series."""
        metric = self.spec.throughput_metric
        matched = False
        total = 0.0
        for group in ("rates", "counters"):
            for name in _match(window[group], metric):
                total += window[group][name]["rate_per_s"]
                matched = True
        return total if matched else None

    def _emit(self, kind: str, window: Dict[str, Any], observed: float,
              limit: float) -> None:
        violation = SloViolation(
            slo=self.spec.name, kind=kind,
            window_index=window["index"],
            start_ns=window["start_ns"], end_ns=window["end_ns"],
            observed=observed, limit=limit,
            window=window)
        self.violations.append(violation)
        if self.recorder is not None:
            self.recorder.note(
                window["end_ns"], "slo",
                f"{self.spec.name} {kind} violated: observed "
                f"{observed:.6g} vs limit {limit:.6g} in window "
                f"#{window['index']} "
                f"[{window['start_ns']}-{window['end_ns']})ns "
                f"context={_window_context(window)}",
                pin=True)
        for fn in self._callbacks:
            fn(violation)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.to_dict(),
            "windows_evaluated": self.windows_evaluated,
            "violations": [v.to_dict() for v in self.violations],
        }


def _window_context(window: Dict[str, Any]) -> str:
    """Compact one-line rendering of a window's non-empty series."""
    parts: List[str] = []
    for name, cell in sorted(window["rates"].items()):
        parts.append(f"{name}={cell['delta']:g}")
    for name, cell in sorted(window["counters"].items()):
        if cell["delta"]:
            parts.append(f"{name}={cell['delta']:g}")
    for name, digest in sorted(window["histograms"].items()):
        if digest["count"]:
            parts.append(f"{name}.p99={digest['p99']:g}")
    if not parts:
        return "(idle window)"
    return " ".join(parts[:12])
