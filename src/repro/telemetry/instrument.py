"""Shared instrumentation: wire a testbed's components into a registry.

:func:`instrument_testbed` walks one assembled
:class:`~repro.cluster.Testbed` and registers every component's existing
measurement objects — engine clock, Table-3 event stats, cores (VM, service
and client), ports, external endpoints, NIC/link hardware — plus whatever
each I/O model exposes through its ``register_telemetry(namespace)`` hook.
Everything is read lazily at snapshot time, so instrumenting a run does
not change it.

Storage devices are created after the testbed is built (workloads call
``attach_ramdisk`` mid-experiment), so they register through
:func:`register_storage_device`, which the testbed calls as devices
appear.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List

from ..sim import Environment, Event, TimeSeries
from .registry import MetricsRegistry

__all__ = [
    "instrument_testbed",
    "register_core",
    "register_nic",
    "register_storage_device",
    "register_switch",
    "sample_utilization",
]


def register_core(registry: MetricsRegistry, prefix: str,
                  core: Any) -> None:
    """One core's utilization, cycle ledger, and queue depth."""
    ns = registry.namespace(prefix)
    ns.register_utilization("util", core.util)
    ns.register_gauge("total_cycles", lambda c=core: c.total_cycles)
    ns.register_gauge("queue_length", lambda c=core: c.queue_length)
    ns.register_gauge("energy_joules", lambda c=core: c.energy_joules())


def register_nic(registry: MetricsRegistry, prefix: str,
                 nic: Any) -> None:
    """One NIC port: per-port aggregates over its PF/VF functions, plus
    the attached link endpoint's frame counters."""
    ns = registry.namespace(prefix)
    ns.register_counter("unknown_dst", nic.unknown_dst)
    for counter in ("rx_frames", "rx_dropped", "tx_frames",
                    "notifications", "coalesced"):
        ns.register_gauge(counter, lambda n=nic, c=counter: sum(
            getattr(fn, c).value for fn in n.functions))
    endpoint = nic.endpoint
    if endpoint is not None:
        ns.register_gauge("link_tx_frames", lambda e=endpoint: e.tx_frames)
        ns.register_gauge("link_tx_bytes", lambda e=endpoint: e.tx_bytes)
        ns.register_gauge("link_tx_dropped", lambda e=endpoint: e.tx_dropped)


def register_switch(registry: MetricsRegistry, prefix: str,
                    switch: Any) -> None:
    """One switch's datapath counters.

    ``unknown_dst``/``flooded`` are the mis-wiring signal: a fabric whose
    MAC tables converged floods only its first frames, so a growing
    flood rate mid-run means traffic is blackholing into broadcast.
    """
    ns = registry.namespace(prefix)
    for counter in ("ingress", "forwarded", "unknown_dst", "flooded",
                    "filtered"):
        ns.register_counter(counter, getattr(switch, counter))


def register_storage_device(registry: MetricsRegistry,
                            device: Any) -> None:
    """One block device's operation and byte counters."""
    ns = registry.namespace(f"storage.{device.name}")
    for counter in ("reads", "writes", "bytes_read", "bytes_written"):
        ns.register_counter(counter, getattr(device, counter))


def _unique_cores(cores: Iterable[Any]) -> List[Any]:
    seen = set()
    out: List[Any] = []
    for core in cores:
        if id(core) not in seen:
            seen.add(id(core))
            out.append(core)
    return out


def instrument_testbed(testbed: Any,
                       registry: MetricsRegistry) -> MetricsRegistry:
    """Register every component of ``testbed`` into ``registry``."""
    env = testbed.env
    registry.register_gauge("sim.now_ns", lambda e=env: e.now)

    stats_ns = registry.namespace("stats")
    for column in testbed.stats.COLUMNS:
        stats_ns.register_counter(column, getattr(testbed.stats, column))
    stats_ns.register_gauge("total", testbed.stats.total)

    for vm in testbed.vms:
        ns = registry.namespace(f"vm.{vm.name}")
        ns.register_counter("interrupts", vm.interrupts_received)
        register_core(registry, f"vm.{vm.name}.vcpu", vm.vcpu)

    # The paper's sidecores / I/O cores / vRIO workers, by position: the
    # scalability and consolidation analyses key on these indices.
    for index, core in enumerate(testbed.service_cores):
        register_core(registry, f"sidecores.{index}", core)

    for index, port in enumerate(testbed.ports):
        ns = registry.namespace(f"ports.{index}")
        for counter in ("tx_messages", "rx_messages", "tx_bytes", "rx_bytes"):
            ns.register_counter(counter, getattr(port, counter))

    for index, client in enumerate(testbed.clients):
        ns = registry.namespace(f"clients.{index}")
        ns.register_counter("tx_messages", client.tx_messages)
        ns.register_counter("rx_messages", client.rx_messages)
        register_core(registry, f"clients.{index}.core", client.core)

    hosts = list(testbed.vmhosts)
    if testbed.iohost is not None:
        hosts.append(testbed.iohost)
    hosts.extend(getattr(testbed, "iohosts", []))   # racks topology
    for host in hosts:
        for nic in host.nics:
            register_nic(registry, f"nic.{nic.name}", nic)

    # The switched topology's rack switch / the racks topology's fabric.
    switch = getattr(testbed, "switch", None)
    if switch is not None:
        register_switch(registry, f"switch.{switch.name}", switch)
    fabric = getattr(testbed, "fabric", None)
    if fabric is not None:
        for stage in fabric.switches:
            register_switch(registry, f"switch.{stage.name}", stage)

    for index, model in enumerate(testbed.models):
        hook = getattr(model, "register_telemetry", None)
        if hook is not None:
            hook(registry.namespace(f"model{index}.{model.name}"))
    return registry


def sample_utilization(env: Environment, cores: List[Any],
                       interval_ns: int,
                       process_name: str = "utilization-sampler"
                       ) -> List[TimeSeries]:
    """Periodically sample each core's useful-cycle utilization (%).

    Starts a sampler process recording, every ``interval_ns``, the
    fraction of the interval each core spent on useful work — the Figure
    15 measurement.  Returns one :class:`TimeSeries` per core, filled in
    as the simulation runs.
    """
    series = [TimeSeries(core.name) for core in cores]
    last = [0] * len(cores)

    def sampler() -> Iterator[Event]:
        while True:
            yield env.timeout(interval_ns)
            for idx, core in enumerate(cores):
                useful = core.util.useful_ns
                fraction = (useful - last[idx]) / interval_ns
                last[idx] = useful
                series[idx].record(env.now, fraction * 100.0)

    env.process(sampler(), name=process_name)
    return series
