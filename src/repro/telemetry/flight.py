"""Flight recorder: a bounded ring buffer of recent engine activity.

Attached as an :class:`~repro.sim.Environment` monitor, the recorder keeps
the last ``capacity`` scheduler steps (plus any annotations components
record explicitly) so that when something goes wrong — an invariant
violation, a stuck workload — the moments leading up to it can be dumped
for diagnosis.  Recording is passive: it never schedules events, so runs
with and without a recorder are bit-identical.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Tuple

__all__ = ["FlightRecorder", "FlightEntry"]

# (seq, at_ns, source, detail)
FlightEntry = Tuple[int, int, str, str]


def _describe(item: Any) -> Tuple[str, str]:
    """Classify one scheduler item into a (source, detail) pair."""
    name = getattr(item, "name", None)
    if name is not None and hasattr(item, "generator"):
        return "process", str(name)
    if hasattr(item, "callbacks"):
        return "event", type(item).__name__
    return "callback", getattr(item, "__name__", "<callable>")


class FlightRecorder:
    """Remembers the last N scheduler steps and explicit annotations."""

    # Pinned annotations kept outside the ring (see note(pin=True)).
    PINNED_CAPACITY = 64

    def __init__(self, capacity: int = 256) -> None:
        if capacity <= 0:
            raise ValueError(f"recorder capacity must be positive: {capacity}")
        self.capacity = capacity
        self._entries: Deque[FlightEntry] = deque(maxlen=capacity)
        self._pinned: List[FlightEntry] = []
        self._seq = 0
        self._env: Optional[Any] = None

    # -- engine monitor interface ------------------------------------------

    def attach(self, env: Any) -> "FlightRecorder":
        env.add_monitor(self)
        self._env = env
        return self

    def detach(self) -> None:
        if self._env is not None:
            self._env.remove_monitor(self)
            self._env = None

    def on_step(self, now: int, item: Any) -> None:
        source, detail = _describe(item)
        self._seq += 1
        self._entries.append((self._seq, now, source, detail))

    # -- explicit annotations ----------------------------------------------

    def note(self, at_ns: int, source: str, detail: str = "",
             pin: bool = False) -> None:
        """Record a component-level annotation alongside engine steps.

        ``pin=True`` additionally keeps the entry outside the ring (up
        to ``PINNED_CAPACITY`` of them), so rare milestone annotations —
        SLO violations, fault marks — survive the churn of ordinary
        steps and still show up in an end-of-run dump.
        """
        self._seq += 1
        entry = (self._seq, at_ns, str(source), str(detail))
        self._entries.append(entry)
        if pin and len(self._pinned) < self.PINNED_CAPACITY:
            self._pinned.append(entry)

    # -- inspection --------------------------------------------------------

    @property
    def recorded(self) -> int:
        """Total entries ever recorded (>= len(entries) once wrapped)."""
        return self._seq

    def entries(self, last: Optional[int] = None) -> List[FlightEntry]:
        """The most recent ``last`` ring entries, with every pinned
        annotation merged back in (in sequence order) regardless of age."""
        items = list(self._entries)
        if last is not None:
            items = items[-last:]
        if self._pinned:
            seen = {entry[0] for entry in items}
            items = [entry for entry in self._pinned
                     if entry[0] not in seen] + items
            items.sort(key=lambda entry: entry[0])
        return items

    def dump(self, last: Optional[int] = None) -> str:
        """Render the most recent entries, oldest first."""
        items = self.entries(last)
        if not items:
            return "flight recorder: empty"
        lines = [f"flight recorder: last {len(items)} of "
                 f"{self.recorded} entries"]
        for seq, at_ns, source, detail in items:
            lines.append(f"  #{seq:<8d} {at_ns / 1000.0:12.3f}us  "
                         f"{source:9s} {detail}")
        return "\n".join(lines)
