"""Telemetry sessions: turn observation on for everything built inside.

The cluster builders call :func:`bind_testbed` on every testbed they
assemble.  Without an active session that call is a no-op — production
runs, experiments, and the golden suite pay nothing.  Inside a
``with TelemetrySession() as session:`` block, each built testbed gets its
own :class:`TestbedTelemetry`: a private metrics registry (so metric
names never collide across testbeds), a request tracer installed into the
I/O models, and a flight recorder watching the engine.

    with TelemetrySession() as session:
        result = run_scenario("rr_vrio")
    telemetry = session.for_testbed(result.testbed)
    print(telemetry.report())
"""

from __future__ import annotations

from typing import List, Optional

from ..sim import Tracer
from .exporters import text_report
from .flight import FlightRecorder
from .instrument import instrument_testbed
from .registry import MetricsRegistry
from .stages import StageBreakdown, stage_breakdown

__all__ = ["TelemetrySession", "TestbedTelemetry", "bind_testbed",
           "active_session"]


class TestbedTelemetry:
    """One testbed's registry + tracer + flight recorder bundle."""

    def __init__(self, testbed, tracer_capacity: int = 100_000,
                 flight_capacity: int = 256):
        self.testbed = testbed
        self.registry = MetricsRegistry()
        self.tracer = Tracer(testbed.env, capacity=tracer_capacity)
        self.recorder = FlightRecorder(capacity=flight_capacity)
        self.recorder.attach(testbed.env)
        instrument_testbed(testbed, self.registry)
        for model in testbed.models:
            if hasattr(model, "tracer") and model.tracer is None:
                model.tracer = self.tracer
        testbed.telemetry = self

    def snapshot(self) -> dict:
        return self.registry.snapshot()

    def stages(self) -> StageBreakdown:
        return stage_breakdown(self.tracer)

    def chrome_trace(self) -> dict:
        return self.tracer.to_chrome_trace()

    def report(self, title: str = "") -> str:
        return text_report(self, title=title)


_active: List["TelemetrySession"] = []


class TelemetrySession:
    """Context manager scoping telemetry onto every testbed built within."""

    def __init__(self, tracer_capacity: int = 100_000,
                 flight_capacity: int = 256):
        self.tracer_capacity = tracer_capacity
        self.flight_capacity = flight_capacity
        self.bound: List[TestbedTelemetry] = []

    def __enter__(self) -> "TelemetrySession":
        _active.append(self)
        return self

    def __exit__(self, *exc_info) -> None:
        _active.remove(self)

    def bind(self, testbed) -> TestbedTelemetry:
        telemetry = TestbedTelemetry(testbed,
                                     tracer_capacity=self.tracer_capacity,
                                     flight_capacity=self.flight_capacity)
        self.bound.append(telemetry)
        return telemetry

    def for_testbed(self, testbed) -> Optional[TestbedTelemetry]:
        for telemetry in self.bound:
            if telemetry.testbed is testbed:
                return telemetry
        return None


def active_session() -> Optional[TelemetrySession]:
    """The innermost active session, or None."""
    return _active[-1] if _active else None


def bind_testbed(testbed) -> Optional[TestbedTelemetry]:
    """Instrument ``testbed`` under the active session (no-op without one).

    Called by every cluster builder just before it returns.
    """
    session = active_session()
    if session is None:
        return None
    return session.bind(testbed)
