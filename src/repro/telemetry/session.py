"""Telemetry sessions: turn observation on for everything built inside.

The cluster builders call :func:`bind_testbed` on every testbed they
assemble.  Without an active session that call is a no-op — production
runs, experiments, and the golden suite pay nothing.  Inside a
``with TelemetrySession() as session:`` block, each built testbed gets its
own :class:`TestbedTelemetry`: a private metrics registry (so metric
names never collide across testbeds), a request tracer installed into the
I/O models, and a flight recorder watching the engine.

    with TelemetrySession() as session:
        result = run_scenario("rr_vrio")
    telemetry = session.for_testbed(result.testbed)
    print(telemetry.report())
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..sim import Histogram, Tracer
from .attribution import LatencyAttribution, attribute
from .exporters import text_report
from .flight import FlightRecorder
from .instrument import instrument_testbed
from .registry import MetricsRegistry
from .slo import SloProbe, SloSpec
from .stages import StageBreakdown, stage_breakdown
from .timeline import DEFAULT_WINDOW_NS, Timeline

__all__ = ["TelemetrySession", "TestbedTelemetry", "bind_testbed",
           "active_session"]

# Monotone workload progress counters worth a per-window rate series.
_WORKLOAD_PROGRESS_ATTRS = ("transactions", "operations", "chunks_received")


class TestbedTelemetry:
    """One testbed's registry + tracer + flight recorder bundle.

    A windowed :class:`Timeline` and per-window SLO probes are opt-in via
    :meth:`bind_timeline` / :meth:`add_slo` (or the session's
    ``timeline_width_ns`` / ``slos`` arguments); without them the engine
    keeps its monitor-free fast path.
    """

    def __init__(self, testbed: Any, tracer_capacity: int = 100_000,
                 flight_capacity: int = 256) -> None:
        self.testbed = testbed
        self.registry = MetricsRegistry()
        self.tracer = Tracer(testbed.env, capacity=tracer_capacity)
        self.recorder = FlightRecorder(capacity=flight_capacity)
        self.recorder.attach(testbed.env)
        self.timeline: Optional[Timeline] = None
        self.probes: List[SloProbe] = []
        instrument_testbed(testbed, self.registry)
        for model in testbed.models:
            if hasattr(model, "tracer") and model.tracer is None:
                model.tracer = self.tracer
        testbed.telemetry = self

    # -- timeline / SLO ----------------------------------------------------

    def bind_timeline(self, width_ns: Optional[int] = None) -> Timeline:
        """Attach a windowed timeline over this testbed's registry.

        Binding registers the timeline as an engine advance monitor,
        which switches the run loop to the monitored path; reads stay
        reference-only, so the run is bit-identical either way.
        """
        if self.timeline is not None:
            return self.timeline
        env = self.testbed.env
        self.timeline = Timeline(width_ns or DEFAULT_WINDOW_NS,
                                 registry=self.registry, start_ns=env.now)
        env.add_monitor(self.timeline)
        return self.timeline

    def add_slo(self, spec: SloSpec) -> SloProbe:
        """Attach an SLO probe (binding a timeline first if needed)."""
        timeline = self.bind_timeline(spec.window_ns or None)
        probe = SloProbe(spec, recorder=self.recorder).attach(timeline)
        self.probes.append(probe)
        return probe

    def finish(self) -> None:
        """Flush the timeline's final partial window at end of run."""
        if self.timeline is not None:
            self.timeline.flush(self.testbed.env.now)

    def register_workloads(self, workloads: Sequence[object]) -> None:
        """Register workload-side instruments (latency histograms and
        progress counters) so timelines and SLO probes can window them.

        Called by the scenario builders right after workload creation;
        reference-only, so unobserved runs are unchanged.
        """
        for index, workload in enumerate(workloads):
            prefix = f"workload.{index}"
            latency = getattr(workload, "latency_ns", None)
            if isinstance(latency, Histogram):
                self.registry.register_histogram(
                    f"{prefix}.latency_ns", latency)
            for attr in _WORKLOAD_PROGRESS_ATTRS:
                if hasattr(workload, attr):
                    read = (lambda w=workload, a=attr:
                            float(getattr(w, a)))
                    self.registry.register_gauge(f"{prefix}.{attr}", read)
                    if self.timeline is not None:
                        self.timeline.watch_rate(f"{prefix}.{attr}", read)

    # -- reading -----------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        return self.registry.snapshot()

    def stages(self) -> StageBreakdown:
        return stage_breakdown(self.tracer)

    def attribution(self) -> LatencyAttribution:
        """Queueing-vs-service latency attribution over every trace."""
        return attribute(self.tracer)

    def chrome_trace(self) -> Dict[str, Any]:
        return self.tracer.to_chrome_trace()

    def report(self, title: str = "") -> str:
        return text_report(self, title=title)


_active: List["TelemetrySession"] = []


class TelemetrySession:
    """Context manager scoping telemetry onto every testbed built within.

    ``timeline_width_ns`` binds a windowed timeline onto every testbed
    built inside the session; ``slos`` attaches the given
    :class:`SloSpec` probes as well (binding a timeline if needed).
    """

    def __init__(self, tracer_capacity: int = 100_000,
                 flight_capacity: int = 256,
                 timeline_width_ns: Optional[int] = None,
                 slos: Optional[Sequence[SloSpec]] = None) -> None:
        self.tracer_capacity = tracer_capacity
        self.flight_capacity = flight_capacity
        self.timeline_width_ns = timeline_width_ns
        self.slos = list(slos) if slos else []
        self.bound: List[TestbedTelemetry] = []

    def __enter__(self) -> "TelemetrySession":
        _active.append(self)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        _active.remove(self)
        for telemetry in self.bound:
            telemetry.finish()

    def bind(self, testbed: Any) -> TestbedTelemetry:
        telemetry = TestbedTelemetry(testbed,
                                     tracer_capacity=self.tracer_capacity,
                                     flight_capacity=self.flight_capacity)
        if self.timeline_width_ns is not None:
            telemetry.bind_timeline(self.timeline_width_ns)
        for spec in self.slos:
            telemetry.add_slo(spec)
        self.bound.append(telemetry)
        return telemetry

    def for_testbed(self, testbed: Any) -> Optional[TestbedTelemetry]:
        for telemetry in self.bound:
            if telemetry.testbed is testbed:
                return telemetry
        return None


def active_session() -> Optional[TelemetrySession]:
    """The innermost active session, or None."""
    return _active[-1] if _active else None


def bind_testbed(testbed: Any) -> Optional[TestbedTelemetry]:
    """Instrument ``testbed`` under the active session (no-op without one).

    Called by every cluster builder just before it returns.
    """
    session = active_session()
    if session is None:
        return None
    return session.bind(testbed)
