"""Per-request latency attribution: queueing vs. service per stage.

Builds on the PR-2 stage machinery (:mod:`repro.telemetry.stages`):
every traced request leaves time-ordered markers, and consecutive
markers delimit stages that tile the trace's end-to-end latency exactly.
Attribution classifies each stage —

* a stage named after a span (``iohost_service``, ``device_io``,
  ``vhost_service``) is **service** time: a component was actively
  working on the request;
* an ``a→b`` stage between two different markers is **queueing** time:
  the request sat in a ring, channel, or completion path between
  components (``guest_tx→iohost_service`` is the guest-ring-to-sidecore
  hop).

— and answers "which stage dominates at p99": among the *tail* traces
(end-to-end at or above the p99), the stage with the largest share of
total latency.  Because stages tile exactly, per-stage sums equal the
end-to-end sum with no rounding, per trace and in aggregate.

The same module exports simulated-cycles-per-component flamegraphs from
the cores' cycle ledgers (``Core.cycles_by_tag``), in both collapsed
("folded") stack format and speedscope JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..sim import Histogram
from .stages import END_TO_END, trace_markers

__all__ = [
    "QUEUEING",
    "SERVICE",
    "LatencyAttribution",
    "attribute",
    "stage_kind",
    "cycles_by_component",
    "to_folded_stacks",
    "to_speedscope",
]

QUEUEING = "queueing"
SERVICE = "service"


def stage_kind(stage: str) -> str:
    """Classify a stage name: span stages are service, hops are queueing."""
    return QUEUEING if "→" in stage else SERVICE


@dataclass
class TraceAttribution:
    """One request's exact stage decomposition."""

    trace_id: Any
    stages: List[Tuple[str, int]] = field(default_factory=list)
    end_to_end: int = 0


class LatencyAttribution:
    """Aggregated queueing/service decomposition across many traces."""

    def __init__(self) -> None:
        # Insertion-ordered: first-seen datapath order, like StageBreakdown.
        self.stages: Dict[str, Histogram] = {}
        self.end_to_end = Histogram(END_TO_END)
        self.traces: List[TraceAttribution] = []

    def add_trace(self, trace_id: Any,
                  markers: List[Tuple[int, str]]) -> None:
        """Fold one trace's markers in (ignored if fewer than two)."""
        if len(markers) < 2:
            return
        trace = TraceAttribution(trace_id)
        for (t0, a), (t1, b) in zip(markers, markers[1:]):
            stage = a if b == f"{a}_end" else f"{a}→{b}"
            duration = t1 - t0
            trace.stages.append((stage, duration))
            histogram = self.stages.get(stage)
            if histogram is None:
                histogram = self.stages[stage] = Histogram(stage)
            histogram.add(duration)
        trace.end_to_end = markers[-1][0] - markers[0][0]
        self.end_to_end.add(trace.end_to_end)
        self.traces.append(trace)

    # -- aggregate views ---------------------------------------------------

    def totals(self) -> Dict[str, float]:
        """Total nanoseconds per stage (sums tile the end-to-end sum)."""
        return {name: float(sum(h.samples))
                for name, h in self.stages.items()}

    def kind_totals(self) -> Dict[str, float]:
        """Total nanoseconds attributed to queueing vs. service."""
        out = {QUEUEING: 0.0, SERVICE: 0.0}
        totals = self.totals()
        for name in sorted(totals):
            out[stage_kind(name)] += totals[name]
        return out

    def dominant_at_p99(self) -> Optional[Tuple[str, float]]:
        """The stage carrying the largest share of tail latency.

        Tail = traces whose end-to-end is at or above the p99 of the
        end-to-end distribution.  Returns ``(stage, share)`` where share
        is the stage's fraction of the tail traces' total latency, or
        None with no traces.
        """
        if not self.traces:
            return None
        threshold = self.end_to_end.percentile(99)
        tail = [t for t in self.traces if t.end_to_end >= threshold]
        totals: Dict[str, float] = {}
        grand = 0.0
        for trace in tail:
            for stage, duration in trace.stages:
                totals[stage] = totals.get(stage, 0.0) + duration
                grand += duration
        if not grand:
            return None
        stage = max(sorted(totals), key=lambda s: totals[s])
        return stage, totals[stage] / grand

    def summarize(self) -> Dict[str, Any]:
        """JSON-ready digest: per-stage stats, kind split, tail verdict."""
        stages = []
        for name, histogram in self.stages.items():
            digest = histogram.summary()
            digest["stage"] = name
            digest["kind"] = stage_kind(name)
            digest["total_ns"] = float(sum(histogram.samples))
            stages.append(digest)
        dominant = self.dominant_at_p99()
        return {
            "schema": "repro-attribution/v1",
            "traces": len(self.traces),
            "stages": stages,
            "end_to_end": self.end_to_end.summary(),
            "kind_totals_ns": self.kind_totals(),
            "dominant_at_p99": (
                {"stage": dominant[0], "share": dominant[1]}
                if dominant else None),
        }

    def format(self) -> str:
        """Aligned text table (values in us) plus the tail verdict."""
        if not self.traces:
            return "latency attribution: no traced requests"
        lines = [
            f"latency attribution ({len(self.traces)} traced requests, us)",
            f"{'stage':38s} {'kind':>8s} {'count':>7s} {'mean':>9s} "
            f"{'p50':>9s} {'p99':>9s} {'total':>11s}",
        ]
        for name, histogram in self.stages.items():
            d = histogram.summary()
            lines.append(
                f"{name:38s} {stage_kind(name):>8s} {d['count']:7d} "
                f"{d['mean'] / 1000.0:9.2f} {d['p50'] / 1000.0:9.2f} "
                f"{d['p99'] / 1000.0:9.2f} "
                f"{sum(histogram.samples) / 1000.0:11.1f}")
        d = self.end_to_end.summary()
        lines.append(
            f"{END_TO_END:38s} {'':>8s} {d['count']:7d} "
            f"{d['mean'] / 1000.0:9.2f} {d['p50'] / 1000.0:9.2f} "
            f"{d['p99'] / 1000.0:9.2f} "
            f"{sum(self.end_to_end.samples) / 1000.0:11.1f}")
        kinds = self.kind_totals()
        grand = kinds[QUEUEING] + kinds[SERVICE]
        if grand:
            lines.append(
                f"split: service {kinds[SERVICE] / grand:.1%} / "
                f"queueing {kinds[QUEUEING] / grand:.1%}")
        dominant = self.dominant_at_p99()
        if dominant:
            lines.append(
                f"p99 tail dominated by {dominant[0]} "
                f"({dominant[1]:.1%} of tail latency)")
        return "\n".join(lines)

    # -- flamegraph exports ------------------------------------------------

    def to_folded(self) -> str:
        """Collapsed-stack lines: ``request;<kind>;<stage> <total_ns>``."""
        lines: List[str] = []
        for name, histogram in self.stages.items():
            total = int(sum(histogram.samples))
            lines.append(f"request;{stage_kind(name)};{name} {total}")
        return "\n".join(lines) + ("\n" if lines else "")


def attribute(tracer: Any, trace_ids: Optional[List[Any]] = None
              ) -> LatencyAttribution:
    """Build the attribution over ``trace_ids`` (default: every trace)."""
    attribution = LatencyAttribution()
    if trace_ids is None:
        trace_ids = tracer.trace_ids()
    for trace_id in trace_ids:
        attribution.add_trace(trace_id, trace_markers(tracer, trace_id))
    return attribution


# -- simulated cycles per component ----------------------------------------


def cycles_by_component(testbed: Any) -> List[Tuple[str, str, str, int]]:
    """Flatten every core's cycle ledger into stack tuples.

    Returns ``(group, core, tag, cycles)`` rows in deterministic order,
    walking the same components :func:`instrument_testbed` registers:
    VM vCPUs, sidecores/IOhost workers, and client cores.
    """
    rows: List[Tuple[str, str, str, int]] = []

    def emit(group: str, label: str, core: Any) -> None:
        for tag in sorted(core.cycles_by_tag):
            cycles = core.cycles_by_tag[tag]
            if cycles:
                rows.append((group, label, tag, cycles))

    for vm in testbed.vms:
        emit("vm", f"{vm.name}.vcpu", vm.vcpu)
    for index, core in enumerate(testbed.service_cores):
        emit("sidecores", str(index), core)
    for index, client in enumerate(testbed.clients):
        emit("clients", f"{index}.core", client.core)
    return rows


def to_folded_stacks(testbed: Any) -> str:
    """Cycles-per-component flamegraph in collapsed-stack format.

    One line per ``(component group; core; cost tag)`` stack, weighted by
    simulated cycles — feed straight into ``flamegraph.pl`` or
    speedscope's folded-stack importer.
    """
    lines = [f"{group};{core};{tag} {cycles}"
             for group, core, tag, cycles in cycles_by_component(testbed)]
    return "\n".join(lines) + ("\n" if lines else "")


def to_speedscope(source: Any, name: str = "repro") -> Dict[str, Any]:
    """Speedscope sampled-profile JSON.

    ``source`` is either a :class:`LatencyAttribution` (stacks are
    ``kind → stage`` weighted by total simulated nanoseconds) or a
    testbed (stacks are ``group → core → tag`` weighted by simulated
    cycles).
    """
    frames: List[Dict[str, str]] = []
    frame_index: Dict[str, int] = {}

    def frame(label: str) -> int:
        idx = frame_index.get(label)
        if idx is None:
            idx = frame_index[label] = len(frames)
            frames.append({"name": label})
        return idx

    samples: List[List[int]] = []
    weights: List[float] = []
    if isinstance(source, LatencyAttribution):
        unit = "nanoseconds"
        for stage, histogram in source.stages.items():
            total = float(sum(histogram.samples))
            if total:
                samples.append([frame(stage_kind(stage)), frame(stage)])
                weights.append(total)
    else:
        unit = "none"
        for group, core, tag, cycles in cycles_by_component(source):
            samples.append([frame(group), frame(core), frame(tag)])
            weights.append(float(cycles))
    total_weight = sum(weights)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "shared": {"frames": frames},
        "profiles": [{
            "type": "sampled",
            "name": name,
            "unit": unit,
            "startValue": 0,
            "endValue": total_weight,
            "samples": samples,
            "weights": weights,
        }],
        "activeProfileIndex": 0,
        "exporter": "repro-observe",
    }
