"""The one sanctioned home for process-environment access.

Determinism rule SIM105 forbids ``os.environ``/``os.getenv`` anywhere in
the simulation tree: results must not silently depend on the caller's
shell.  The few legitimate knobs — all of them about *where artifacts
live* or *how child processes are spawned*, never about simulated
behavior — are centralized here so every environment dependency is
visible in one module.

Knobs
-----
``REPRO_REGEN_GOLDENS``
    Truthy: golden comparisons rewrite the committed file instead of
    asserting against it.
``REPRO_CACHE_DIR``
    Overrides the sweep cache directory (default ``.repro_cache``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "REGEN_GOLDENS_ENV",
    "CACHE_DIR_ENV",
    "regen_goldens_requested",
    "cache_dir_override",
    "spawn_pythonpath",
    "pythonpath_for_spawn",
]

REGEN_GOLDENS_ENV = "REPRO_REGEN_GOLDENS"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def regen_goldens_requested() -> bool:
    """True when the caller asked golden tests to regenerate files."""
    return bool(os.environ.get(REGEN_GOLDENS_ENV))


def cache_dir_override() -> Optional[str]:
    """The sweep-cache directory override, or None for the default."""
    return os.environ.get(CACHE_DIR_ENV) or None


def spawn_pythonpath(src_root: str) -> str:
    """A PYTHONPATH value with ``src_root`` prepended (deduplicated).

    Spawned workers re-import ``repro`` from scratch; callers that got
    the package onto ``sys.path`` by hand (tests, ad-hoc scripts) need
    the source root exported through the environment.
    """
    existing = os.environ.get("PYTHONPATH", "")
    parts = [p for p in existing.split(os.pathsep) if p]
    if src_root not in parts:
        parts.insert(0, src_root)
    return os.pathsep.join(parts)


@contextmanager
def pythonpath_for_spawn(src_root: str) -> Iterator[str]:
    """Temporarily export :func:`spawn_pythonpath` while a pool runs."""
    old = os.environ.get("PYTHONPATH")
    value = spawn_pythonpath(src_root)
    os.environ["PYTHONPATH"] = value
    try:
        yield value
    finally:
        if old is None:
            os.environ.pop("PYTHONPATH", None)
        else:
            os.environ["PYTHONPATH"] = old
