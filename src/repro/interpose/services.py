"""Concrete interposition services.

* :class:`AesEncryption` — the seamless block/packet encryption used in the
  paper's load-imbalance experiment (Fig. 16b, AES-256 via kernel APIs).
* :class:`Firewall` — per-packet rule evaluation with veto.
* :class:`DeduplicationIndex` — content-hash bookkeeping (storage dedup).
* :class:`Meter` — pure accounting (the monitoring/metering service SRIOV
  famously cannot provide).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from ..sim import Counter
from .base import Interposer

__all__ = ["AesEncryption", "Firewall", "DeduplicationIndex", "Meter"]


class AesEncryption(Interposer):
    """AES-256 encryption cost model.

    Software AES-NI on 2013-era Xeons runs near 1.3–2.5 cycles/byte through
    the kernel crypto API once request overheads are included; the default
    of 5.0 cycles/byte models the non-accelerated kernel path the paper's
    "standard Linux APIs" wording suggests, and makes encryption the
    dominant sidecore load, as Fig. 16b requires.
    """

    name = "aes-256"

    def __init__(self, cycles_per_byte: float = 5.0,
                 setup_cycles: int = 1_800):
        self.cycles_per_byte = cycles_per_byte
        self.setup_cycles = setup_cycles
        self.bytes_encrypted = Counter("bytes_encrypted")

    def cycles(self, size_bytes: int, kind: str) -> int:
        return int(self.setup_cycles + self.cycles_per_byte * size_bytes)

    def observe(self, message) -> None:
        size = getattr(message, "size_bytes", 0)
        self.bytes_encrypted.add(size)


class Firewall(Interposer):
    """Layer-2/3 filtering: fixed per-packet rule-walk cost plus veto."""

    name = "firewall"

    def __init__(self, rules: Optional[Iterable[Callable[[object], bool]]] = None,
                 cycles_per_packet: int = 900):
        self.rules = list(rules or [])
        self.cycles_per_packet = cycles_per_packet
        self.dropped = Counter("fw_dropped")

    def cycles(self, size_bytes: int, kind: str) -> int:
        return self.cycles_per_packet * max(1, len(self.rules))

    def allow(self, message) -> bool:
        for rule in self.rules:
            if not rule(message):
                self.dropped.add()
                return False
        return True


class DeduplicationIndex(Interposer):
    """Content-addressed dedup for block writes: hash cost + hit tracking.

    The simulation has no real payload bytes, so callers may tag messages
    with ``meta['content_key']``; untagged messages are treated as unique.
    """

    name = "dedup"

    def __init__(self, hash_cycles_per_byte: float = 1.2):
        self.hash_cycles_per_byte = hash_cycles_per_byte
        self._index: Dict[object, int] = {}
        self.hits = Counter("dedup_hits")
        self.misses = Counter("dedup_misses")

    def cycles(self, size_bytes: int, kind: str) -> int:
        if kind != "blk_write":
            return 0
        return int(self.hash_cycles_per_byte * size_bytes)

    def observe(self, message) -> None:
        if getattr(message, "kind", None) != "blk_write":
            return
        key = message.meta.get("content_key")
        if key is None:
            self.misses.add()
            return
        if key in self._index:
            self.hits.add()
            self._index[key] += 1
        else:
            self.misses.add()
            self._index[key] = 1

    @property
    def unique_blocks(self) -> int:
        return len(self._index)


class Meter(Interposer):
    """Traffic accounting per source MAC — pure interposition bookkeeping."""

    name = "meter"

    def __init__(self, cycles_per_packet: int = 250):
        self.cycles_per_packet = cycles_per_packet
        self.bytes_by_src: Dict[object, int] = {}
        self.packets_by_src: Dict[object, int] = {}

    def cycles(self, size_bytes: int, kind: str) -> int:
        return self.cycles_per_packet

    def observe(self, message) -> None:
        src = getattr(message, "src", None)
        size = getattr(message, "size_bytes", 0)
        self.bytes_by_src[src] = self.bytes_by_src.get(src, 0) + size
        self.packets_by_src[src] = self.packets_by_src.get(src, 0) + 1
