"""Programmable I/O interposition.

The whole point of interposable virtual I/O (§1): the host — or, in vRIO,
the remote I/O hypervisor — can run arbitrary services on every request.
An :class:`Interposer` contributes CPU cycles (charged on the servicing
sidecore/worker/vhost core) and may veto or annotate messages.

The chain is shared by all interposable models (baseline, Elvis, vRIO);
SRIOV bypasses it entirely, which is exactly its limitation.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..sim import Counter

__all__ = ["Interposer", "InterposerChain"]


class Interposer:
    """Base class: one interposition service on the I/O path."""

    name = "interposer"

    def cycles(self, size_bytes: int, kind: str) -> int:
        """CPU cycles this service spends on a message of ``size_bytes``."""
        raise NotImplementedError

    def allow(self, message) -> bool:
        """Whether the message may proceed (firewalls veto here)."""
        return True

    def observe(self, message) -> None:
        """Side-effect hook (metering, dedup bookkeeping)."""


class InterposerChain:
    """An ordered list of interposers applied to every message."""

    def __init__(self, interposers: Optional[Iterable[Interposer]] = None):
        self.interposers: List[Interposer] = list(interposers or [])
        self.processed = Counter("interposed")
        self.vetoed = Counter("vetoed")

    def add(self, interposer: Interposer) -> None:
        self.interposers.append(interposer)

    def cycles(self, size_bytes: int, kind: str = "data") -> int:
        """Total chain cycles for one message."""
        return sum(i.cycles(size_bytes, kind) for i in self.interposers)

    def admit(self, message) -> bool:
        """Run observe/allow hooks; False means the message is dropped."""
        self.processed.add()
        for interposer in self.interposers:
            interposer.observe(message)
            if not interposer.allow(message):
                self.vetoed.add()
                return False
        return True

    def __len__(self) -> int:
        return len(self.interposers)
