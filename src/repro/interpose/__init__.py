"""Programmable I/O interposition services (§1, §4.1, Fig. 16b)."""

from .base import Interposer, InterposerChain
from .services import AesEncryption, DeduplicationIndex, Firewall, Meter

__all__ = [
    "Interposer", "InterposerChain",
    "AesEncryption", "Firewall", "DeduplicationIndex", "Meter",
]
