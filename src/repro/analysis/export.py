"""Export experiment results to JSON/CSV for external plotting."""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, is_dataclass
from typing import Any, Iterable, List, Sequence

__all__ = ["to_json", "to_csv", "rows_from"]


def rows_from(result: Any) -> List[dict]:
    """Normalize an experiment result into a list of flat dict rows.

    Accepts: a list of dicts (most ``run_*`` outputs), a list of
    dataclasses (e.g. ``SeriesPoint``), a dict of model->percentile maps
    (Table 4), or a dict of named sub-results (Figures 12/14), which are
    flattened with a ``group`` column.
    """
    if isinstance(result, dict):
        rows: List[dict] = []
        for key, value in result.items():
            if isinstance(value, dict):
                row = {"group": str(key)}
                row.update({str(k): v for k, v in value.items()})
                rows.append(row)
            else:
                for sub in rows_from(value):
                    sub_row = {"group": str(key)}
                    sub_row.update(sub)
                    rows.append(sub_row)
        return rows
    if isinstance(result, (list, tuple)):
        rows = []
        for item in result:
            if is_dataclass(item):
                rows.append({k: v for k, v in asdict(item).items()
                             if v is not None})
            elif isinstance(item, dict):
                rows.append(dict(item))
            elif isinstance(item, (list, tuple)) and len(item) == 2:
                rows.append({"x": item[0], "y": item[1]})
            else:
                raise TypeError(f"cannot normalize row of type {type(item)}")
        return rows
    raise TypeError(f"cannot normalize result of type {type(result)}")


def to_json(result: Any, indent: int = 2) -> str:
    """Serialize a normalized result as JSON."""
    return json.dumps(rows_from(result), indent=indent, default=str)


def to_csv(result: Any) -> str:
    """Serialize a normalized result as CSV (union of all row keys)."""
    rows = rows_from(result)
    if not rows:
        return ""
    fieldnames: List[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()
