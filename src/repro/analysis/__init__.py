"""Result analysis helpers: tables, summaries, series grouping, charts."""

from .charts import ascii_chart
from .export import rows_from, to_csv, to_json
from .tables import (
    format_table,
    relative_percent,
    series_by_model,
    summarize_latency_us,
)

__all__ = ["format_table", "relative_percent", "summarize_latency_us",
           "series_by_model", "ascii_chart",
           "to_json", "to_csv", "rows_from"]
