"""Terminal line charts for experiment series — no plotting dependency.

Renders per-model series (e.g. Figure 7's latency curves) as an ASCII
grid, good enough to eyeball crossovers and saturation knees in a
terminal or a CI log.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["ascii_chart"]

_MARKERS = "ox+*#@%&"


def ascii_chart(series: Dict[str, List[Tuple[float, float]]],
                width: int = 60, height: int = 16,
                title: str = "", y_label: str = "") -> str:
    """Render ``{name: [(x, y), ...]}`` as an ASCII chart.

    Each series gets a marker; a legend maps markers to names.  Points
    are nearest-neighbor plotted onto a width x height grid.
    """
    if not series:
        raise ValueError("nothing to chart")
    if width < 10 or height < 4:
        raise ValueError(f"chart too small: {width}x{height}")
    points = [(x, y) for key in sorted(series) for x, y in series[key]]
    if not points:
        raise ValueError("all series are empty")
    xs = [x for x, _y in points]
    ys = [y for _x, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    if y_high == y_low:
        y_high = y_low + 1.0
    if x_high == x_low:
        x_high = x_low + 1.0

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> Tuple[int, int]:
        col = round((x - x_low) / (x_high - x_low) * (width - 1))
        row = round((y - y_low) / (y_high - y_low) * (height - 1))
        return (height - 1) - row, col

    legend = []
    for index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker}={name}")
        for x, y in values:
            row, col = cell(x, y)
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_high:g}"
    bottom_label = f"{y_low:g}"
    label_width = max(len(top_label), len(bottom_label), len(y_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(label_width)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(label_width)
        elif row_index == height // 2 and y_label:
            prefix = y_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * label_width + " +" + "-" * width)
    lines.append(" " * label_width + f"  {x_low:g}"
                 + f"{x_high:g}".rjust(width - len(f"{x_low:g}")))
    lines.append("  " + "  ".join(legend))
    return "\n".join(lines)
