"""Generic result-table formatting and summary helpers."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..sim import Histogram

__all__ = ["format_table", "relative_percent", "summarize_latency_us",
           "series_by_model"]


def format_table(rows: Sequence[dict],
                 columns: Sequence[Tuple[str, str, str]],
                 title: str = "") -> str:
    """Render dict rows as an aligned text table.

    ``columns`` is a sequence of ``(key, header, format_spec)`` tuples,
    e.g. ``("latency_us", "latency", "8.1f")``.
    """
    header_cells = []
    for _key, header, spec in columns:
        width = _width_of(spec)
        header_cells.append(f"{header:>{width}s}")
    lines = []
    if title:
        lines.append(title)
    lines.append(" ".join(header_cells))
    for row in rows:
        cells = []
        for key, _header, spec in columns:
            value = row[key]
            if spec.endswith("s"):
                width = _width_of(spec)
                cells.append(f"{str(value):>{width}s}")
            else:
                cells.append(format(value, spec))
        lines.append(" ".join(cells))
    return "\n".join(lines)


def _width_of(spec: str) -> int:
    digits = ""
    for ch in spec:
        if ch.isdigit():
            digits += ch
        elif ch == ".":
            break
    return int(digits) if digits else 10


def relative_percent(value: float, reference: float) -> float:
    """``value`` as a percentage change from ``reference``."""
    if reference == 0:
        raise ValueError("reference must be nonzero")
    return (value / reference - 1.0) * 100.0


def summarize_latency_us(histogram: Histogram) -> Dict[str, float]:
    """Mean/median/tails of a nanosecond latency histogram, in us.

    An empty histogram (a workload that completed nothing) summarizes to
    ``None`` entries rather than raising, so summaries over mixed runs
    stay renderable.
    """
    if histogram.count == 0:
        return {"mean": None, "p50": None, "p99": None, "p99.9": None,
                "max": None}
    return {
        "mean": histogram.mean() / 1000.0,
        "p50": histogram.percentile(50) / 1000.0,
        "p99": histogram.percentile(99) / 1000.0,
        "p99.9": histogram.percentile(99.9) / 1000.0,
        "max": histogram.max() / 1000.0,
    }


def series_by_model(points) -> Dict[str, List[Tuple[int, float]]]:
    """Group experiment SeriesPoints into per-model (n, value) series."""
    series: Dict[str, List[Tuple[int, float]]] = {}
    for point in points:
        series.setdefault(point.model, []).append((point.n_vms, point.value))
    for values in series.values():
        values.sort()
    return series
