"""Differential scheduler harness: prove the schedulers interchangeable.

The calendar-queue scheduler earns its keep only if nothing observable
changes: the legacy heap (``Environment(scheduler="heap")``) is the
reference model, and this module runs the *same* scenario under each
registered scheduler and compares everything an artifact consumer can
see:

* the canonical metrics dictionary, serialized to JSON — compared
  byte-for-byte;
* the committed golden fingerprint — both schedulers must match it, not
  merely each other;
* optionally the telemetry exports — the metrics snapshot and the
  Chrome ``trace_event`` JSON, again byte-for-byte.

``diff_scenario`` returns a list of human-readable problems (empty =
equivalent); ``diff_all`` sweeps the whole scenario registry.  The
fault-injection scenarios in the registry ride along, so scheduler
equivalence is proven through failover/recovery schedules too.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Iterable, List, Optional

from ..sim import SCHEDULERS, scheduler_override

__all__ = [
    "REFERENCE_SCHEDULER",
    "metrics_json",
    "normalize_chrome_trace",
    "run_under",
    "diff_scenario",
    "diff_all",
]

REFERENCE_SCHEDULER = "heap"


def normalize_chrome_trace(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Rewrite raw trace ids to dense first-appearance indexes.

    Message/request ids come from process-global counters, so their
    absolute values depend on how many runs preceded this one in the
    process — not on the scheduler.  The export already maps each id to
    a dense ``tid``; this rewrites the raw copy kept in ``args`` the
    same way so two runs of the same schedule compare byte-identical.
    """
    ids: Dict[str, str] = {}
    events = []
    for record in doc.get("traceEvents", []):
        args = record.get("args", {})
        raw = args.get("trace_id")
        if raw is not None:
            args = dict(args,
                        trace_id=ids.setdefault(raw, str(len(ids) + 1)))
            record = dict(record, args=args)
        events.append(record)
    return dict(doc, traceEvents=events)


def metrics_json(metrics: Dict[str, Any]) -> str:
    """Canonical byte representation of a scenario's metrics."""
    return json.dumps(metrics, sort_keys=True, separators=(",", ":"))


def run_under(scheduler: str, name: str, seed: int = 0,
              telemetry: bool = False) -> Dict[str, Optional[str]]:
    """Run scenario ``name`` under ``scheduler``; return its observables.

    The result maps observable kind to its canonical byte string:
    ``metrics`` always; ``telemetry_metrics`` and ``chrome_trace`` when
    ``telemetry`` is set (None when the testbed never bound a session).
    """
    from .scenarios import run_scenario

    out: Dict[str, Optional[str]] = {}
    if telemetry:
        from ..telemetry import TelemetrySession

        with scheduler_override(scheduler):
            with TelemetrySession() as session:
                result = run_scenario(name, seed=seed)
        bound = session.for_testbed(result.testbed)
        if bound is None:
            out["telemetry_metrics"] = None
            out["chrome_trace"] = None
        else:
            out["telemetry_metrics"] = json.dumps(
                bound.snapshot(), sort_keys=True, default=str)
            out["chrome_trace"] = json.dumps(
                normalize_chrome_trace(bound.chrome_trace()),
                sort_keys=True, default=str)
    else:
        with scheduler_override(scheduler):
            result = run_scenario(name, seed=seed)
    out["metrics"] = metrics_json(result.metrics)
    return out


def diff_scenario(name: str, seed: int = 0,
                  schedulers: Optional[Iterable[str]] = None,
                  telemetry: bool = False,
                  check_golden: bool = True) -> List[str]:
    """Compare one scenario across schedulers; return problem strings."""
    from .golden import GoldenMismatch, assert_matches_golden, golden_path

    names = list(schedulers) if schedulers is not None else sorted(SCHEDULERS)
    if REFERENCE_SCHEDULER not in names:
        names.insert(0, REFERENCE_SCHEDULER)
    problems: List[str] = []
    runs = {sched: run_under(sched, name, seed=seed, telemetry=telemetry)
            for sched in names}
    reference = runs[REFERENCE_SCHEDULER]
    for sched in names:
        if sched == REFERENCE_SCHEDULER:
            continue
        for kind, expected in reference.items():
            actual = runs[sched][kind]
            if actual != expected:
                problems.append(
                    f"{name}: {kind} under {sched!r} differs from "
                    f"{REFERENCE_SCHEDULER!r} ({_first_delta(expected, actual)})")
    if check_golden and golden_path(name).exists():
        from .scenarios import run_scenario

        for sched in names:
            with scheduler_override(sched):
                result = run_scenario(name, seed=seed)
            try:
                assert_matches_golden(name, result.metrics)
            except GoldenMismatch as exc:
                problems.append(
                    f"{name}: golden mismatch under {sched!r}: {exc}")
    return problems


def _first_delta(expected: Optional[str], actual: Optional[str]) -> str:
    """Locate the first differing byte for a readable failure message."""
    if expected is None or actual is None:
        return f"expected {'present' if expected else 'None'}, " \
               f"got {'present' if actual else 'None'}"
    limit = min(len(expected), len(actual))
    for i in range(limit):
        if expected[i] != actual[i]:
            lo = max(0, i - 30)
            return (f"first difference at byte {i}: "
                    f"...{expected[lo:i + 30]!r} vs ...{actual[lo:i + 30]!r}")
    return f"length {len(expected)} vs {len(actual)}"


def diff_all(seed: int = 0, telemetry: bool = False,
             progress: Optional[Callable[[str], None]] = None) -> List[str]:
    """Run :func:`diff_scenario` over the whole registry."""
    from .scenarios import scenario_names

    problems: List[str] = []
    for name in scenario_names():
        if progress is not None:
            progress(name)
        problems.extend(diff_scenario(name, seed=seed, telemetry=telemetry))
    return problems
