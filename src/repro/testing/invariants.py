"""Cross-cutting simulation invariants, checkable on any completed run.

The simulator's credibility rests on conservation laws the paper never
states because real hardware enforces them for free: clocks only move
forward, cores cannot be more than 100% busy, every delivered message was
once sent, cycle ledgers balance.  This module makes those laws executable
so every test, benchmark, and ``repro verify`` run can audit them.

Two entry points:

* :class:`EngineMonitor` attaches to an :class:`~repro.sim.Environment`
  *before* a run and audits the event stream as it executes (monotonic
  clock, step counts).
* :func:`verify_testbed` inspects a finished
  :class:`~repro.cluster.Testbed` and returns every
  :class:`InvariantViolation` found (an empty list means the run was
  internally consistent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from ..hw.cpu import Core
from ..iomodels.base import ExternalEndpoint, IoEventStats, NetPort
from ..sim import Environment

__all__ = [
    "InvariantViolation",
    "EngineMonitor",
    "check_core",
    "check_port",
    "check_endpoint",
    "check_event_stats",
    "check_conservation",
    "verify_testbed",
    "assert_no_violations",
]

# Utilization may exceed 1.0 by a hair from integer rounding of
# cycle->ns conversion; anything above this is a real accounting bug.
_UTIL_TOLERANCE = 1e-9


@dataclass(frozen=True)
class InvariantViolation:
    """One broken invariant: which law, where, and the observed values."""

    invariant: str
    subject: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.invariant}] {self.subject}: {self.detail}"


class EngineMonitor:
    """Audits the live event stream of one :class:`Environment`.

    Attach with ``monitor = EngineMonitor.attach(env)``; after the run,
    ``monitor.violations`` holds anything the stream did wrong and
    ``monitor.steps`` / ``monitor.last_ns`` describe what executed.
    """

    #: When True (class-wide or per-instance), every step's timestamp is
    #: appended to ``times`` — the engine benchmark uses this to capture a
    #: scenario's step-time profile for scheduler replay.
    capture_times = False

    def __init__(self, env: Environment):
        self.env = env
        self.steps = 0
        self.events_processed = 0
        self.callbacks_run = 0
        self.last_ns = env.now
        self.times: List[int] = []
        self.violations: List[InvariantViolation] = []

    @classmethod
    def attach(cls, env: Environment) -> "EngineMonitor":
        monitor = cls(env)
        env.add_monitor(monitor)
        return monitor

    def detach(self) -> None:
        self.env.remove_monitor(self)

    def on_step(self, now: int, item) -> None:
        self.steps += 1
        if self.capture_times:
            self.times.append(now)
        if now < self.last_ns:
            self.violations.append(InvariantViolation(
                "clock-monotonic", "environment",
                f"step at {now} ns after clock reached {self.last_ns} ns"))
        self.last_ns = now
        if callable(item) and not hasattr(item, "callbacks"):
            self.callbacks_run += 1
        else:
            self.events_processed += 1


# -- per-object checks -------------------------------------------------------

def check_core(core: Core, now: int) -> List[InvariantViolation]:
    """A core's time and cycle ledgers must balance.

    * busy time is bounded by wall time, useful time by busy time;
    * the per-tag cycle breakdown sums to the total cycle count;
    * utilization fractions land in [0, 1].
    """
    out: List[InvariantViolation] = []
    busy = core.util.busy_ns
    useful = core.util.useful_ns
    if not 0 <= useful <= busy:
        out.append(InvariantViolation(
            "core-accounting", core.name,
            f"useful_ns={useful} outside [0, busy_ns={busy}]"))
    if busy > now:
        out.append(InvariantViolation(
            "core-accounting", core.name,
            f"busy_ns={busy} exceeds wall time {now} ns"))
    tag_sum = sum(core.cycles_by_tag[tag]
                  for tag in sorted(core.cycles_by_tag))
    if tag_sum != core.total_cycles:
        out.append(InvariantViolation(
            "cycle-ledger", core.name,
            f"cycles_by_tag sums to {tag_sum}, total_cycles={core.total_cycles}"))
    if core.total_cycles < 0 or any(v < 0 for v in core.cycles_by_tag.values()):
        out.append(InvariantViolation(
            "cycle-ledger", core.name, "negative cycle count"))
    if now > 0:
        frac = core.util.busy_fraction()
        if not 0.0 <= frac <= 1.0 + _UTIL_TOLERANCE:
            out.append(InvariantViolation(
                "utilization-bounds", core.name,
                f"busy fraction {frac} outside [0, 1]"))
    return out


def check_port(port: NetPort) -> List[InvariantViolation]:
    """Message/byte counters of a VM-facing port must be consistent."""
    out: List[InvariantViolation] = []
    for counter in (port.tx_messages, port.rx_messages,
                    port.tx_bytes, port.rx_bytes):
        if counter.value < 0:
            out.append(InvariantViolation(
                "counter-sign", f"port {port.mac}",
                f"{counter.name}={counter.value}"))
    # Every NetMessage carries at least one byte.
    if port.tx_bytes.value < port.tx_messages.value:
        out.append(InvariantViolation(
            "bytes-per-message", f"port {port.mac}",
            f"tx {port.tx_bytes.value}B over {port.tx_messages.value} msgs"))
    if port.rx_bytes.value < port.rx_messages.value:
        out.append(InvariantViolation(
            "bytes-per-message", f"port {port.mac}",
            f"rx {port.rx_bytes.value}B over {port.rx_messages.value} msgs"))
    return out


def check_endpoint(endpoint: ExternalEndpoint) -> List[InvariantViolation]:
    out: List[InvariantViolation] = []
    for counter in (endpoint.tx_messages, endpoint.rx_messages):
        if counter.value < 0:
            out.append(InvariantViolation(
                "counter-sign", endpoint.name,
                f"{counter.name}={counter.value}"))
    return out


def check_event_stats(stats: IoEventStats) -> List[InvariantViolation]:
    """The Table-3 event counters are monotone tallies: never negative."""
    out: List[InvariantViolation] = []
    snapshot = stats.snapshot()
    for column, value in snapshot.items():
        if value < 0:
            out.append(InvariantViolation(
                "counter-sign", f"stats {stats.name or 'io'}",
                f"{column}={value}"))
    if stats.total() != sum(snapshot[key] for key in sorted(snapshot)):
        out.append(InvariantViolation(
            "stats-sum", f"stats {stats.name or 'io'}",
            f"total() {stats.total()} != sum of columns"))
    return out


def check_conservation(testbed) -> List[InvariantViolation]:
    """No endpoint may receive a message that nobody sent.

    Summed across every port and external endpoint, receives are bounded
    by sends: links may *drop* frames (lossy channels) and frames may be
    in flight at run end, but the fabric never conjures traffic.
    Retransmissions count as fresh sends at the reliability layer, so the
    bound holds for them too.
    """
    tx = sum(p.tx_messages.value for p in testbed.ports)
    rx = sum(p.rx_messages.value for p in testbed.ports)
    tx += sum(c.tx_messages.value for c in testbed.clients)
    rx += sum(c.rx_messages.value for c in testbed.clients)
    if rx > tx:
        return [InvariantViolation(
            "message-conservation", f"testbed {testbed.model_name}",
            f"received {rx} messages but only {tx} were sent")]
    return []


# -- whole-testbed audit -----------------------------------------------------

def _testbed_cores(testbed) -> Iterable[Core]:
    seen = set()
    for vm in testbed.vms:
        if id(vm.vcpu) not in seen:
            seen.add(id(vm.vcpu))
            yield vm.vcpu
    for core in testbed.service_cores:
        if id(core) not in seen:
            seen.add(id(core))
            yield core
    for client in testbed.clients:
        if id(client.core) not in seen:
            seen.add(id(client.core))
            yield client.core


# How many flight-recorder entries a failing audit dumps.
_FLIGHT_DUMP_ENTRIES = 48


def verify_testbed(testbed,
                   monitor: Optional[EngineMonitor] = None,
                   recorder=None
                   ) -> List[InvariantViolation]:
    """Audit every invariant on a finished testbed run.

    Returns all violations found (empty list = clean).  Pass the
    :class:`EngineMonitor` that watched the run to include its stream
    findings.  Pass a :class:`~repro.telemetry.FlightRecorder` (or leave
    ``recorder=None`` to use the testbed's bound telemetry, if any) and a
    failing audit appends one extra violation carrying the recorder's
    last entries — the context needed to debug what the run was doing
    when the laws broke.
    """
    now = testbed.env.now
    out: List[InvariantViolation] = []
    if monitor is not None:
        out.extend(monitor.violations)
    for core in _testbed_cores(testbed):
        out.extend(check_core(core, now))
    for port in testbed.ports:
        out.extend(check_port(port))
    for client in testbed.clients:
        out.extend(check_endpoint(client))
    out.extend(check_event_stats(testbed.stats))
    out.extend(check_conservation(testbed))
    if out:
        if recorder is None:
            telemetry = getattr(testbed, "telemetry", None)
            recorder = getattr(telemetry, "recorder", None)
        if recorder is not None:
            out.append(InvariantViolation(
                "flight-recorder", "recent-events",
                recorder.dump(last=_FLIGHT_DUMP_ENTRIES)))
    return out


def assert_no_violations(violations: List[InvariantViolation]) -> None:
    """Raise an :class:`AssertionError` listing every violation."""
    if violations:
        lines = "\n".join(f"  - {v}" for v in violations)
        raise AssertionError(
            f"{len(violations)} simulation invariant(s) violated:\n{lines}")
