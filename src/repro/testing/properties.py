"""A tiny, dependency-free property-based testing harness.

Hypothesis is not available in this environment, so this module provides
the 10% of it the reproduction needs: run a property over many
pseudo-random cases, and when one fails, report the exact case seed so
the failure replays with a one-liner.

Usage::

    def prop(rng, case):
        size = rng.randrange(1, 65536)
        assert sum(segment_sizes(size, 8100)) == size

    run_property(prop, n_cases=500, seed=7)

Each case gets its own ``random.Random`` derived from ``(seed, case)``,
so cases are independent and any single case is reproducible via
``replay_case(prop, seed, case)``.
"""

from __future__ import annotations

import random
from typing import Callable

__all__ = ["PropertyFailure", "run_property", "replay_case", "case_rng"]


class PropertyFailure(AssertionError):
    """A property failed; carries the reproducing (seed, case) pair."""

    def __init__(self, message: str, seed: int, case: int,
                 cause: BaseException):
        super().__init__(message)
        self.seed = seed
        self.case = case
        self.cause = cause


def case_rng(seed: int, case: int) -> random.Random:
    """The deterministic RNG for one property case.

    Seeded through a string (SHA-512 inside ``random.Random``) so
    neighbouring cases share no state.
    """
    return random.Random(f"property/{seed}/{case}")


def run_property(prop: Callable[[random.Random, int], None],
                 n_cases: int = 200, seed: int = 0) -> int:
    """Run ``prop(rng, case_index)`` for ``n_cases`` independent cases.

    Returns the number of cases run.  On the first failing case, raises
    :class:`PropertyFailure` naming the seed and case index; replay that
    single case with :func:`replay_case`.
    """
    if n_cases <= 0:
        raise ValueError(f"need a positive case count, got {n_cases}")
    for case in range(n_cases):
        try:
            prop(case_rng(seed, case), case)
        except PropertyFailure:
            raise
        except BaseException as exc:
            raise PropertyFailure(
                f"property {getattr(prop, '__name__', 'prop')!r} failed on "
                f"case {case}/{n_cases} (seed={seed}): {exc!r}\n"
                f"replay with replay_case(prop, seed={seed}, case={case})",
                seed=seed, case=case, cause=exc) from exc
    return n_cases


def replay_case(prop: Callable[[random.Random, int], None],
                seed: int, case: int) -> None:
    """Re-run exactly one failing case (for debugging)."""
    prop(case_rng(seed, case), case)
