"""Canonical verification scenarios: small, fast, deterministic runs.

Every consumer of the verification harness — the golden-regression tests,
the determinism tests, the invariant battery, and ``repro verify`` —
drives the *same* registry of scenarios, so a behavioural change in any
datapath shows up identically everywhere.

Each scenario assembles a testbed, attaches an
:class:`~repro.testing.invariants.EngineMonitor`, runs a short workload,
and distils the run into a flat ``{metric_name: number}`` dict.  The
metrics are chosen to fingerprint the whole datapath: event-stream shape,
Table-3 virtualization events, message/byte flows, cycle ledgers, and the
workload's own figures of merit.  Runs are a few simulated milliseconds —
long enough for hundreds of transactions, short enough that the full
registry replays in seconds of wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from ..cluster import MODEL_NAMES, TestbedSpec, build_testbed
from ..sim import ms
from ..workloads import ApacheBench, NetperfRR, NetperfStream, OpenLoopRR
from ..workloads.filebench import FilebenchRandomIO
from .invariants import EngineMonitor

__all__ = [
    "Scenario",
    "ScenarioResult",
    "SCENARIOS",
    "scenario_names",
    "run_scenario",
]

Metrics = Dict[str, float]


@dataclass
class ScenarioResult:
    """Everything one scenario run produced."""

    name: str
    testbed: object
    workloads: List[object]
    monitor: EngineMonitor
    metrics: Metrics


@dataclass(frozen=True)
class Scenario:
    """A named, reproducible verification run."""

    name: str
    description: str
    build: Callable[[int], ScenarioResult] = field(repr=False)
    tags: Tuple[str, ...] = ()


# -- shared metric collection ------------------------------------------------

def _common_metrics(testbed, monitor: EngineMonitor) -> Metrics:
    metrics: Metrics = {
        "sim.now_ns": testbed.env.now,
        "sim.steps": monitor.steps,
        "sim.events": monitor.events_processed,
        "stats.total": testbed.stats.total(),
    }
    for column, value in testbed.stats.snapshot().items():
        metrics[f"stats.{column}"] = value
    for scope, items in (("ports", testbed.ports), ("clients", testbed.clients)):
        metrics[f"{scope}.tx_messages"] = sum(
            p.tx_messages.value for p in items)
        metrics[f"{scope}.rx_messages"] = sum(
            p.rx_messages.value for p in items)
    metrics["ports.tx_bytes"] = sum(p.tx_bytes.value for p in testbed.ports)
    metrics["ports.rx_bytes"] = sum(p.rx_bytes.value for p in testbed.ports)
    metrics["cores.vm_cycles"] = sum(
        vm.vcpu.total_cycles for vm in testbed.vms)
    metrics["cores.service_cycles"] = sum(
        c.total_cycles for c in testbed.service_cores)
    metrics["cores.service_busy_ns"] = sum(
        c.util.busy_ns for c in testbed.service_cores)
    metrics["cores.service_useful_ns"] = sum(
        c.util.useful_ns for c in testbed.service_cores)
    return metrics


def _finish(name: str, testbed, workloads, monitor: EngineMonitor,
            extra: Metrics) -> ScenarioResult:
    metrics = _common_metrics(testbed, monitor)
    metrics.update(extra)
    return ScenarioResult(name=name, testbed=testbed, workloads=workloads,
                          monitor=monitor, metrics=metrics)


def _bind_workloads(testbed, workloads) -> None:
    """Expose workload instruments to an active telemetry binding.

    No-op outside a :class:`~repro.telemetry.TelemetrySession`; with one
    active, the workloads' latency histograms and progress counters
    become registry (and timeline) series.  Reference-only either way.
    """
    telemetry = getattr(testbed, "telemetry", None)
    if telemetry is not None:
        telemetry.register_workloads(workloads)


# -- scenario builders -------------------------------------------------------

_RR_RUN_NS = ms(6)
_RR_WARMUP_NS = ms(1)


def _rr_scenario(model_name: str, n_vms: int = 2):
    def build(seed: int) -> ScenarioResult:
        tb = build_testbed(TestbedSpec(model=model_name, vms_per_host=n_vms,
                                       seed=seed))
        monitor = EngineMonitor.attach(tb.env)
        workloads = [
            NetperfRR(tb.env, tb.clients[i], tb.ports[i], tb.costs,
                      warmup_ns=_RR_WARMUP_NS,
                      rng=tb.rng.stream(f"rr-client-{i}"))
            for i in range(n_vms)]
        _bind_workloads(tb, workloads)
        tb.env.run(until=_RR_RUN_NS)
        transactions = sum(w.transactions for w in workloads)
        extra = {
            "rr.transactions": transactions,
            "rr.mean_latency_us": sum(
                w.mean_latency_us() for w in workloads) / n_vms,
            "rr.p90_latency_us": max(
                w.percentile_us(90) for w in workloads),
        }
        return _finish(f"rr_{model_name}", tb, workloads, monitor, extra)

    return build


def _stream_scenario(model_name: str):
    def build(seed: int) -> ScenarioResult:
        tb = build_testbed(TestbedSpec(model=model_name, seed=seed))
        monitor = EngineMonitor.attach(tb.env)
        workloads = [NetperfStream(tb.env, tb.ports[0], tb.clients[0],
                                   tb.costs, warmup_ns=_RR_WARMUP_NS)]
        _bind_workloads(tb, workloads)
        tb.env.run(until=_RR_RUN_NS)
        extra = {
            "stream.gbps": workloads[0].throughput_gbps(),
            "stream.chunks": workloads[0].chunks_received,
            "stream.bytes": workloads[0].bytes_received,
        }
        return _finish(f"stream_{model_name}", tb, workloads, monitor, extra)

    return build


def _apache_scenario(model_name: str, n_vms: int = 2):
    def build(seed: int) -> ScenarioResult:
        tb = build_testbed(TestbedSpec(model=model_name, vms_per_host=n_vms,
                                       seed=seed))
        monitor = EngineMonitor.attach(tb.env)
        workloads = [ApacheBench(tb.env, tb.clients[i], tb.ports[i],
                                 tb.costs, warmup_ns=_RR_WARMUP_NS)
                     for i in range(n_vms)]
        _bind_workloads(tb, workloads)
        tb.env.run(until=ms(8))
        extra = {
            "apache.transactions": sum(w.transactions for w in workloads),
            "apache.tps": sum(w.throughput_tps() for w in workloads),
        }
        return _finish(f"apache_{model_name}", tb, workloads, monitor, extra)

    return build


def _filebench_scenario(model_name: str, channel_loss: float = 0.0,
                        run_ns: int = ms(8)):
    # A lossy channel only exercises §4.5 retransmission if the run
    # outlives the 10 ms initial block timeout (plus a doubling or two).
    suffix = "_lossy" if channel_loss else ""

    def build(seed: int) -> ScenarioResult:
        spec = TestbedSpec(model=model_name, with_clients=False, seed=seed)
        if model_name.startswith("vrio"):
            spec = spec.copy(channel_loss=channel_loss)
        tb = build_testbed(spec)
        monitor = EngineMonitor.attach(tb.env)
        handle = tb.attach_ramdisk(tb.vms[0])
        workloads = [FilebenchRandomIO(
            tb.env, tb.vms[0], handle, rng=tb.rng.stream("filebench"),
            costs=tb.costs, readers=2, writers=1, warmup_ns=_RR_WARMUP_NS)]
        _bind_workloads(tb, workloads)
        tb.env.run(until=run_ns)
        extra = {
            "filebench.operations": workloads[0].operations,
            "filebench.ops_per_sec": workloads[0].ops_per_sec(),
        }
        if model_name == "vrio":
            client = tb.model.client_of(tb.vms[0])
            extra["filebench.retransmissions"] = (
                client.reliable.retransmissions.value)
        return _finish(f"filebench_{model_name}{suffix}", tb, workloads,
                       monitor, extra)

    return build


def _scalability_scenario():
    def build(seed: int) -> ScenarioResult:
        tb = build_testbed(TestbedSpec(model="vrio", topology="scalability",
                                       n_vmhosts=2, vms_per_host=2,
                                       sidecores=1, seed=seed))
        monitor = EngineMonitor.attach(tb.env)
        workloads = [
            NetperfRR(tb.env, tb.clients[i], tb.ports[i], tb.costs,
                      warmup_ns=_RR_WARMUP_NS,
                      rng=tb.rng.stream(f"rr-client-{i}"))
            for i in range(len(tb.vms))]
        _bind_workloads(tb, workloads)
        tb.env.run(until=_RR_RUN_NS)
        extra = {
            "rr.transactions": sum(w.transactions for w in workloads),
            "rr.mean_latency_us": sum(
                w.mean_latency_us() for w in workloads) / len(workloads),
        }
        return _finish("scalability_vrio", tb, workloads, monitor, extra)

    return build


def _dc_scale_scenario():
    def build(seed: int) -> ScenarioResult:
        tb = build_testbed(TestbedSpec(model="vrio", topology="racks",
                                       n_racks=2, n_vmhosts=1,
                                       vms_per_host=1, sidecores=1,
                                       seed=seed))
        monitor = EngineMonitor.attach(tb.env)
        workloads = [
            OpenLoopRR(tb.env, tb.clients[i], tb.ports[i], tb.costs,
                       arrivals_rng=tb.rng.stream(f"openloop-{i}-arrivals"),
                       size_rng=tb.rng.stream(f"openloop-{i}-sizes"),
                       phase_rng=tb.rng.stream(f"openloop-{i}-phase"),
                       users=500, diurnal_amplitude=0.3,
                       diurnal_period_ns=ms(3), burst_factor=2.0,
                       warmup_ns=_RR_WARMUP_NS)
            for i in range(len(tb.vms))]
        _bind_workloads(tb, workloads)
        tb.env.run(until=_RR_RUN_NS)
        counters = tb.fabric.counters()
        extra = {
            "openloop.offered": sum(w.offered for w in workloads),
            "openloop.transactions": sum(
                w.transactions for w in workloads),
            "openloop.p99_latency_us": max(
                w.percentile_us(99) for w in workloads),
            "fabric.ingress": counters["ingress"],
            "fabric.forwarded": counters["forwarded"],
            "fabric.flooded": counters["flooded"],
            "fabric.unknown_dst": counters["unknown_dst"],
            "fabric.filtered": counters["filtered"],
            "fabric.trunk_tx_bytes": tb.fabric.trunk_tx_bytes(),
        }
        return _finish("dc_scale", tb, workloads, monitor, extra)

    return build


def _fault_scenario(campaign_name: str):
    def build(seed: int) -> ScenarioResult:
        # Lazy: repro.faults pulls in the experiment executor; the scenario
        # registry must stay importable on its own.
        from ..faults import CAMPAIGNS, execute_campaign
        result = execute_campaign(
            CAMPAIGNS[campaign_name], seed,
            instrument=lambda tb: EngineMonitor.attach(tb.env))
        report = result.report
        extra: Metrics = {"fault.unrecovered": report["unrecovered"]}
        for i, fault in enumerate(report["faults"]):
            for key in ("injected_ns", "detected_ns", "recovered_ns",
                        "detection_latency_ns", "downtime_ns"):
                value = fault[key]
                extra[f"fault.{i}.{key}"] = -1 if value is None else value
        requests = report["requests"]
        for key in ("submitted", "completed", "lost", "ops_total",
                    "retransmissions", "recovered", "device_errors",
                    "stale_responses"):
            extra[f"requests.{key}"] = requests[key]
        for phase in ("before", "during", "after"):
            extra[f"throughput.{phase}.ops"] = (
                report["throughput"][phase]["ops"])
        return _finish(f"fault_{campaign_name}", result.testbed,
                       result.workloads, result.instrument, extra)

    return build


# -- registry ---------------------------------------------------------------

def _build_registry() -> Dict[str, Scenario]:
    registry: Dict[str, Scenario] = {}

    def add(name: str, description: str, build, *tags: str) -> None:
        registry[name] = Scenario(name=name, description=description,
                                  build=build, tags=tuple(tags))

    for model in MODEL_NAMES:
        add(f"rr_{model}",
            f"netperf RR, 2 VMs, {model} datapath (Fig. 7 shape)",
            _rr_scenario(model), "net", "latency", model)
    add("stream_vrio", "netperf 64B stream through the IOhost (Fig. 9)",
        _stream_scenario("vrio"), "net", "throughput", "vrio")
    add("stream_elvis", "netperf 64B stream with a local sidecore",
        _stream_scenario("elvis"), "net", "throughput", "elvis")
    add("apache_vrio", "ApacheBench macrobenchmark over vRIO (Fig. 12)",
        _apache_scenario("vrio"), "net", "macro", "vrio")
    add("filebench_vrio", "random I/O on a remote ramdisk (Fig. 14)",
        _filebench_scenario("vrio"), "block", "vrio")
    add("filebench_baseline", "random I/O on a local virtio ramdisk",
        _filebench_scenario("baseline"), "block", "baseline")
    add("filebench_vrio_lossy",
        "remote block I/O over a 5%-loss channel (§4.5 retransmission)",
        _filebench_scenario("vrio", channel_loss=0.05, run_ns=ms(40)),
        "block", "vrio", "loss")
    add("scalability_vrio",
        "one IOhost serving 2 VMhosts x 2 VMs (Fig. 13 topology)",
        _scalability_scenario(), "net", "scalability", "vrio")
    add("dc_scale",
        "2-rack leaf/spine fabric under open-loop cross-rack load",
        _dc_scale_scenario(), "net", "fabric", "openloop", "vrio")
    add("fault_iohost_crash",
        "IOhost crash detected via §4.5 timeouts, §4.6 failover to "
        "local virtio",
        _fault_scenario("iohost_crash"), "fault", "block", "vrio")
    add("fault_link_blackout",
        "3 ms channel blackout healed by capped-backoff retransmission",
        _fault_scenario("link_blackout"), "fault", "block", "vrio")
    return registry


SCENARIOS: Dict[str, Scenario] = _build_registry()


def scenario_names() -> List[str]:
    return sorted(SCENARIOS)


def run_scenario(name: str, seed: int = 0) -> ScenarioResult:
    """Build and run one registered scenario; returns its result bundle."""
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; known: {', '.join(scenario_names())}")
    return scenario.build(seed)
