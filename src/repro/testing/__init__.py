"""The verification harness: invariants, scenarios, goldens, determinism.

This package is the reproduction's *test infrastructure as a subsystem*:
instead of each test hand-rolling a testbed and ad-hoc assertions, they
share one registry of canonical scenarios (:mod:`.scenarios`), one
battery of physical-consistency invariants (:mod:`.invariants`), one
golden-file regression format (:mod:`.golden`), bit-reproducibility
checks (:mod:`.determinism`), and a miniature property-based testing
harness (:mod:`.properties`).  ``python -m repro verify`` drives the same
machinery from the command line.
"""

from .determinism import (
    assert_deterministic,
    check_deterministic,
    compare_runs,
    metrics_digest,
)
from .differential import (
    REFERENCE_SCHEDULER,
    diff_all,
    diff_scenario,
    metrics_json,
    run_under,
)
from .golden import (
    GoldenMismatch,
    REGEN_ENV,
    assert_matches_golden,
    compare_metrics,
    default_golden_dir,
    golden_path,
    load_golden,
    save_golden,
)
from .invariants import (
    EngineMonitor,
    InvariantViolation,
    assert_no_violations,
    check_conservation,
    check_core,
    check_endpoint,
    check_event_stats,
    check_port,
    verify_testbed,
)
from .properties import PropertyFailure, case_rng, replay_case, run_property
from .scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioResult,
    run_scenario,
    scenario_names,
)

__all__ = [
    "EngineMonitor", "InvariantViolation", "assert_no_violations",
    "check_conservation", "check_core", "check_endpoint",
    "check_event_stats", "check_port", "verify_testbed",
    "Scenario", "ScenarioResult", "SCENARIOS", "run_scenario",
    "scenario_names",
    "GoldenMismatch", "REGEN_ENV", "assert_matches_golden",
    "compare_metrics", "default_golden_dir", "golden_path", "load_golden",
    "save_golden",
    "assert_deterministic", "check_deterministic", "compare_runs",
    "metrics_digest",
    "REFERENCE_SCHEDULER", "diff_all", "diff_scenario", "metrics_json",
    "run_under",
    "PropertyFailure", "case_rng", "replay_case", "run_property",
]
