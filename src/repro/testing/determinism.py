"""Bit-reproducibility checks.

The whole experimental method of this reproduction rests on determinism:
the paper averages five repetitions, we run once *because rerunning is a
no-op*.  These helpers make that claim falsifiable — run a scenario
twice, digest the metrics, and demand identical bits.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List

from .scenarios import ScenarioResult, run_scenario

__all__ = [
    "metrics_digest",
    "compare_runs",
    "check_deterministic",
    "assert_deterministic",
]

Metrics = Dict[str, float]


def metrics_digest(metrics: Metrics) -> str:
    """SHA-256 over the canonical JSON encoding of a metric dict.

    ``repr``-exact for floats: two digests match iff every metric is
    bit-identical.
    """
    payload = json.dumps(
        {k: repr(v) for k, v in sorted(metrics.items())},
        sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()


def compare_runs(first: Metrics, second: Metrics) -> List[str]:
    """Every metric that differs between two runs (bit-exact comparison)."""
    diffs: List[str] = []
    for key in sorted(set(first) | set(second)):
        a, b = first.get(key), second.get(key)
        if a is None or b is None or repr(a) != repr(b):
            diffs.append(f"{key}: {a!r} vs {b!r}")
    return diffs


def check_deterministic(name: str, seed: int = 0,
                        runs: int = 2) -> List[ScenarioResult]:
    """Run a scenario ``runs`` times; raises AssertionError on divergence."""
    if runs < 2:
        raise ValueError(f"need at least two runs to compare, got {runs}")
    results = [run_scenario(name, seed=seed) for _ in range(runs)]
    reference = results[0].metrics
    for i, result in enumerate(results[1:], start=2):
        diffs = compare_runs(reference, result.metrics)
        if diffs:
            listing = "\n".join(f"  - {d}" for d in diffs)
            raise AssertionError(
                f"scenario {name!r} (seed={seed}) is nondeterministic; "
                f"run 1 vs run {i} differ in {len(diffs)} metric(s):\n"
                f"{listing}")
    return results


# Backwards-friendly alias used by tests reading as an assertion.
assert_deterministic = check_deterministic
