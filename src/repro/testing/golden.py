"""Golden-file regression checking for scenario metrics.

A *golden* is the committed JSON fingerprint of one scenario's metric
dict.  The simulator is bit-deterministic (integer nanoseconds, seeded
RNG substreams), so a golden mismatch means the datapath's behaviour
changed — either a bug or an intentional change that must regenerate the
files.

Regenerate with::

    REPRO_REGEN_GOLDENS=1 python -m pytest tests/test_golden_regression.py

Integer metrics must match exactly; float metrics allow a relative
tolerance (default 1e-9) to absorb cross-platform libm differences.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, List, Union

from ..envvars import REGEN_GOLDENS_ENV, regen_goldens_requested

__all__ = [
    "REGEN_ENV",
    "default_golden_dir",
    "golden_path",
    "save_golden",
    "load_golden",
    "compare_metrics",
    "assert_matches_golden",
    "GoldenMismatch",
]

REGEN_ENV = REGEN_GOLDENS_ENV  # re-exported name used in error messages
FLOAT_RTOL = 1e-9

Metrics = Dict[str, float]


class GoldenMismatch(AssertionError):
    """A scenario's metrics diverged from its committed golden file."""


def default_golden_dir() -> Path:
    """The repository's golden directory (``tests/goldens``).

    Resolved relative to this source tree so it works from any CWD in a
    source checkout; falls back to ``./tests/goldens`` for installed
    copies driven from a repo root.
    """
    here = Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / "tests" / "goldens"
        if candidate.is_dir():
            return candidate
    return Path("tests") / "goldens"


def golden_path(name: str, directory: Union[str, Path, None] = None) -> Path:
    directory = Path(directory) if directory else default_golden_dir()
    return directory / f"{name}.json"


def _canonical(metrics: Metrics) -> Dict[str, float]:
    """Sorted, JSON-clean copy (rejects NaN/inf: those are never golden)."""
    clean: Dict[str, float] = {}
    for key in sorted(metrics):
        value = metrics[key]
        if isinstance(value, float) and not math.isfinite(value):
            raise ValueError(f"metric {key!r} is not finite: {value}")
        clean[key] = value
    return clean


def save_golden(name: str, metrics: Metrics,
                directory: Union[str, Path, None] = None) -> Path:
    path = golden_path(name, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(_canonical(metrics), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_golden(name: str,
                directory: Union[str, Path, None] = None) -> Metrics:
    with open(golden_path(name, directory)) as fh:
        return json.load(fh)


def compare_metrics(expected: Metrics, actual: Metrics,
                    rtol: float = FLOAT_RTOL) -> List[str]:
    """Describe every way ``actual`` deviates from ``expected``.

    Returns human-readable difference strings (empty list = match).
    Integers compare exactly; floats within relative tolerance ``rtol``.
    """
    diffs: List[str] = []
    for key in sorted(set(expected) | set(actual)):
        if key not in actual:
            diffs.append(f"{key}: missing (golden has {expected[key]})")
            continue
        if key not in expected:
            diffs.append(f"{key}: unexpected new metric = {actual[key]}")
            continue
        want, got = expected[key], actual[key]
        if isinstance(want, float) or isinstance(got, float):
            if not math.isclose(float(want), float(got),
                                rel_tol=rtol, abs_tol=rtol):
                diffs.append(f"{key}: {got!r} != golden {want!r}")
        elif want != got:
            diffs.append(f"{key}: {got!r} != golden {want!r}")
    return diffs


def assert_matches_golden(name: str, metrics: Metrics,
                          directory: Union[str, Path, None] = None,
                          rtol: float = FLOAT_RTOL) -> None:
    """Compare against the committed golden, regenerating under REGEN_ENV.

    * With ``REPRO_REGEN_GOLDENS`` set: (re)write the file and pass.
    * Golden missing: fail with the regeneration command.
    * Mismatch: fail listing every differing metric.
    """
    if regen_goldens_requested():
        save_golden(name, metrics, directory)
        return
    path = golden_path(name, directory)
    if not path.exists():
        raise GoldenMismatch(
            f"no golden for scenario {name!r} at {path}; run with "
            f"{REGEN_ENV}=1 to create it")
    diffs = compare_metrics(load_golden(name, directory), metrics, rtol=rtol)
    if diffs:
        listing = "\n".join(f"  - {d}" for d in diffs)
        raise GoldenMismatch(
            f"scenario {name!r} diverged from {path} "
            f"({len(diffs)} metric(s)):\n{listing}\n"
            f"If the change is intentional, regenerate with {REGEN_ENV}=1.")
