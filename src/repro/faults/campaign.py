"""Fault campaigns: scenario × fault plan × seed, with a recovery report.

A :class:`Campaign` pairs a :class:`~repro.cluster.TestbedSpec` (carrying
its :class:`FaultPlan`) with a workload and a run length.
:func:`execute_campaign` builds the testbed (which arms the injector),
drives the workload, and assembles a canonical-JSON report of:

* per-fault lifecycle — injection, detection latency, failover downtime;
* request accounting — submitted / completed / lost, plus the §4.5
  reliability ledger (retransmissions, recovered, device errors, stales);
* steady-state throughput before / during / after the fault;
* a flight-recorder dump when a fault stayed unrecovered.

Reports are canonicalized, so the same campaign at the same seed is
byte-identical run-to-run — they plug straight into the sweep executor's
content-addressed cache (``python -m repro faults --jobs N``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..cluster import TestbedSpec, build_testbed
from ..experiments.executor import SweepCache, canonical_json, canonicalize, sweep
from ..hw.storage import BlockRequest
from ..iomodels.costs import DEFAULT_COSTS
from ..iomodels.vrio.reliability import BlockDeviceError
from ..sim import ms
from ..telemetry import FlightRecorder, SloProbe, SloSpec, Timeline
from ..workloads import NetperfRR
from .plan import FaultPlan, FaultSpec

__all__ = [
    "Campaign",
    "CampaignResult",
    "CAMPAIGNS",
    "campaign_names",
    "execute_campaign",
    "run_campaign_point",
    "run_campaigns",
    "format_report",
    "run_fault_smoke",
    "DEFAULT_CAMPAIGN",
]

# Shortened §4.5 timeouts so campaigns resolve in tens of simulated ms:
# 0.5 ms initial, doubling to a 2 ms cap (the cap is hit on attempt 4 —
# the PR-3 backoff-cap path), 3 retransmissions before the device error.
_FAST_BLK = dict(blk_initial_timeout_ns=500_000,
                 blk_max_retransmissions=3,
                 blk_max_timeout_ns=2_000_000)

# Recovery-curve resolution: every campaign's run is windowed into this
# many timeline windows (the sanctioned width source for SIM405).
_RECOVERY_WINDOWS = 24


def _campaign_window_ns(campaign: "Campaign") -> int:
    if campaign.slo is not None and campaign.slo.window_ns:
        return campaign.slo.window_ns
    return campaign.run_ns // _RECOVERY_WINDOWS


@dataclass(frozen=True)
class Campaign:
    """One named fault campaign (pure data; seeds come from the caller)."""

    name: str
    description: str
    spec: TestbedSpec
    workload: str = "block"     # "block" | "rr"
    run_ns: int = ms(20)
    streams: int = 3            # block streams per VM
    io_bytes: int = 4096
    slo: Optional[SloSpec] = None


@dataclass
class CampaignResult:
    """A campaign run: the canonical report plus live objects for tests."""

    report: dict
    testbed: object
    workloads: List[object]
    instrument: object = None


class _BlockStreamDriver:
    """Closed-loop block streams against one VM's device handle.

    Streams use disjoint sector ranges, so the guest-disk-scheduler
    invariant (one outstanding request per block, §4.5) holds by
    construction.  Completion timestamps feed the phase-throughput
    accounting; a :class:`BlockDeviceError` counts the request as lost
    and the stream moves on — exactly what a journaling filesystem's
    error path would do.
    """

    def __init__(self, env, handle, streams: int, io_bytes: int, label: str):
        self.env = env
        self.submitted = 0
        self.completions: List[int] = []
        self.failures: List[int] = []
        for index in range(streams):
            env.process(self._stream(handle, index, io_bytes),
                        name=f"fault-blk:{label}:{index}")

    def _stream(self, handle, stream_index: int, io_bytes: int):
        env = self.env
        sectors_per_io = max(1, -(-io_bytes // 512))
        base = stream_index * 64 * sectors_per_io
        i = 0
        while True:
            op = "read" if (i + stream_index) % 2 == 0 else "write"
            sector = base + (i % 64) * sectors_per_io
            request = BlockRequest(op=op, sector=sector, size_bytes=io_bytes)
            self.submitted += 1
            try:
                yield handle.submit(request)
                self.completions.append(env.now)
            except BlockDeviceError:
                self.failures.append(env.now)
            i += 1


def _start_workload(campaign: Campaign, testbed):
    """Attach and start the campaign's workload.

    Returns ``(drivers, workloads, count_ops)`` where ``count_ops`` reads
    the cumulative operation count (completions / transactions) — called
    at phase boundaries for the before/during/after throughput split.
    """
    if campaign.workload == "block":
        drivers = []
        for vm in testbed.vms:
            handle = testbed.attach_ramdisk(vm)
            drivers.append(_BlockStreamDriver(
                testbed.env, handle, streams=campaign.streams,
                io_bytes=campaign.io_bytes, label=vm.name))
        count_ops = lambda: sum(len(d.completions) for d in drivers)
        return drivers, drivers, count_ops
    if campaign.workload == "rr":
        workloads = [
            NetperfRR(testbed.env, testbed.clients[i], testbed.ports[i],
                      testbed.costs,
                      rng=testbed.rng.stream(f"fault-rr-{i}"))
            for i in range(len(testbed.vms))]
        count_ops = lambda: sum(w.transactions for w in workloads)
        return [], workloads, count_ops
    raise ValueError(f"unknown campaign workload {campaign.workload!r}")


def _reliability_totals(testbed) -> Dict[str, int]:
    totals = {"retransmissions": 0, "recovered": 0, "failures": 0,
              "stale_responses": 0, "device_errors": 0, "completions": 0}
    for model in testbed.models:
        clients = getattr(model, "_clients", None)
        if clients is None:
            continue
        for name in sorted(clients):
            client = clients[name]
            reliable = getattr(client, "reliable", None)
            if reliable is None:
                continue
            for key in totals:
                totals[key] += getattr(reliable, key).value
    return totals


def _phase_entry(ops: int, duration_ns: int) -> dict:
    rate = (ops * 1e9 / duration_ns) if duration_ns > 0 else 0.0
    return {"ops": ops, "duration_ns": duration_ns, "ops_per_sec": rate}


def execute_campaign(campaign: Campaign, seed: int = 0,
                     instrument: Optional[Callable] = None) -> CampaignResult:
    """Run one campaign at one seed; returns the result bundle.

    ``instrument``, if given, is called with the built testbed before the
    workload starts (scenario runs attach an
    :class:`~repro.testing.invariants.EngineMonitor` here); whatever it
    returns rides along in ``CampaignResult.instrument``.
    """
    spec = campaign.spec.copy(seed=seed)
    testbed = build_testbed(spec)
    recorder = FlightRecorder(capacity=192).attach(testbed.env)
    injector = testbed.fault_injector
    if injector is not None:
        injector.recorder = recorder
    extra = instrument(testbed) if instrument is not None else None
    drivers, workloads, count_ops = _start_workload(campaign, testbed)

    # Recovery-curve timeline: the run chopped into fixed windows, each
    # reporting completed ops and ops/s.  The timeline is an *advance*
    # monitor riding the already-monitored campaign run (the flight
    # recorder keeps the engine on the monitored loop), so the schedule
    # — and the phase-mark detection/downtime numbers below — are
    # byte-identical with or without it.
    timeline = Timeline(_campaign_window_ns(campaign))
    timeline.watch_rate("ops", count_ops)
    testbed.env.add_monitor(timeline)
    probe = None
    if campaign.slo is not None:
        probe = SloProbe(campaign.slo, recorder=recorder).attach(timeline)

    # Phase marks: ops counts captured exactly at the first injection and
    # at the first recovery/window-clear (deterministic scheduled events,
    # not samplers).
    marks: Dict[str, tuple] = {}
    if injector is not None and injector.records:
        first = injector.records[0]

        def mark_inject():
            marks.setdefault("inject", (testbed.env.now, count_ops()))

        def mark_recover(_record):
            marks.setdefault("recover", (testbed.env.now, count_ops()))

        testbed.env.schedule_at(first.spec.at_ns, mark_inject)
        injector.on_recover.append(mark_recover)
        injector.on_clear.append(mark_recover)

    testbed.env.run(until=campaign.run_ns)
    timeline.flush(testbed.env.now)

    total_ops = count_ops()
    end_ns = testbed.env.now
    inject_ns, ops_at_inject = marks.get("inject", (None, None))
    recover_ns, ops_at_recover = marks.get("recover", (None, None))
    if inject_ns is not None:
        before = _phase_entry(ops_at_inject, inject_ns)
        if recover_ns is not None:
            during = _phase_entry(ops_at_recover - ops_at_inject,
                                  recover_ns - inject_ns)
            after = _phase_entry(total_ops - ops_at_recover,
                                 end_ns - recover_ns)
        else:
            during = _phase_entry(total_ops - ops_at_inject,
                                  end_ns - inject_ns)
            after = _phase_entry(0, 0)
    else:
        before = _phase_entry(total_ops, end_ns)
        during = _phase_entry(0, 0)
        after = _phase_entry(0, 0)

    reliability = _reliability_totals(testbed)
    unrecovered = len(injector.unrecovered) if injector is not None else 0
    recovery_curve = [
        {"window": w["index"], "start_ns": w["start_ns"],
         "end_ns": w["end_ns"], "ops": w["rates"]["ops"]["delta"],
         "ops_per_sec": w["rates"]["ops"]["rate_per_s"]}
        for w in timeline.windows]
    violations = len(probe.violations) if probe is not None else 0
    report = {
        "campaign": campaign.name,
        "description": campaign.description,
        "seed": seed,
        "model": spec.model,
        "topology": spec.topology,
        "workload": campaign.workload,
        "run_ns": campaign.run_ns,
        "faults": injector.summary() if injector is not None else [],
        "requests": {
            "submitted": sum(d.submitted for d in drivers),
            "completed": sum(len(d.completions) for d in drivers),
            "lost": sum(len(d.failures) for d in drivers),
            "ops_total": total_ops,
            **reliability,
        },
        "throughput": {"before": before, "during": during, "after": after},
        "recovery_curve": recovery_curve,
        "slo": probe.to_dict() if probe is not None else None,
        "unrecovered": unrecovered,
        "flight": (recorder.dump(last=48).splitlines()
                   if unrecovered or violations else []),
    }
    return CampaignResult(report=canonicalize(report), testbed=testbed,
                          workloads=workloads, instrument=extra)


# -- the stock campaigns -----------------------------------------------------

def _plan(*faults: FaultSpec) -> FaultPlan:
    return FaultPlan(faults=faults)


def _build_campaigns() -> Dict[str, Campaign]:
    fast_costs = DEFAULT_COSTS.copy(**_FAST_BLK)
    campaigns = [
        Campaign(
            name="iohost_crash",
            description=("IOhost dies mid-run; guests detect via §4.5 "
                         "timeouts and fail over to local virtio with a "
                         "replica disk (§4.6)"),
            spec=TestbedSpec(
                model="vrio", topology="switched", vms_per_host=1,
                costs=fast_costs,
                fault_plan=_plan(FaultSpec(
                    kind="iohost_crash", at_ns=ms(8),
                    params={"recover": "fallback", "replica": True}))),
            workload="block", run_ns=ms(24),
            # Failover downtime is bounded by the §4.5 detection timeouts;
            # anything past 4 ms of dead windows is an SLO breach.
            slo=SloSpec(
                name="iohost_failover_slo",
                max_downtime_ns=4_000_000,
                throughput_metric="ops",
                window_ns=ms(24) // _RECOVERY_WINDOWS)),
        Campaign(
            name="link_loss",
            description=("40% frame loss on the VMhost-IOhost channel for "
                         "8 ms; the reliability layer retransmits through "
                         "it (§4.5)"),
            spec=TestbedSpec(
                model="vrio", topology="simple", with_clients=False,
                costs=fast_costs,
                fault_plan=_plan(FaultSpec(
                    kind="link_loss", at_ns=ms(4), duration_ns=ms(8),
                    target="channel", params={"probability": 0.4}))),
            workload="block", run_ns=ms(20)),
        Campaign(
            name="link_blackout",
            description=("3 ms total blackout on the channel; every "
                         "in-flight request survives via capped-backoff "
                         "retransmission"),
            spec=TestbedSpec(
                model="vrio", topology="simple", with_clients=False,
                costs=fast_costs,
                fault_plan=_plan(FaultSpec(
                    kind="link_down", at_ns=ms(5), duration_ns=ms(3),
                    target="channel"))),
            workload="block", run_ns=ms(18)),
        Campaign(
            name="nic_failure",
            description=("the IOhost's channel NIC function drops all "
                         "traffic for 3 ms; recovery mirrors a link "
                         "blackout"),
            spec=TestbedSpec(
                model="vrio", topology="simple", with_clients=False,
                costs=fast_costs,
                fault_plan=_plan(FaultSpec(
                    kind="nic_function_failure", at_ns=ms(5),
                    duration_ns=ms(3), target="ch-vmhost0"))),
            workload="block", run_ns=ms(18)),
        Campaign(
            name="storage_errors",
            description=("the remote ramdisk errors every request for "
                         "3 ms; errors surface as not-ok responses the "
                         "guest retries like losses"),
            spec=TestbedSpec(
                model="vrio", topology="simple", with_clients=False,
                costs=fast_costs,
                fault_plan=_plan(FaultSpec(
                    kind="storage_error_burst", at_ns=ms(6),
                    duration_ns=ms(3)))),
            workload="block", run_ns=ms(18),
            # The error burst stalls completions for ~3 ms, so both
            # clauses must fire: idle windows breach the 1.5 ms downtime
            # budget, and the ramp windows breach the throughput floor.
            slo=SloSpec(
                name="storage_block_slo",
                throughput_floor_per_s=2_000.0,
                max_downtime_ns=1_500_000,
                throughput_metric="ops",
                window_ns=ms(18) // _RECOVERY_WINDOWS)),
        Campaign(
            name="storage_errors_nvme_pt",
            description=("the same error burst under NVMe queue "
                         "passthrough: no host software interposes, so "
                         "errors land in the guest as failed CQEs instead "
                         "of being retried — completions stall, requests "
                         "are lost"),
            spec=TestbedSpec(
                model="nvme_pt", topology="simple", with_clients=False,
                costs=fast_costs,
                fault_plan=_plan(FaultSpec(
                    kind="storage_error_burst", at_ns=ms(6),
                    duration_ns=ms(3)))),
            workload="block", run_ns=ms(18),
            # Same SLO contract as the vRIO campaign: the burst zeroes
            # *successful* completions for its whole 3 ms window, so both
            # clauses breach — and unlike vRIO nothing is recovered.
            slo=SloSpec(
                name="storage_block_slo",
                throughput_floor_per_s=2_000.0,
                max_downtime_ns=1_500_000,
                throughput_metric="ops",
                window_ns=ms(18) // _RECOVERY_WINDOWS)),
        Campaign(
            name="storage_errors_flexbso",
            description=("the same error burst under FlexBSO offload: the "
                         "engine copies the medium's error status into "
                         "the used ring verbatim (it offloads the data "
                         "path, not recovery), so guests eat the errors"),
            spec=TestbedSpec(
                model="flexbso", topology="simple", with_clients=False,
                costs=fast_costs,
                fault_plan=_plan(FaultSpec(
                    kind="storage_error_burst", at_ns=ms(6),
                    duration_ns=ms(3)))),
            workload="block", run_ns=ms(18),
            slo=SloSpec(
                name="storage_block_slo",
                throughput_floor_per_s=2_000.0,
                max_downtime_ns=1_500_000,
                throughput_metric="ops",
                window_ns=ms(18) // _RECOVERY_WINDOWS)),
        Campaign(
            name="sidecore_stall",
            description=("the (only) vRIO worker is pinned for 2 ms; "
                         "RR throughput dips and recovers, nothing is "
                         "lost"),
            spec=TestbedSpec(
                model="vrio", topology="simple", vms_per_host=2,
                fault_plan=_plan(FaultSpec(
                    kind="sidecore_stall", at_ns=ms(6),
                    duration_ns=ms(2), target="0"))),
            workload="rr", run_ns=ms(16)),
        Campaign(
            name="migration",
            description=("live-migrate a client's I/O hypervisor "
                         "connection to a second channel with a 2 ms "
                         "blackout (§4.6)"),
            spec=TestbedSpec(
                model="vrio", topology="scalability", n_vmhosts=2,
                vms_per_host=1, costs=fast_costs,
                fault_plan=_plan(FaultSpec(
                    kind="live_migration", at_ns=ms(6),
                    params={"client": 0, "target_channel": 1,
                            "downtime_ns": 2_000_000}))),
            workload="block", run_ns=ms(20)),
    ]
    return {c.name: c for c in campaigns}


CAMPAIGNS: Dict[str, Campaign] = _build_campaigns()
DEFAULT_CAMPAIGN = "iohost_crash"


def campaign_names() -> List[str]:
    return sorted(CAMPAIGNS)


def run_campaign_point(params: dict) -> dict:
    """Sweep-executor point function: one campaign at one seed.

    Module-level (spawn-picklable); params: ``{"campaign": name,
    "seed": int}``.
    """
    campaign = CAMPAIGNS[params["campaign"]]
    seed = int(params.get("seed", 0))
    return execute_campaign(campaign, seed).report


def run_campaigns(names: List[str], seed: int = 0,
                  jobs=1, cache: Optional[SweepCache] = None) -> List[dict]:
    """Run several campaigns (optionally in parallel / cached)."""
    for name in names:
        if name not in CAMPAIGNS:
            raise KeyError(f"unknown campaign {name!r}; known: "
                           f"{', '.join(campaign_names())}")
    points = [{"campaign": name, "seed": seed} for name in names]
    return sweep(points, run_campaign_point, jobs=jobs, artifact="faults",
                 cache=cache)


def _fmt_ms(ns: Optional[int]) -> str:
    return "-" if ns is None else f"{ns / 1e6:.3f} ms"


def _fmt_us(ns: Optional[int]) -> str:
    return "-" if ns is None else f"{ns / 1e3:.1f} us"


def format_report(report: dict) -> str:
    """Human-readable rendering of one campaign report."""
    lines = [
        f"campaign {report['campaign']} (seed {report['seed']}): "
        f"{report['description']}",
        f"  model={report['model']} topology={report['topology']} "
        f"workload={report['workload']} run={_fmt_ms(report['run_ns'])}",
    ]
    for fault in report["faults"]:
        lines.append(f"  fault {fault['kind']}"
                     + (f" target={fault['target']}" if fault["target"] else "")
                     + f" @ {_fmt_ms(fault['injected_ns'])}")
        lines.append("    detection latency: "
                     f"{_fmt_us(fault['detection_latency_ns'])}")
        lines.append("    recovery downtime: "
                     f"{_fmt_us(fault['downtime_ns'])}")
        if fault["duration_ns"]:
            lines.append(f"    window: {_fmt_ms(fault['duration_ns'])} "
                         f"(cleared @ {_fmt_ms(fault['cleared_ns'])})")
        if fault["detail"]:
            lines.append(f"    note: {fault['detail']}")
    requests = report["requests"]
    lines.append(
        "  requests: "
        f"submitted={requests['submitted']} "
        f"completed={requests['completed']} lost={requests['lost']} "
        f"retransmissions={requests['retransmissions']} "
        f"recovered={requests['recovered']} "
        f"device_errors={requests['device_errors']} "
        f"stale={requests['stale_responses']}")
    phases = report["throughput"]
    lines.append("  throughput (ops/s): " + "  ".join(
        f"{name}={phases[name]['ops_per_sec']:.0f}"
        for name in ("before", "during", "after")))
    curve = report.get("recovery_curve") or []
    if curve:
        from ..telemetry import sparkline
        width = curve[0]["end_ns"] - curve[0]["start_ns"]
        lines.append(
            f"  recovery curve ({len(curve)} windows × "
            f"{width / 1e3:.0f} us): "
            + sparkline([w["ops_per_sec"] for w in curve]))
    slo = report.get("slo")
    if slo is not None:
        violations = slo["violations"]
        if violations:
            lines.append(f"  slo {slo['spec']['name']}: "
                         f"{len(violations)} violation(s)")
            for violation in violations[:6]:
                lines.append(
                    f"    window #{violation['window_index']} "
                    f"[{violation['start_ns'] / 1e6:.2f}-"
                    f"{violation['end_ns'] / 1e6:.2f} ms] "
                    f"{violation['kind']}: observed "
                    f"{violation['observed']:.0f} vs limit "
                    f"{violation['limit']:.0f}")
            if len(violations) > 6:
                lines.append(f"    ... {len(violations) - 6} more")
        else:
            lines.append(f"  slo {slo['spec']['name']}: met in all "
                         f"{slo['windows_evaluated']} windows")
    if report["unrecovered"]:
        lines.append(f"  result: UNRECOVERED ({report['unrecovered']} fault(s))")
        lines.extend(f"    {line}" for line in report["flight"])
    else:
        lines.append("  result: recovered")
    return "\n".join(lines)


def run_fault_smoke(seed: int = 0) -> Optional[str]:
    """The ``verify --faults`` check: the flagship campaign must detect,
    fail over, and produce byte-identical reports run-to-run.  Returns a
    problem description, or None when healthy."""
    campaign = CAMPAIGNS[DEFAULT_CAMPAIGN]
    first = execute_campaign(campaign, seed).report
    second = execute_campaign(campaign, seed).report
    if canonical_json(first) != canonical_json(second):
        return "campaign report is not deterministic across runs"
    if first["unrecovered"]:
        return "the IOhost-crash campaign did not recover"
    fault = first["faults"][0]
    if fault["detection_latency_ns"] is None:
        return "the IOhost crash was never detected"
    if first["requests"]["completed"] == 0:
        return "no block requests completed"
    if first["throughput"]["after"]["ops"] == 0:
        return "no throughput after failover"
    return None
