"""Fault plans: declarative descriptions of *what goes wrong, when*.

A :class:`FaultPlan` is pure data — a tuple of :class:`FaultSpec` entries,
each naming a fault kind, an absolute injection time, an optional window
duration, a target (link name, storage-device name, NIC-function suffix,
core index — kind-dependent), and kind-specific parameters.  Plans ride
inside :class:`repro.cluster.TestbedSpec`, so a campaign
(spec × fault plan × seed) serializes to JSON and reproduces bit-for-bit.

The kinds, mapped to the paper:

* ``iohost_crash`` — §4.6: the I/O hypervisor dies; with
  ``params={"recover": "fallback"}`` the VMhost splices in a local virtio
  device (plus a replica block device) the moment the guest detects
  trouble.
* ``link_loss`` / ``link_down`` — §4.5: a degradation window or blackout
  on a named link; the block reliability layer must retransmit through it.
* ``nic_function_failure`` — a PF/VF drops all traffic until restored.
* ``storage_error_burst`` — the medium errors every request in a window;
  errors surface as not-ok responses the guest retries like losses.
* ``sidecore_stall`` — an I/O core is pinned by non-useful work.
* ``live_migration`` — §4.6 planned maintenance: migrate a client's
  I/O hypervisor connection to another channel mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Tuple

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultPlan"]

FAULT_KINDS = (
    "iohost_crash",
    "link_loss",
    "link_down",
    "nic_function_failure",
    "storage_error_burst",
    "sidecore_stall",
    "live_migration",
)


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault occurrence."""

    kind: str
    at_ns: int
    duration_ns: int = 0        # 0 = no window (point fault)
    target: str = ""            # kind-dependent: link/device/function/core
    params: Mapping = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}")
        if self.at_ns < 0:
            raise ValueError(f"negative injection time: {self.at_ns}")
        if self.duration_ns < 0:
            raise ValueError(f"negative fault duration: {self.duration_ns}")

    def to_dict(self) -> dict:
        return {"kind": self.kind, "at_ns": self.at_ns,
                "duration_ns": self.duration_ns, "target": self.target,
                "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        return cls(kind=data["kind"], at_ns=data["at_ns"],
                   duration_ns=data.get("duration_ns", 0),
                   target=data.get("target", ""),
                   params=dict(data.get("params", {})))


@dataclass(frozen=True)
class FaultPlan:
    """An ordered sequence of planned faults (order = injection order for
    simultaneous faults; times are absolute simulation ns)."""

    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def to_dict(self) -> dict:
        return {"faults": [f.to_dict() for f in self.faults]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(faults=tuple(FaultSpec.from_dict(f)
                                for f in data.get("faults", ())))
