"""Deterministic fault injection and recovery campaigns.

Faults are first-class simulation events: a declarative
:class:`FaultPlan` rides inside a :class:`repro.cluster.TestbedSpec`,
:func:`repro.cluster.build_testbed` arms a :class:`FaultInjector`, and a
:class:`Campaign` (spec × fault plan × seed) reports detection latency,
failover downtime, request loss/retry/recovery, and throughput
before/during/after each fault — byte-identical per seed.

Run the stock campaigns with ``python -m repro faults``.
"""

from .plan import FAULT_KINDS, FaultPlan, FaultSpec
from .inject import DETECTION_EVENTS, FaultInjector, FaultRecord
from .campaign import (
    CAMPAIGNS,
    DEFAULT_CAMPAIGN,
    Campaign,
    CampaignResult,
    campaign_names,
    execute_campaign,
    format_report,
    run_campaign_point,
    run_campaigns,
    run_fault_smoke,
)

__all__ = [
    "FAULT_KINDS", "FaultSpec", "FaultPlan",
    "DETECTION_EVENTS", "FaultInjector", "FaultRecord",
    "Campaign", "CampaignResult", "CAMPAIGNS", "DEFAULT_CAMPAIGN",
    "campaign_names", "execute_campaign", "format_report",
    "run_campaign_point", "run_campaigns", "run_fault_smoke",
]
