"""The fault injector: turns a :class:`FaultPlan` into simulation events.

Armed at testbed-build time (see :func:`repro.cluster.build_testbed`), the
injector schedules each planned fault at its absolute time via
``Environment.schedule_at`` and tracks a :class:`FaultRecord` per fault:

* ``injected_ns`` / ``cleared_ns`` — when the fault started and (for
  windowed faults) ended;
* ``detected_ns`` — when the *system under test* first noticed: the first
  retransmission, reliability failure, or device-error response observed
  by any guest's §4.5 reliability layer after the injection;
* ``recovered_ns`` — when service was restored: failover completion for an
  IOhost crash, migration completion, stall drain, or window end.

Everything is deterministic: injections are plain scheduled events, the
loss RNG is drawn from the testbed's seeded registry, and the injector
adds no time-dependent state of its own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..hw.storage import make_ramdisk
from ..iomodels.vrio.failover import fail_iohost, fall_back_to_local_virtio
from ..iomodels.vrio.frontend import VrioModel
from ..iomodels.vrio.migration import live_migrate
from .plan import FaultPlan, FaultSpec

__all__ = ["FaultInjector", "FaultRecord", "DETECTION_EVENTS"]

# Reliability-layer events that count as the guest *detecting* a fault.
DETECTION_EVENTS = ("retransmit", "failure", "device_error")


@dataclass
class FaultRecord:
    """Lifecycle timestamps of one injected fault (all absolute ns)."""

    spec: FaultSpec
    injected_ns: Optional[int] = None
    cleared_ns: Optional[int] = None
    detected_ns: Optional[int] = None
    recovered_ns: Optional[int] = None
    expects_recovery: bool = False
    detail: str = ""

    @property
    def detection_latency_ns(self) -> Optional[int]:
        if self.detected_ns is None or self.injected_ns is None:
            return None
        return self.detected_ns - self.injected_ns

    @property
    def downtime_ns(self) -> Optional[int]:
        if self.recovered_ns is None or self.injected_ns is None:
            return None
        return self.recovered_ns - self.injected_ns

    @property
    def unrecovered(self) -> bool:
        return (self.injected_ns is not None and self.expects_recovery
                and self.recovered_ns is None)

    def to_dict(self) -> dict:
        return {
            "kind": self.spec.kind,
            "at_ns": self.spec.at_ns,
            "duration_ns": self.spec.duration_ns,
            "target": self.spec.target,
            "injected_ns": self.injected_ns,
            "cleared_ns": self.cleared_ns,
            "detected_ns": self.detected_ns,
            "recovered_ns": self.recovered_ns,
            "detection_latency_ns": self.detection_latency_ns,
            "downtime_ns": self.downtime_ns,
            "expects_recovery": self.expects_recovery,
            "unrecovered": self.unrecovered,
            "detail": self.detail,
        }


class FaultInjector:
    """Schedules and tracks one fault plan against one testbed.

    The injector duck-types the testbed: it needs ``env``, ``rng``,
    ``models``, ``links``, ``channels``, ``storage_devices``,
    ``service_cores``, and — for IOhost failover — the switched
    topology's ``vmhost_fallback_nic`` / ``fallback_io_core`` /
    ``switch`` / ``switch_ports`` extras.
    """

    def __init__(self, testbed, plan: FaultPlan, recorder=None):
        self.testbed = testbed
        self.env = testbed.env
        self.plan = plan
        self.recorder = recorder
        self.records: List[FaultRecord] = [FaultRecord(spec=f)
                                           for f in plan.faults]
        self.on_detect: List[Callable[[FaultRecord], None]] = []
        self.on_recover: List[Callable[[FaultRecord], None]] = []
        self.on_clear: List[Callable[[FaultRecord], None]] = []
        self._armed = False

    def arm(self) -> "FaultInjector":
        """Schedule every planned fault as a simulation event."""
        if self._armed:
            raise RuntimeError("fault plan already armed")
        self._armed = True
        for record in self.records:
            self.env.schedule_at(record.spec.at_ns,
                                 self._injector_for(record))
        return self

    def _injector_for(self, record: FaultRecord) -> Callable[[], None]:
        def inject():
            record.injected_ns = self.env.now
            self._note(f"inject {record.spec.kind}"
                       + (f" target={record.spec.target}"
                          if record.spec.target else ""))
            getattr(self, f"_inject_{record.spec.kind}")(record)
        return inject

    @property
    def unrecovered(self) -> List[FaultRecord]:
        return [r for r in self.records if r.unrecovered]

    def summary(self) -> List[dict]:
        return [r.to_dict() for r in self.records]

    # -- plumbing ------------------------------------------------------------

    def _note(self, detail: str) -> None:
        recorder = self.recorder
        if recorder is None:
            telemetry = getattr(self.testbed, "telemetry", None)
            recorder = getattr(telemetry, "recorder", None)
        if recorder is not None:
            recorder.note(self.env.now, "fault", detail)

    def _vrio_model(self) -> Optional[VrioModel]:
        for model in self.testbed.models:
            if isinstance(model, VrioModel):
                return model
        return None

    def _reliable_channels(self):
        model = self._vrio_model()
        if model is None:
            return []
        clients = [model._clients[name] for name in sorted(model._clients)]
        return [client.reliable for client in clients
                if client.reliable is not None]

    def _watch_detection(self, record: FaultRecord,
                         then: Optional[Callable[[], None]] = None) -> None:
        """Detect via the guests' §4.5 reliability layers: the first
        retransmit/failure/device-error after injection marks
        ``detected_ns`` (and triggers ``then``, e.g. failover)."""
        def observer(event, _request, _attempts):
            if record.detected_ns is not None:
                return
            if event not in DETECTION_EVENTS:
                return
            record.detected_ns = self.env.now
            self._note(f"detected {record.spec.kind} via {event} "
                       f"(+{record.detected_ns - record.injected_ns} ns)")
            for fn in self.on_detect:
                fn(record)
            if then is not None:
                then()
        channels = self._reliable_channels()
        if not channels:
            record.detail = record.detail or "no reliability layer to detect with"
            return
        for channel in channels:
            channel.add_observer(observer)

    def _schedule_clear(self, record: FaultRecord,
                        undo: Callable[[], None]) -> None:
        """End a windowed fault ``duration_ns`` after injection.  Windowed
        faults recover by clearing: service is restored the moment the
        window ends (lost requests are healed by retransmission)."""
        if record.spec.duration_ns <= 0:
            return
        def clear():
            undo()
            record.cleared_ns = self.env.now
            record.recovered_ns = self.env.now
            self._note(f"clear {record.spec.kind}")
            for fn in self.on_clear:
                fn(record)
        self.env.schedule_at(record.injected_ns + record.spec.duration_ns,
                             clear)

    def _finish(self, record: FaultRecord) -> Callable:
        """Event callback marking a point fault (stall, migration) done."""
        def finished(_event):
            record.cleared_ns = self.env.now
            record.recovered_ns = self.env.now
            self._note(f"{record.spec.kind} complete")
            for fn in self.on_recover:
                fn(record)
        return finished

    # -- fault kinds ---------------------------------------------------------

    def _inject_iohost_crash(self, record: FaultRecord) -> None:
        model = self._vrio_model()
        if model is None:
            record.detail = "no vRIO model to crash"
            return
        fail_iohost(model)
        if record.spec.params.get("recover") == "fallback":
            record.expects_recovery = True
            self._watch_detection(
                record, then=lambda: self._recover_fallback(record))
        else:
            self._watch_detection(record)

    def _recover_fallback(self, record: FaultRecord) -> None:
        """§4.6 failover: local virtio under the same F address, plus a
        replica block device when the plan says storage is distributed."""
        tb = self.testbed
        model = self._vrio_model()
        fallback_nic = getattr(tb, "vmhost_fallback_nic", None)
        io_core = getattr(tb, "fallback_io_core", None)
        if fallback_nic is None or io_core is None:
            record.detail = ("no fallback path: the switched topology "
                             "provides vmhost_fallback_nic/fallback_io_core")
            self._note(record.detail)
            return
        switch = getattr(tb, "switch", None)
        switch_port = None
        if switch is not None:
            switch_port = getattr(tb, "switch_ports", {}).get("vmhost")
        want_replica = record.spec.params.get("replica", True)
        for client in [model._clients[name]
                       for name in sorted(model._clients)]:
            replica = None
            if want_replica and client.devices:
                replica = make_ramdisk(
                    self.env, name=f"replica-{client.client_id}")
            fall_back_to_local_virtio(model, client, fallback_nic, io_core,
                                      switch=switch, switch_port=switch_port,
                                      replica_device=replica)
        record.recovered_ns = self.env.now
        self._note("failover to local virtio complete")
        for fn in self.on_recover:
            fn(record)

    def _find_link(self, record: FaultRecord):
        link = self.testbed.links.get(record.spec.target)
        if link is None:
            record.detail = (f"no link named {record.spec.target!r}; have "
                             f"{sorted(self.testbed.links)}")
        return link

    def _inject_link_loss(self, record: FaultRecord) -> None:
        link = self._find_link(record)
        if link is None:
            return
        probability = float(record.spec.params.get("probability", 0.5))
        rng = self.testbed.rng.stream(
            f"fault-link_loss-{record.spec.target}-{record.spec.at_ns}")
        link.set_loss(probability, rng)
        self._watch_detection(record)
        self._schedule_clear(record, link.restore)

    def _inject_link_down(self, record: FaultRecord) -> None:
        link = self._find_link(record)
        if link is None:
            return
        link.set_down(True)
        self._watch_detection(record)
        self._schedule_clear(record, link.restore)

    def _inject_nic_function_failure(self, record: FaultRecord) -> None:
        target = record.spec.target
        matches = []
        hosts = list(self.testbed.vmhosts)
        if self.testbed.iohost is not None:
            hosts.append(self.testbed.iohost)
        for host in hosts:
            for nic in host.nics:
                for fn in nic.functions:
                    if fn.name == target or fn.name.endswith(target):
                        matches.append(fn)
        if not matches:
            record.detail = f"no NIC function matching {target!r}"
            return
        for fn in matches:
            fn.fail()
        self._watch_detection(record)
        self._schedule_clear(
            record, lambda: [fn.restore() for fn in matches])

    def _inject_storage_error_burst(self, record: FaultRecord) -> None:
        target = record.spec.target
        devices = [d for d in self.testbed.storage_devices
                   if not target or d.name == target]
        if not devices:
            record.detail = (f"no storage device matching {target!r}; have "
                             f"{[d.name for d in self.testbed.storage_devices]}")
            return
        until = self.env.now + record.spec.duration_ns
        for device in devices:
            device.set_error_window(until)
        self._watch_detection(record)
        self._schedule_clear(record, lambda: None)

    def _inject_sidecore_stall(self, record: FaultRecord) -> None:
        cores = self.testbed.service_cores
        index = int(record.spec.target or 0)
        if not 0 <= index < len(cores):
            record.detail = (f"no service core {index}; have "
                             f"{len(cores)}")
            return
        record.expects_recovery = True
        # A stall is operator-visible the moment it starts (maintenance
        # semantics) — detection latency is not the interesting number.
        record.detected_ns = record.injected_ns
        done = cores[index].stall(record.spec.duration_ns)
        done.add_callback(self._finish(record))

    def _inject_live_migration(self, record: FaultRecord) -> None:
        model = self._vrio_model()
        if model is None:
            record.detail = "no vRIO model to migrate"
            return
        clients = [model._clients[name] for name in sorted(model._clients)]
        index = int(record.spec.params.get("client", 0))
        channel_index = int(record.spec.params.get("target_channel", 1))
        channels = self.testbed.channels
        if not 0 <= index < len(clients):
            record.detail = f"no client {index}; have {len(clients)}"
            return
        if not 0 <= channel_index < len(channels):
            record.detail = (f"no channel {channel_index}; have "
                             f"{len(channels)}")
            return
        downtime_ns = int(record.spec.params.get("downtime_ns", 2_000_000))
        record.expects_recovery = True
        record.detected_ns = record.injected_ns  # planned maintenance
        proc = live_migrate(model, clients[index], channels[channel_index],
                            downtime_ns=downtime_ns)
        proc.add_callback(self._finish(record))
