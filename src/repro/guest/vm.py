"""Guest virtual machines.

A :class:`Vm` owns one VCPU core (the paper's guests are all 1-VCPU) and
models the guest-visible virtualization events: interrupt handling, EOI
writes, and synchronous exits.  Whether an interrupt costs an exit depends
on the I/O model delivering it:

* ``deliver_interrupt_exitless`` — ELI semantics: the interrupt (an IPI from
  a sidecore, or a directly-routed SRIOV interrupt) reaches the guest
  without host involvement and the EOI register write does not trap.
* ``deliver_interrupt_injected`` — baseline trap-and-emulate: the host paid
  an injection, and the guest's EOI write traps (one synchronous exit).

Synchronous exits that the guest initiates (e.g. a virtio kick hypercall)
are modeled with :meth:`sync_exit`.

All counting flows into a shared :class:`IoEventStats`-like object (any
object exposing the five Table-3 counters) so experiments can reproduce the
paper's qualitative overhead comparison directly from measurements.
"""

from __future__ import annotations

from typing import Optional

from ..hw.cpu import Core
from ..sim import Counter, Environment, Event

__all__ = ["Vm", "GuestCosts"]


class GuestCosts:
    """Cycle costs of guest-side virtualization events."""

    def __init__(self, irq_handler_cycles: int = 2_600,
                 eoi_exit_cycles: int = 3_500,
                 sync_exit_cycles: int = 3_500):
        self.irq_handler_cycles = irq_handler_cycles
        self.eoi_exit_cycles = eoi_exit_cycles
        self.sync_exit_cycles = sync_exit_cycles


class Vm:
    """A one-VCPU guest.

    Parameters
    ----------
    env, name, vcpu:
        The VCPU core must be dedicated to this VM (paper setup: one VM per
        VMcore).
    costs:
        Guest-side event costs.
    stats:
        Object with ``exits``, ``guest_interrupts``, ``injections``
        counters (each a ``repro.sim.Counter``); typically the I/O model's
        :class:`~repro.iomodels.base.IoEventStats`.
    """

    def __init__(self, env: Environment, name: str, vcpu: Core,
                 costs: Optional[GuestCosts] = None, stats=None):
        self.env = env
        self.name = name
        self.vcpu = vcpu
        self.costs = costs if costs is not None else GuestCosts()
        self.stats = stats
        self.interrupts_received = Counter(f"{name}.interrupts")
        self.devices: dict = {}

    # -- virtualization events ----------------------------------------------

    def deliver_interrupt_exitless(self, extra_cycles: int = 0) -> Event:
        """An ELI interrupt: handler runs on the VCPU, EOI does not trap.

        Returns the completion event of the handler work.
        """
        self.interrupts_received.add()
        if self.stats is not None:
            self.stats.guest_interrupts.add()
        cycles = self.costs.irq_handler_cycles + extra_cycles
        return self.vcpu.execute(cycles, tag="guest_irq", high_priority=True)

    def deliver_interrupt_injected(self, extra_cycles: int = 0) -> Event:
        """A trap-and-emulate injected interrupt: handler + trapping EOI.

        The *injection* cost itself is host-side work and must be charged by
        the caller on the host core; this method accounts the guest side.
        """
        self.interrupts_received.add()
        if self.stats is not None:
            self.stats.guest_interrupts.add()
            self.stats.injections.add()
            self.stats.exits.add()  # the EOI write traps
        cycles = (self.costs.irq_handler_cycles + extra_cycles
                  + self.costs.eoi_exit_cycles)
        return self.vcpu.execute(cycles, tag="guest_irq", high_priority=True)

    def sync_exit(self, extra_cycles: int = 0) -> Event:
        """A guest-initiated trap (e.g. a virtio kick hypercall)."""
        if self.stats is not None:
            self.stats.exits.add()
        cycles = self.costs.sync_exit_cycles + extra_cycles
        return self.vcpu.execute(cycles, tag="exit", high_priority=True)

    def compute(self, cycles: int, tag: str = "app") -> Event:
        """Plain guest application/OS work on the VCPU."""
        return self.vcpu.execute(cycles, tag=tag)

    def __repr__(self) -> str:
        return f"<Vm {self.name}>"
