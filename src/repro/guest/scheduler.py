"""Guest thread scheduling on a single VCPU.

Models the effect the paper observes in Figure 14: with several I/O-bound
threads sharing one VCPU, *fast* local devices (Elvis + ramdisk) keep most
threads runnable at once, so the guest scheduler timeslices them and pays a
context switch every quantum — "two orders of magnitude" more involuntary
switches than vRIO, whose longer I/O latency keeps threads blocked and the
run queue shallow.

The scheduler round-robins runnable threads in quanta.  A switch to a
different thread costs ``ctx_switch_cycles`` on the VCPU.  A thread that
exhausts a quantum while others wait is preempted (involuntary switch);
a thread that finishes its burst blocks (voluntary switch).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from ..hw.cpu import Core
from ..sim import Counter, Environment, Event

__all__ = ["GuestScheduler"]


class GuestScheduler:
    """Round-robin timeslicing of thread CPU bursts on one VCPU core."""

    def __init__(self, env: Environment, vcpu: Core,
                 ctx_switch_cycles: int = 6_000,
                 quantum_cycles: int = 9_000):
        if quantum_cycles <= 0:
            raise ValueError(f"quantum must be positive: {quantum_cycles}")
        self.env = env
        self.vcpu = vcpu
        self.ctx_switch_cycles = ctx_switch_cycles
        self.quantum_cycles = quantum_cycles
        self.voluntary_switches = Counter("voluntary_switches")
        self.involuntary_switches = Counter("involuntary_switches")
        self._runnable: Deque[Tuple[object, int, Event]] = deque()
        self._wakeup: Optional[Event] = None
        self._last_thread: object = None
        env.process(self._dispatch(), name=f"guest-sched:{vcpu.name}")

    def run(self, thread_id: object, cycles: int) -> Event:
        """Request ``cycles`` of CPU for ``thread_id``.

        Returns an event that triggers when the burst has fully executed.
        The thread is considered blocked (off the run queue) after the burst
        completes, until its next ``run`` call.
        """
        if cycles <= 0:
            raise ValueError(f"burst must be positive: {cycles}")
        done = self.env.event()
        self._runnable.append((thread_id, cycles, done))
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()
        return done

    @property
    def run_queue_depth(self) -> int:
        return len(self._runnable)

    def _dispatch(self):
        env = self.env
        while True:
            if not self._runnable:
                self._wakeup = env.event()
                yield self._wakeup
                self._wakeup = None
            thread_id, remaining, done = self._runnable.popleft()
            if thread_id is not self._last_thread and self._last_thread is not None:
                yield self.vcpu.execute(self.ctx_switch_cycles,
                                        tag="ctx_switch")
            self._last_thread = thread_id
            slice_cycles = min(self.quantum_cycles, remaining)
            yield self.vcpu.execute(slice_cycles, tag="thread")
            remaining -= slice_cycles
            if remaining > 0:
                # Quantum expired.  If anyone else is waiting, this is an
                # involuntary preemption; otherwise keep running silently.
                if self._runnable:
                    self.involuntary_switches.add()
                    self._runnable.append((thread_id, remaining, done))
                else:
                    self._runnable.appendleft((thread_id, remaining, done))
            else:
                self.voluntary_switches.add()
                done.succeed()
