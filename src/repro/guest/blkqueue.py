"""The guest OS disk scheduler.

Paper §4.5 leans on a guest-kernel invariant: the disk scheduler (not the
driver) reorders requests such that *each individual block has at most one
outstanding request*, with subsequent requests for that block held pending.
vRIO's block retransmission is only safe because of this — a retransmitted
write can never race a newer request for the same block.

:class:`GuestBlockScheduler` enforces the invariant above a driver-submit
function and exposes it for property testing.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Set

from ..hw.storage import BlockRequest
from ..sim import Counter, Environment, Event

__all__ = ["GuestBlockScheduler"]


class GuestBlockScheduler:
    """Serializes same-sector requests before they reach the driver.

    ``driver_submit`` is the front-end driver's submit function, returning a
    completion event.  Requests touching disjoint sector ranges proceed
    concurrently; overlapping ones queue in arrival order.
    """

    def __init__(self, env: Environment,
                 driver_submit: Callable[[BlockRequest], Event]):
        self.env = env
        self._driver_submit = driver_submit
        self._outstanding: Set[int] = set()       # sectors with in-flight I/O
        self._pending: Deque[BlockRequest] = deque()
        self._completions: Dict[int, Event] = {}  # request_id -> caller event
        self.held_back = Counter("blocked_on_same_sector")
        self.submitted = Counter("submitted")

    def _sectors_of(self, request: BlockRequest):
        return range(request.sector, request.sector + request.sectors)

    def _conflicts(self, request: BlockRequest) -> bool:
        return any(s in self._outstanding for s in self._sectors_of(request))

    def submit(self, request: BlockRequest) -> Event:
        """Queue a request; returns the completion event."""
        done = self.env.event()
        self._completions[request.request_id] = done
        if self._conflicts(request) or self._pending:
            self.held_back.add()
            self._pending.append(request)
        else:
            self._dispatch(request)
        return done

    @property
    def outstanding_sectors(self) -> Set[int]:
        return set(self._outstanding)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def _dispatch(self, request: BlockRequest) -> None:
        for s in self._sectors_of(request):
            self._outstanding.add(s)
        self.submitted.add()
        driver_done = self._driver_submit(request)
        driver_done.add_callback(
            lambda _event, req=request: self._on_complete(req))

    def _on_complete(self, request: BlockRequest) -> None:
        for s in self._sectors_of(request):
            self._outstanding.discard(s)
        done = self._completions.pop(request.request_id)
        done.succeed(request)
        # Admit pending requests that no longer conflict, preserving order:
        # stop at the first conflicting one to avoid starving it.
        while self._pending and not self._conflicts(self._pending[0]):
            self._dispatch(self._pending.popleft())
