"""Guest VM models: VCPUs, interrupts, thread and block schedulers."""

from .blkqueue import GuestBlockScheduler
from .scheduler import GuestScheduler
from .vm import GuestCosts, Vm

__all__ = ["Vm", "GuestCosts", "GuestScheduler", "GuestBlockScheduler"]
