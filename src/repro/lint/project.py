"""Whole-program analysis: module graph → symbols → call graph → rules.

This is the ``repro lint --project`` layer.  It extracts one pickleable
:class:`~repro.lint.symbols.ModuleSummary` per file (with an incremental
content-addressed cache and optional ``--jobs`` parallel parsing), builds
the :class:`~repro.lint.callgraph.CallGraph`, and runs the SIM6xx
interprocedural rule family that per-file rules cannot express.

Caching
-------
Per-file, keyed like the PR-3 sweep cache: content address =
SHA-256 over the extractor version and the file's source, stored as a
pickle under ``$REPRO_CACHE_DIR`` (or ``.repro_cache/``) in
``lint_symbols/``.  A warm whole-tree run therefore re-parses nothing —
it unpickles summaries and re-runs only the (cheap) graph analysis.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple, Type

from ..envvars import cache_dir_override, pythonpath_for_spawn
from .callgraph import (CallGraph, ProjectIndex, build_callgraph,
                        build_index, module_edges, resolve_callee)
from .dataflow import run_taint_analysis
from .findings import Finding, is_suppressed
from .framework import LintResult, default_lint_root, iter_python_files
from .symbols import SYMBOLS_VERSION, ModuleSummary, extract_module

__all__ = [
    "ProjectAnalysis",
    "ProjectRule",
    "register_project_rule",
    "registered_project_rules",
    "build_project",
    "build_project_from_sources",
    "run_project_rules",
    "default_symbol_cache_dir",
]

_CACHE_DIRNAME = ".repro_cache"
_CACHE_SUBDIR = "lint_symbols"


# ---------------------------------------------------------------------------
# Project container


@dataclass
class ProjectAnalysis:
    """Everything the SIM6xx rules consume."""

    index: ProjectIndex
    graph: CallGraph
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def summaries(self) -> Dict[str, ModuleSummary]:
        return self.index.summaries

    def module_graph(self) -> Dict[str, Set[str]]:
        return module_edges(self.index)


# ---------------------------------------------------------------------------
# Incremental summary cache


def default_symbol_cache_dir() -> Path:
    root = Path(cache_dir_override() or _CACHE_DIRNAME)
    return root / _CACHE_SUBDIR


def _source_digest(source: str) -> str:
    hasher = hashlib.sha256()
    hasher.update(f"simlint-symbols/v{SYMBOLS_VERSION}\0".encode())
    hasher.update(source.encode("utf-8"))
    return hasher.hexdigest()


def _cache_load(cache_dir: Path, digest: str) -> Optional[ModuleSummary]:
    entry = cache_dir / f"{digest}.pkl"
    try:
        with entry.open("rb") as handle:
            summary = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError):
        return None
    return summary if isinstance(summary, ModuleSummary) else None


def _cache_store(cache_dir: Path, digest: str,
                 summary: ModuleSummary) -> None:
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        tmp = cache_dir / f".{digest}.tmp"
        with tmp.open("wb") as handle:
            pickle.dump(summary, handle, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(cache_dir / f"{digest}.pkl")
    except OSError:
        pass  # caching is best-effort; analysis correctness never depends on it


def _extract_worker(item: Tuple[str, str]) -> Tuple[str, ModuleSummary]:
    """Module-level so it pickles under the spawn start method."""
    rel_path, source = item
    return rel_path, extract_module(rel_path, source)


def _extract_parallel(items: List[Tuple[str, str]], jobs: int
                      ) -> List[Tuple[str, ModuleSummary]]:
    import multiprocessing

    src_root = str(default_lint_root())
    ctx = multiprocessing.get_context("spawn")
    with pythonpath_for_spawn(src_root):
        with ctx.Pool(processes=min(jobs, len(items))) as pool:
            return pool.map(_extract_worker, items)


def build_project(root: Optional[Path] = None,
                  jobs: int = 1,
                  use_cache: bool = True,
                  cache_dir: Optional[Path] = None) -> ProjectAnalysis:
    """Summarize the whole tree (cached, optionally parallel) and index it."""
    root = root or default_lint_root()
    cache_dir = cache_dir or default_symbol_cache_dir()
    files = iter_python_files([root / "repro"])

    sources: Dict[str, str] = {}
    digests: Dict[str, str] = {}
    for file_path in files:
        try:
            rel = file_path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = file_path.as_posix()
        source = file_path.read_text(encoding="utf-8")
        sources[rel] = source
        digests[rel] = _source_digest(source)

    summaries: Dict[str, ModuleSummary] = {}
    hits = 0
    if use_cache:
        for rel in sorted(digests):
            digest = digests[rel]
            cached = _cache_load(cache_dir, digest)
            if cached is not None and cached.path == rel:
                summaries[rel] = cached
                hits += 1

    missing = [(rel, sources[rel]) for rel in sorted(sources)
               if rel not in summaries]
    if missing:
        if jobs > 1 and len(missing) > 1:
            extracted = _extract_parallel(missing, jobs)
        else:
            extracted = [_extract_worker(item) for item in missing]
        for rel, summary in extracted:
            summaries[rel] = summary
            if use_cache:
                _cache_store(cache_dir, digests[rel], summary)

    index = build_index(summaries)
    graph = build_callgraph(index)
    return ProjectAnalysis(index=index, graph=graph, cache_hits=hits,
                           cache_misses=len(missing))


def build_project_from_sources(files: Mapping[str, str]) -> ProjectAnalysis:
    """In-memory variant — the fixture/test entry point."""
    summaries = {path: extract_module(path, files[path])
                 for path in sorted(files)}
    index = build_index(summaries)
    return ProjectAnalysis(index=index, graph=build_callgraph(index),
                           cache_misses=len(summaries))


# ---------------------------------------------------------------------------
# Project rule registry (separate from the per-file registry: these rules
# consume a ProjectAnalysis, not an AST walk)


class ProjectRule:
    """Base class for whole-program (SIM6xx) rules."""

    code: str = ""
    name: str = ""
    rationale: str = ""

    def run(self, project: ProjectAnalysis) -> List[Finding]:
        raise NotImplementedError


_PROJECT_RULES: Dict[str, Type[ProjectRule]] = {}


def register_project_rule(cls: Type[ProjectRule]) -> Type[ProjectRule]:
    if not cls.code or not cls.name:
        raise ValueError(f"rule {cls.__name__} needs code and name")
    if cls.code in _PROJECT_RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    _PROJECT_RULES[cls.code] = cls
    return cls


def registered_project_rules() -> Dict[str, Type[ProjectRule]]:
    return dict(_PROJECT_RULES)


def run_project_rules(project: ProjectAnalysis,
                      only: Optional[Iterable[str]] = None,
                      baseline: Optional[Set[Tuple[str, str, str]]] = None
                      ) -> LintResult:
    """Run the SIM6xx family and fold in suppressions + baseline."""
    registry = registered_project_rules()
    codes = sorted(registry) if only is None else sorted(only)
    unknown = [c for c in codes if c not in registry]
    if unknown:
        raise KeyError(f"unknown project rule code(s): {', '.join(unknown)}; "
                       f"known: {', '.join(sorted(registry))}")
    parse_errors = [
        Finding(path=s.path, line=s.parse_error[0], col=s.parse_error[1],
                code="SIM000",
                message=f"file does not parse: {s.parse_error[2]}")
        for s in (project.summaries[p] for p in sorted(project.summaries))
        if s.parse_error is not None]
    active: List[Finding] = []
    suppressed = baselined = 0
    for code in codes:
        for finding in registry[code]().run(project):
            summary = project.summaries.get(finding.path)
            suppressions = summary.suppressions if summary else {}
            if is_suppressed(finding, suppressions):
                suppressed += 1
            elif baseline and (finding.path, finding.code,
                               finding.message) in baseline:
                baselined += 1
            else:
                active.append(finding)
    return LintResult(findings=sorted(active), suppressed=suppressed,
                      baselined=baselined,
                      files_checked=len(project.summaries),
                      parse_errors=sorted(parse_errors))


# ---------------------------------------------------------------------------
# SIM601 — RNG provenance


@register_project_rule
class RngProvenanceRule(ProjectRule):
    code = "SIM601"
    name = "rng-provenance"
    rationale = ("every random stream that reaches the scheduler, an event "
                 "callback, or serialized output must come from "
                 "RngRegistry.stream() — a raw random.Random laundered "
                 "through helpers still breaks bit-identical replay")

    def run(self, project: ProjectAnalysis) -> List[Finding]:
        state = run_taint_analysis(project.index)
        return [Finding(path=t.path, line=t.line, col=t.col, code=self.code,
                        message=t.detail)
                for t in state.findings]


# ---------------------------------------------------------------------------
# SIM602 — cycle-ledger flow

# Where datapath execution enters the model layer: public functions and
# methods in these packages are treated as entry points.  iomodels/* is
# the paper's datapath proper; the surrounding packages (workload
# drivers, cluster wiring, guest/hw plumbing, fault injectors) are the
# code that invokes it, so their public surface counts as entry too —
# otherwise every field consumed by the load generator would read as
# dead.
DATAPATH_PREFIXES: Tuple[str, ...] = (
    "repro/iomodels/", "repro/workloads/", "repro/cluster/",
    "repro/guest/", "repro/hw/", "repro/net/", "repro/virtio/",
    "repro/faults/", "repro/interpose/")

_COSTS_PATH = "repro/iomodels/costs.py"
_COSTS_CLASS = "CostModel"


def _datapath_roots(project: ProjectAnalysis) -> List[str]:
    roots: List[str] = []
    for fnkey in project.index.functions:
        path, qualname = fnkey.split("::", 1)
        if not path.startswith(DATAPATH_PREFIXES):
            continue
        last = qualname.rsplit(".", 1)[-1]
        if last == "<module>" or not last.startswith("_") \
                or last in ("__init__", "__call__"):
            roots.append(fnkey)
    return roots


@register_project_rule
class LedgerFlowRule(ProjectRule):
    code = "SIM602"
    name = "ledger-flow"
    rationale = ("every CostModel field must reach a Core.execute/Core.stall "
                 "charge (or a simulated-time delay) along some call path "
                 "from a datapath entry point, and every iomodels charge "
                 "site must be reachable from one — otherwise the ledger "
                 "and the calibrated catalog have silently diverged")

    def run(self, project: ProjectAnalysis) -> List[Finding]:
        index = project.index
        costs = index.summaries.get(_COSTS_PATH)
        if costs is None or _COSTS_CLASS not in costs.classes:
            return []
        fields = costs.classes[_COSTS_CLASS].class_fields
        roots = _datapath_roots(project)
        reachable = project.graph.reachable(roots)

        sinkers = {fnkey for fnkey, fn in index.functions.items()
                   if fn.charge_lines or fn.time_sink_lines}

        # Class-cohesive flow: a field read anywhere in a class whose
        # methods reach a charge counts (e.g. stored by __init__, spent
        # by a later method).
        cohort: Dict[str, List[str]] = {}
        for fnkey in index.functions:
            path, qualname = fnkey.split("::", 1)
            owner = f"{path}::{qualname.split('.', 1)[0]}" \
                if "." in qualname else fnkey
            cohort.setdefault(owner, []).append(fnkey)

        def _owner(fnkey: str) -> str:
            path, qualname = fnkey.split("::", 1)
            return f"{path}::{qualname.split('.', 1)[0]}" \
                if "." in qualname else fnkey

        # CHARGERS: every function whose forward closure contains a
        # charge/time sink (one reverse BFS from the sinkers).
        reverse: Dict[str, List[str]] = {}
        for src, dsts in project.graph.edges.items():
            for dst in dsts:
                reverse.setdefault(dst, []).append(src)
        chargers: Set[str] = set()
        stack = list(sinkers)
        while stack:
            fnkey = stack.pop()
            if fnkey in chargers:
                continue
            chargers.add(fnkey)
            stack.extend(reverse.get(fnkey, ()))

        def charges_flow_from(fnkey: str) -> bool:
            # The reader itself (or a class-mate) reaches a charge, or
            # the value it computes returns to a caller that does —
            # the ``cycles = helper(costs); core.execute(cycles)`` shape.
            group = cohort.get(_owner(fnkey), [fnkey])
            if any(member in chargers for member in group):
                return True
            return any(caller in chargers
                       for caller in reverse.get(fnkey, ()))

        live: Set[str] = set()
        for fnkey in reachable:
            fn = index.functions[fnkey]
            touched = fn.attr_reads.intersection(fields)
            if touched and charges_flow_from(fnkey):
                live |= touched

        findings: List[Finding] = []
        field_lines = costs.classes[_COSTS_CLASS].field_lines
        for name in fields:
            if name not in live:
                findings.append(Finding(
                    path=_COSTS_PATH, line=field_lines.get(name, 1), col=0,
                    code=self.code,
                    message=(f"CostModel.{name} never reaches a "
                             f"Core.execute/Core.stall charge or a "
                             f"simulated-time delay along any call path "
                             f"from a datapath entry point")))

        for fnkey, fn in index.functions.items():
            path, qualname = fnkey.split("::", 1)
            if not path.startswith(DATAPATH_PREFIXES) or not fn.charge_lines:
                continue
            if fnkey not in reachable:
                findings.append(Finding(
                    path=path, line=fn.charge_lines[0], col=0,
                    code=self.code,
                    message=(f"charge site in {qualname}() is unreachable "
                             f"from every datapath entry point — cycles "
                             f"charged here can never appear in a run")))
        return findings


# ---------------------------------------------------------------------------
# SIM603 — event-callback escape


@register_project_rule
class CallbackEscapeRule(ProjectRule):
    code = "SIM603"
    name = "callback-escape"
    rationale = ("a callback handed to the event system runs later: if it "
                 "captures a local that is reassigned after the "
                 "subscription point, it will observe the new value, not "
                 "the one in scope when it was scheduled — bind with a "
                 "default (lambda v=v: ...) or pass the value explicitly")

    def run(self, project: ProjectAnalysis) -> List[Finding]:
        findings: List[Finding] = []
        for path, summary in project.summaries.items():
            for fn in summary.functions.values():
                for escape in fn.escapes:
                    findings.append(Finding(
                        path=path, line=escape.lineno, col=escape.col,
                        code=self.code,
                        message=(f"callback passed to {escape.sink}() "
                                 f"captures local '{escape.variable}', "
                                 f"which is reassigned at line "
                                 f"{escape.mutated_at} after the "
                                 f"subscription point")))
        return findings


# ---------------------------------------------------------------------------
# SIM604 — telemetry reachability


@register_project_rule
class TelemetryReachabilityRule(ProjectRule):
    code = "SIM604"
    name = "telemetry-reachability"
    rationale = ("a register_telemetry() hook only runs if its class is "
                 "instantiated by some registered ModelInfo builder — a "
                 "hook on an orphan class silently exports nothing")

    def run(self, project: ProjectAnalysis) -> List[Finding]:
        index = project.index
        roots: List[str] = []
        for path, summary in index.summaries.items():
            caller = f"{path}::<module>"
            for name, _line in summary.registered_builders:
                roots.extend(
                    resolve_callee(index, caller, name).targets)
        if not roots:
            return []
        reachable = project.graph.reachable(roots)
        instantiated = project.graph.instantiated_from(reachable)

        findings: List[Finding] = []
        for clskey, cls in index.classes.items():
            if "register_telemetry" not in cls.methods:
                continue
            if clskey in instantiated:
                continue
            path = clskey.split("::", 1)[0]
            hook = index.functions.get(
                f"{path}::{cls.name}.register_telemetry")
            line = hook.lineno if hook is not None else cls.lineno
            findings.append(Finding(
                path=path, line=line, col=0, code=self.code,
                message=(f"{cls.name}.register_telemetry() is defined but "
                         f"{cls.name} is never instantiated from any "
                         f"registered ModelInfo builder — the hook can "
                         f"never run")))
        return findings
