"""SIM3xx — event-safety rules.

The event engine runs callbacks at a later simulation time than they
were created, which makes two Python footguns fatal rather than merely
ugly:

* SIM301 — a mutable default argument on a callback persists across
  events, so one event's state leaks into the next.
* SIM302 — a closure created in a loop and scheduled (or stored) for
  later reads its loop variable *late-bound*: by the time the engine
  fires it, every closure sees the final iteration's value.  The fix is
  the default-argument binding idiom (``lambda v=vm: ...``), which this
  rule recognizes and accepts.
* SIM303 — code outside ``repro/sim/`` reaching into the scheduler's
  internals (``_heap``, ``_cal``, ``_seq``, ``_ready``).  The engine's
  fast path deliberately couples to those fields *inside* the kernel;
  anything else poking them bypasses the FIFO tie-break and freelist
  lifecycle and silently corrupts the schedule.
"""

from __future__ import annotations

import ast
from typing import List, Set, Union

from .framework import FileContext, Rule, parent_of, register_rule

__all__ = []

_FuncNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]


def _mutable_defaults(args: ast.arguments) -> List[ast.AST]:
    out = []
    for default in list(args.defaults) + [d for d in args.kw_defaults if d]:
        if isinstance(default, (ast.List, ast.Dict, ast.Set,
                                ast.ListComp, ast.DictComp, ast.SetComp)):
            out.append(default)
        elif isinstance(default, ast.Call) and \
                isinstance(default.func, ast.Name) and \
                default.func.id in ("list", "dict", "set", "bytearray"):
            out.append(default)
    return out


@register_rule
class MutableDefaultRule(Rule):
    code = "SIM301"
    name = "mutable-default-arg"
    rationale = ("Default values are evaluated once at def time; a mutable "
                 "default on an event callback carries state from one event "
                 "into the next.")

    def _check(self, node: _FuncNode, ctx: FileContext) -> None:
        for default in _mutable_defaults(node.args):
            label = getattr(node, "name", "<lambda>")
            self.report(ctx, default,
                        f"mutable default argument on {label!r}; default to "
                        f"None and create the object inside the body")

    def visit_FunctionDef(self, node, ctx: FileContext) -> None:
        self._check(node, ctx)

    def visit_AsyncFunctionDef(self, node, ctx: FileContext) -> None:
        self._check(node, ctx)

    def visit_Lambda(self, node, ctx: FileContext) -> None:
        self._check(node, ctx)


def _param_names(args: ast.arguments) -> Set[str]:
    names = {a.arg for a in args.args + args.posonlyargs + args.kwonlyargs}
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    return names


def _free_loads(fn: _FuncNode) -> Set[str]:
    """Names the function loads but does not bind itself."""
    bound = _param_names(fn.args)
    loads: Set[str] = set()
    body = fn.body if isinstance(fn.body, list) else [fn.body]
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Load):
                    loads.add(node.id)
                else:  # Store / Del binds locally
                    bound.add(node.id)
            elif isinstance(node, ast.comprehension):
                for target in ast.walk(node.target):
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.Lambda)):
                bound |= _param_names(node.args)
    return loads - bound


def _loop_target_names(target: ast.AST) -> Set[str]:
    return {n.id for n in ast.walk(target) if isinstance(n, ast.Name)}


def _immediately_called(fn: ast.AST) -> bool:
    parent = parent_of(fn)
    return isinstance(parent, ast.Call) and parent.func is fn


@register_rule
class LateBoundLoopCaptureRule(Rule):
    code = "SIM302"
    name = "late-bound-loop-capture"
    rationale = ("A closure scheduled from a loop sees its loop variable at "
                 "call time, not creation time; by the time the event "
                 "engine fires it every closure reads the last iteration. "
                 "Bind with a default argument (lambda v=vm: ...).")

    def visit_For(self, node: ast.For, ctx: FileContext) -> None:
        targets = _loop_target_names(node.target)
        if not targets:
            return
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if not isinstance(sub, (ast.Lambda, ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                    continue
                if _immediately_called(sub):
                    continue
                captured = sorted(_free_loads(sub) & targets)
                if captured:
                    label = getattr(sub, "name", "<lambda>")
                    self.report(ctx, sub,
                                f"{label!r} captures loop variable(s) "
                                f"{', '.join(captured)} late-bound; bind "
                                f"them as default arguments "
                                f"({captured[0]}={captured[0]})")

    def visit_ListComp(self, node: ast.ListComp, ctx: FileContext) -> None:
        self._comp(node, ctx)

    def visit_SetComp(self, node: ast.SetComp, ctx: FileContext) -> None:
        self._comp(node, ctx)

    def _comp(self, node, ctx: FileContext) -> None:
        targets: Set[str] = set()
        for gen in node.generators:
            targets |= _loop_target_names(gen.target)
        for sub in ast.walk(node.elt):
            if isinstance(sub, ast.Lambda) and not _immediately_called(sub):
                captured = sorted(_free_loads(sub) & targets)
                if captured:
                    self.report(ctx, sub,
                                f"comprehension builds lambdas capturing "
                                f"{', '.join(captured)} late-bound; bind "
                                f"them as default arguments")


# Scheduler internals owned by repro/sim: the event heap/calendar, the
# FIFO tie-break counter, and the zero-delay ready lane.
_SCHEDULER_INTERNALS = frozenset({"_heap", "_cal", "_seq", "_ready"})


@register_rule
class SchedulerInternalsRule(Rule):
    code = "SIM303"
    name = "scheduler-internals-poke"
    rationale = ("The scheduler's queue state (_heap/_cal/_seq/_ready) is "
                 "owned by repro/sim; outside pokes bypass the (time, seq) "
                 "FIFO tie-break and the entry freelist lifecycle and "
                 "silently corrupt the schedule.  Go through the public "
                 "Environment API (call_soon, timeout, run, peek).")

    def visit_Attribute(self, node: ast.Attribute, ctx: FileContext) -> None:
        if node.attr not in _SCHEDULER_INTERNALS:
            return
        if ctx.path.startswith("repro/sim/"):
            return  # the kernel's own (documented) coupling
        # An object's own private state is fine (e.g. a recorder keeping
        # its own self._seq); what's flagged is reaching into *another*
        # object's scheduler fields.
        if isinstance(node.value, ast.Name) and node.value.id == "self":
            return
        self.report(ctx, node,
                    f"access to scheduler-internal field {node.attr!r} "
                    f"outside repro/sim; use the public Environment API")
