"""SIM1xx — determinism rules.

Everything downstream of the simulator (goldens, the sweep cache, fault
campaign reports) assumes bit-identical runs.  These rules catch the
constructs that historically break that promise:

* SIM101 — wall-clock reads inside the simulation tree;
* SIM102 — RNG streams not threaded from the seeded registry, and
  ``.stream(...)`` substream names derived from ``id()``/``hash()``;
* SIM103 — ``id()``/``hash()`` inside ordering keys (both vary per
  process: ``id`` is an address, ``hash`` of str is salted);
* SIM104 — unordered iteration (``dict.values()``/``dict.items()``/sets)
  flowing into order-sensitive sinks without ``sorted(...)``;
* SIM105 — process-environment reads outside the CLI/envvars modules.
"""

from __future__ import annotations

import ast
from typing import Optional, Set

from .framework import CLI_MODULES, ENV_MODULES, FileContext, Rule, \
    register_rule

__all__ = []  # rules self-register; nothing to export

_WALLCLOCK_TIME_FNS = {
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "clock",
}
_WALLCLOCK_DATETIME_FNS = {"now", "utcnow", "today"}


def _call_target(node: ast.Call) -> Optional[ast.Attribute]:
    return node.func if isinstance(node.func, ast.Attribute) else None


def _receiver_name(attr: ast.Attribute) -> Optional[str]:
    return attr.value.id if isinstance(attr.value, ast.Name) else None


@register_rule
class WallClockRule(Rule):
    code = "SIM101"
    name = "wall-clock-read"
    rationale = ("Simulation time is Environment.now; reading the host "
                 "clock makes runs irreproducible (golden fingerprints and "
                 "the sweep cache both key on bit-identical output).")

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if ctx.is_module(*CLI_MODULES):
            return  # the CLI may time real wall-clock work (bench)
        attr = _call_target(node)
        if attr is None:
            return
        receiver = _receiver_name(attr)
        if receiver == "time" and attr.attr in _WALLCLOCK_TIME_FNS:
            self.report(ctx, node,
                        f"wall-clock read time.{attr.attr}() in a simulation "
                        f"module; use Environment.now (sim time) instead")
        elif attr.attr in _WALLCLOCK_DATETIME_FNS:
            # datetime.now() / datetime.datetime.now() / date.today()
            base = attr.value
            names = set()
            if isinstance(base, ast.Name):
                names.add(base.id)
            elif isinstance(base, ast.Attribute):
                names.add(base.attr)
            if names & {"datetime", "date"}:
                self.report(ctx, node,
                            f"wall-clock read {attr.attr}() on "
                            f"{sorted(names)[0]}; simulation output must not "
                            f"depend on the host clock")


@register_rule
class UnseededRandomRule(Rule):
    code = "SIM102"
    name = "unthreaded-rng"
    rationale = ("Every stochastic draw must come from the testbed's seeded "
                 "RngRegistry substreams; module-level random or ad-hoc "
                 "fixed seeds decouple components from the master seed.")

    # The one module allowed to construct random.Random: the registry.
    _RNG_HOME = ("repro/sim/rng.py",)

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        attr = _call_target(node)
        if attr is None:
            return
        if attr.attr == "stream":
            self._check_stream_name(node, ctx)
            return
        if _receiver_name(attr) != "random":
            return
        if attr.attr != "Random":
            # random.random(), random.choice(), random.seed(), ... —
            # draws from (or reseeds) the process-global stream.
            self.report(ctx, node,
                        f"call to module-level random.{attr.attr}(); draw "
                        f"from the testbed RngRegistry stream instead")
            return
        if ctx.is_module(*self._RNG_HOME):
            return
        if not node.args and not node.keywords:
            self.report(ctx, node,
                        "random.Random() with no seed is nondeterministic; "
                        "thread a RngRegistry stream instead")
        elif (node.args and isinstance(node.args[0], ast.Constant)):
            self.report(ctx, node,
                        "random.Random(<constant seed>) creates a stream "
                        "divorced from the master seed; thread a "
                        "RngRegistry stream instead")

    def _check_stream_name(self, node: ast.Call, ctx: FileContext) -> None:
        """Substream names seed their streams: a name derived from id()
        or hash() varies per process, so the draws (open-loop arrivals,
        object sizes, fault schedules) silently stop replaying."""
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for sub in ast.walk(arg):
                if (isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id in ("id", "hash")):
                    self.report(ctx, sub,
                                f"{sub.func.id}() inside a .stream(...) "
                                f"substream name varies across processes; "
                                f"derive the name from a stable label or "
                                f"index instead")


_ORDERING_CALLS = {"sorted", "min", "max", "sort"}


@register_rule
class IdentityOrderingRule(Rule):
    code = "SIM103"
    name = "identity-in-ordering-key"
    rationale = ("id() is a memory address and str hashes are salted per "
                 "process; ordering by either reshuffles event order "
                 "between runs.")

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Name) and func.id in _ORDERING_CALLS:
            name = func.id
        elif isinstance(func, ast.Attribute) and func.attr in _ORDERING_CALLS:
            name = func.attr
        if name is None:
            return
        for sub in ast.walk(node):
            if (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
                    and sub.func.id in ("id", "hash")):
                self.report(ctx, sub,
                            f"{sub.func.id}() inside a {name}() ordering "
                            f"expression varies across processes; order by "
                            f"a stable key (name, index) instead")


_SCHEDULE_FNS = {"schedule", "schedule_at", "call_soon", "process"}
_JSON_SINKS = {"dump", "dumps", "canonical_json", "canonicalize"}


def _contains_sorted(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if (isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
                and sub.func.id == "sorted"):
            return True
    return False


def _unordered_label(node: ast.AST) -> Optional[str]:
    """Describe ``node`` if it is an unordered iterable expression."""
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Attribute) and not node.args \
                and node.func.attr in ("values", "items", "keys"):
            return f".{node.func.attr}()"
        if isinstance(node.func, ast.Name) and node.func.id in ("set",
                                                                "frozenset"):
            return f"{node.func.id}(...)"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set literal"
    return None


def _comp_unordered(comp: ast.AST) -> Optional[str]:
    """The unordered-iterable label of a comprehension's generators."""
    for gen in getattr(comp, "generators", []):
        label = _unordered_label(gen.iter)
        if label is not None:
            return label
    return None


@register_rule
class UnorderedFlowRule(Rule):
    code = "SIM104"
    name = "unordered-iteration-flow"
    rationale = ("Dict/set iteration order is an artifact of construction "
                 "history; feeding it into scheduling, JSON export, "
                 "materialized lists, or float aggregation makes output "
                 "depend on that history.  Iterate sorted(keys) instead.")

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        func = node.func
        fname = None
        if isinstance(func, ast.Name):
            fname = func.id
        elif isinstance(func, ast.Attribute):
            fname = func.attr
        if fname == "sum" and node.args:
            arg = node.args[0]
            label = _unordered_label(arg) or _comp_unordered(arg)
            if label is not None and not _contains_sorted(arg):
                self.report(ctx, node,
                            f"sum() over {label}: aggregate arithmetic in "
                            f"construction order; sum over sorted keys")
        elif fname in ("list", "tuple") and node.args:
            label = _unordered_label(node.args[0])
            if label == ".values()" and not _contains_sorted(node.args[0]):
                self.report(ctx, node,
                            f"{fname}() materializes dict values in "
                            f"construction order; index by sorted keys")
        elif fname in _JSON_SINKS and node.args:
            arg = node.args[0]
            label = _comp_unordered(arg)
            if label is not None and not _contains_sorted(arg):
                self.report(ctx, node,
                            f"{fname}() of a comprehension over {label}; "
                            f"canonicalize by sorting keys first")

    def visit_ListComp(self, node: ast.ListComp, ctx: FileContext) -> None:
        for gen in node.generators:
            label = _unordered_label(gen.iter)
            if label == ".values()" and not _contains_sorted(node):
                self.report(ctx, node,
                            "list comprehension over .values() materializes "
                            "dict construction order; iterate sorted keys")

    def visit_For(self, node: ast.For, ctx: FileContext) -> None:
        label = _unordered_label(node.iter)
        if label is None or _contains_sorted(node.iter):
            return
        for sub in self._body_walk(node):
            if isinstance(sub, ast.AugAssign):
                self.report(ctx, node,
                            f"loop over {label} accumulates (augmented "
                            f"assignment) in construction order; iterate "
                            f"sorted keys")
                return
            if isinstance(sub, ast.Call) and \
                    isinstance(sub.func, ast.Attribute) and \
                    sub.func.attr in _SCHEDULE_FNS:
                self.report(ctx, node,
                            f"loop over {label} schedules simulation events "
                            f"in construction order; iterate sorted keys so "
                            f"the FIFO tiebreak is reproducible")
                return

    @staticmethod
    def _body_walk(node: ast.For):
        for stmt in node.body:
            yield from ast.walk(stmt)


@register_rule
class EnvironReadRule(Rule):
    code = "SIM105"
    name = "environ-outside-cli"
    rationale = ("Process-environment access inside the simulation tree "
                 "makes results depend on the shell; all environment knobs "
                 "go through repro.envvars (or the CLI itself).")

    def _flag(self, node: ast.AST, ctx: FileContext, what: str) -> None:
        self.report(ctx, node,
                    f"{what} outside the CLI/envvars modules; route "
                    f"environment access through repro.envvars")

    def visit_Attribute(self, node: ast.Attribute, ctx: FileContext) -> None:
        if ctx.is_module(*ENV_MODULES):
            return
        if node.attr == "environ" and isinstance(node.value, ast.Name) \
                and node.value.id == "os":
            self._flag(node, ctx, "os.environ access")

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if ctx.is_module(*ENV_MODULES):
            return
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr == "getenv" \
                and isinstance(node.func.value, ast.Name) \
                and node.func.value.id == "os":
            self._flag(node, ctx, "os.getenv() read")
