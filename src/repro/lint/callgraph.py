"""Module graph and conservative call graph over module summaries.

Keys
----
* function key: ``"<path>::<qualname>"`` — e.g.
  ``repro/iomodels/elvis.py::ElvisModel._guest_tx`` or
  ``repro/iomodels/elvis.py::<module>`` for module-level code.
* class key: ``"<path>::<ClassName>"``.

Resolution is deliberately conservative (an over-approximation of the
real call graph): bare names resolve through the local scope chain
(nested defs → module functions → classes → imports), ``self.m`` to the
enclosing class's method, and any other attribute call by CHA — every
method of that name anywhere in the project.  Functions passed by name
(``functools.partial``, callbacks, builder kwargs) contribute
*reference* edges: a referenced function is considered callable from the
referencing one.  Over-approximation makes "unreachable" findings
(SIM602's orphan charge sites, SIM604's orphan telemetry hooks) safe:
anything we flag is unreachable under even the most generous resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .symbols import CallFact, ClassSummary, FunctionSummary, ModuleSummary

__all__ = ["ProjectIndex", "CallGraph", "build_index", "build_callgraph"]


@dataclass
class ProjectIndex:
    """Cross-module lookup tables derived from the summaries."""

    summaries: Dict[str, ModuleSummary]              # path -> summary
    by_module: Dict[str, str] = field(default_factory=dict)   # dotted -> path
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    methods_by_name: Dict[str, List[str]] = field(default_factory=dict)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)

    def module_of(self, fnkey: str) -> str:
        return fnkey.split("::", 1)[0]


def build_index(summaries: Dict[str, ModuleSummary]) -> ProjectIndex:
    index = ProjectIndex(summaries=dict(summaries))
    for path, summary in summaries.items():
        index.by_module[summary.module] = path
        for qualname, fn in summary.functions.items():
            fnkey = f"{path}::{qualname}"
            index.functions[fnkey] = fn
            if "." in qualname:
                method = qualname.rsplit(".", 1)[-1]
                index.methods_by_name.setdefault(method, []).append(fnkey)
        for name, cls in summary.classes.items():
            index.classes[f"{path}::{name}"] = cls
    return index


def _split_symbol(index: ProjectIndex, dotted: str
                  ) -> Optional[Tuple[str, List[str]]]:
    """``repro.x.y.Class.meth`` → (path of repro/x/y.py, [Class, meth])."""
    parts = dotted.split(".")
    for cut in range(len(parts), 0, -1):
        module = ".".join(parts[:cut])
        path = index.by_module.get(module)
        if path is not None:
            return path, parts[cut:]
    return None


@dataclass
class _Resolution:
    targets: List[str] = field(default_factory=list)        # function keys
    instantiates: List[str] = field(default_factory=list)   # class keys


def _resolve_in_module(index: ProjectIndex, path: str, symbol: List[str]
                       ) -> _Resolution:
    """Resolve ``[name]`` or ``[Class, method]`` inside one module."""
    out = _Resolution()
    summary = index.summaries.get(path)
    if summary is None or not symbol:
        return out
    head = symbol[0]
    if len(symbol) == 1:
        if head in summary.functions:
            out.targets.append(f"{path}::{head}")
        elif head in summary.classes:
            out.instantiates.append(f"{path}::{head}")
            if f"{head}.__init__" in summary.functions:
                out.targets.append(f"{path}::{head}.__init__")
        elif head in summary.imports:
            split = _split_symbol(index, summary.imports[head])
            if split is not None:
                return _resolve_in_module(index, split[0], split[1]) \
                    if split[1] else out
    elif len(symbol) == 2 and head in summary.classes:
        qualname = f"{head}.{symbol[1]}"
        if qualname in summary.functions:
            out.targets.append(f"{path}::{qualname}")
    return out


def resolve_callee(index: ProjectIndex, caller: str, chain: str
                   ) -> _Resolution:
    """All functions/classes a call chain may reach, from ``caller``."""
    path, qualname = caller.split("::", 1)
    summary = index.summaries[path]
    out = _Resolution()
    parts = chain.split(".")
    head = parts[0]

    if len(parts) == 1:
        # Nested def in the enclosing function chain.
        scope = qualname
        while scope:
            nested = f"{scope}.{head}"
            if nested in summary.functions:
                out.targets.append(f"{path}::{nested}")
                return out
            scope = scope.rsplit(".", 1)[0] if "." in scope else ""
        return _resolve_in_module(index, path, [head]) \
            if (head in summary.functions or head in summary.classes
                or head in summary.imports) else out

    if head == "self" and "." in qualname:
        cls_name = qualname.split(".", 1)[0]
        if len(parts) == 2:
            own = f"{cls_name}.{parts[1]}"
            if own in summary.functions:
                out.targets.append(f"{path}::{own}")
                return out
            # Method on a base class or duck-typed — fall through to CHA.
        # "self.attr.m(...)" or unresolved own method: CHA below.
    elif head in summary.imports or head in summary.classes:
        local = _resolve_in_module(
            index, path, parts) if head in summary.classes \
            else _Resolution()
        if local.targets or local.instantiates:
            return local
        split = _split_symbol(index, ".".join(
            [summary.imports.get(head, head)] + parts[1:]))
        if split is not None and split[1]:
            resolved = _resolve_in_module(index, split[0], split[1])
            if resolved.targets or resolved.instantiates:
                return resolved

    # Class-hierarchy-analysis fallback: every method of that name.
    method = parts[-1].replace("()", "")
    out.targets.extend(index.methods_by_name.get(method, ()))
    return out


@dataclass
class CallGraph:
    """Edges + instantiation facts, with reachability helpers."""

    index: ProjectIndex
    edges: Dict[str, Set[str]] = field(default_factory=dict)
    instantiations: Dict[str, Set[str]] = field(default_factory=dict)

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.index.functions]
        while stack:
            fnkey = stack.pop()
            if fnkey in seen:
                continue
            seen.add(fnkey)
            stack.extend(self.edges.get(fnkey, ()))
        return seen

    def instantiated_from(self, functions: Iterable[str]) -> Set[str]:
        out: Set[str] = set()
        for fnkey in functions:
            out |= self.instantiations.get(fnkey, set())
        return out


def _reference_targets(index: ProjectIndex, caller: str, name: str
                       ) -> _Resolution:
    """A function/class passed or stored by name (address-taken)."""
    if not name:
        return _Resolution()
    return resolve_callee(index, caller, name)


def build_callgraph(index: ProjectIndex) -> CallGraph:
    graph = CallGraph(index=index)
    for fnkey, fn in index.functions.items():
        edges = graph.edges.setdefault(fnkey, set())
        inst = graph.instantiations.setdefault(fnkey, set())
        for call in fn.calls:
            resolution = resolve_callee(index, fnkey, call.callee)
            edges.update(resolution.targets)
            inst.update(resolution.instantiates)
            for ref in call.func_args:
                ref_res = _reference_targets(index, fnkey, ref)
                edges.update(ref_res.targets)
                inst.update(ref_res.instantiates)
        for ref in fn.stored_refs:
            ref_res = _reference_targets(index, fnkey, ref)
            edges.update(ref_res.targets)
            inst.update(ref_res.instantiates)
        # A class's __init__ pulls in no other methods by itself; but an
        # instantiation makes every method of the class callable by the
        # holder — model that as edges from the instantiating function.
        for clskey in list(inst):
            cls = index.classes.get(clskey)
            if cls is None:
                continue
            cls_path = clskey.split("::", 1)[0]
            for method in cls.methods:
                target = f"{cls_path}::{cls.name}.{method}"
                if target in index.functions:
                    edges.add(target)
    return graph


def module_edges(index: ProjectIndex) -> Dict[str, Set[str]]:
    """The import-resolution module graph (dotted name → dotted names)."""
    out: Dict[str, Set[str]] = {}
    for summary in index.summaries.values():
        deps = out.setdefault(summary.module, set())
        for target in summary.imports.values():
            split = _split_symbol(index, target)
            if split is not None:
                deps.add(index.summaries[split[0]].module)
    return out
