"""SIM2xx — cycle-ledger rules.

The paper's evaluation *is* event and cycle accounting (Table 3 counts
exits/interrupts per request; Figure 10 divides per-tag cycles by packet
counts).  The ledger stays trustworthy only while (a) every CostModel
field actually feeds the simulation and (b) every cycle charged to a core
traces back to a calibrated CostModel constant rather than a stray
literal.

* SIM201 — dead CostModel field: declared in the dataclass but never read
  anywhere in the tree (a silent calibration knob is a lie in the docs).
* SIM202 — magic charge: a numeric literal passed straight to
  ``Core.execute()``/``Core.stall()`` bypasses the calibrated catalog.
"""

from __future__ import annotations

import ast
from typing import Dict, Set, Tuple

from .framework import FileContext, Rule, register_rule

__all__ = []


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = target.attr if isinstance(target, ast.Attribute) else \
            getattr(target, "id", None)
        if name == "dataclass":
            return True
    return False


@register_rule
class DeadCostFieldRule(Rule):
    code = "SIM201"
    name = "dead-cost-field"
    rationale = ("Every CostModel field is a calibration input; a field "
                 "nothing reads silently drifts from the code it claims to "
                 "describe and bloats the sweep-cache fingerprint.")
    tree_scoped = True  # fields declared in costs.py, read anywhere

    def __init__(self) -> None:
        super().__init__()
        # field name -> (path, line, col) of its declaration
        self._fields: Dict[str, Tuple[str, int, int]] = {}
        self._uses: Set[str] = set()

    def visit_ClassDef(self, node: ast.ClassDef, ctx: FileContext) -> None:
        if node.name != "CostModel" or not _is_dataclass_decorated(node):
            return
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                self._fields[stmt.target.id] = (
                    ctx.path, stmt.lineno, stmt.col_offset)

    def visit_Attribute(self, node: ast.Attribute, ctx: FileContext) -> None:
        self._uses.add(node.attr)

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        # copy(field=...) / dict(field=...) overrides count as uses.
        for keyword in node.keywords:
            if keyword.arg:
                self._uses.add(keyword.arg)

    def finalize(self) -> None:
        for name in sorted(self._fields):
            if name not in self._uses:
                path, line, col = self._fields[name]
                self.report_at(path, line, col,
                               f"CostModel field {name!r} is never read by "
                               f"any hw/iomodels consumer; wire it into a "
                               f"charge path or delete it")


_CHARGE_METHODS = {"execute", "stall"}


@register_rule
class MagicChargeRule(Rule):
    code = "SIM202"
    name = "magic-cycle-literal"
    rationale = ("Cycles charged to cores must come from CostModel "
                 "attributes so calibration stays in one catalog and the "
                 "sweep cache can fingerprint it.")

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if not isinstance(node.func, ast.Attribute) \
                or node.func.attr not in _CHARGE_METHODS:
            return
        candidates = list(node.args[:1]) + [
            kw.value for kw in node.keywords
            if kw.arg in ("cycles", "duration_ns")]
        for arg in candidates:
            if isinstance(arg, ast.Constant) and \
                    isinstance(arg.value, (int, float)) and \
                    not isinstance(arg.value, bool) and arg.value != 0:
                self.report(ctx, arg,
                            f"numeric literal {arg.value!r} charged via "
                            f".{node.func.attr}(); use a CostModel "
                            f"attribute so the constant is calibrated and "
                            f"fingerprinted")
