"""Interprocedural taint fixpoint for SIM601 (RNG provenance).

Works entirely on :class:`~repro.lint.symbols.ModuleSummary` facts — no
AST.  Three monotone per-function summaries are iterated to a fixpoint:

* ``returns_tainted(f)`` — f may return a value derived from a raw
  ``random.Random(...)``/``random.*`` source (not via
  ``RngRegistry.stream``).
* ``param_to_return(f)`` — parameter indices that may flow to f's
  return value (so taint launders through identity-ish helpers).
* ``param_to_sink(f)`` — parameter indices that may reach an event
  scheduling sink (``call_soon``/``schedule_at``/``timeout``/
  ``add_callback``/…) or a JSON serialization sink, directly or through
  further calls.

plus one global set ``tainted_attrs`` — attribute names ever written
with a tainted value (field-sensitive, object-insensitive).

The verdict pass then reports a finding at every call site where a
tainted value enters a sink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .callgraph import ProjectIndex, resolve_callee
from .symbols import EVENT_SINK_METHODS, JSON_SINKS, CallFact

__all__ = ["TaintState", "TaintFinding", "run_taint_analysis"]


@dataclass(frozen=True)
class TaintFinding:
    path: str
    line: int
    col: int
    sink: str        # the sink call chain as written
    detail: str      # what flowed there


@dataclass
class TaintState:
    returns_tainted: Set[str] = field(default_factory=set)     # fn keys
    param_to_return: Dict[str, Set[int]] = field(default_factory=dict)
    param_to_sink: Dict[str, Set[int]] = field(default_factory=dict)
    tainted_attrs: Set[str] = field(default_factory=set)
    findings: List[TaintFinding] = field(default_factory=list)


def _is_sink_chain(chain: str) -> Optional[str]:
    last = chain.replace("()", "").rsplit(".", 1)[-1]
    if last in EVENT_SINK_METHODS:
        return last
    if chain in JSON_SINKS:
        return last
    return None


class _Analysis:
    def __init__(self, index: ProjectIndex):
        self.index = index
        self.state = TaintState()
        self._resolution_cache: Dict[Tuple[str, str], Tuple[str, ...]] = {}

    def _targets(self, caller: str, chain: str) -> Tuple[str, ...]:
        key = (caller, chain)
        cached = self._resolution_cache.get(key)
        if cached is None:
            cached = tuple(resolve_callee(self.index, caller, chain).targets)
            self._resolution_cache[key] = cached
        return cached

    def _param_index(self, target: str, chain: str, position: int) -> int:
        """Map a call-site positional index to the callee's parameter.

        A method invoked through an attribute chain receives the
        receiver as parameter 0, so explicit arguments shift by one.
        """
        qualname = target.split("::", 1)[1]
        if "." in qualname and "." in chain:
            fn = self.index.functions.get(target)
            if fn is not None and fn.params and fn.params[0] in (
                    "self", "cls"):
                return position + 1
        return position

    # -- origin evaluation ---------------------------------------------------

    def origin_tainted(self, fnkey: str, origins: FrozenSet[str],
                       depth: int = 0) -> bool:
        fn = self.index.functions[fnkey]
        for origin in origins:
            if origin.startswith("SRC@"):
                return True
            if origin.startswith("ATTR:"):
                if origin[5:] in self.state.tainted_attrs:
                    return True
            elif origin.startswith("RET:") and depth < 8:
                call = fn.calls[int(origin[4:])]
                if self.call_result_tainted(fnkey, call, depth + 1):
                    return True
        return False

    def origin_params(self, origins: FrozenSet[str]) -> Set[int]:
        return {int(o[6:]) for o in origins if o.startswith("PARAM:")}

    def call_result_tainted(self, fnkey: str, call: CallFact,
                            depth: int = 0) -> bool:
        for target in self._targets(fnkey, call.callee):
            if target in self.state.returns_tainted:
                return True
            flow_params = self.state.param_to_return.get(target)
            if flow_params:
                for position, origins in enumerate(call.arg_origins):
                    if self._param_index(target, call.callee,
                                         position) in flow_params \
                            and self.origin_tainted(fnkey, origins, depth):
                        return True
        return False

    # -- fixpoint ------------------------------------------------------------

    def run(self) -> TaintState:
        changed = True
        while changed:
            changed = False
            for fnkey in sorted(self.index.functions):
                fn = self.index.functions[fnkey]
                # returns
                if fnkey not in self.state.returns_tainted:
                    if any(self.origin_tainted(fnkey, r) for r in fn.returns):
                        self.state.returns_tainted.add(fnkey)
                        changed = True
                ret_params = self.state.param_to_return.setdefault(
                    fnkey, set())
                for origins in fn.returns:
                    new = self.origin_params(origins) - ret_params
                    if new:
                        ret_params |= new
                        changed = True
                # attribute writes
                for attr, origins in fn.attr_writes:
                    if attr not in self.state.tainted_attrs \
                            and self.origin_tainted(fnkey, origins):
                        self.state.tainted_attrs.add(attr)
                        changed = True
                # parameters reaching sinks (directly or transitively)
                sink_params = self.state.param_to_sink.setdefault(
                    fnkey, set())
                for call in fn.calls:
                    if _is_sink_chain(call.callee):
                        for origins in list(call.arg_origins) + [
                                o for _, o in call.kw_origins]:
                            new = self.origin_params(origins) - sink_params
                            if new:
                                sink_params |= new
                                changed = True
                        continue
                    for target in self._targets(fnkey, call.callee):
                        callee_sinks = self.state.param_to_sink.get(target)
                        if not callee_sinks:
                            continue
                        for position, origins in enumerate(call.arg_origins):
                            if self._param_index(
                                    target, call.callee,
                                    position) not in callee_sinks:
                                continue
                            new = self.origin_params(origins) - sink_params
                            if new:
                                sink_params |= new
                                changed = True
        return self.state

    # -- verdicts ------------------------------------------------------------

    def emit_findings(self) -> None:
        for fnkey in sorted(self.index.functions):
            fn = self.index.functions[fnkey]
            path = fnkey.split("::", 1)[0]
            for call in fn.calls:
                sink = _is_sink_chain(call.callee)
                if sink is not None:
                    for origins in list(call.arg_origins) + [
                            o for _, o in call.kw_origins]:
                        if self.origin_tainted(fnkey, origins):
                            self.state.findings.append(TaintFinding(
                                path=path, line=call.lineno, col=call.col,
                                sink=call.callee,
                                detail=(f"value derived from a raw RNG "
                                        f"reaches {call.callee}(...) without "
                                        f"flowing through "
                                        f"RngRegistry.stream()")))
                            break
                    continue
                for target in self._targets(fnkey, call.callee):
                    callee_sinks = self.state.param_to_sink.get(target)
                    if not callee_sinks:
                        continue
                    hit = False
                    for position, origins in enumerate(call.arg_origins):
                        if self._param_index(target, call.callee,
                                             position) in callee_sinks \
                                and self.origin_tainted(fnkey, origins):
                            callee_name = target.split("::", 1)[1]
                            self.state.findings.append(TaintFinding(
                                path=path, line=call.lineno, col=call.col,
                                sink=call.callee,
                                detail=(f"value derived from a raw RNG is "
                                        f"passed to {callee_name}(), which "
                                        f"forwards it to an event/JSON sink "
                                        f"(no RngRegistry.stream() on the "
                                        f"path)")))
                            hit = True
                            break
                    if hit:
                        break


def run_taint_analysis(index: ProjectIndex) -> TaintState:
    analysis = _Analysis(index)
    analysis.run()
    analysis.emit_findings()
    return analysis.state
