"""Command-line entry point for simlint.

Exposed as ``python -m repro lint`` (see :mod:`repro.cli`) and also
reachable through ``python -m repro verify --lint``.

Modes
-----
* ``repro lint``              — per-file rules (SIM1xx–SIM5xx).
* ``repro lint --project``    — per-file rules plus the whole-program
  SIM6xx family (module graph → call graph → dataflow), with the
  incremental summary cache (``--no-cache`` to disable) and optional
  ``--jobs N`` parallel parsing.
* ``repro lint --changed``    — per-file rules over only the files that
  differ from ``git merge-base HEAD main`` (the pre-commit loop);
  falls back to the full tree outside a git checkout.  Tree-scoped
  rules (``Rule.tree_scoped``, e.g. SIM201) are skipped on the subset
  since their verdicts need the whole tree; ``--only`` re-enables them.

Exit codes: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import subprocess
from pathlib import Path
from typing import List, Optional

from .baseline import default_baseline_path, load_baseline, save_baseline
from .framework import LintResult, default_lint_root, lint_paths
from .report import render_json, render_rule_list, render_text

__all__ = ["add_lint_arguments", "run_lint", "lint_tree", "changed_paths"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint "
                             "(default: the whole repro package)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the machine-readable JSON report")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline file of accepted findings "
                             "(default: LINT_BASELINE.json at the repo root)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file entirely")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write current findings to the baseline "
                             "and exit 0")
    parser.add_argument("--only", action="append", default=None,
                        metavar="CODE",
                        help="run only these rule codes (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    parser.add_argument("--project", action="store_true",
                        help="also run the whole-program SIM6xx rules "
                             "(module graph, call graph, dataflow)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parse files in N parallel workers "
                             "(project analysis; default 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the incremental summary cache")
    parser.add_argument("--changed", action="store_true",
                        help="lint only files differing from "
                             "git merge-base HEAD main "
                             "(full tree outside a git checkout)")


def changed_paths(root: Optional[Path] = None) -> Optional[List[Path]]:
    """Python files changed vs ``git merge-base HEAD main``.

    Returns ``None`` when git is unavailable or we are outside a
    checkout — callers then fall back to the full tree.  An empty list
    is a real answer: nothing changed.
    """
    root = root or default_lint_root()
    try:
        base = subprocess.run(
            ["git", "merge-base", "HEAD", "main"], cwd=root,
            capture_output=True, text=True, timeout=30)
        if base.returncode != 0:
            return None
        merge_base = base.stdout.strip()
        diff = subprocess.run(
            ["git", "diff", "--name-only", merge_base], cwd=root,
            capture_output=True, text=True, timeout=30)
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"], cwd=root,
            capture_output=True, text=True, timeout=30)
        if diff.returncode != 0:
            return None
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"], cwd=root,
            capture_output=True, text=True, timeout=30)
        if top.returncode != 0:
            return None
        repo_root = Path(top.stdout.strip())
    except (OSError, subprocess.SubprocessError):
        return None
    names = diff.stdout.splitlines()
    if untracked.returncode == 0:
        names += untracked.stdout.splitlines()
    out: List[Path] = []
    for name in names:
        if not name.endswith(".py"):
            continue
        candidate = repo_root / name
        if candidate.is_file():
            try:
                candidate.resolve().relative_to(
                    (root / "repro").resolve())
            except ValueError:
                continue
            out.append(candidate)
    return sorted(set(out))


def _merge_results(per_file: LintResult, project: LintResult) -> LintResult:
    return LintResult(
        findings=sorted(per_file.findings + project.findings),
        suppressed=per_file.suppressed + project.suppressed,
        baselined=per_file.baselined + project.baselined,
        files_checked=max(per_file.files_checked, project.files_checked),
        parse_errors=sorted(set(per_file.parse_errors)
                            | set(project.parse_errors)))


def lint_tree(paths: Optional[List[Path]] = None,
              only: Optional[List[str]] = None,
              baseline_path: Optional[Path] = None,
              use_baseline: bool = True,
              project: bool = False,
              jobs: int = 1,
              use_cache: bool = True,
              cache_dir: Optional[Path] = None,
              skip_tree_scoped: bool = False) -> LintResult:
    """Lint the tree the way the CLI does; importable for tests/verify."""
    from .project import (build_project, registered_project_rules,
                          run_project_rules)

    baseline = None
    if use_baseline:
        baseline = load_baseline(baseline_path or default_baseline_path())
    project_codes = set(registered_project_rules())
    only_file: Optional[List[str]] = None
    only_project: Optional[List[str]] = None
    if only is not None:
        only_file = [c for c in only if c not in project_codes]
        only_project = [c for c in only if c in project_codes]
        # Asking for a SIM6xx code implies the project analysis.
        project = project or bool(only_project)
    empty = LintResult(findings=[], suppressed=0, baselined=0,
                       files_checked=0, parse_errors=[])
    run_per_file = only_file is None or bool(only_file)
    per_file = lint_paths(paths=paths or None, only=only_file,
                          baseline=baseline,
                          skip_tree_scoped=skip_tree_scoped) \
        if run_per_file else empty
    if not project:
        return per_file
    run_project = only_project is None or bool(only_project)
    if not run_project:
        return per_file
    analysis = build_project(jobs=jobs, use_cache=use_cache,
                             cache_dir=cache_dir)
    project_result = run_project_rules(analysis, only=only_project,
                                       baseline=baseline)
    return _merge_results(per_file, project_result)


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        print(render_rule_list())
        return 0
    baseline_path = args.baseline or default_baseline_path()
    paths: Optional[List[Path]] = list(args.paths) or None
    # Tree-scoped rules (SIM201) see declarations in one file and uses in
    # the others; over a --changed subset their verdicts would be false
    # positives, so the subset restriction also disables them.
    skip_tree_scoped = False
    if getattr(args, "changed", False) and not args.paths:
        changed = changed_paths()
        if changed is not None:
            if not changed and not args.project:
                print("lint: no files changed vs merge-base; nothing to do")
                return 0
            paths = changed
            skip_tree_scoped = True
    try:
        result = lint_tree(paths=paths,
                           only=args.only,
                           baseline_path=baseline_path,
                           use_baseline=not args.no_baseline,
                           project=getattr(args, "project", False),
                           jobs=max(1, getattr(args, "jobs", 1)),
                           use_cache=not getattr(args, "no_cache", False),
                           skip_tree_scoped=skip_tree_scoped)
    except KeyError as exc:
        print(f"lint: {exc.args[0]}")
        return 2
    except ValueError as exc:
        print(f"lint: {exc}")
        return 2
    if args.update_baseline:
        save_baseline(baseline_path, result.all_findings())
        print(f"lint: wrote {len(result.all_findings())} finding(s) "
              f"to {baseline_path}")
        return 0
    root = str(default_lint_root())
    if args.as_json:
        print(render_json(result, root=root))
    else:
        print(render_text(result, root=root))
    return 0 if result.clean else 1
