"""Command-line entry point for simlint.

Exposed as ``python -m repro lint`` (see :mod:`repro.cli`) and also
reachable through ``python -m repro verify --lint``.

Exit codes: 0 clean, 1 findings, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import List, Optional

from .baseline import default_baseline_path, load_baseline, save_baseline
from .framework import LintResult, default_lint_root, lint_paths
from .report import render_json, render_rule_list, render_text

__all__ = ["add_lint_arguments", "run_lint", "lint_tree"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint "
                             "(default: the whole repro package)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the machine-readable JSON report")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline file of accepted findings "
                             "(default: LINT_BASELINE.json at the repo root)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file entirely")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write current findings to the baseline "
                             "and exit 0")
    parser.add_argument("--only", action="append", default=None,
                        metavar="CODE",
                        help="run only these rule codes (repeatable)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")


def lint_tree(paths: Optional[List[Path]] = None,
              only: Optional[List[str]] = None,
              baseline_path: Optional[Path] = None,
              use_baseline: bool = True) -> LintResult:
    """Lint the tree the way the CLI does; importable for tests/verify."""
    baseline = None
    if use_baseline:
        baseline = load_baseline(baseline_path or default_baseline_path())
    return lint_paths(paths=paths or None, only=only, baseline=baseline)


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        print(render_rule_list())
        return 0
    baseline_path = args.baseline or default_baseline_path()
    try:
        result = lint_tree(paths=list(args.paths) or None,
                           only=args.only,
                           baseline_path=baseline_path,
                           use_baseline=not args.no_baseline)
    except KeyError as exc:
        print(f"lint: {exc.args[0]}")
        return 2
    except ValueError as exc:
        print(f"lint: {exc}")
        return 2
    if args.update_baseline:
        save_baseline(baseline_path, result.all_findings())
        print(f"lint: wrote {len(result.all_findings())} finding(s) "
              f"to {baseline_path}")
        return 0
    root = str(default_lint_root())
    if args.as_json:
        print(render_json(result, root=root))
    else:
        print(render_text(result, root=root))
    return 0 if result.clean else 1
