"""SIM4xx — telemetry-hygiene rules.

The telemetry layer (PR 2) promises that instrumented runs stay
bit-identical and that every metric lands in one canonical snapshot.
That holds only while names are well-formed, unique, and spans are
closed:

* SIM401 — metric/tracer name literals must be lowercase dotted
  identifiers (MetricsRegistry rejects malformed names at runtime; the
  lint catches them before any simulation runs, and also covers tracer
  point/span names the registry never sees).
* SIM402 — registering the same literal name twice on the same
  namespace raises at runtime; statically visible duplicates are flagged
  at lint time.
* SIM403 — a ``tracer.begin(...)`` with no ``.end(...)`` anywhere in the
  same function leaks an open span: Chrome-trace exports render it as a
  dangling "B" event and duration queries silently drop it.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Tuple

from .framework import FileContext, Rule, register_rule

__all__ = []

_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")

_REGISTER_METHODS = {
    "register_counter", "register_gauge", "register_histogram",
    "register_utilization", "register_time_weighted", "namespace",
}
_TRACER_NAME_METHODS = {"point", "begin"}


def _receiver_source(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"


def _is_tracer_receiver(node: ast.AST) -> bool:
    """True for ``tracer``, ``self.tracer``, ``foo.tracer`` receivers."""
    if isinstance(node, ast.Name):
        return node.id.endswith("tracer")
    if isinstance(node, ast.Attribute):
        return node.attr.endswith("tracer")
    return False


@register_rule
class MetricNameRule(Rule):
    code = "SIM401"
    name = "malformed-metric-name"
    rationale = ("Metric and tracer names key the canonical snapshot and "
                 "trace exports; MetricsRegistry rejects malformed names "
                 "at runtime — catch them before a simulation pays for it.")

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        method = node.func.attr
        name_arg = None
        if method in _REGISTER_METHODS and node.args:
            name_arg = node.args[0]
        elif method in _TRACER_NAME_METHODS and len(node.args) >= 2 \
                and _is_tracer_receiver(node.func.value):
            name_arg = node.args[1]
        if name_arg is None or not isinstance(name_arg, ast.Constant) \
                or not isinstance(name_arg.value, str):
            return  # dynamic names are checked at runtime by _check_name
        if not _NAME_RE.match(name_arg.value):
            self.report(ctx, name_arg,
                        f"metric/tracer name {name_arg.value!r} is not a "
                        f"lowercase dotted identifier "
                        f"([a-z0-9_]+(.[a-z0-9_]+)*)")


@register_rule
class NamespaceCollisionRule(Rule):
    code = "SIM402"
    name = "metric-name-collision"
    rationale = ("Registering a name twice raises ValueError mid-run; "
                 "duplicates visible in one function body are caught at "
                 "lint time instead.")

    def visit_FunctionDef(self, node: ast.FunctionDef,
                          ctx: FileContext) -> None:
        seen: Dict[Tuple[str, str], ast.AST] = {}
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call) \
                    or not isinstance(sub.func, ast.Attribute) \
                    or sub.func.attr not in _REGISTER_METHODS \
                    or sub.func.attr == "namespace" \
                    or not sub.args:
                continue
            name_arg = sub.args[0]
            if not isinstance(name_arg, ast.Constant) \
                    or not isinstance(name_arg.value, str):
                continue
            key = (_receiver_source(sub.func.value), name_arg.value)
            if key in seen:
                self.report(ctx, sub,
                            f"metric {name_arg.value!r} registered twice on "
                            f"{key[0]} in {node.name!r}; the second "
                            f"registration raises at runtime")
            else:
                seen[key] = sub


@register_rule
class OpenSpanRule(Rule):
    code = "SIM403"
    name = "span-never-closed"
    rationale = ("An un-ended span exports as a dangling begin event and "
                 "is invisible to span_durations(); every begin needs an "
                 "end on every path through the function.")

    def visit_FunctionDef(self, node: ast.FunctionDef,
                          ctx: FileContext) -> None:
        # Nodes under nested defs are visited when that def is; exclude
        # them so a span opened there is not attributed to this scope too.
        nested = set()
        for sub in ast.walk(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and sub is not node:
                nested.update(id(n) for n in ast.walk(sub) if n is not sub)
        begins: List[Tuple[ast.Call, str]] = []
        enders = set()
        for sub in ast.walk(node):
            if id(sub) in nested:
                continue
            if not isinstance(sub, ast.Call) \
                    or not isinstance(sub.func, ast.Attribute):
                continue
            if not _is_tracer_receiver(sub.func.value):
                continue
            receiver = _receiver_source(sub.func.value)
            if sub.func.attr == "begin":
                begins.append((sub, receiver))
            elif sub.func.attr == "end":
                enders.add(receiver)
        for call, receiver in begins:
            if receiver not in enders:
                self.report(ctx, call,
                            f"span opened on {receiver} in {node.name!r} "
                            f"but no .end() call in the same function; the "
                            f"span leaks open")
