"""SIM4xx — telemetry-hygiene rules.

The telemetry layer (PR 2) promises that instrumented runs stay
bit-identical and that every metric lands in one canonical snapshot.
That holds only while names are well-formed, unique, and spans are
closed:

* SIM401 — metric/tracer name literals must be lowercase dotted
  identifiers (MetricsRegistry rejects malformed names at runtime; the
  lint catches them before any simulation runs, and also covers tracer
  point/span names the registry never sees).
* SIM402 — registering the same literal name twice on the same
  namespace raises at runtime; statically visible duplicates are flagged
  at lint time.
* SIM403 — a ``tracer.begin(...)`` with no ``.end(...)`` anywhere in the
  same function leaks an open span: Chrome-trace exports render it as a
  dangling "B" event and duration queries silently drop it.
* SIM404 — a ``Timeline`` constructed but never flushed drops its final
  partial window; an ``SloProbe`` constructed but never ``.attach()``-ed
  never evaluates a single window.  Handing the object off (returning
  it, storing it on an attribute, or binding via ``bind_timeline()`` —
  whose receiver flushes in ``finish()``) transfers that duty.
* SIM405 — window widths are configuration, not code: a numeric literal
  passed as ``width_ns=`` / ``window_ns=`` (or positionally to
  ``Timeline``) must instead come from ``DEFAULT_WINDOW_NS``, an
  ``SloSpec`` (the sanctioned carrier, exempt), or a named constant.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Tuple

from .framework import FileContext, Rule, register_rule

__all__ = []

_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)*$")

_REGISTER_METHODS = {
    "register_counter", "register_gauge", "register_histogram",
    "register_utilization", "register_time_weighted", "namespace",
}
_TRACER_NAME_METHODS = {"point", "begin"}


def _receiver_source(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"


def _is_tracer_receiver(node: ast.AST) -> bool:
    """True for ``tracer``, ``self.tracer``, ``foo.tracer`` receivers."""
    if isinstance(node, ast.Name):
        return node.id.endswith("tracer")
    if isinstance(node, ast.Attribute):
        return node.attr.endswith("tracer")
    return False


@register_rule
class MetricNameRule(Rule):
    code = "SIM401"
    name = "malformed-metric-name"
    rationale = ("Metric and tracer names key the canonical snapshot and "
                 "trace exports; MetricsRegistry rejects malformed names "
                 "at runtime — catch them before a simulation pays for it.")

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        if not isinstance(node.func, ast.Attribute):
            return
        method = node.func.attr
        name_arg = None
        if method in _REGISTER_METHODS and node.args:
            name_arg = node.args[0]
        elif method in _TRACER_NAME_METHODS and len(node.args) >= 2 \
                and _is_tracer_receiver(node.func.value):
            name_arg = node.args[1]
        if name_arg is None or not isinstance(name_arg, ast.Constant) \
                or not isinstance(name_arg.value, str):
            return  # dynamic names are checked at runtime by _check_name
        if not _NAME_RE.match(name_arg.value):
            self.report(ctx, name_arg,
                        f"metric/tracer name {name_arg.value!r} is not a "
                        f"lowercase dotted identifier "
                        f"([a-z0-9_]+(.[a-z0-9_]+)*)")


@register_rule
class NamespaceCollisionRule(Rule):
    code = "SIM402"
    name = "metric-name-collision"
    rationale = ("Registering a name twice raises ValueError mid-run; "
                 "duplicates visible in one function body are caught at "
                 "lint time instead.")

    def visit_FunctionDef(self, node: ast.FunctionDef,
                          ctx: FileContext) -> None:
        seen: Dict[Tuple[str, str], ast.AST] = {}
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call) \
                    or not isinstance(sub.func, ast.Attribute) \
                    or sub.func.attr not in _REGISTER_METHODS \
                    or sub.func.attr == "namespace" \
                    or not sub.args:
                continue
            name_arg = sub.args[0]
            if not isinstance(name_arg, ast.Constant) \
                    or not isinstance(name_arg.value, str):
                continue
            key = (_receiver_source(sub.func.value), name_arg.value)
            if key in seen:
                self.report(ctx, sub,
                            f"metric {name_arg.value!r} registered twice on "
                            f"{key[0]} in {node.name!r}; the second "
                            f"registration raises at runtime")
            else:
                seen[key] = sub


@register_rule
class OpenSpanRule(Rule):
    code = "SIM403"
    name = "span-never-closed"
    rationale = ("An un-ended span exports as a dangling begin event and "
                 "is invisible to span_durations(); every begin needs an "
                 "end on every path through the function.")

    def visit_FunctionDef(self, node: ast.FunctionDef,
                          ctx: FileContext) -> None:
        # Nodes under nested defs are visited when that def is; exclude
        # them so a span opened there is not attributed to this scope too.
        nested = set()
        for sub in ast.walk(node):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and sub is not node:
                nested.update(id(n) for n in ast.walk(sub) if n is not sub)
        begins: List[Tuple[ast.Call, str]] = []
        enders = set()
        for sub in ast.walk(node):
            if id(sub) in nested:
                continue
            if not isinstance(sub, ast.Call) \
                    or not isinstance(sub.func, ast.Attribute):
                continue
            if not _is_tracer_receiver(sub.func.value):
                continue
            receiver = _receiver_source(sub.func.value)
            if sub.func.attr == "begin":
                begins.append((sub, receiver))
            elif sub.func.attr == "end":
                enders.add(receiver)
        for call, receiver in begins:
            if receiver not in enders:
                self.report(ctx, call,
                            f"span opened on {receiver} in {node.name!r} "
                            f"but no .end() call in the same function; the "
                            f"span leaks open")


def _callee_name(node: ast.Call) -> str:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return ""


def _own_nodes(node: ast.FunctionDef) -> List[ast.AST]:
    """Nodes of ``node``'s body excluding those under nested defs."""
    nested = set()
    for sub in ast.walk(node):
        if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and sub is not node:
            nested.update(id(n) for n in ast.walk(sub) if n is not sub)
    return [sub for sub in ast.walk(node) if id(sub) not in nested]


@register_rule
class UnflushedTimelineRule(Rule):
    code = "SIM404"
    name = "telemetry-never-consumed"
    rationale = ("A timeline that is never flushed silently drops its "
                 "final partial window, and an SLO probe that is never "
                 "attached evaluates nothing; both read as coverage that "
                 "does not exist.")

    def visit_FunctionDef(self, node: ast.FunctionDef,
                          ctx: FileContext) -> None:
        own = _own_nodes(node)
        # Names a timeline/probe creation is assigned to, keyed by kind.
        timelines: Dict[str, ast.Call] = {}
        probes: Dict[str, ast.Call] = {}
        flushed = set()
        attached = set()
        escaped = set()
        for sub in own:
            if isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Call):
                callee = _callee_name(sub.value)
                target = sub.targets[0] if len(sub.targets) == 1 else None
                if not isinstance(target, ast.Name):
                    continue  # attribute/tuple target: ownership escapes
                # Only direct constructions: bind_timeline() stores the
                # timeline on its receiver, whose finish() flushes it.
                if callee == "Timeline" and isinstance(sub.value.func,
                                                      ast.Name):
                    timelines[target.id] = sub.value
                elif callee == "SloProbe":
                    probes[target.id] = sub.value
            elif isinstance(sub, ast.Call) \
                    and isinstance(sub.func, ast.Attribute) \
                    and isinstance(sub.func.value, ast.Name):
                if sub.func.attr in ("flush", "finish"):
                    flushed.add(sub.func.value.id)
                elif sub.func.attr == "attach":
                    attached.add(sub.func.value.id)
            elif isinstance(sub, ast.Return) \
                    and isinstance(sub.value, ast.Name):
                escaped.add(sub.value.id)
        for name, call in timelines.items():
            if name not in flushed and name not in escaped:
                self.report(ctx, call,
                            f"timeline {name!r} bound in {node.name!r} but "
                            f"never flushed (no .flush()/.finish() and not "
                            f"handed off); its final partial window is lost")
        for name, call in probes.items():
            # A chained SloProbe(...).attach(...) never lands in `probes`
            # because the Assign value is the .attach call, not SloProbe.
            if name not in attached and name not in escaped:
                self.report(ctx, call,
                            f"SLO probe {name!r} created in {node.name!r} "
                            f"but never .attach()-ed to a timeline; it will "
                            f"evaluate no windows")


# Keyword names that carry a window width; SloSpec is the sanctioned
# declarative carrier, so literals inside an SloSpec(...) call are fine.
_WIDTH_KWARGS = {"width_ns", "window_ns", "timeline_width_ns"}


@register_rule
class HardCodedWindowRule(Rule):
    code = "SIM405"
    name = "hard-coded-window-width"
    rationale = ("Window widths are configuration: inline numeric widths "
                 "drift apart across call sites and defeat SloSpec-driven "
                 "sizing; route them through DEFAULT_WINDOW_NS, an "
                 "SloSpec, or a named constant.")

    def visit_Call(self, node: ast.Call, ctx: FileContext) -> None:
        callee = _callee_name(node)
        if callee == "SloSpec":
            return
        for kw in node.keywords:
            if kw.arg in _WIDTH_KWARGS \
                    and isinstance(kw.value, ast.Constant) \
                    and isinstance(kw.value.value, (int, float)) \
                    and not isinstance(kw.value.value, bool):
                self.report(ctx, kw.value,
                            f"hard-coded window width {kw.value.value!r} "
                            f"passed as {kw.arg}= to {callee or '<call>'}; "
                            f"use DEFAULT_WINDOW_NS, an SloSpec, or a "
                            f"named constant")
        if callee in ("Timeline", "bind_timeline") and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) \
                    and isinstance(first.value, (int, float)) \
                    and not isinstance(first.value, bool):
                self.report(ctx, first,
                            f"hard-coded window width {first.value!r} "
                            f"passed to {callee}; use DEFAULT_WINDOW_NS, "
                            f"an SloSpec, or a named constant")
