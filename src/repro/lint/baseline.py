"""Baseline file handling for simlint.

The baseline is a committed JSON file listing findings that are known
and tolerated.  A baselined finding is keyed on ``(path, code, message)``
— deliberately *not* on line numbers, so unrelated edits above a finding
do not resurrect it.

The shipped baseline (``LINT_BASELINE.json`` at the repo root) is empty:
every pre-existing finding in this tree was fixed rather than grand-
fathered.  The machinery exists so future rules can land with a
temporary debt list instead of blocking on a tree-wide cleanup.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Set, Tuple

from .findings import Finding

__all__ = [
    "BASELINE_VERSION",
    "default_baseline_path",
    "load_baseline",
    "save_baseline",
    "baseline_keys",
]

BASELINE_VERSION = 1

BaselineKey = Tuple[str, str, str]  # (path, code, message)


def default_baseline_path() -> Path:
    """``LINT_BASELINE.json`` at the repository root (src/../..)."""
    return Path(__file__).resolve().parents[3] / "LINT_BASELINE.json"


def _normalize_path(path: str) -> str:
    """Baseline keys are separator-agnostic: ``repro\\cli.py`` on a
    Windows checkout must match the posix ``repro/cli.py`` the linter
    reports everywhere."""
    return path.replace("\\", "/")


def baseline_keys(findings: Iterable[Finding]) -> Set[BaselineKey]:
    return {(_normalize_path(f.path), f.code, f.message) for f in findings}


def load_baseline(path: Path) -> Set[BaselineKey]:
    """Read a baseline file; a missing file is an empty baseline."""
    if not path.exists():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError(f"{path}: not a simlint baseline file")
    keys: Set[BaselineKey] = set()
    for entry in data["findings"]:
        keys.add((_normalize_path(entry["path"]), entry["code"],
                  entry["message"]))
    return keys


def save_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Write ``findings`` as the new accepted baseline (sorted, stable)."""
    entries: List[dict] = [
        {"path": p, "code": c, "message": m}
        for p, c, m in sorted(baseline_keys(findings))
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
