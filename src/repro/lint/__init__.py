"""simlint: AST-based static analysis for simulator invariants.

One pass per file, a registry of rules in five families:

* SIM1xx (:mod:`.determinism`) — bit-determinism: wall-clock reads,
  unthreaded RNG, identity ordering, unordered iteration into
  order-sensitive sinks, environment reads outside the CLI.
* SIM2xx (:mod:`.ledger`) — cycle-ledger integrity: dead CostModel
  fields, magic cycle literals charged to cores.
* SIM3xx (:mod:`.events`) — event-callback safety: mutable default
  arguments, late-bound loop-variable capture.
* SIM4xx (:mod:`.telemetry`) — telemetry hygiene: malformed metric
  names, namespace collisions, spans opened but never closed.
* SIM6xx (:mod:`.project`) — whole-program rules over the module
  graph / symbol tables / call graph (``--project``): interprocedural
  RNG provenance, cycle-ledger flow, event-callback escape, telemetry
  hook reachability.

Entry points: ``python -m repro lint`` and ``repro.lint.lint_tree``.
"""

from .baseline import (baseline_keys, default_baseline_path, load_baseline,
                       save_baseline)
from .cli import add_lint_arguments, changed_paths, lint_tree, run_lint
from .findings import (Finding, expand_suppressions, is_suppressed,
                       parse_suppressions)
from .framework import (FileContext, LintResult, ProjectLinter, Rule,
                        default_lint_root, lint_paths, lint_sources,
                        register_rule, registered_rules)
from .project import (ProjectAnalysis, ProjectRule, build_project,
                      build_project_from_sources, register_project_rule,
                      registered_project_rules, run_project_rules)
from .report import render_json, render_rule_list, render_text

__all__ = [
    "Finding",
    "FileContext",
    "LintResult",
    "ProjectAnalysis",
    "ProjectLinter",
    "ProjectRule",
    "Rule",
    "add_lint_arguments",
    "baseline_keys",
    "build_project",
    "build_project_from_sources",
    "changed_paths",
    "default_baseline_path",
    "default_lint_root",
    "expand_suppressions",
    "is_suppressed",
    "lint_paths",
    "lint_sources",
    "lint_tree",
    "load_baseline",
    "parse_suppressions",
    "register_project_rule",
    "register_rule",
    "registered_project_rules",
    "registered_rules",
    "render_json",
    "render_rule_list",
    "render_text",
    "run_lint",
    "run_project_rules",
    "save_baseline",
]
