"""The simlint engine: one AST pass per file, a registry of rules.

Design
------
* Every file is parsed once and walked once.  During the walk each node
  is dispatched to every registered rule's ``visit_<NodeType>`` method
  (if present), so adding a rule never adds a traversal.
* Rules are *stateful per run*: one instance services the whole project,
  which is what lets cross-file rules (the SIM2xx cycle-ledger checks)
  collect definitions in one file and uses in another, then emit their
  findings in :meth:`Rule.finalize`.
* Parent links are annotated onto nodes (``_simlint_parent``) before
  dispatch, so rules can inspect context (is this call the argument of
  ``sorted``?) without their own walks.

A rule implements any subset of::

    begin_file(ctx)          # file opened
    visit_<NodeType>(node, ctx)
    end_file(ctx)            # file fully walked
    finalize()               # all files walked; cross-file verdicts

and reports via ``self.report(ctx, node, message)`` (or
``self.report_at(path, line, col, message)`` from ``finalize``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple, Type

from .findings import (Finding, expand_suppressions, is_suppressed,
                       parse_suppressions)

__all__ = [
    "FileContext",
    "Rule",
    "register_rule",
    "registered_rules",
    "LintResult",
    "ProjectLinter",
    "lint_sources",
    "lint_paths",
    "default_lint_root",
]


@dataclass
class FileContext:
    """Everything a rule may want to know about the file being walked."""

    path: str                    # posix path relative to the lint root
    source: str
    tree: ast.Module
    suppressions: Dict[int, Optional[Set[str]]] = field(default_factory=dict)

    @property
    def basename(self) -> str:
        return self.path.rsplit("/", 1)[-1]

    def is_module(self, *tails: str) -> bool:
        """True when this file's path ends with any of ``tails``."""
        return any(self.path.endswith(tail) for tail in tails)


# Modules allowed to touch the process environment / wall clock: the
# command-line surface plus the one sanctioned env-access module.
CLI_MODULES: Tuple[str, ...] = ("repro/cli.py", "repro/__main__.py",
                                "repro/bench_engine.py")
ENV_MODULES: Tuple[str, ...] = CLI_MODULES + ("repro/envvars.py",)


class Rule:
    """Base class for simlint rules.

    Subclasses set ``code`` (``SIMxxx``), ``name`` (kebab-case slug) and
    ``rationale`` (one sentence: the invariant the rule protects).
    ``tree_scoped = True`` marks a rule whose verdict is only sound over
    the complete tree (it collects declarations in one file and uses in
    all the others); such rules are skipped when linting a partial file
    set (``--changed``) unless explicitly requested via ``--only``.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""
    tree_scoped: bool = False

    def __init__(self) -> None:
        self.findings: List[Finding] = []

    # -- hooks (all optional) ------------------------------------------------

    def begin_file(self, ctx: FileContext) -> None:  # pragma: no cover
        pass

    def end_file(self, ctx: FileContext) -> None:  # pragma: no cover
        pass

    def finalize(self) -> None:  # pragma: no cover
        pass

    # -- reporting -----------------------------------------------------------

    def report(self, ctx: FileContext, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            path=ctx.path, line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0), code=self.code,
            message=message))

    def report_at(self, path: str, line: int, col: int, message: str) -> None:
        self.findings.append(Finding(path=path, line=line, col=col,
                                     code=self.code, message=message))


_RULES: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.code or not cls.name:
        raise ValueError(f"rule {cls.__name__} needs code and name")
    if cls.code in _RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    _RULES[cls.code] = cls
    return cls


def registered_rules() -> Dict[str, Type[Rule]]:
    """The registry, importing the stock rule families on first use."""
    from . import determinism, events, ledger, models, telemetry  # noqa: F401
    return dict(_RULES)


def annotate_parents(tree: ast.Module) -> None:
    """Attach ``_simlint_parent`` to every node (module root gets None)."""
    tree._simlint_parent = None  # type: ignore[attr-defined]
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._simlint_parent = node  # type: ignore[attr-defined]


def parent_of(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, "_simlint_parent", None)


@dataclass
class LintResult:
    """The outcome of one lint run."""

    findings: List[Finding]            # active findings (post-suppression,
                                       # post-baseline)
    suppressed: int                    # count silenced by inline comments
    baselined: int                     # count silenced by the baseline file
    files_checked: int
    parse_errors: List[Finding]        # files that failed to parse

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors

    def all_findings(self) -> List[Finding]:
        return sorted(self.findings + self.parse_errors)


class ProjectLinter:
    """Runs every registered rule over a set of sources in one pass each."""

    def __init__(self, only: Optional[Iterable[str]] = None,
                 skip_tree_scoped: bool = False):
        registry = registered_rules()
        codes = sorted(registry) if only is None else sorted(only)
        unknown = [c for c in codes if c not in registry]
        if unknown:
            raise KeyError(f"unknown rule code(s): {', '.join(unknown)}; "
                           f"known: {', '.join(sorted(registry))}")
        if skip_tree_scoped and only is None:
            # A partial file set can't support whole-tree verdicts (a
            # use in an unlinted file would read as dead); an explicit
            # --only request still wins.
            codes = [c for c in codes if not registry[c].tree_scoped]
        self.rules: List[Rule] = [registry[c]() for c in codes]
        self._contexts: List[FileContext] = []
        self._parse_errors: List[Finding] = []

    def add_source(self, path: str, source: str) -> None:
        """Parse and walk one file, dispatching to every rule."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self._parse_errors.append(Finding(
                path=path, line=exc.lineno or 1, col=exc.offset or 0,
                code="SIM000", message=f"file does not parse: {exc.msg}"))
            return
        annotate_parents(tree)
        ctx = FileContext(path=path, source=source, tree=tree,
                          suppressions=expand_suppressions(
                              tree, parse_suppressions(source)))
        self._contexts.append(ctx)
        for rule in self.rules:
            rule.begin_file(ctx)
        for node in ast.walk(tree):
            method = f"visit_{type(node).__name__}"
            for rule in self.rules:
                visitor = getattr(rule, method, None)
                if visitor is not None:
                    visitor(node, ctx)
        for rule in self.rules:
            rule.end_file(ctx)

    def run(self, baseline: Optional[Set[Tuple[str, str, str]]] = None
            ) -> LintResult:
        """Finalize cross-file rules and assemble the result."""
        for rule in self.rules:
            rule.finalize()
        suppression_of = {ctx.path: ctx.suppressions
                          for ctx in self._contexts}
        active: List[Finding] = []
        suppressed = baselined = 0
        for rule in self.rules:
            for finding in rule.findings:
                if is_suppressed(finding,
                                 suppression_of.get(finding.path, {})):
                    suppressed += 1
                elif baseline and (finding.path, finding.code,
                                   finding.message) in baseline:
                    baselined += 1
                else:
                    active.append(finding)
        return LintResult(findings=sorted(active), suppressed=suppressed,
                          baselined=baselined,
                          files_checked=len(self._contexts),
                          parse_errors=sorted(self._parse_errors))


def lint_sources(files: Mapping[str, str],
                 only: Optional[Iterable[str]] = None,
                 baseline: Optional[Set[Tuple[str, str, str]]] = None,
                 skip_tree_scoped: bool = False) -> LintResult:
    """Lint in-memory sources (``{path: source}``) — the test entry point."""
    linter = ProjectLinter(only=only, skip_tree_scoped=skip_tree_scoped)
    for path in sorted(files):
        linter.add_source(path, files[path])
    return linter.run(baseline=baseline)


def default_lint_root() -> Path:
    """The ``src`` directory containing the ``repro`` package."""
    return Path(__file__).resolve().parent.parent.parent


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            out.append(path)
    return sorted(set(out))


def lint_paths(paths: Optional[Iterable[Path]] = None,
               root: Optional[Path] = None,
               only: Optional[Iterable[str]] = None,
               baseline: Optional[Set[Tuple[str, str, str]]] = None,
               skip_tree_scoped: bool = False) -> LintResult:
    """Lint files on disk.  Defaults to the whole ``repro`` package."""
    root = root or default_lint_root()
    if paths is None:
        paths = [root / "repro"]
    linter = ProjectLinter(only=only, skip_tree_scoped=skip_tree_scoped)
    for file_path in iter_python_files(Path(p) for p in paths):
        try:
            rel = file_path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = file_path.as_posix()
        linter.add_source(rel, file_path.read_text(encoding="utf-8"))
    return linter.run(baseline=baseline)
