"""Reporters: render a :class:`LintResult` as text or JSON.

Both reporters are pure (result -> str) so the CLI and tests share them.
The JSON document is stable: keys are sorted and findings are emitted in
``Finding`` order, so two identical runs produce byte-identical output.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict

from .framework import LintResult, registered_rules

__all__ = ["render_text", "render_json", "render_rule_list",
           "JSON_SCHEMA_VERSION"]

JSON_SCHEMA_VERSION = 1


def render_text(result: LintResult, root: str = "") -> str:
    findings = result.all_findings()
    lines = [f.format() for f in findings]
    counts = Counter(f.code for f in findings)
    if lines:
        lines.append("")
        summary = ", ".join(f"{code}: {n}" for code, n in sorted(counts.items()))
        lines.append(f"{len(findings)} finding(s) "
                     f"({summary}) in {result.files_checked} file(s)")
    else:
        lines.append(f"clean: {result.files_checked} file(s), "
                     f"0 findings")
    if result.suppressed:
        lines.append(f"{result.suppressed} suppressed by inline comments")
    if result.baselined:
        lines.append(f"{result.baselined} silenced by baseline")
    return "\n".join(lines)


def render_json(result: LintResult, root: str = "") -> str:
    counts: Dict[str, int] = dict(
        sorted(Counter(f.code for f in result.all_findings()).items()))
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "root": root,
        "clean": result.clean,
        "files_checked": result.files_checked,
        "findings": [f.to_dict() for f in result.all_findings()],
        "counts": counts,
        "suppressed": result.suppressed,
        "baselined": result.baselined,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_list() -> str:
    """One line per registered rule: code, slug, rationale.

    Covers both registries: the per-file rules and the whole-program
    (``--project``) SIM6xx family.
    """
    from .project import registered_project_rules

    registry: Dict[str, type] = dict(registered_rules())
    registry.update(registered_project_rules())
    lines = []
    for code in sorted(registry):
        cls = registry[code]
        lines.append(f"{code}  {cls.name}")
        lines.append(f"        {cls.rationale}")
    return "\n".join(lines)
