"""SIM5xx — I/O-model registry rules.

The model registry (PR 9) made :mod:`repro.iomodels.registry` the single
source of truth for which I/O models exist: ``MODEL_NAMES``, every
experiment's model list, the CLI listing, and the scenario catalog are
all derived from it with capability filters.  A hand-written tuple of
model names anywhere else re-introduces the pre-registry failure mode —
a new model registers itself and silently never shows up in that code
path:

* SIM501 — a tuple/list/set literal spelling out two or more registered
  model names outside ``repro/iomodels/`` is a shadow catalog; derive it
  from ``model_names()`` / ``filter_models()`` (or restrict one of the
  derived tuples) instead.  Only *direct* string elements count, so a
  list of per-model config tuples (one name each) or a dict of paper
  reference rows does not flag.
"""

from __future__ import annotations

import ast

from .framework import FileContext, Rule, register_rule

__all__ = []

# Importing the package (not just .registry) runs every model module's
# register_model() call, so the name set is the full catalog.
from .. import iomodels

_MODEL_NAMES = frozenset(iomodels.model_names())

# The registry and the model modules themselves are the sanctioned home
# for model-name literals (registration, capability shims, wiring).
_SANCTIONED_PREFIX = "repro/iomodels/"


@register_rule
class HardCodedModelListRule(Rule):
    code = "SIM501"
    name = "hard-coded-model-list"
    rationale = ("A literal tuple of I/O-model names is a shadow copy of "
                 "the model registry: the next registered model silently "
                 "misses that code path; derive the list via "
                 "model_names()/filter_models() instead.")

    def _check(self, node, ctx: FileContext) -> None:
        if ctx.path.startswith(_SANCTIONED_PREFIX):
            return
        names = sorted({el.value for el in node.elts
                        if isinstance(el, ast.Constant)
                        and isinstance(el.value, str)
                        and el.value in _MODEL_NAMES})
        if len(names) >= 2:
            self.report(ctx, node,
                        f"hard-coded I/O-model list {names} shadows the "
                        f"model registry; derive it from "
                        f"repro.iomodels.registry (model_names() or "
                        f"filter_models()) so new models are not silently "
                        f"dropped")

    def visit_Tuple(self, node: ast.Tuple, ctx: FileContext) -> None:
        self._check(node, ctx)

    def visit_List(self, node: ast.List, ctx: FileContext) -> None:
        self._check(node, ctx)

    def visit_Set(self, node: ast.Set, ctx: FileContext) -> None:
        self._check(node, ctx)
