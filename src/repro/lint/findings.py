"""Finding and suppression primitives for simlint.

A :class:`Finding` pins one rule violation to a file and line.  Findings
are plain data: hashable, sortable, and round-trippable through JSON, so
the baseline file and the ``--json`` reporter share one representation.

Inline suppressions use the conventional comment form::

    frobnicate(time.time())  # simlint: disable=SIM101
    # simlint: disable=SIM104,SIM302   (several codes)
    # simlint: disable                 (every code on this line)

A suppression applies to findings anchored anywhere in the statement
containing its physical line: a comment on the first (or last) line of a
multi-line call, decorator, or comprehension covers findings reported on
any of its continuation lines (:func:`expand_suppressions`).  For
compound statements (``def``/``for``/``if``/…) only the header span is
covered, so a suppression on a ``for`` line does not blanket the body.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

__all__ = ["Finding", "parse_suppressions", "expand_suppressions",
           "is_suppressed"]

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*disable(?:=(?P<codes>[A-Z0-9, ]+))?")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str       # posix path relative to the lint root, e.g. "repro/cli.py"
    line: int       # 1-based
    col: int        # 0-based, as reported by ast
    code: str       # e.g. "SIM104"
    message: str

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "col": self.col,
                "code": self.code, "message": self.message}

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(path=data["path"], line=int(data["line"]),
                   col=int(data.get("col", 0)), code=data["code"],
                   message=data["message"])

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def parse_suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed codes (``None`` = every code)."""
    out: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        codes = match.group("codes")
        if codes is None:
            out[lineno] = None
        else:
            out[lineno] = {c.strip() for c in codes.split(",") if c.strip()}
    return out


def _statement_spans(tree: ast.Module) -> List[range]:
    """Line spans of statements, each a candidate suppression scope.

    Simple statements span ``lineno..end_lineno``.  Compound statements
    contribute only their header (decorators + signature/test up to the
    line before the first body statement) so a suppression comment on a
    ``def``/``for``/``if`` line never silences its whole body.
    """
    spans: List[range] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        end = getattr(node, "end_lineno", None) or node.lineno
        body = getattr(node, "body", None)
        if body and isinstance(body, list) and isinstance(body[0], ast.stmt):
            end = max(node.lineno, body[0].lineno - 1)
        start = node.lineno
        decorators = getattr(node, "decorator_list", None)
        if decorators:
            start = min(start, decorators[0].lineno)
        spans.append(range(start, end + 1))
    return spans


def expand_suppressions(
        tree: ast.Module,
        line_suppressions: Dict[int, Optional[Set[str]]],
) -> Dict[int, Optional[Set[str]]]:
    """Widen line-scoped suppressions to their full statement span."""
    out: Dict[int, Optional[Set[str]]] = {
        line: (None if codes is None else set(codes))
        for line, codes in line_suppressions.items()}
    if not line_suppressions:
        return out
    for span in _statement_spans(tree):
        hits = [line_suppressions[line] for line in span
                if line in line_suppressions]
        if not hits:
            continue
        merged: Optional[Set[str]] = set()
        for codes in hits:
            if codes is None:
                merged = None
                break
            merged.update(codes)  # type: ignore[union-attr]
        for line in span:
            existing = out.get(line, set())
            if merged is None or existing is None:
                out[line] = None
            else:
                out[line] = set(existing) | merged
    return out


def is_suppressed(finding: Finding,
                  suppressions: Dict[int, Optional[Set[str]]]) -> bool:
    codes = suppressions.get(finding.line, "missing")
    if codes == "missing":
        return False
    return codes is None or finding.code in codes
