"""Finding and suppression primitives for simlint.

A :class:`Finding` pins one rule violation to a file and line.  Findings
are plain data: hashable, sortable, and round-trippable through JSON, so
the baseline file and the ``--json`` reporter share one representation.

Inline suppressions use the conventional comment form::

    frobnicate(time.time())  # simlint: disable=SIM101
    # simlint: disable=SIM104,SIM302   (several codes)
    # simlint: disable                 (every code on this line)

A suppression applies to findings anchored on its physical line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

__all__ = ["Finding", "parse_suppressions", "is_suppressed"]

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*disable(?:=(?P<codes>[A-Z0-9, ]+))?")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str       # posix path relative to the lint root, e.g. "repro/cli.py"
    line: int       # 1-based
    col: int        # 0-based, as reported by ast
    code: str       # e.g. "SIM104"
    message: str

    def to_dict(self) -> dict:
        return {"path": self.path, "line": self.line, "col": self.col,
                "code": self.code, "message": self.message}

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(path=data["path"], line=int(data["line"]),
                   col=int(data.get("col", 0)), code=data["code"],
                   message=data["message"])

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def parse_suppressions(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed codes (``None`` = every code)."""
    out: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        codes = match.group("codes")
        if codes is None:
            out[lineno] = None
        else:
            out[lineno] = {c.strip() for c in codes.split(",") if c.strip()}
    return out


def is_suppressed(finding: Finding,
                  suppressions: Dict[int, Optional[Set[str]]]) -> bool:
    codes = suppressions.get(finding.line, "missing")
    if codes == "missing":
        return False
    return codes is None or finding.code in codes
