"""Per-file fact extraction for the whole-program analysis layer.

One parse per file produces a pickleable :class:`ModuleSummary`: the
module's import table, classes (with their methods and class-body
fields), and one :class:`FunctionSummary` per function/method plus a
``<module>`` pseudo-function for module-level statements.  Summaries are
everything the project passes (:mod:`repro.lint.callgraph`,
:mod:`repro.lint.dataflow`, the SIM6xx rules) need — the AST itself is
never kept, which is what makes the incremental cache (pickle per file,
keyed by source digest) and ``--jobs`` parallel parsing possible.

Origin tokens
-------------
Local dataflow inside each function is folded into string tokens so the
summary stays flat:

* ``SRC@<line>``   — a raw RNG (``random.Random(...)`` / ``random.*``
  draw) created at ``<line>``; the one sanctioned constructor site,
  ``repro/sim/rng.py``, is exempt.
* ``PARAM:<i>``    — the value of positional parameter ``i``.
* ``RET:<k>``      — the result of this function's ``k``-th recorded
  call (``FunctionSummary.calls[k]``); resolved interprocedurally by
  :mod:`repro.lint.dataflow`.
* ``ATTR:<name>``  — a read of attribute ``<name>`` (field-sensitive,
  object-insensitive).

Calls to ``*.stream(...)`` (the :class:`repro.sim.rng.RngRegistry` API)
deliberately produce *no* origin: a registry stream is the clean source.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .findings import expand_suppressions, parse_suppressions

__all__ = [
    "SYMBOLS_VERSION",
    "CallFact",
    "EscapeFact",
    "FunctionSummary",
    "ClassSummary",
    "ModuleSummary",
    "extract_module",
    "module_name_for",
]

# Bump to invalidate every cached summary (schema or extraction change).
SYMBOLS_VERSION = 5

# The sanctioned RNG home: raw random.* is legal only here.
RNG_HOME = "repro/sim/rng.py"

# Last path component of a call chain that charges simulated cycles.
CHARGE_METHODS = frozenset({"execute", "stall"})

# Last component of a call chain that consumes simulated time (an
# alternative legitimate destiny for a CostModel field: delays/timeouts).
TIME_SINK_METHODS = frozenset({"timeout", "call_soon", "schedule_at",
                               "schedule", "sleep"})

# Call chains whose callback/argument escapes into the event system
# (SIM601 sinks, SIM603 subscription points).
EVENT_SINK_METHODS = frozenset({"call_soon", "schedule_at", "timeout",
                                "add_callback", "prepend_callback",
                                "process", "subscribe"})

# Serialization sinks for SIM601: a raw-RNG-derived value written out.
JSON_SINKS = frozenset({"json.dump", "json.dumps"})

# random-module draw functions that mint nondeterminism directly.
_RANDOM_DRAWS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "vonmisesvariate", "paretovariate",
    "weibullvariate", "lognormvariate", "getrandbits", "random_bytes",
    "randbytes", "Random", "SystemRandom",
})


@dataclass(frozen=True)
class CallFact:
    """One call site inside a function."""

    callee: str                              # dotted chain as written
    lineno: int
    col: int
    arg_origins: Tuple[FrozenSet[str], ...]  # per positional argument
    kw_origins: Tuple[Tuple[str, FrozenSet[str]], ...]
    func_args: Tuple[str, ...]               # callables passed by name


@dataclass(frozen=True)
class EscapeFact:
    """SIM603 raw material: a callback capturing a later-mutated local."""

    lineno: int          # subscription call site
    col: int
    sink: str            # e.g. "add_callback"
    variable: str        # the captured local
    mutated_at: int      # line of the post-subscription assignment


@dataclass
class FunctionSummary:
    """Flow facts for one function, method, or ``<module>`` body."""

    qualname: str
    lineno: int
    col: int
    params: Tuple[str, ...] = ()
    calls: List[CallFact] = field(default_factory=list)
    attr_reads: Set[str] = field(default_factory=set)
    attr_writes: List[Tuple[str, FrozenSet[str]]] = field(
        default_factory=list)
    returns: List[FrozenSet[str]] = field(default_factory=list)
    charge_lines: List[int] = field(default_factory=list)
    time_sink_lines: List[int] = field(default_factory=list)
    escapes: List[EscapeFact] = field(default_factory=list)
    stored_refs: List[str] = field(default_factory=list)
    # ^ dotted chains assigned somewhere (``nic.on_notify = self._on_rx``):
    #   address-taken callables the call graph turns into reference edges.


@dataclass
class ClassSummary:
    name: str
    lineno: int
    bases: Tuple[str, ...] = ()
    methods: Set[str] = field(default_factory=set)
    class_fields: Tuple[str, ...] = ()  # class-body (Ann)Assign names
    field_lines: Dict[str, int] = field(default_factory=dict)


@dataclass
class ModuleSummary:
    """Everything the project layer keeps about one source file."""

    path: str                         # posix path relative to lint root
    module: str                       # dotted module name
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    classes: Dict[str, ClassSummary] = field(default_factory=dict)
    registered_builders: List[Tuple[str, int]] = field(
        default_factory=list)    # (name referenced by a ModelInfo builder, line)
    suppressions: Dict[int, Optional[Set[str]]] = field(
        default_factory=dict)    # statement-span expanded
    parse_error: Optional[Tuple[int, int, str]] = None


def module_name_for(path: str) -> str:
    """``repro/iomodels/elvis.py`` → ``repro.iomodels.elvis``."""
    parts = path[:-3].split("/") if path.endswith(".py") else path.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _dotted_chain(node: ast.AST) -> Optional[str]:
    """``a.b.c`` → ``"a.b.c"``; anything non-name-rooted → None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    if isinstance(node, ast.Call):
        inner = _dotted_chain(node.func)
        if inner is not None:
            parts.append(f"{inner}()")
            return ".".join(reversed(parts))
    return None


def _last(chain: str) -> str:
    return chain.rsplit(".", 1)[-1]


class _FunctionExtractor:
    """Single in-order pass over one function body.

    Keeps a flow-insensitive-per-loop but statement-ordered environment
    ``var -> origin set`` and records every call as a :class:`CallFact`.
    Lambda bodies are folded into the enclosing function's facts.
    """

    def __init__(self, summary: FunctionSummary, module: "ModuleSummary",
                 is_rng_home: bool):
        self.summary = summary
        self.module = module
        self.is_rng_home = is_rng_home
        self.env: Dict[str, Set[str]] = {
            name: {f"PARAM:{i}"} for i, name in enumerate(summary.params)}
        # textual assignment lines per local, for SIM603's
        # "mutated after the subscription point" check.
        self.assign_lines: Dict[str, List[int]] = {}
        self.pending_escapes: List[Tuple[ast.AST, str, List[str]]] = []
        self._nested_free: Dict[str, Tuple[str, ...]] = {}

    # -- origins ------------------------------------------------------------

    def _is_rng_source(self, chain: str) -> bool:
        if self.is_rng_home:
            return False
        head, _, tail = chain.partition(".")
        target = self.module.imports.get(head, head)
        if target == "random" and (not tail or _last(tail) in _RANDOM_DRAWS):
            return True
        # "from random import Random" / "... import randint"
        if not tail and target.startswith("random.") \
                and _last(target) in _RANDOM_DRAWS:
            return True
        return False

    def origins_of(self, node: Optional[ast.AST]) -> Set[str]:
        if node is None:
            return set()
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, ast.Attribute):
            self.summary.attr_reads.add(node.attr)
            return {f"ATTR:{node.attr}"}
        if isinstance(node, ast.Call):
            index = self.record_call(node)
            chain = _dotted_chain(node.func) or ""
            if chain and self._is_rng_source(chain):
                return {f"SRC@{node.lineno}"}
            if chain.endswith(".stream") or _last(chain) == "stream":
                return set()          # RngRegistry.stream: the clean source
            # Method-call results inherit the receiver's taint (a draw
            # from a tainted Random stays tainted); this also records
            # calls sitting in receiver position, e.g. ``make().run()``.
            receiver: Set[str] = set()
            if isinstance(node.func, ast.Attribute):
                receiver = self.origins_of(node.func.value)
            result = {f"RET:{index}"} if index is not None else set()
            return result | receiver
        if isinstance(node, ast.Lambda):
            self._walk_expr(node.body)
            return set()
        if isinstance(node, (ast.BinOp, ast.BoolOp, ast.Compare, ast.IfExp,
                             ast.UnaryOp, ast.Subscript, ast.Starred,
                             ast.Tuple, ast.List, ast.Set, ast.Dict,
                             ast.JoinedStr, ast.FormattedValue, ast.Await,
                             ast.Yield, ast.YieldFrom, ast.NamedExpr)):
            out: Set[str] = set()
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.expr, ast.keyword)):
                    value = child.value if isinstance(child, ast.keyword) \
                        else child
                    out |= self.origins_of(value)
            return out
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            for gen in node.generators:
                iter_origins = self.origins_of(gen.iter)
                for name in _target_names(gen.target):
                    # Comprehension targets do not leak into function
                    # scope — seed origins but record no assignment.
                    self.env[name] = set(iter_origins)
            out = set()
            for child in ast.walk(node):
                if isinstance(child, ast.Call) and child is not node:
                    self.origins_of(child)
            if isinstance(node, ast.DictComp):
                out |= self.origins_of(node.key) | self.origins_of(node.value)
            else:
                out |= self.origins_of(node.elt)  # type: ignore[union-attr]
            return out
        return set()

    def env_update_from(self, target: ast.AST, origins: Set[str]) -> None:
        for name in _target_names(target):
            self.env[name] = set(origins)
            self.assign_lines.setdefault(name, []).append(
                getattr(target, "lineno", 0))

    # -- calls --------------------------------------------------------------

    def record_call(self, node: ast.Call) -> Optional[int]:
        chain = _dotted_chain(node.func)
        if chain is None:
            if isinstance(node.func, ast.Lambda):
                self._walk_expr(node.func.body)
            for arg in node.args:
                self.origins_of(arg)
            for kw in node.keywords:
                self.origins_of(kw.value)
            return None
        func_args: List[str] = []
        arg_origins: List[FrozenSet[str]] = []
        for arg in node.args:
            ref = _dotted_chain(arg) if isinstance(
                arg, (ast.Name, ast.Attribute)) else None
            if ref is not None:
                func_args.append(ref)
            if isinstance(arg, ast.Lambda):
                func_args.extend(self._lambda_refs(arg))
            arg_origins.append(frozenset(self.origins_of(arg)))
        kw_origins: List[Tuple[str, FrozenSet[str]]] = []
        for kw in node.keywords:
            ref = _dotted_chain(kw.value) if isinstance(
                kw.value, (ast.Name, ast.Attribute)) else None
            if ref is not None and kw.arg is not None:
                func_args.append(ref)
            if isinstance(kw.value, ast.Lambda):
                func_args.extend(self._lambda_refs(kw.value))
            kw_origins.append((kw.arg or "**",
                               frozenset(self.origins_of(kw.value))))
        fact = CallFact(callee=chain, lineno=node.lineno,
                        col=node.col_offset,
                        arg_origins=tuple(arg_origins),
                        kw_origins=tuple(kw_origins),
                        func_args=tuple(func_args))
        self.summary.calls.append(fact)
        index = len(self.summary.calls) - 1
        last = _last(chain)
        if last in CHARGE_METHODS and "." in chain:
            self.summary.charge_lines.append(node.lineno)
        if last in TIME_SINK_METHODS:
            self.summary.time_sink_lines.append(node.lineno)
        if last in EVENT_SINK_METHODS:
            self._note_escapes(node, last)
        if last == "ModelInfo":
            self._note_builders(node)
        return index

    def _lambda_refs(self, node: ast.Lambda) -> List[str]:
        """Names a lambda wrapper forwards to (reference edges)."""
        bound = {a.arg for a in node.args.args + node.args.kwonlyargs}
        refs: List[str] = []
        for child in ast.walk(node.body):
            if isinstance(child, ast.Name) and child.id not in bound:
                refs.append(child.id)
        return refs

    def _note_builders(self, node: ast.Call) -> None:
        for kw in node.keywords:
            if kw.arg not in ("build_simple", "build_consolidation"):
                continue
            if isinstance(kw.value, (ast.Name, ast.Attribute)):
                chain = _dotted_chain(kw.value)
                if chain:
                    self.module.registered_builders.append(
                        (chain, kw.value.lineno))
            elif isinstance(kw.value, ast.Lambda):
                for ref in self._lambda_refs(kw.value):
                    self.module.registered_builders.append(
                        (ref, kw.value.lineno))

    # -- SIM603: callback capturing a later-mutated local -------------------

    def _note_escapes(self, node: ast.Call, sink: str) -> None:
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            captured = self._captured_locals(arg)
            if captured:
                self.pending_escapes.append((node, sink, captured))

    def _captured_locals(self, arg: ast.AST) -> List[str]:
        if isinstance(arg, ast.Lambda):
            bound = {a.arg for a in arg.args.args + arg.args.kwonlyargs}
            if arg.args.vararg:
                bound.add(arg.args.vararg.arg)
            if arg.args.kwarg:
                bound.add(arg.args.kwarg.arg)
            body: List[ast.AST] = [arg.body]
        elif isinstance(arg, ast.Name):
            # A nested def previously extracted: captured names were
            # stashed on the summary environment via _nested_free.
            return [name for name in self._nested_free.get(arg.id, ())
                    if name in self.env]
        else:
            return []
        free: List[str] = []
        for expr in body:
            for child in ast.walk(expr):
                if isinstance(child, ast.Name) \
                        and isinstance(child.ctx, ast.Load) \
                        and child.id not in bound \
                        and child.id in self.env \
                        and child.id not in free:
                    free.append(child.id)
        return free

    def finish_escapes(self) -> None:
        for node, sink, captured in self.pending_escapes:
            for var in captured:
                later = [line for line in self.assign_lines.get(var, ())
                         if line > node.lineno]
                if later:
                    self.summary.escapes.append(EscapeFact(
                        lineno=node.lineno, col=node.col_offset, sink=sink,
                        variable=var, mutated_at=min(later)))

    # -- statements ---------------------------------------------------------

    def _walk_expr(self, node: ast.AST) -> None:
        self.origins_of(node)

    def walk_body(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self.walk_stmt(stmt)

    def walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            origins = self.origins_of(stmt.value)
            self._note_stored_refs(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, origins)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign_target(stmt.target, self.origins_of(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            origins = self.origins_of(stmt.value)
            if isinstance(stmt.target, ast.Name):
                merged = set(self.env.get(stmt.target.id, ())) | origins
                self.env[stmt.target.id] = merged
                self.assign_lines.setdefault(
                    stmt.target.id, []).append(stmt.lineno)
            elif isinstance(stmt.target, ast.Attribute):
                self.summary.attr_writes.append(
                    (stmt.target.attr, frozenset(origins)))
        elif isinstance(stmt, ast.Return):
            origins = self.origins_of(stmt.value)
            if origins:
                self.summary.returns.append(frozenset(origins))
        elif isinstance(stmt, ast.Expr):
            self._walk_expr(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._walk_expr(stmt.test)
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.env_update_from(stmt.target, self.origins_of(stmt.iter))
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                origins = self.origins_of(item.context_expr)
                if item.optional_vars is not None:
                    self.env_update_from(item.optional_vars, origins)
            self.walk_body(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.walk_body(stmt.body)
            for handler in stmt.handlers:
                self.walk_body(handler.body)
            self.walk_body(stmt.orelse)
            self.walk_body(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._walk_expr(child)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested def: record which enclosing locals it reads so a
            # later by-name subscription can run the SIM603 check.
            params = {a.arg for a in stmt.args.args + stmt.args.kwonlyargs}
            local = set(params)
            free: List[str] = []
            for child in ast.walk(stmt):
                if isinstance(child, (ast.Assign, ast.AugAssign)):
                    targets = child.targets if isinstance(
                        child, ast.Assign) else [child.target]
                    for target in targets:
                        local.update(_target_names(target))
            for child in ast.walk(stmt):
                if isinstance(child, ast.Name) \
                        and isinstance(child.ctx, ast.Load) \
                        and child.id not in local and child.id not in free:
                    free.append(child.id)
            self._nested_free[stmt.name] = tuple(free)
            self.env.setdefault(stmt.name, set())

    def _note_stored_refs(self, value: ast.AST) -> None:
        """Record callables stored by assignment (address-taken)."""
        candidates: List[ast.AST] = [value]
        if isinstance(value, (ast.Tuple, ast.List)):
            candidates = list(value.elts)
        for node in candidates:
            if isinstance(node, (ast.Name, ast.Attribute)):
                chain = _dotted_chain(node)
                if chain is not None:
                    self.summary.stored_refs.append(chain)

    # -- assignment targets --------------------------------------------------

    def _assign_target(self, target: ast.AST, origins: Set[str]) -> None:
        if isinstance(target, ast.Attribute):
            self.summary.attr_writes.append((target.attr, frozenset(origins)))
            self.origins_of(target.value)
        elif isinstance(target, ast.Subscript):
            self.origins_of(target.value)
        else:
            self.env_update_from(target, origins)


def _target_names(target: ast.AST) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: List[str] = []
        for element in target.elts:
            out.extend(_target_names(element))
        return out
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    return []


def _extract_function(module: ModuleSummary, qualname: str,
                      node: ast.AST, body: List[ast.stmt],
                      params: Tuple[str, ...], is_rng_home: bool
                      ) -> FunctionSummary:
    summary = FunctionSummary(
        qualname=qualname, lineno=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0), params=params)
    extractor = _FunctionExtractor(summary, module, is_rng_home)
    extractor.walk_body(body)
    extractor.finish_escapes()
    return summary


def _resolve_relative(module: str, is_package: bool, level: int,
                      target: Optional[str]) -> str:
    parts = module.split(".") if module else []
    if not is_package:
        parts = parts[:-1]
    if level > 1:
        parts = parts[:len(parts) - (level - 1)]
    base = ".".join(parts)
    if target:
        return f"{base}.{target}" if base else target
    return base


def extract_module(path: str, source: str) -> ModuleSummary:
    """Parse one file and distill it into a :class:`ModuleSummary`."""
    module_name = module_name_for(path)
    is_package = path.endswith("__init__.py")
    summary = ModuleSummary(path=path, module=module_name)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        summary.parse_error = (exc.lineno or 1, exc.offset or 0,
                               exc.msg or "syntax error")
        return summary
    summary.suppressions = expand_suppressions(
        tree, parse_suppressions(source))
    is_rng_home = path.endswith(RNG_HOME)

    for stmt in tree.body:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                summary.imports[local] = alias.name if alias.asname \
                    else alias.name.split(".")[0]
        elif isinstance(stmt, ast.ImportFrom):
            base = _resolve_relative(module_name, is_package,
                                     stmt.level, stmt.module) \
                if stmt.level else (stmt.module or "")
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                summary.imports[local] = f"{base}.{alias.name}" \
                    if base else alias.name

    # Classes, functions, methods.
    module_level: List[ast.stmt] = []
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef):
            fields: List[str] = []
            field_lines: Dict[str, int] = {}
            methods: Set[str] = set()
            for item in stmt.body:
                if isinstance(item, ast.AnnAssign) \
                        and isinstance(item.target, ast.Name):
                    fields.append(item.target.id)
                    field_lines[item.target.id] = item.lineno
                elif isinstance(item, ast.Assign):
                    for target in item.targets:
                        for name in _target_names(target):
                            fields.append(name)
                            field_lines[name] = item.lineno
                elif isinstance(item, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    methods.add(item.name)
                    qualname = f"{stmt.name}.{item.name}"
                    params = tuple(a.arg for a in item.args.args)
                    summary.functions[qualname] = _extract_function(
                        summary, qualname, item, item.body, params,
                        is_rng_home)
                    _extract_nested(summary, qualname, item, is_rng_home)
            bases = tuple(chain for chain in
                          (_dotted_chain(base) for base in stmt.bases)
                          if chain)
            summary.classes[stmt.name] = ClassSummary(
                name=stmt.name, lineno=stmt.lineno, bases=bases,
                methods=methods, class_fields=tuple(fields),
                field_lines=field_lines)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            params = tuple(a.arg for a in stmt.args.args)
            summary.functions[stmt.name] = _extract_function(
                summary, stmt.name, stmt, stmt.body, params, is_rng_home)
            _extract_nested(summary, stmt.name, stmt, is_rng_home)
        else:
            module_level.append(stmt)
    summary.functions["<module>"] = _extract_function(
        summary, "<module>", tree, module_level, (), is_rng_home)
    return summary


def _extract_nested(summary: ModuleSummary, parent_qual: str,
                    node: ast.AST, is_rng_home: bool) -> None:
    """Register nested defs as ``outer.inner`` functions (one level)."""
    for stmt in ast.walk(node):
        if stmt is node:
            continue
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{parent_qual}.{stmt.name}"
            if qualname in summary.functions:
                continue
            params = tuple(a.arg for a in stmt.args.args)
            summary.functions[qualname] = _extract_function(
                summary, qualname, stmt, stmt.body, params, is_rng_home)
