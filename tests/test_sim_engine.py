"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim import (
    Environment,
    Event,
    Interrupt,
    SimulationError,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0


def test_timeout_advances_clock():
    env = Environment()
    done = []

    def proc(env):
        yield env.timeout(5)
        done.append(env.now)
        yield env.timeout(7)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [5, 12]


def test_timeout_carries_value():
    env = Environment()
    seen = []

    def proc(env):
        value = yield env.timeout(3, value="hello")
        seen.append(value)

    env.process(proc(env))
    env.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_process_return_value_becomes_event_value():
    env = Environment()

    def inner(env):
        yield env.timeout(10)
        return 42

    def outer(env):
        result = yield env.process(inner(env))
        return result + 1

    p = env.process(outer(env))
    env.run()
    assert p.value == 43
    assert env.now == 10


def test_events_at_same_time_fifo():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(5)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(env, tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_run_until_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(10)

    env.process(proc(env))
    env.run(until=35)
    assert env.now == 35


def test_run_until_before_now_raises():
    env = Environment()
    env.run(until=5)
    with pytest.raises(SimulationError):
        env.run(until=1)


def test_manual_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    log = []

    def waiter(env):
        value = yield gate
        log.append((env.now, value))

    def firer(env):
        yield env.timeout(20)
        gate.succeed("opened")

    env.process(waiter(env))
    env.process(firer(env))
    env.run()
    assert log == [(20, "opened")]


def test_event_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter(env):
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    env.process(waiter(env))
    gate.fail(RuntimeError("boom"))
    env.run()
    assert caught == ["boom"]


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(SimulationError):
        env.event().fail("not an exception")


def test_waiting_on_processed_event_resumes_immediately():
    env = Environment()
    gate = env.event()
    gate.succeed("v")
    seen = []

    def late(env):
        yield env.timeout(50)
        value = yield gate
        seen.append((env.now, value))

    env.process(late(env))
    env.run()
    assert seen == [(50, "v")]


def test_process_interrupt_delivers_cause():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(1000)
        except Interrupt as intr:
            log.append((env.now, intr.cause))

    def killer(env, victim):
        yield env.timeout(30)
        victim.interrupt("wake up")

    victim = env.process(sleeper(env))
    env.process(killer(env, victim))
    env.run()
    assert log == [(30, "wake up")]


def test_interrupt_dead_process_is_noop():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    assert not p.is_alive
    p.interrupt()  # must not raise
    env.run()


def test_yield_non_event_raises():
    env = Environment()

    def bad(env):
        yield 5

    env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()


def test_all_of_collects_values_in_order():
    env = Environment()

    def proc(env):
        events = [env.timeout(30, value="late"), env.timeout(10, value="early")]
        values = yield env.all_of(events)
        return values

    p = env.process(proc(env))
    env.run()
    assert p.value == ["late", "early"]
    assert env.now == 30


def test_all_of_empty_succeeds_immediately():
    env = Environment()

    def proc(env):
        values = yield env.all_of([])
        return values

    p = env.process(proc(env))
    env.run()
    assert p.value == []


def test_any_of_returns_first_winner():
    env = Environment()

    def proc(env):
        fast = env.timeout(5, value="fast")
        slow = env.timeout(50, value="slow")
        winner, value = yield env.any_of([fast, slow])
        return value

    p = env.process(proc(env))
    env.run(until=100)
    assert p.value == "fast"


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(40)
    assert env.peek() == 40


def test_deterministic_two_runs_identical():
    def build():
        env = Environment()
        order = []

        def proc(env, tag, delay):
            yield env.timeout(delay)
            order.append((tag, env.now))

        for i in range(10):
            env.process(proc(env, i, (i * 7) % 5 + 1))
        env.run()
        return order

    assert build() == build()


# -- scheduler selection and combinator callback hygiene ---------------------


def test_anyof_detaches_losers_on_trigger():
    # Regression: a settled AnyOf must unhook from the losing events, or
    # every long-lived event accumulates dead callbacks (and fires into
    # settled races) for the rest of the run.
    env = Environment()
    fast = env.timeout(10, value="fast")
    slow = env.timeout(1_000_000, value="slow")
    race = env.any_of([fast, slow])
    env.run(until=20)
    assert race.ok and race.value == (fast, "fast")
    assert slow.callbacks == ()
    env.run(until=2_000_000)  # the loser still fires without incident
    assert slow.ok


def test_allof_detaches_outstanding_on_failure():
    env = Environment()
    doomed = Event(env)
    pending = env.timeout(1_000_000)
    both = env.all_of([doomed, pending])
    doomed.fail(RuntimeError("boom"))
    env.run(until=10)
    assert both.triggered and not both.ok
    assert pending.callbacks == ()


def test_anyof_losers_detached_under_heap_scheduler_too():
    env = Environment(scheduler="heap")
    fast = env.timeout(1, value="a")
    slow = env.timeout(500, value="b")
    race = env.any_of([fast, slow])
    env.run(until=5)
    assert race.value == (fast, "a")
    assert slow.callbacks == ()


def test_environment_rejects_unknown_scheduler():
    with pytest.raises(SimulationError):
        Environment(scheduler="splay-tree")


def test_scheduler_override_scopes_default():
    from repro.sim import default_scheduler, scheduler_override

    assert default_scheduler() == "calendar"
    with scheduler_override("heap"):
        assert default_scheduler() == "heap"
        assert Environment().scheduler == "heap"
    assert default_scheduler() == "calendar"
    assert Environment().scheduler == "calendar"


def test_heap_and_calendar_schedules_identical():
    def drive(scheduler):
        env = Environment(scheduler=scheduler)
        log = []

        def proc(env, tag, delay):
            for i in range(20):
                yield env.timeout(delay + (i % 3))
                log.append((env.now, tag))

        for tag in range(6):
            env.process(proc(env, tag, tag + 1))
        env.call_soon(lambda: log.append((env.now, "soon")))
        env.run()
        return log

    assert drive("heap") == drive("calendar")
