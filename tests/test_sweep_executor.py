"""Tests for the parallel sweep executor and its persistent result cache.

Covers the PR's acceptance criteria directly: serial and parallel runs
of the same artifact are byte-identical; cache hits/misses/invalidation
behave as addressed content (a cost-model change must miss); corrupted
cache entries fall back to recomputation; and a warm-cache fig13 re-run
is at least 5x faster than the cold run.
"""

import dataclasses
import json
import time

import pytest

from repro.experiments.executor import (
    CacheStats, SweepCache, canonical_json, code_version, cost_fingerprint,
    point_digest, point_key, resolve_jobs, sweep,
)
from repro.experiments.energy_experiments import run_energy
from repro.experiments.latency_experiments import run_fig07
from repro.experiments.scalability_experiments import run_fig13b
from repro.experiments.tab03_events import run_tab03
from repro.iomodels.costs import DEFAULT_COSTS
from repro.sim import ms


# ---------------------------------------------------------------------------
# plumbing: jobs resolution, canonical JSON, key material
# ---------------------------------------------------------------------------

def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs("auto") >= 1
    assert resolve_jobs(None) >= 1
    assert resolve_jobs(0) >= 1
    with pytest.raises(ValueError):
        resolve_jobs(-2)


def test_canonical_json_is_deterministic():
    assert canonical_json({"b": 1, "a": [1.5, 2]}) == '{"a":[1.5,2],"b":1}'
    # Key order must not matter.
    assert canonical_json({"x": 1, "y": 2}) == canonical_json({"y": 2, "x": 1})


def test_cost_fingerprint_tracks_fields():
    base = cost_fingerprint(None)
    assert base == cost_fingerprint(DEFAULT_COSTS)
    assert base != cost_fingerprint(DEFAULT_COSTS.copy(link_gbps=40.0))


def test_point_digest_separates_artifacts_and_params():
    k1 = point_key("fig7", {"n": 1}, None)
    assert point_digest(k1) == point_digest(point_key("fig7", {"n": 1}, None))
    assert point_digest(k1) != point_digest(point_key("fig9", {"n": 1}, None))
    assert point_digest(k1) != point_digest(point_key("fig7", {"n": 2}, None))
    assert k1["code"] == code_version()


# ---------------------------------------------------------------------------
# serial vs parallel equivalence (bytes-equal) over three artifacts
# ---------------------------------------------------------------------------

ARTIFACT_RUNS = {
    "fig7": lambda jobs: run_fig07(vm_counts=(1,), run_ns=ms(4), jobs=jobs),
    "tab3": lambda jobs: run_tab03(jobs=jobs),
    "energy": lambda jobs: run_energy(vm_counts=(1,), run_ns=ms(4),
                                      jobs=jobs),
}


def _as_bytes(result):
    """Canonical byte encoding of a run_* result for equality checks."""
    if isinstance(result, list) and result and dataclasses.is_dataclass(
            result[0]):
        result = [dataclasses.asdict(p) for p in result]
    return canonical_json(result).encode()


@pytest.mark.parametrize("artifact", sorted(ARTIFACT_RUNS))
def test_serial_and_parallel_runs_are_byte_identical(artifact):
    run = ARTIFACT_RUNS[artifact]
    serial = _as_bytes(run(1))
    parallel = _as_bytes(run(2))
    assert serial == parallel


# ---------------------------------------------------------------------------
# cache behaviour
# ---------------------------------------------------------------------------

def _square(params):
    return {"n": params["n"], "sq": params["n"] ** 2}


CALL_LOG = []


def _logged_square(params):
    CALL_LOG.append(params["n"])
    return _square(params)


def test_cache_miss_then_hit(tmp_path):
    cache = SweepCache(tmp_path / "cache")
    points = [{"n": n} for n in (1, 2, 3)]
    first = sweep(points, _square, artifact="t", cache=cache)
    assert cache.stats == CacheStats(hits=0, misses=3, corrupted=0, stores=3)

    cache2 = SweepCache(tmp_path / "cache")
    second = sweep(points, _square, artifact="t", cache=cache2)
    assert cache2.stats == CacheStats(hits=3, misses=0, corrupted=0, stores=0)
    assert canonical_json(first) == canonical_json(second)


def test_cache_skips_recompute_on_hit(tmp_path):
    cache = SweepCache(tmp_path / "cache")
    points = [{"n": 7}]
    CALL_LOG.clear()
    sweep(points, _logged_square, artifact="t", cache=cache)
    sweep(points, _logged_square, artifact="t", cache=cache)
    assert CALL_LOG == [7]  # second sweep never called the point function


def test_cost_model_change_misses(tmp_path):
    cache = SweepCache(tmp_path / "cache")
    points = [{"n": 5}]
    sweep(points, _square, artifact="t", cache=cache, costs=DEFAULT_COSTS)
    assert cache.stats.stores == 1
    # Same artifact + params, recalibrated cost model: must not replay.
    tweaked = DEFAULT_COSTS.copy(worker_per_byte_cycles=9.99)
    sweep(points, _square, artifact="t", cache=cache, costs=tweaked)
    assert cache.stats.misses == 2 and cache.stats.hits == 0
    assert cache.stats.stores == 2


def test_artifact_namespace_misses(tmp_path):
    cache = SweepCache(tmp_path / "cache")
    points = [{"n": 5}]
    sweep(points, _square, artifact="a", cache=cache)
    sweep(points, _square, artifact="b", cache=cache)
    assert cache.stats.hits == 0 and cache.stats.misses == 2


def test_corrupted_entry_recomputes(tmp_path):
    cache = SweepCache(tmp_path / "cache")
    points = [{"n": 4}]
    expect = sweep(points, _square, artifact="t", cache=cache)

    # Truncate the entry mid-JSON, as a crashed writer might have.
    key = point_key("t", points[0], None)
    path = cache.path_for(point_digest(key))
    path.write_text('{"key": {"art')

    cache2 = SweepCache(tmp_path / "cache")
    got = sweep(points, _square, artifact="t", cache=cache2)
    assert got == expect
    assert cache2.stats.corrupted == 1
    assert cache2.stats.stores == 1  # rewrote a good entry
    # And the rewritten entry is loadable again.
    cache3 = SweepCache(tmp_path / "cache")
    assert sweep(points, _square, artifact="t", cache=cache3) == expect
    assert cache3.stats.hits == 1


def test_key_mismatch_entry_recomputes(tmp_path):
    """A syntactically valid entry whose key disagrees (e.g. a digest
    collision or a hand-edited file) is discarded, not trusted."""
    cache = SweepCache(tmp_path / "cache")
    points = [{"n": 4}]
    sweep(points, _square, artifact="t", cache=cache)
    key = point_key("t", points[0], None)
    path = cache.path_for(point_digest(key))
    path.write_text(json.dumps({"key": {"artifact": "other"},
                                "result": {"sq": -1}}))
    cache2 = SweepCache(tmp_path / "cache")
    got = sweep(points, _square, artifact="t", cache=cache2)
    assert got[0]["sq"] == 16
    assert cache2.stats.corrupted == 1


def test_none_result_cached_distinctly(tmp_path):
    """A point function legitimately returning None is a cache hit, not a
    perpetual miss."""
    cache = SweepCache(tmp_path / "cache")
    assert sweep([{}], _none_point, artifact="t", cache=cache) == [None]
    assert sweep([{}], _none_point, artifact="t", cache=cache) == [None]
    assert cache.stats.hits == 1 and cache.stats.misses == 1


def _none_point(params):
    return None


def test_cache_disabled_by_default():
    assert sweep([{"n": 3}], _square, artifact="t") == \
        [{"n": 3, "sq": 9}]


# ---------------------------------------------------------------------------
# acceptance: warm-cache fig13 >= 5x faster than cold
# ---------------------------------------------------------------------------

def test_fig13_warm_cache_at_least_5x_faster(tmp_path):
    kwargs = dict(total_vms=(4,), run_ns=ms(4))

    t0 = time.perf_counter()
    cold_cache = SweepCache(tmp_path / "cache")
    cold = run_fig13b(cache=cold_cache, **kwargs)
    cold_s = time.perf_counter() - t0
    assert cold_cache.stats.misses == 3  # one point per worker count

    t0 = time.perf_counter()
    warm_cache = SweepCache(tmp_path / "cache")
    warm = run_fig13b(cache=warm_cache, **kwargs)
    warm_s = time.perf_counter() - t0
    assert warm_cache.stats.hits == 3 and warm_cache.stats.misses == 0

    assert canonical_json(cold) == canonical_json(warm)
    assert warm_s < cold_s / 5, (
        f"warm cache run took {warm_s:.3f}s vs cold {cold_s:.3f}s "
        f"(speedup {cold_s / warm_s:.1f}x, need >= 5x)")
