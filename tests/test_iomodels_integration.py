"""End-to-end integration tests across the four I/O models."""

import pytest

from repro.cluster import build_simple_setup
from repro.hw import BlockRequest
from repro.sim import ms

ALL_MODELS = ("baseline", "elvis", "optimum", "vrio", "vrio_nopoll")
BLOCK_MODELS = ("baseline", "elvis", "vrio", "vrio_nopoll")


def run_request_response(model_name, n_vms=1, requests=5):
    tb = build_simple_setup(model_name, n_vms=n_vms)
    env = tb.env
    port, client = tb.ports[0], tb.clients[0]
    received = []

    def serve(message):
        port.send(message.src, 128, kind="resp", meta=dict(message.meta))

    port.receive_handler = serve
    client.receive_handler = lambda m: received.append(m)

    def driver(env):
        for i in range(requests):
            before = len(received)
            client.send(port.mac, 64, kind="req", meta={"seq": i})
            while len(received) == before:
                yield env.timeout(1000)

    env.process(driver(env))
    env.run(until=ms(20))
    return tb, received


@pytest.mark.parametrize("model_name", ALL_MODELS)
def test_request_response_round_trips(model_name):
    _tb, received = run_request_response(model_name)
    assert len(received) == 5
    assert [m.meta["seq"] for m in received] == list(range(5))


@pytest.mark.parametrize("model_name", ALL_MODELS)
def test_message_sizes_preserved(model_name):
    _tb, received = run_request_response(model_name)
    assert all(m.size_bytes == 128 for m in received)


@pytest.mark.parametrize("model_name", ALL_MODELS)
def test_multiple_vms_isolated(model_name):
    """Traffic addressed to VM i arrives only at VM i."""
    tb = build_simple_setup(model_name, n_vms=3)
    env = tb.env
    got = {i: [] for i in range(3)}
    for i, port in enumerate(tb.ports):
        port.receive_handler = lambda m, idx=i: got[idx].append(m)
    for i in range(3):
        tb.clients[0].send(tb.ports[i].mac, 64, meta={"target": i})
    env.run(until=ms(5))
    for i in range(3):
        assert len(got[i]) == 1
        assert got[i][0].meta["target"] == i


@pytest.mark.parametrize("model_name", BLOCK_MODELS)
def test_block_read_write_completes(model_name):
    tb = build_simple_setup(model_name, n_vms=1, with_clients=False)
    handle = tb.attach_ramdisk(tb.vms[0])
    done = []

    def proc(env):
        yield handle.submit(BlockRequest(op="write", sector=0,
                                         size_bytes=4096))
        done.append("write")
        yield handle.submit(BlockRequest(op="read", sector=0,
                                         size_bytes=4096))
        done.append("read")

    tb.env.process(proc(tb.env))
    tb.env.run(until=ms(10))
    assert done == ["write", "read"]


@pytest.mark.parametrize("model_name", BLOCK_MODELS)
def test_block_latency_ordering(model_name):
    """Remote (vRIO) block I/O must be slower than local sidecore block I/O
    but all models must complete within a sane bound."""
    tb = build_simple_setup(model_name, n_vms=1, with_clients=False)
    handle = tb.attach_ramdisk(tb.vms[0])

    def proc(env):
        start = env.now
        yield handle.submit(BlockRequest(op="read", sector=8,
                                         size_bytes=4096))
        return env.now - start

    p = tb.env.process(proc(tb.env))
    tb.env.run(until=ms(10))
    latency_us = p.value / 1000
    if model_name.startswith("vrio"):
        assert 20 < latency_us < 200
    else:
        assert 2 < latency_us < 60


def test_vrio_remote_block_slower_than_elvis_local():
    def one(model_name):
        tb = build_simple_setup(model_name, n_vms=1, with_clients=False)
        handle = tb.attach_ramdisk(tb.vms[0])

        def proc(env):
            start = env.now
            yield handle.submit(BlockRequest(op="read", sector=0,
                                             size_bytes=4096))
            return env.now - start

        p = tb.env.process(proc(tb.env))
        tb.env.run(until=ms(10))
        return p.value

    assert one("vrio") > one("elvis")


def test_elvis_uses_sidecore_not_vcpu_for_backend():
    tb, _ = run_request_response("elvis")
    sidecore = tb.service_cores[0]
    assert sidecore.cycles_by_tag.get("backend", 0) > 0
    assert sidecore.cycles_by_tag.get("host_irq", 0) > 0


def test_vrio_uses_iohost_workers():
    tb, _ = run_request_response("vrio")
    worker = tb.service_cores[0]
    assert worker.cycles_by_tag.get("worker_rx", 0) > 0
    assert worker.cycles_by_tag.get("worker_tx", 0) > 0


def test_vrio_vm_vcpu_never_runs_backend_work():
    """The VMhost is unaware of the I/O: no backend tags on the VCPU."""
    tb, _ = run_request_response("vrio")
    vcpu_tags = set(tb.vms[0].vcpu.cycles_by_tag)
    assert not vcpu_tags & {"worker_rx", "worker_tx", "backend", "vhost"}


def test_baseline_pays_exits_vrio_does_not():
    tb_base, _ = run_request_response("baseline")
    tb_vrio, _ = run_request_response("vrio")
    assert tb_base.stats.exits.value > 0
    assert tb_vrio.stats.exits.value == 0


def test_vrio_poll_no_iohost_interrupts():
    tb, _ = run_request_response("vrio")
    assert tb.stats.iohost_interrupts.value == 0


def test_vrio_nopoll_pays_iohost_interrupts():
    tb, _ = run_request_response("vrio_nopoll")
    assert tb.stats.iohost_interrupts.value > 0


def test_interposition_cost_slows_vrio_traffic():
    from repro.interpose import AesEncryption

    def latency(with_aes):
        tb = build_simple_setup("vrio", n_vms=1)
        if with_aes:
            tb.model.add_interposer(AesEncryption())
        port, client = tb.ports[0], tb.clients[0]
        port.receive_handler = lambda m: port.send(m.src, 64)
        times = []
        client.receive_handler = lambda m: times.append(tb.env.now)
        client.send(port.mac, 8192)
        tb.env.run(until=ms(5))
        return times[0]

    assert latency(with_aes=True) > latency(with_aes=False)


def test_firewall_interposer_blocks_traffic():
    from repro.interpose import Firewall
    tb = build_simple_setup("vrio", n_vms=1)
    tb.model.add_interposer(Firewall(rules=[lambda m: m.size_bytes < 1000]))
    port, client = tb.ports[0], tb.clients[0]
    got = []
    port.receive_handler = got.append
    client.send(port.mac, 64)      # allowed
    client.send(port.mac, 4096)    # vetoed
    tb.env.run(until=ms(5))
    assert len(got) == 1


def test_deterministic_across_runs():
    a = run_request_response("vrio", requests=10)[0].stats.snapshot()
    b = run_request_response("vrio", requests=10)[0].stats.snapshot()
    assert a == b
